"""Robustness and fuzz tests: hostile inputs must fail cleanly."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queries import ParseError, parse_query
from repro.queries.parser import _tokenize


class TestParserFuzz:
    @given(st.text(max_size=120))
    @settings(max_examples=300, deadline=None)
    def test_arbitrary_text_never_crashes(self, text):
        """Any input either parses to a Query or raises ParseError /
        ValueError (AST validation) — never another exception type."""
        try:
            query = parse_query(text)
        except (ParseError, ValueError):
            return
        assert query.tables  # parsed something structurally valid

    @given(st.text(alphabet="SELECT FROMWHERE().,*=0123456789abc_",
                   max_size=80))
    @settings(max_examples=200, deadline=None)
    def test_sqlish_text_never_crashes(self, text):
        try:
            parse_query(text)
        except (ParseError, ValueError):
            pass

    def test_tokenizer_rejects_binary(self):
        with pytest.raises(ParseError):
            _tokenize("SELECT \x00 FROM t")

    def test_deeply_nested_in_list(self):
        values = ", ".join(str(i) for i in range(500))
        query = parse_query(
            f"SELECT * FROM t WHERE t.c IN ({values})"
        )
        assert len(query.filters[0].values) == 500


class TestNumericEdges:
    def test_selector_with_tiny_workload(self, rng):
        from repro.core import ConfigurationSelector, MatrixCostSource, \
            SelectorOptions

        matrix = np.array([[1.0, 2.0], [3.0, 1.0], [2.0, 2.0]])
        result = ConfigurationSelector(
            MatrixCostSource(matrix), np.zeros(3, dtype=int),
            SelectorOptions(alpha=0.9, n_min=2, consecutive=2),
            rng=rng,
        ).run()
        assert result.best_index in (0, 1)
        assert result.terminated_by in ("alpha", "exhausted")

    def test_selector_with_extreme_costs(self, rng):
        from repro.core import ConfigurationSelector, MatrixCostSource, \
            SelectorOptions

        matrix = np.column_stack([
            np.full(50, 1e15), np.full(50, 1e-15)
        ])
        result = ConfigurationSelector(
            MatrixCostSource(matrix), np.zeros(50, dtype=int),
            SelectorOptions(alpha=0.9, n_min=5, consecutive=2),
            rng=rng,
        ).run()
        assert result.best_index == 1

    def test_variance_bound_handles_huge_values(self):
        from repro.bounds import max_variance_bound

        lows = np.array([1e9, 1e9])
        highs = np.array([1e9 + 10, 1e9 + 10])
        result = max_variance_bound(lows, highs, rho=1.0)
        assert np.isfinite(result.sigma2_hat)
        assert result.sigma2_hat >= 0 or result.sigma2_hat > -1e-3

    def test_zipf_huge_domain(self):
        from repro.catalog import zipf_pmf

        pmf = zipf_pmf(1_000_000, 1.0)
        assert pmf.sum() == pytest.approx(1.0)

    def test_neyman_single_stratum(self):
        from repro.core import neyman_allocation

        alloc = neyman_allocation(
            np.array([100]), np.array([5.0]), 30
        )
        assert alloc.tolist() == [30]

    def test_histogram_single_value_domain(self):
        from repro.catalog import Histogram

        hist = Histogram(np.array([1.0]), bucket_count=8)
        assert hist.eq_selectivity(0) == pytest.approx(1.0)
        assert hist.range_selectivity(0, 0) == pytest.approx(1.0)
