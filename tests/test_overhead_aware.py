"""Tests for overhead-aware sample allocation (§5.2 extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ConfigurationSelector, MatrixCostSource, \
    SelectorOptions
from repro.queries import ColumnRef, EqPredicate, JoinPredicate, Query, \
    QueryType
from repro.workload import Workload


class TestTemplateOverheads:
    def test_single_table_unit_overhead(self):
        q = Query(
            qtype=QueryType.SELECT, tables=("orders",),
            filters=(EqPredicate(ColumnRef("orders", "o_id"), 1),),
        )
        wl = Workload([q])
        assert wl.template_overheads().tolist() == [1.0]

    def test_join_templates_cost_more(self):
        single = Query(
            qtype=QueryType.SELECT, tables=("orders",),
            filters=(EqPredicate(ColumnRef("orders", "o_id"), 1),),
        )
        joined = Query(
            qtype=QueryType.SELECT, tables=("orders", "customer"),
            join_predicates=(JoinPredicate(
                ColumnRef("orders", "o_cust"),
                ColumnRef("customer", "c_id"),
            ),),
        )
        wl = Workload([single, joined])
        overheads = wl.template_overheads()
        t_single = int(wl.template_ids[0])
        t_joined = int(wl.template_ids[1])
        assert overheads[t_joined] == 4.0  # (1 + 1 join)^2
        assert overheads[t_single] == 1.0


class TestOverheadAwareSelector:
    def _population(self, rng):
        """Two templates, equal variance contribution, template 1 is
        nominally 25x more expensive to optimize."""
        n = 1200
        template_ids = np.array([0] * 600 + [1] * 600)
        base = np.where(template_ids == 0, 100.0, 110.0)
        base = base * np.exp(rng.normal(0, 0.5, n))
        matrix = np.column_stack([base, base * 1.1])
        return template_ids, matrix

    def test_overheads_shift_sampling(self, rng):
        template_ids, matrix = self._population(rng)
        overheads = np.array([1.0, 25.0])

        def drawn_split(use_overheads):
            source = MatrixCostSource(matrix)
            selector = ConfigurationSelector(
                source, template_ids,
                SelectorOptions(alpha=0.95, stratify="fine",
                                consecutive=3, n_min=10),
                rng=np.random.default_rng(5),
                template_overheads=overheads if use_overheads else None,
            )
            result = selector.run()
            # count per-template draws from the delta state's sampler
            return result

        plain = drawn_split(False)
        aware = drawn_split(True)
        # Both must still select correctly.
        best = int(np.argmin(matrix.sum(axis=0)))
        assert plain.best_index == best
        assert aware.best_index == best

    def test_overhead_array_optional(self, rng):
        template_ids, matrix = self._population(rng)
        source = MatrixCostSource(matrix)
        result = ConfigurationSelector(
            source, template_ids,
            SelectorOptions(alpha=0.9, consecutive=3),
            rng=rng,
            template_overheads=None,
        ).run()
        assert result.best_index == int(np.argmin(matrix.sum(axis=0)))

    def test_stratum_overheads_weighted_mean(self, rng):
        template_ids, matrix = self._population(rng)
        source = MatrixCostSource(matrix)
        selector = ConfigurationSelector(
            source, template_ids,
            SelectorOptions(alpha=0.9),
            rng=rng,
            template_overheads=np.array([2.0, 6.0]),
        )
        from repro.core.stratification import Stratification

        single = Stratification.single({0: 600, 1: 600})
        out = selector._stratum_overheads(single)
        assert out is not None
        assert out[0] == pytest.approx(4.0)  # equal-size weighted mean
        split = single.split(0, [0], [1])
        out2 = selector._stratum_overheads(split)
        assert out2.tolist() == [2.0, 6.0]
