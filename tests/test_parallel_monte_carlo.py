"""Parallel Monte Carlo harness: bit-identity, seeding, worker plumbing.

The process-parallel runners in :mod:`repro.experiments.parallel` must
be drop-in replacements for the serial loops: same seed -> same numbers
to the last bit, for any worker count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.selector import SelectorOptions
from repro.experiments.monte_carlo import (
    SchemeSpec,
    multi_config_table as serial_table,
    prcs_curve as serial_curve,
)
from repro.experiments.parallel import (
    _chunked,
    multi_config_table,
    prcs_curve,
    resolve_workers,
    spawn_trial_rngs,
)
from repro.experiments.profiling import PhaseTimer, cache_hit_report
from repro.optimizer import WhatIfOptimizer


@pytest.fixture(scope="module")
def mc_problem():
    """A small ground-truth matrix with a clear-but-not-trivial winner."""
    rng = np.random.default_rng(42)
    n, k = 240, 4
    base = rng.lognormal(mean=3.0, sigma=1.0, size=(n, 1))
    offsets = np.array([1.0, 0.92, 1.05, 0.97])
    noise = rng.lognormal(mean=0.0, sigma=0.25, size=(n, k))
    matrix = base * offsets * noise
    template_ids = rng.integers(0, 12, size=n)
    return matrix, template_ids


class TestResolveWorkers:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers() == 5

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers() == 1

    def test_zero_means_all_cpus(self):
        assert resolve_workers(0) >= 1


class TestSpawnTrialRngs:
    def test_deterministic_and_independent(self):
        a = spawn_trial_rngs(9, 4)
        b = spawn_trial_rngs(9, 4)
        draws_a = [r.random(3).tolist() for r in a]
        draws_b = [r.random(3).tolist() for r in b]
        assert draws_a == draws_b
        # Distinct streams.
        assert draws_a[0] != draws_a[1]


class TestChunking:
    def test_partition_preserves_order(self):
        items = list(range(17))
        chunks = _chunked(items, 4)
        assert [x for c in chunks for x in c] == items
        assert len(chunks) <= 5

    def test_more_chunks_than_items(self):
        chunks = _chunked([1, 2], 8)
        assert [x for c in chunks for x in c] == [1, 2]


class TestBitIdentity:
    """workers=4 must replay the serial stream exactly."""

    def test_prcs_curve_matches_serial(self, mc_problem):
        matrix, tids = mc_problem
        spec = SchemeSpec(scheme="delta", stratify="none")
        budgets = [20, 40, 80]
        serial = serial_curve(
            matrix, tids, spec, budgets, trials=24, seed=5
        )
        parallel_1 = prcs_curve(
            matrix, tids, spec, budgets, trials=24, seed=5, workers=1
        )
        parallel_4 = prcs_curve(
            matrix, tids, spec, budgets, trials=24, seed=5, workers=4
        )
        assert np.array_equal(serial, parallel_1)
        assert np.array_equal(serial, parallel_4)

    def test_prcs_curve_stratified_matches_serial(self, mc_problem):
        matrix, tids = mc_problem
        spec = SchemeSpec(scheme="delta", stratify="progressive")
        budgets = [40, 80]
        serial = serial_curve(
            matrix, tids, spec, budgets, trials=12, seed=3
        )
        parallel_4 = prcs_curve(
            matrix, tids, spec, budgets, trials=12, seed=3, workers=4
        )
        assert np.array_equal(serial, parallel_4)

    def test_multi_config_table_matches_serial(self, mc_problem):
        matrix, tids = mc_problem
        kwargs = dict(alpha=0.85, trials=16, seed=11, n_min=10,
                      consecutive=4)
        serial = serial_table(matrix, tids, **kwargs)
        parallel_4 = multi_config_table(matrix, tids, workers=4, **kwargs)
        assert serial == parallel_4

    def test_workers_env_used_when_unset(self, mc_problem, monkeypatch):
        matrix, tids = mc_problem
        monkeypatch.setenv("REPRO_WORKERS", "2")
        spec = SchemeSpec(scheme="independent", stratify="none")
        serial = serial_curve(matrix, tids, spec, [30], trials=8, seed=1)
        via_env = prcs_curve(matrix, tids, spec, [30], trials=8, seed=1)
        assert np.array_equal(serial, via_env)


class TestSelectorOptionValidation:
    def test_reeval_every_must_be_positive(self):
        with pytest.raises(ValueError, match="reeval_every"):
            SelectorOptions(reeval_every=0)

    def test_split_check_every_must_be_positive(self):
        with pytest.raises(ValueError, match="split_check_every"):
            SelectorOptions(split_check_every=-1)

    def test_valid_options_pass(self):
        SelectorOptions(reeval_every=1, split_check_every=1)


class TestProfilingLayer:
    def test_phase_timer_accumulates(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            pass
        with timer.phase("a"):
            pass
        with timer.phase("b"):
            pass
        d = timer.as_dict()
        assert set(d) == {"a", "b"}
        assert timer.seconds("a") >= 0.0
        assert timer.total == pytest.approx(sum(d.values()))

    def test_cache_hit_report_rates(self, small_schema, join_query,
                                    indexed_config, empty_config):
        opt = WhatIfOptimizer(small_schema)
        opt.cost(join_query, indexed_config)
        opt.cost(join_query, indexed_config)
        opt.cost(join_query, empty_config)
        report = cache_hit_report(opt)
        assert report["calls"] == 2
        assert report["cache_hits"] == 1
        assert 0.0 <= report["pair_hit_rate"] <= 1.0
        assert 0.0 <= report["fingerprint_hit_rate"] <= 1.0
