"""Parallel Monte Carlo harness: bit-identity, seeding, worker plumbing.

The process-parallel runners in :mod:`repro.experiments.parallel` must
be drop-in replacements for the serial loops: same seed -> same numbers
to the last bit, for any worker count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.selector import SelectorOptions
from repro.experiments.monte_carlo import (
    SchemeSpec,
    multi_config_table as serial_table,
    prcs_curve as serial_curve,
)
from repro.experiments.parallel import (
    _chunked,
    multi_config_table,
    prcs_curve,
    resolve_workers,
    spawn_trial_rngs,
)
from repro.experiments.profiling import PhaseTimer, cache_hit_report
from repro.optimizer import WhatIfOptimizer


@pytest.fixture(scope="module")
def mc_problem():
    """A small ground-truth matrix with a clear-but-not-trivial winner."""
    rng = np.random.default_rng(42)
    n, k = 240, 4
    base = rng.lognormal(mean=3.0, sigma=1.0, size=(n, 1))
    offsets = np.array([1.0, 0.92, 1.05, 0.97])
    noise = rng.lognormal(mean=0.0, sigma=0.25, size=(n, k))
    matrix = base * offsets * noise
    template_ids = rng.integers(0, 12, size=n)
    return matrix, template_ids


class TestResolveWorkers:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers() == 5

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers() == 1

    def test_zero_means_all_cpus(self):
        assert resolve_workers(0) >= 1


class TestSpawnTrialRngs:
    def test_deterministic_and_independent(self):
        a = spawn_trial_rngs(9, 4)
        b = spawn_trial_rngs(9, 4)
        draws_a = [r.random(3).tolist() for r in a]
        draws_b = [r.random(3).tolist() for r in b]
        assert draws_a == draws_b
        # Distinct streams.
        assert draws_a[0] != draws_a[1]


class TestChunking:
    def test_partition_preserves_order(self):
        items = list(range(17))
        chunks = _chunked(items, 4)
        assert [x for c in chunks for x in c] == items
        assert len(chunks) <= 5

    def test_more_chunks_than_items(self):
        chunks = _chunked([1, 2], 8)
        assert [x for c in chunks for x in c] == [1, 2]


class TestBitIdentity:
    """workers=4 must replay the serial stream exactly."""

    def test_prcs_curve_matches_serial(self, mc_problem):
        matrix, tids = mc_problem
        spec = SchemeSpec(scheme="delta", stratify="none")
        budgets = [20, 40, 80]
        serial = serial_curve(
            matrix, tids, spec, budgets, trials=24, seed=5
        )
        parallel_1 = prcs_curve(
            matrix, tids, spec, budgets, trials=24, seed=5, workers=1
        )
        parallel_4 = prcs_curve(
            matrix, tids, spec, budgets, trials=24, seed=5, workers=4
        )
        assert np.array_equal(serial, parallel_1)
        assert np.array_equal(serial, parallel_4)

    def test_prcs_curve_stratified_matches_serial(self, mc_problem):
        matrix, tids = mc_problem
        spec = SchemeSpec(scheme="delta", stratify="progressive")
        budgets = [40, 80]
        serial = serial_curve(
            matrix, tids, spec, budgets, trials=12, seed=3
        )
        parallel_4 = prcs_curve(
            matrix, tids, spec, budgets, trials=12, seed=3, workers=4
        )
        assert np.array_equal(serial, parallel_4)

    def test_multi_config_table_matches_serial(self, mc_problem):
        matrix, tids = mc_problem
        kwargs = dict(alpha=0.85, trials=16, seed=11, n_min=10,
                      consecutive=4)
        serial = serial_table(matrix, tids, **kwargs)
        parallel_4 = multi_config_table(matrix, tids, workers=4, **kwargs)
        assert serial == parallel_4

    def test_workers_env_used_when_unset(self, mc_problem, monkeypatch):
        matrix, tids = mc_problem
        monkeypatch.setenv("REPRO_WORKERS", "2")
        spec = SchemeSpec(scheme="independent", stratify="none")
        serial = serial_curve(matrix, tids, spec, [30], trials=8, seed=1)
        via_env = prcs_curve(matrix, tids, spec, [30], trials=8, seed=1)
        assert np.array_equal(serial, via_env)


class TestSelectorOptionValidation:
    def test_reeval_every_must_be_positive(self):
        with pytest.raises(ValueError, match="reeval_every"):
            SelectorOptions(reeval_every=0)

    def test_split_check_every_must_be_positive(self):
        with pytest.raises(ValueError, match="split_check_every"):
            SelectorOptions(split_check_every=-1)

    def test_valid_options_pass(self):
        SelectorOptions(reeval_every=1, split_check_every=1)


class TestProfilingLayer:
    def test_phase_timer_accumulates(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            pass
        with timer.phase("a"):
            pass
        with timer.phase("b"):
            pass
        d = timer.as_dict()
        assert set(d) == {"a", "b"}
        assert timer.seconds("a") >= 0.0
        assert timer.total == pytest.approx(sum(d.values()))

    def test_cache_hit_report_rates(self, small_schema, join_query,
                                    indexed_config, empty_config):
        opt = WhatIfOptimizer(small_schema)
        opt.cost(join_query, indexed_config)
        opt.cost(join_query, indexed_config)
        opt.cost(join_query, empty_config)
        report = cache_hit_report(opt)
        assert report["calls"] == 2
        assert report["cache_hits"] == 1
        assert 0.0 <= report["pair_hit_rate"] <= 1.0
        assert 0.0 <= report["fingerprint_hit_rate"] <= 1.0


# ----------------------------------------------------------------------
# chunk salvage (PR 5): worker failures must not discard completed work
# ----------------------------------------------------------------------
import os

from repro.experiments.parallel import ChunkFailure, _run_chunks
from repro.experiments import parallel as parallel_mod

_PARENT_PID = os.getpid()
_INIT_ARGS = (
    np.zeros((2, 2), dtype=np.float64),
    np.zeros(2, dtype=np.int64),
)


def _worker_only_failure(payload):
    """Fails in pool workers, succeeds in the parent's serial retry."""
    if os.getpid() != _PARENT_PID:
        raise RuntimeError("simulated worker fault")
    return [x * 2 for x in payload]


def _always_fails(payload):
    raise ValueError("deterministically broken chunk")


def _dies_in_worker(payload):
    """Hard-kills the worker process (BrokenProcessPool in the parent)."""
    if os.getpid() != _PARENT_PID:
        os._exit(1)
    return [x * 2 for x in payload]


class TestChunkSalvage:
    def test_worker_failures_retried_serially(self):
        payloads = [[1, 2], [3, 4], [5]]
        out = _run_chunks(
            _worker_only_failure, payloads,
            lambda i: f"chunk {i}", workers=2, init_args=_INIT_ARGS,
        )
        assert out == [[2, 4], [6, 8], [10]]

    def test_killed_worker_salvaged_via_serial_retry(self):
        payloads = [[1], [2], [3]]
        out = _run_chunks(
            _dies_in_worker, payloads,
            lambda i: f"chunk {i}", workers=2, init_args=_INIT_ARGS,
        )
        assert out == [[2], [4], [6]]

    def test_double_failure_names_the_chunk(self):
        with pytest.raises(ChunkFailure) as excinfo:
            _run_chunks(
                _always_fails, [[0, 1], [2, 3]],
                lambda i: f"trials chunk {i} (seed=42)",
                workers=2, init_args=_INIT_ARGS,
            )
        message = str(excinfo.value)
        assert "trials chunk" in message
        assert "seed=42" in message
        assert isinstance(excinfo.value.pool_error, Exception)
        # The serial retry's error is chained as the cause.
        assert excinfo.value.__cause__ is not None

    def test_table_results_survive_worker_faults(
        self, mc_problem, monkeypatch
    ):
        """End to end: flaky workers, bit-identical final table."""
        matrix, template_ids = mc_problem
        expected = serial_table(
            matrix, template_ids, trials=8, seed=3, n_min=10,
            consecutive=3,
        )

        real_chunk = parallel_mod._table_chunk

        def flaky_chunk(args):
            if os.getpid() != _PARENT_PID:
                raise RuntimeError("simulated worker fault")
            return real_chunk(args)

        monkeypatch.setattr(parallel_mod, "_table_chunk", flaky_chunk)
        got = multi_config_table(
            matrix, template_ids, trials=8, seed=3, n_min=10,
            consecutive=3, workers=2,
        )
        assert got == expected
