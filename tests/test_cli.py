"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.db == "tpcd"
        assert args.alpha == 0.9
        assert args.scheme == "delta"

    def test_rejects_unknown_db(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--db", "oracle"])


class TestCommands:
    def test_generate(self, tmp_path, capsys):
        out = str(tmp_path / "wl.db")
        code = main([
            "generate", "--db", "tpcd", "--size", "80", "--out", out,
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "wrote 80 statements" in captured
        assert (tmp_path / "wl.db").exists()

    def test_compare_with_verify(self, capsys):
        code = main([
            "compare", "--db", "tpcd", "--size", "400", "--k", "4",
            "--seed", "1", "--verify",
        ])
        out = capsys.readouterr().out
        assert "Pr(CS)" in out
        assert "optimizer calls" in out
        assert code in (0, 1)  # 1 only if the selection missed

    def test_compare_tournament(self, capsys):
        code = main([
            "compare", "--db", "tpcd", "--size", "400", "--k", "4",
            "--seed", "2", "--tournament",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "tournament winner" in out
        assert "guarantee" in out

    def test_tune_by_cost(self, capsys):
        code = main([
            "tune", "--db", "tpcd", "--size", "200",
            "--compress", "by_cost", "--param", "0.3",
            "--max-structures", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "full-workload improvement" in out

    def test_tune_random(self, capsys):
        code = main([
            "tune", "--db", "tpcd", "--size", "200",
            "--compress", "random", "--param", "40",
            "--max-structures", "2",
        ])
        assert code == 0

    def test_profile(self, capsys):
        code = main(["profile", "--db", "tpcd", "--size", "120"])
        assert code == 0
        out = capsys.readouterr().out
        assert "workload profile" in out
        assert "top templates by cost share" in out
        assert "templates for 50% of cost" in out

    def test_explain(self, capsys):
        code = main([
            "explain", "--db", "tpcd", "--size", "30", "--query", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "-- current (no structures):" in out
        assert "-- ideal configuration:" in out
        assert "Plan" in out

    def test_explain_out_of_range(self, capsys):
        code = main([
            "explain", "--db", "tpcd", "--size", "10", "--query", "99",
        ])
        assert code == 2

    def test_mc_text_report(self, capsys):
        code = main([
            "mc", "--db", "tpcd", "--size", "150", "--k", "4",
            "--trials", "10", "--budgets", "30,60", "--workers", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Pr(CS)" in out
        assert "fingerprint hit rate" in out

    def test_mc_json_report(self, capsys):
        import json

        code = main([
            "mc", "--db", "tpcd", "--size", "150", "--k", "4",
            "--trials", "10", "--budgets", "30,60", "--json",
        ])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert len(report["prcs"]) == 2
        assert report["build_stats"]["cells"] == 150 * 4
        assert "phases" in report and "cache_report" in report

    def test_serve_smoke(self, tmp_path, capsys):
        events = str(tmp_path / "events.jsonl")
        code = main([
            "serve", "--db", "tpcd", "--size", "240", "--k", "3",
            "--seed", "0", "--window", "60", "--batch", "20",
            "--threshold", "0.05", "--cooldown", "40", "--n-min", "8",
            "--events", events,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "final configuration" in out
        assert "drift checks" in out
        from repro.service import read_events

        kinds = [e["kind"] for e in read_events(events)]
        assert kinds[0] == "service_start"
        assert kinds[-1] == "service_end"
        assert "retune_end" in kinds

    def test_serve_json_cold(self, capsys):
        import json

        code = main([
            "serve", "--db", "tpcd", "--size", "160", "--k", "3",
            "--seed", "1", "--window", "60", "--batch", "20",
            "--cooldown", "40", "--n-min", "8", "--cold", "--json",
        ])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["statements"] == 160
        assert report["retunes"]
        assert all(r["carried_samples"] == 0 for r in report["retunes"])
        assert report["final_config"] is not None

    def test_mc_workers_bit_identical(self, capsys):
        argv = [
            "mc", "--db", "tpcd", "--size", "150", "--k", "4",
            "--trials", "8", "--budgets", "40", "--json",
        ]
        import json

        assert main(argv + ["--workers", "1"]) == 0
        serial = json.loads(capsys.readouterr().out)["prcs"]
        assert main(argv + ["--workers", "2"]) == 0
        parallel = json.loads(capsys.readouterr().out)["prcs"]
        assert serial == parallel
