"""Tests for Section 6: cost intervals, variance/skew bounds, CLT."""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bounds import (
    CostBounder,
    cochran_holds,
    cochran_min_sample,
    max_skew_bound,
    max_variance_bound,
    validate_sample_size,
)
from repro.bounds._dp import apply_group, group_intervals, round_to_grid
from repro.physical import Configuration, base_configuration
from repro.workload import Workload, generate_tpcd_workload, tpcd_schema


def _brute_force_var_skew(lows, highs):
    best_var = 0.0
    best_g1 = -math.inf
    for combo in itertools.product(*[(l, h) for l, h in zip(lows, highs)]):
        v = np.asarray(combo)
        best_var = max(best_var, float(v.var()))
        s = v.std()
        if s > 1e-9:
            g1 = float(((v - v.mean()) ** 3).mean() / s**3)
            best_g1 = max(best_g1, g1)
    return best_var, best_g1


class TestDpKernels:
    def test_round_to_grid_nearest(self):
        assert round_to_grid(np.array([4.9, 5.0, 5.4, 5.6]), 1.0).tolist() \
            == [5, 5, 5, 6]

    def test_group_intervals_counts(self):
        a = np.array([0, 0, 3, 3, 3])
        b = np.array([2, 2, 3, 3, 3])
        groups = dict(
            ((lo, hi), m) for lo, hi, m in group_intervals(a, b)
        )
        assert groups == {(0, 2): 2, (3, 3): 3}

    def test_apply_group_max_manual(self):
        # Two items with {0, 2}: sums 0,2,4 with max squares 0,4,8.
        state = apply_group(np.zeros(1), d=2, m=2, base=0.0, alpha=4.0,
                            kind="max")
        assert len(state) == 5
        assert state[0] == 0.0
        assert state[2] == 4.0
        assert state[4] == 8.0
        assert not np.isfinite(state[1]) and not np.isfinite(state[3])

    def test_apply_group_min_manual(self):
        state = apply_group(np.zeros(1), d=2, m=2, base=1.0, alpha=4.0,
                            kind="min")
        assert state[0] == 2.0          # both at low: 2 * base
        assert state[2] == 6.0          # one flipped: 2*1 + 4
        assert state[4] == 10.0

    def test_apply_group_validation(self):
        with pytest.raises(ValueError):
            apply_group(np.zeros(1), d=0, m=1, base=0, alpha=1)
        with pytest.raises(ValueError):
            apply_group(np.zeros(1), d=1, m=0, base=0, alpha=1)


class TestVarianceBound:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(0)
        lows = np.round(rng.uniform(0, 40, 7), 1)
        highs = lows + np.round(rng.uniform(0, 25, 7), 1)
        brute, _ = _brute_force_var_skew(lows, highs)
        result = max_variance_bound(lows, highs, rho=0.1)
        assert result.upper_bound >= brute - 1e-6
        assert abs(result.sigma2_hat - brute) <= result.theta + 1e-6

    def test_exact_on_grid(self):
        lows = np.array([0.0, 0.0, 5.0])
        highs = np.array([4.0, 4.0, 5.0])
        brute, _ = _brute_force_var_skew(lows, highs)
        result = max_variance_bound(lows, highs, rho=1.0)
        assert result.sigma2_hat == pytest.approx(brute)

    def test_degenerate_intervals(self):
        values = np.array([1.0, 5.0, 9.0])
        result = max_variance_bound(values, values, rho=1.0)
        assert result.sigma2_hat == pytest.approx(values.var())
        assert result.states == 1

    def test_theta_shrinks_with_rho(self):
        lows = np.zeros(10)
        highs = np.full(10, 100.0)
        coarse = max_variance_bound(lows, highs, rho=10.0)
        fine = max_variance_bound(lows, highs, rho=1.0)
        assert fine.theta < coarse.theta

    def test_state_guard(self):
        with pytest.raises(ValueError, match="max_states"):
            max_variance_bound(
                np.zeros(100), np.full(100, 1e6), rho=0.001,
                max_states=1000,
            )

    def test_input_validation(self):
        with pytest.raises(ValueError):
            max_variance_bound(np.array([5.0]), np.array([1.0]), 1.0)
        with pytest.raises(ValueError):
            max_variance_bound(np.array([]), np.array([]), 1.0)
        with pytest.raises(ValueError):
            max_variance_bound(np.array([1.0]), np.array([2.0]), 0.0)

    @given(
        n=st.integers(2, 6),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_upper_bound_property(self, n, seed):
        rng = np.random.default_rng(seed)
        lows = np.round(rng.uniform(0, 30, n), 0)
        highs = lows + np.round(rng.uniform(0, 15, n), 0)
        brute, _ = _brute_force_var_skew(lows, highs)
        result = max_variance_bound(lows, highs, rho=0.5)
        assert result.upper_bound >= brute - 1e-6


class TestSkewBound:
    def test_conservative_vs_brute_force(self):
        rng = np.random.default_rng(4)
        lows = np.round(rng.uniform(0, 30, 6), 1)
        highs = lows + np.round(rng.uniform(0, 20, 6), 1)
        _, brute_g1 = _brute_force_var_skew(lows, highs)
        result = max_skew_bound(lows, highs, rho=0.25)
        assert result.g1_max >= brute_g1 - 1e-6

    def test_degenerate_zero_variance_inf(self):
        values = np.full(4, 7.0)
        result = max_skew_bound(values, values, rho=1.0)
        # All values identical: variance zero, skew undefined ->
        # conservative answer must not be a finite small number.
        assert result.g1_max == 0.0 or math.isinf(result.g1_max)

    @given(n=st.integers(2, 6), seed=st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_conservative_property(self, n, seed):
        rng = np.random.default_rng(seed)
        lows = np.round(rng.uniform(0, 20, n), 0)
        highs = lows + np.round(rng.uniform(1, 10, n), 0)
        _, brute_g1 = _brute_force_var_skew(lows, highs)
        result = max_skew_bound(lows, highs, rho=0.5)
        assert result.g1_max >= brute_g1 - 1e-6


class TestCochran:
    def test_min_sample_formula(self):
        assert cochran_min_sample(0.0) == 29
        assert cochran_min_sample(2.0) == 129

    def test_holds(self):
        assert cochran_holds(129, 2.0)
        assert not cochran_holds(128, 2.0)
        assert not cochran_holds(10**9, float("inf"))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            cochran_min_sample(-1.0)

    def test_infinite_skew_overflow(self):
        with pytest.raises(OverflowError):
            cochran_min_sample(float("inf"))

    def test_validate_sample_size(self):
        rng = np.random.default_rng(9)
        tmpl = rng.integers(0, 10, 2000)
        base = np.round(rng.exponential(40, 10), 0)[tmpl]
        lows = base
        highs = base + np.round(rng.exponential(5, 10), 0)[tmpl]
        validation = validate_sample_size(lows, highs, rho=1.0)
        assert validation.sigma2_max > 0
        if validation.min_sample is not None:
            assert validation.min_sample >= 29
            assert validation.accepts(validation.min_sample)
            assert not validation.accepts(validation.min_sample - 1)
            assert validation.required_fraction == pytest.approx(
                validation.min_sample / 2000
            )

    def test_required_fraction_shrinks_with_n(self):
        """The §6 observation: 4% at 13K vs 0.6% at 131K."""
        rng = np.random.default_rng(2)

        def fraction(n):
            tmpl = rng.integers(0, 15, n)
            base = np.round(rng.exponential(40, 15), 0)[tmpl]
            width = np.round(rng.exponential(6, 15), 0)[tmpl]
            v = validate_sample_size(base, base + width, rho=2.0)
            assert v.required_fraction is not None
            return v.required_fraction

        small = fraction(1_000)
        large = fraction(20_000)
        assert large < small


class TestCostBounder:
    @pytest.fixture(scope="class")
    def setup(self):
        schema = tpcd_schema(0.05)
        workload = generate_tpcd_workload(120, seed=5, schema=schema)
        from repro.optimizer import WhatIfOptimizer
        from repro.physical import build_pool, enumerate_configurations

        optimizer = WhatIfOptimizer(schema)
        pool = build_pool(workload.queries[:60], optimizer)
        configs = enumerate_configurations(
            pool, 4, np.random.default_rng(0)
        )
        return schema, workload, optimizer, configs

    def test_select_bounds_contain_costs(self, setup):
        schema, workload, optimizer, configs = setup
        base = base_configuration(configs)
        union = configs[0]
        for cfg in configs[1:]:
            union = union.union(cfg)
        bounder = CostBounder(optimizer, workload, base, union)
        from repro.queries import QueryType

        for q in workload.queries[:40]:
            if q.qtype != QueryType.SELECT:
                continue
            lo, hi = bounder.select_bounds(q)
            assert lo <= hi
            for cfg in configs:
                cost = optimizer.cost(q, cfg.union(base))
                assert lo - 1e-6 <= cost <= hi + 1e-6

    def test_universal_intervals_contain_config_costs(self, setup):
        schema, workload, optimizer, configs = setup
        base = base_configuration(configs)
        union = configs[0]
        for cfg in configs[1:]:
            union = union.union(cfg)
        bounder = CostBounder(optimizer, workload, base, union)
        intervals = bounder.universal_intervals()
        assert intervals.optimizer_calls > 0
        for cfg in configs:
            costs = workload.cost_vector(optimizer, cfg.union(base))
            assert intervals.contains(costs, atol=1e-6)

    def test_intervals_for_config(self, setup):
        schema, workload, optimizer, configs = setup
        base = base_configuration(configs)
        bounder = CostBounder(optimizer, workload, base, configs[0])
        intervals = bounder.intervals_for_config(configs[0].union(base))
        costs = workload.cost_vector(optimizer, configs[0].union(base))
        assert intervals.contains(costs, atol=1e-6)

    def test_widths_nonnegative(self, setup):
        schema, workload, optimizer, configs = setup
        base = base_configuration(configs)
        bounder = CostBounder(optimizer, workload, base)
        intervals = bounder.universal_intervals()
        assert (intervals.widths() >= 0).all()

    def test_select_bounds_rejects_dml(self, setup, update_query):
        schema, workload, optimizer, configs = setup
        bounder = CostBounder(
            optimizer, workload, base_configuration(configs)
        )
        with pytest.raises(ValueError):
            bounder.select_bounds(update_query)
