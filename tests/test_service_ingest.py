"""Tests for the streaming ingest layer of the online tuning service."""

from __future__ import annotations

import numpy as np
import pytest

from repro.queries import ColumnRef, EqPredicate, Query, QueryType, RangePredicate
from repro.queries.templates import TemplateRegistry
from repro.service import StreamIngestor


def lookup(v: int) -> Query:
    """A point lookup; every value binds the same template."""
    return Query(
        qtype=QueryType.SELECT,
        tables=("orders",),
        filters=(EqPredicate(ColumnRef("orders", "o_id"), v),),
        select_columns=(ColumnRef("orders", "o_total"),),
    )


def datescan(lo: int) -> Query:
    return Query(
        qtype=QueryType.SELECT,
        tables=("orders",),
        filters=(RangePredicate(ColumnRef("orders", "o_date"), lo, lo + 50),),
        select_columns=(ColumnRef("orders", "o_total"),),
    )


class TestSlidingWindow:
    def test_counts_follow_the_window(self, rng):
        ing = StreamIngestor(window_size=6, reservoir_size=4, rng=rng)
        for i in range(6):
            tid_lookup = ing.observe(lookup(i), name="lookup")
        for i in range(4):
            tid_scan = ing.observe(datescan(i), name="scan")
        freqs = ing.window_frequencies()
        assert sum(freqs.values()) == 6
        # The four scans evicted the four oldest lookups.
        assert freqs[tid_scan] == 4
        assert freqs[tid_lookup] == 2
        assert ing.total_seen == 10

    def test_evicted_template_disappears(self, rng):
        ing = StreamIngestor(window_size=4, reservoir_size=4, rng=rng)
        ing.observe(lookup(0), name="lookup")
        for i in range(4):
            tid_scan = ing.observe(datescan(i), name="scan")
        assert ing.window_frequencies() == {tid_scan: 4}

    def test_window_fill(self, rng):
        ing = StreamIngestor(window_size=10, reservoir_size=4, rng=rng)
        assert ing.window_fill == 0.0
        for i in range(5):
            ing.observe(lookup(i))
        assert ing.window_fill == pytest.approx(0.5)
        for i in range(20):
            ing.observe(lookup(i))
        assert ing.window_fill == pytest.approx(1.0)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            StreamIngestor(window_size=0)
        with pytest.raises(ValueError):
            StreamIngestor(reservoir_size=0)

    def test_batch_name_mismatch(self, rng):
        ing = StreamIngestor(rng=rng)
        with pytest.raises(ValueError):
            ing.observe_batch([lookup(0), lookup(1)], names=["lookup"])


class TestReservoir:
    def test_capacity_bound(self, rng):
        ing = StreamIngestor(window_size=100, reservoir_size=4, rng=rng)
        tid = None
        for i in range(50):
            tid = ing.observe(lookup(i), name="lookup")
        assert ing.reservoir_count(tid) == 4

    def test_replacement_reaches_late_arrivals(self, rng):
        """Algorithm R must sample beyond the first ``reservoir_size``
        arrivals — with a fixed seed some late query replaces an early
        one once enough statements stream past."""
        ing = StreamIngestor(window_size=500, reservoir_size=4, rng=rng)
        tid = None
        for i in range(400):
            tid = ing.observe(lookup(i), name="lookup")
        snap = ing.snapshot()
        values = {q.filters[0].value for q in snap.workload}
        assert values != {0, 1, 2, 3}

    def test_reset_reservoir(self, rng):
        ing = StreamIngestor(window_size=10, reservoir_size=4, rng=rng)
        tid = None
        for i in range(8):
            tid = ing.observe(lookup(i), name="lookup")
        ing.reset_reservoir(tid)
        assert ing.reservoir_count(tid) == 0
        # Fresh accumulation restarts from zero arrivals.
        ing.observe(lookup(99), name="lookup")
        assert ing.reservoir_count(tid) == 1


class TestSnapshot:
    def test_empty_window_raises(self, rng):
        with pytest.raises(RuntimeError):
            StreamIngestor(rng=rng).snapshot()

    def test_mix_and_capping(self, rng):
        ing = StreamIngestor(window_size=10, reservoir_size=3, rng=rng)
        tid_l = [ing.observe(lookup(i), name="lookup") for i in range(6)][0]
        tid_s = [ing.observe(datescan(i), name="scan") for i in range(4)][0]
        snap = ing.snapshot()
        # Both templates exceed the reservoir cap of 3 except the scan.
        sizes = snap.workload.template_sizes()
        assert sizes[tid_l] == 3          # 6 in window, capped at 3
        assert sizes[tid_s] == 3          # 4 in window, capped at 3
        assert sorted(snap.capped_templates) == sorted([tid_l, tid_s])
        assert snap.frequencies == {tid_l: 6, tid_s: 4}
        assert snap.position == 10

    def test_uncapped_template_mirrors_window_count(self, rng):
        ing = StreamIngestor(window_size=20, reservoir_size=8, rng=rng)
        tid = None
        for i in range(5):
            tid = ing.observe(lookup(i), name="lookup")
        snap = ing.snapshot()
        assert snap.workload.template_sizes()[tid] == 5
        assert snap.capped_templates == []

    def test_template_ids_stable_across_snapshots(self, rng):
        registry = TemplateRegistry()
        ing = StreamIngestor(
            window_size=8, reservoir_size=4, registry=registry, rng=rng
        )
        for i in range(4):
            ing.observe(lookup(i), name="lookup")
        first = ing.snapshot()
        for i in range(6):
            ing.observe(datescan(i), name="scan")
        second = ing.snapshot()
        # The lookup template keeps its id in the later snapshot even
        # though the mix around it changed — both workloads share the
        # registry the ingestor was built with.
        assert first.workload.registry is registry
        assert second.workload.registry is registry
        lookup_id = registry.lookup(lookup(123))
        assert lookup_id in first.workload.template_sizes()
        assert lookup_id in second.workload.template_sizes()
        assert registry.name_of(lookup_id) == "lookup"
