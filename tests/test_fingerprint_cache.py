"""Fingerprint-keyed cost caching: projection rules and equivalence.

Two families of checks:

* unit tests of the fingerprint projection
  (:meth:`repro.physical.configuration.Configuration.fingerprint`) and
  of view applicability
  (:meth:`repro.physical.structures.MaterializedView.matches_select`);
* property-style equivalence: for randomized workloads (TPC-D and CRM,
  SELECT + DML + views) the fingerprinting optimizer must produce
  bit-identical costs and the identical ``calls`` count to a fresh
  ``fingerprinting=False`` optimizer — the caching layers are pure
  wall-clock optimizations, invisible in every reported number.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.optimizer import WhatIfOptimizer
from repro.optimizer.batch import cost_matrix, cost_matrix_with_stats
from repro.physical import (
    Configuration,
    Index,
    MaterializedView,
    build_pool,
    enumerate_configurations,
)
from repro.queries import (
    ColumnRef,
    EqPredicate,
    JoinPredicate,
    Query,
    QueryType,
)
from repro.workload.crm import crm_generator, crm_schema
from repro.workload.tpcd import tpcd_generator, tpcd_schema


class TestFingerprintProjection:
    def test_irrelevant_index_dropped(self, join_query):
        # c_name is neither filtered nor joined nor referenced.
        noise = Index("customer", ("c_name",))
        useful = Index("customer", ("c_region", "c_id"))
        with_noise = Configuration([useful, noise])
        without = Configuration([useful])
        assert with_noise.fingerprint(join_query) \
            == without.fingerprint(join_query)

    def test_seek_index_kept(self, join_query):
        ix = Index("customer", ("c_region",))
        fp_indexes, _views = Configuration([ix]).fingerprint(join_query)
        assert ix in fp_indexes

    def test_join_column_index_kept(self, join_query):
        # o_cust is a join column: the index can carry an INL join even
        # though no filter touches it.
        ix = Index("orders", ("o_cust",))
        fp_indexes, _views = Configuration([ix]).fingerprint(join_query)
        assert ix in fp_indexes

    def test_covering_index_kept(self, join_query):
        # Leading key o_date is neither filtered nor joined, but the
        # index covers every referenced orders column.
        ix = Index("orders", ("o_date",), ("o_cust", "o_total"))
        fp_indexes, _views = Configuration([ix]).fingerprint(join_query)
        assert ix in fp_indexes

    def test_unseekable_noncovering_dropped(self, join_query):
        ix = Index("orders", ("o_date",))
        fp_indexes, _views = Configuration([ix]).fingerprint(join_query)
        assert ix not in fp_indexes

    def test_other_table_index_dropped(self, point_query):
        ix = Index("customer", ("c_region",))
        fp_indexes, _views = Configuration([ix]).fingerprint(point_query)
        assert not fp_indexes

    def test_matching_view_kept_nonmatching_dropped(self, join_query):
        matching = MaterializedView(
            tables=("orders", "customer"),
            join_predicates=join_query.join_predicates,
        )
        other = MaterializedView(
            tables=("orders", "customer"),
            join_predicates=(
                JoinPredicate(
                    ColumnRef("orders", "o_id"),
                    ColumnRef("customer", "c_id"),
                ),
            ),
        )
        _ixs, fp_views = Configuration(
            views=[matching, other]
        ).fingerprint(join_query)
        assert fp_views == frozenset([matching])

    def test_update_keeps_maintenance_index(self, update_query):
        # o_date is untouched by the UPDATE; o_total is SET.
        touched = Index("orders", ("o_date",), ("o_total",))
        untouched = Index("orders", ("o_date",))
        fp_indexes, _views = Configuration(
            [touched, untouched]
        ).fingerprint(update_query)
        assert touched in fp_indexes
        assert untouched not in fp_indexes

    def test_update_keeps_locate_index(self, update_query):
        # o_cust is the WHERE column of the locating SELECT part.
        ix = Index("orders", ("o_cust",))
        fp_indexes, _views = Configuration([ix]).fingerprint(update_query)
        assert ix in fp_indexes

    def test_delete_keeps_all_target_indexes(self):
        q = Query(
            qtype=QueryType.DELETE,
            tables=("orders",),
            filters=(EqPredicate(ColumnRef("orders", "o_id"), 1),),
        )
        ixs = [Index("orders", ("o_date",)), Index("orders", ("o_id",))]
        fp_indexes, _views = Configuration(ixs).fingerprint(q)
        assert fp_indexes == frozenset(ixs)


class TestMatchesSelect:
    def test_join_subset_matches(self, join_query):
        view = MaterializedView(
            tables=("orders", "customer"),
            join_predicates=join_query.join_predicates,
        )
        assert view.matches_select(join_query)

    def test_wrong_edge_rejected(self, join_query):
        view = MaterializedView(
            tables=("orders", "customer"),
            join_predicates=(
                JoinPredicate(
                    ColumnRef("orders", "o_id"),
                    ColumnRef("customer", "c_id"),
                ),
            ),
        )
        assert not view.matches_select(join_query)

    def test_aggregated_view_needs_exact_grouping(self, scan_query):
        q = Query(
            qtype=QueryType.SELECT,
            tables=("orders",),
            group_by=scan_query.group_by,
            aggregates=scan_query.aggregates,
        )
        view = MaterializedView(
            tables=("orders",),
            join_predicates=(),
            group_by=q.group_by,
            aggregates=q.aggregates,
        )
        assert view.matches_select(q)
        other_group = MaterializedView(
            tables=("orders",),
            join_predicates=(),
            group_by=(ColumnRef("orders", "o_cust"),),
            aggregates=q.aggregates,
        )
        assert not other_group.matches_select(q)

    def test_residual_filter_must_survive_aggregation(self, scan_query):
        # The o_date range filter's column is not a GROUP BY column of
        # the view, so the view cannot answer the query.
        assert scan_query.filters
        view = MaterializedView(
            tables=("orders",),
            join_predicates=(),
            group_by=(ColumnRef("orders", "o_status"),),
            aggregates=scan_query.aggregates,
        )
        q_nofilter = Query(
            qtype=QueryType.SELECT,
            tables=("orders",),
            group_by=scan_query.group_by,
            aggregates=scan_query.aggregates,
        )
        assert view.matches_select(q_nofilter)
        assert not view.matches_select(scan_query)


class TestCounterSemantics:
    def test_fingerprint_hit_still_counts_as_call(
        self, small_schema, join_query
    ):
        useful = Index("customer", ("c_region", "c_id"))
        noise = Index("customer", ("c_name",))
        c1 = Configuration([useful], name="c1")
        c2 = Configuration([useful, noise], name="c2")
        opt = WhatIfOptimizer(small_schema)
        a = opt.cost(join_query, c1)
        assert (opt.calls, opt.fingerprint_hits) == (1, 0)
        b = opt.cost(join_query, c2)
        # Distinct pair: the paper's metric must rise even though the
        # fingerprint layer skipped plan search.
        assert (opt.calls, opt.fingerprint_hits) == (2, 1)
        assert a == b
        # Exact repeat: cache hit, no new call.
        opt.cost(join_query, c2)
        assert (opt.calls, opt.cache_hits) == (2, 1)

    def test_fingerprinting_off_has_no_fingerprint_hits(
        self, small_schema, join_query, indexed_config, empty_config
    ):
        opt = WhatIfOptimizer(small_schema, fingerprinting=False)
        opt.cost(join_query, indexed_config)
        opt.cost(join_query, empty_config)
        assert opt.calls == 2
        assert opt.fingerprint_hits == 0

    def test_clear_cache_resets_sharing(self, small_schema, join_query,
                                        indexed_config):
        opt = WhatIfOptimizer(small_schema)
        first = opt.cost(join_query, indexed_config)
        opt.clear_cache()
        again = opt.cost(join_query, indexed_config)
        assert first == again
        assert opt.calls == 2  # both were real (uncached) evaluations


def _random_configs(pool, k, rng):
    return enumerate_configurations(
        pool, k, rng, min_indexes=1, max_indexes=6
    )


class TestEquivalence:
    """Fingerprinted costs == fresh un-fingerprinted costs, bit for bit."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_tpcd_matrix_identical(self, seed):
        schema = tpcd_schema(scale_factor=0.05)
        wl = tpcd_generator(schema=schema, include_dml=True).generate(
            120, np.random.default_rng(seed)
        )
        pool = build_pool(
            wl.queries[:60], WhatIfOptimizer(schema), include_views=True
        )
        configs = _random_configs(
            pool, 6, np.random.default_rng(seed + 100)
        )
        legacy_opt = WhatIfOptimizer(schema, fingerprinting=False)
        legacy = wl.cost_matrix(legacy_opt, configs)
        fast_opt = WhatIfOptimizer(schema)
        fast, stats = cost_matrix_with_stats(wl, configs, fast_opt)
        assert np.array_equal(legacy, fast)
        assert legacy_opt.calls == fast_opt.calls
        assert stats.optimizer_calls == fast_opt.calls
        assert stats.fingerprint_hits == fast_opt.fingerprint_hits

    def test_crm_matrix_identical(self):
        schema = crm_schema(seed=3)
        wl = crm_generator(schema=schema).generate(
            100, np.random.default_rng(7)
        )
        pool = build_pool(
            wl.queries[:50], WhatIfOptimizer(schema), include_views=True
        )
        configs = _random_configs(pool, 5, np.random.default_rng(8))
        legacy = wl.cost_matrix(
            WhatIfOptimizer(schema, fingerprinting=False), configs
        )
        fast = cost_matrix(wl, configs, WhatIfOptimizer(schema))
        assert np.array_equal(legacy, fast)

    def test_plans_identical_not_just_costs(self, small_schema,
                                            join_query, indexed_config):
        fp_opt = WhatIfOptimizer(small_schema)
        plain = WhatIfOptimizer(small_schema, fingerprinting=False)
        a = fp_opt.plan(join_query, indexed_config)
        b = plain.plan(join_query, indexed_config)
        assert a == b


class TestBatchBuilder:
    def test_progress_callback_fires(self, small_schema, join_query,
                                     point_query, indexed_config):
        calls = []
        cost_matrix(
            [join_query, point_query], [indexed_config],
            WhatIfOptimizer(small_schema),
            progress=lambda done, total: calls.append((done, total)),
            progress_every=1,
        )
        assert calls[-1] == (2, 2)
        assert (1, 2) in calls

    def test_stats_shape_and_throughput(self, small_schema, join_query,
                                        indexed_config, empty_config):
        matrix, stats = cost_matrix_with_stats(
            [join_query], [indexed_config, empty_config],
            WhatIfOptimizer(small_schema),
        )
        assert matrix.shape == (1, 2)
        assert stats.cells == 2
        assert stats.optimizer_calls == 2
        assert stats.cells_per_second > 0
        d = stats.as_dict()
        assert d["n_queries"] == 1 and d["n_configs"] == 2


class TestPickleHygiene:
    """Cached hashes must never cross process boundaries (str hashes
    are salted per interpreter)."""

    def test_query_state_drops_cached_hash(self, join_query):
        hash(join_query)
        assert "_hash" in join_query.__dict__
        assert "_hash" not in pickle.loads(
            pickle.dumps(join_query)
        ).__dict__

    def test_index_state_drops_cached_hash(self):
        ix = Index("orders", ("o_cust",))
        hash(ix)
        ix.column_set
        state = pickle.loads(pickle.dumps(ix)).__dict__
        assert "_ixhash" not in state and "_column_set" not in state

    def test_view_state_drops_cached_hash(self, join_query):
        view = MaterializedView(
            tables=("orders", "customer"),
            join_predicates=join_query.join_predicates,
        )
        hash(view)
        assert "_vhash" not in pickle.loads(pickle.dumps(view)).__dict__

    def test_configuration_roundtrip_rebuilds_memos(self, join_query):
        cfg = Configuration([Index("customer", ("c_region",))], name="c")
        cfg.fingerprint(join_query)
        clone = pickle.loads(pickle.dumps(cfg))
        assert clone == cfg and clone.name == "c"
        assert clone.fingerprint(join_query) == cfg.fingerprint(join_query)
