"""Tests for the workload-compression baselines (§2, §7.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import (
    CompressedWorkload,
    compress_by_clustering,
    compress_by_cost,
    compress_random,
    pairwise_distance_count,
)


@pytest.fixture
def skewed_costs(rng):
    """1000 queries over 5 templates; template 0 is far more expensive."""
    template_ids = rng.integers(0, 5, size=1000)
    level = np.array([5000.0, 10.0, 12.0, 8.0, 20.0])[template_ids]
    costs = level * np.exp(rng.normal(0, 0.2, size=1000))
    return costs, template_ids


class TestCompressedWorkload:
    def test_weighted_total(self):
        cw = CompressedWorkload(
            indices=np.array([0, 2]),
            weights=np.array([2.0, 3.0]),
            method="test",
        )
        costs = np.array([10.0, 99.0, 20.0])
        assert cw.weighted_total(costs) == pytest.approx(2 * 10 + 3 * 20)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            CompressedWorkload(
                indices=np.array([0]), weights=np.array([1.0, 2.0]),
                method="bad",
            )


class TestByCost:
    def test_covers_requested_fraction(self, skewed_costs):
        costs, _ = skewed_costs
        cw = compress_by_cost(costs, 0.2)
        assert costs[cw.indices].sum() >= 0.2 * costs.sum()

    def test_minimal_prefix(self, skewed_costs):
        costs, _ = skewed_costs
        cw = compress_by_cost(costs, 0.2)
        # Dropping the last retained query must fall below the target.
        assert costs[cw.indices[:-1]].sum() < 0.2 * costs.sum()

    def test_selects_most_expensive(self, skewed_costs):
        costs, _ = skewed_costs
        cw = compress_by_cost(costs, 0.1)
        cheapest_kept = costs[cw.indices].min()
        dropped = np.setdiff1d(np.arange(len(costs)), cw.indices)
        assert costs[dropped].max() <= cheapest_kept + 1e-9

    def test_template_blindness(self, skewed_costs):
        """The §7.3 failure mode: only the expensive template survives."""
        costs, template_ids = skewed_costs
        cw = compress_by_cost(costs, 0.2)
        kept_templates = set(template_ids[cw.indices])
        assert kept_templates == {0}

    def test_full_fraction_keeps_everything(self, skewed_costs):
        costs, _ = skewed_costs
        cw = compress_by_cost(costs, 1.0)
        assert cw.size == len(costs)

    def test_validation(self, skewed_costs):
        costs, _ = skewed_costs
        with pytest.raises(ValueError):
            compress_by_cost(costs, 0.0)
        with pytest.raises(ValueError):
            compress_by_cost(np.array([]), 0.5)


class TestClustering:
    def test_weights_sum_to_workload(self, skewed_costs):
        costs, template_ids = skewed_costs
        cw = compress_by_clustering(costs, template_ids, 50)
        assert cw.weights.sum() == pytest.approx(len(costs))

    def test_every_template_represented(self, skewed_costs):
        costs, template_ids = skewed_costs
        cw = compress_by_clustering(costs, template_ids, 20)
        assert set(template_ids[cw.indices]) == set(template_ids)

    def test_weighted_total_close_to_truth(self, skewed_costs):
        costs, template_ids = skewed_costs
        cw = compress_by_clustering(costs, template_ids, 100)
        assert cw.weighted_total(costs) == pytest.approx(
            costs.sum(), rel=0.15
        )

    def test_exhaustive_ops_grow_quadratically(self, rng):
        # With the cluster count scaling with the workload (a fixed
        # compression ratio), exhaustive k-center preprocessing grows
        # ~quadratically in N — the "up to O(|WL|^2) distance
        # computations" of §7.3.
        def ops(n: int) -> int:
            template_ids = np.zeros(n, dtype=int)
            costs = np.exp(rng.normal(3, 1, size=n))
            return compress_by_clustering(
                costs, template_ids, n // 5, exhaustive=True
            ).preprocessing_operations

        small, large = ops(500), ops(2000)
        assert large > 8 * small  # 4x data -> ~16x ops

    def test_pairwise_distance_count(self):
        assert pairwise_distance_count(10) == 45

    def test_validation(self, skewed_costs):
        costs, template_ids = skewed_costs
        with pytest.raises(ValueError):
            compress_by_clustering(costs, template_ids, 0)
        with pytest.raises(ValueError):
            compress_by_clustering(costs, template_ids[:-1], 10)


class TestRandom:
    def test_unbiased_weights(self, rng):
        cw = compress_random(1000, 100, rng)
        assert cw.size == 100
        assert cw.weights[0] == pytest.approx(10.0)
        assert len(set(cw.indices.tolist())) == 100

    def test_estimates_total_unbiased(self, skewed_costs, rng):
        costs, _ = skewed_costs
        estimates = [
            compress_random(len(costs), 200, rng).weighted_total(costs)
            for _ in range(200)
        ]
        assert np.mean(estimates) == pytest.approx(costs.sum(), rel=0.05)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            compress_random(10, 0, rng)
        with pytest.raises(ValueError):
            compress_random(10, 11, rng)
