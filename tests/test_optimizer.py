"""Tests for the what-if optimizer substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog import StatisticsCatalog
from repro.optimizer import (
    CostParams,
    WhatIfOptimizer,
    affected_rows,
    best_access_path,
    conjunction_selectivity,
    join_selectivity,
    matching_views,
    needed_columns,
    predicate_selectivity,
    select_part,
    suggest_index,
    table_selectivity,
    view_cardinality,
    view_scan_cost,
)
from repro.optimizer.params import DEFAULT_PARAMS
from repro.physical import Configuration, Index, MaterializedView
from repro.queries import (
    Aggregate,
    ColumnRef,
    EqPredicate,
    InPredicate,
    JoinPredicate,
    Query,
    QueryType,
    RangePredicate,
)


@pytest.fixture
def stats(small_schema) -> StatisticsCatalog:
    return StatisticsCatalog(small_schema)


class TestSelectivity:
    def test_eq_in_unit_range(self, stats):
        sel = predicate_selectivity(
            EqPredicate(ColumnRef("orders", "o_cust"), 3), stats
        )
        assert 0 < sel <= 1

    def test_range_wider_is_larger(self, stats):
        ref = ColumnRef("orders", "o_date")
        narrow = predicate_selectivity(RangePredicate(ref, 0, 10), stats)
        wide = predicate_selectivity(RangePredicate(ref, 0, 500), stats)
        assert wide > narrow

    def test_in_grows_with_list(self, stats):
        ref = ColumnRef("customer", "c_region")
        one = predicate_selectivity(InPredicate(ref, (0,)), stats)
        two = predicate_selectivity(InPredicate(ref, (0, 1)), stats)
        assert two > one

    def test_conjunction_independence(self, stats):
        preds = [
            EqPredicate(ColumnRef("orders", "o_cust"), 3),
            EqPredicate(ColumnRef("orders", "o_status"), 1),
        ]
        combined = conjunction_selectivity(preds, stats)
        product = predicate_selectivity(
            preds[0], stats
        ) * predicate_selectivity(preds[1], stats)
        assert combined == pytest.approx(product)

    def test_table_selectivity_scopes_to_table(self, stats, join_query):
        sel_orders = table_selectivity(join_query, "orders", stats)
        assert sel_orders == pytest.approx(1.0)
        sel_cust = table_selectivity(join_query, "customer", stats)
        assert sel_cust < 1.0

    def test_join_selectivity(self, stats, join_query):
        jp = join_query.join_predicates[0]
        assert join_selectivity(jp, stats) == pytest.approx(1 / 5000)


class TestAccessPaths:
    def test_heap_scan_without_indexes(
        self, small_schema, stats, point_query, empty_config
    ):
        path = best_access_path(
            point_query, "orders", empty_config, small_schema, stats,
            DEFAULT_PARAMS,
        )
        assert path.kind == "heap_scan"
        assert path.index is None

    def test_seek_beats_scan_for_point_lookup(
        self, small_schema, stats, point_query, indexed_config
    ):
        path = best_access_path(
            point_query, "orders", indexed_config, small_schema, stats,
            DEFAULT_PARAMS,
        )
        assert path.kind == "index_seek"
        assert path.index.leading_column == "o_id"

    def test_covering_scan_when_no_filter(self, small_schema, stats):
        q = Query(
            qtype=QueryType.SELECT, tables=("orders",),
            select_columns=(ColumnRef("orders", "o_total"),),
        )
        config = Configuration([Index("orders", ("o_total",))])
        path = best_access_path(
            q, "orders", config, small_schema, stats, DEFAULT_PARAMS
        )
        assert path.kind == "covering_scan"

    def test_non_covering_wide_result_prefers_heap(
        self, small_schema, stats, scan_query
    ):
        # A broad range on o_date with a non-covering index: lookups
        # would cost more than scanning.
        config = Configuration([Index("orders", ("o_date",))])
        path = best_access_path(
            scan_query, "orders", config, small_schema, stats,
            DEFAULT_PARAMS,
        )
        assert path.kind == "heap_scan"

    def test_needed_columns(self, join_query):
        assert needed_columns(join_query, "customer") == {
            "c_id", "c_region"
        }

    def test_suggest_index_covers(self, stats, join_query):
        ix = suggest_index(join_query, "customer", stats)
        assert ix is not None
        assert ix.covers(needed_columns(join_query, "customer"))
        # the filtered column leads
        assert ix.leading_column == "c_region"

    def test_suggest_index_none_when_untouched(self, stats):
        q = Query(qtype=QueryType.SELECT, tables=("orders",))
        assert suggest_index(q, "orders", stats) is None

    def test_output_rows_reflect_filters(
        self, small_schema, stats, point_query, empty_config
    ):
        path = best_access_path(
            point_query, "orders", empty_config, small_schema, stats,
            DEFAULT_PARAMS,
        )
        assert path.output_rows < small_schema.table("orders").row_count


class TestJoinsAndPlans:
    def test_single_table_plan_cost_is_path_cost(
        self, optimizer, point_query, empty_config
    ):
        plan = optimizer.plan(point_query, empty_config)
        assert plan.join_plan is not None
        assert plan.join_plan.steps == ()
        assert plan.total_cost == pytest.approx(
            plan.access_paths[0].cost, rel=1e-9
        )

    def test_join_produces_step(self, optimizer, join_query, empty_config):
        plan = optimizer.plan(join_query, empty_config)
        assert len(plan.join_plan.steps) == 1
        assert plan.join_plan.steps[0].method in (
            "hash", "index_nested_loop"
        )

    def test_inl_used_with_join_index(self, optimizer, small_schema):
        # A single-customer lookup joined to orders: with a covering
        # index on the join column, probing beats scanning 100K orders.
        q = Query(
            qtype=QueryType.SELECT,
            tables=("orders", "customer"),
            join_predicates=(
                JoinPredicate(ColumnRef("orders", "o_cust"),
                              ColumnRef("customer", "c_id")),
            ),
            filters=(EqPredicate(ColumnRef("customer", "c_id"), 17),),
            select_columns=(ColumnRef("orders", "o_total"),),
        )
        config = Configuration(
            [Index("orders", ("o_cust",), ("o_total",))]
        )
        plan = optimizer.plan(q, config)
        methods = {s.method for s in plan.join_plan.steps}
        assert "index_nested_loop" in methods
        # And it must be cheaper than the no-index plan.
        assert plan.total_cost < optimizer.cost(
            q, Configuration(name="none")
        )

    def test_aggregation_cost_added(self, optimizer, scan_query,
                                    empty_config):
        plan = optimizer.plan(scan_query, empty_config)
        assert plan.aggregation_cost > 0

    def test_order_by_cost_added(self, optimizer, empty_config):
        q = Query(
            qtype=QueryType.SELECT, tables=("orders",),
            select_columns=(ColumnRef("orders", "o_total"),),
            order_by=(ColumnRef("orders", "o_total"),),
        )
        plan = optimizer.plan(q, empty_config)
        assert plan.sort_cost > 0

    def test_cross_product_handled(self, optimizer, empty_config):
        q = Query(
            qtype=QueryType.SELECT, tables=("orders", "customer"),
            select_columns=(ColumnRef("orders", "o_id"),),
        )
        plan = optimizer.plan(q, empty_config)
        assert plan.join_plan.steps[0].method == "cross"


class TestViews:
    def test_view_matches_join_query(self, join_query):
        view = MaterializedView(
            ("orders", "customer"), join_query.join_predicates
        )
        config = Configuration([], [view])
        assert matching_views(join_query, config) == [view]

    def test_view_table_subset_mismatch(self, join_query):
        view = MaterializedView(
            ("orders", "customer"), join_query.join_predicates
        )
        single = Query(
            qtype=QueryType.SELECT, tables=("orders",),
            select_columns=(ColumnRef("orders", "o_id"),),
        )
        assert matching_views(single, Configuration([], [view])) == []

    def test_aggregated_view_requires_matching_group_by(self, small_schema):
        jp = JoinPredicate(
            ColumnRef("orders", "o_cust"), ColumnRef("customer", "c_id")
        )
        agg_view = MaterializedView(
            ("orders", "customer"), (jp,),
            group_by=(ColumnRef("customer", "c_region"),),
            aggregates=(Aggregate("SUM", ColumnRef("orders", "o_total")),),
        )
        config = Configuration([], [agg_view])
        matching = Query(
            qtype=QueryType.SELECT, tables=("orders", "customer"),
            join_predicates=(jp,),
            group_by=(ColumnRef("customer", "c_region"),),
            aggregates=(Aggregate("SUM", ColumnRef("orders", "o_total")),),
        )
        non_matching = Query(
            qtype=QueryType.SELECT, tables=("orders", "customer"),
            join_predicates=(jp,),
            group_by=(ColumnRef("customer", "c_name"),),
            aggregates=(Aggregate("SUM", ColumnRef("orders", "o_total")),),
        )
        assert matching_views(matching, config) == [agg_view]
        assert matching_views(non_matching, config) == []

    def test_aggregated_view_rejects_lost_filter_column(self, small_schema):
        jp = JoinPredicate(
            ColumnRef("orders", "o_cust"), ColumnRef("customer", "c_id")
        )
        agg_view = MaterializedView(
            ("orders", "customer"), (jp,),
            group_by=(ColumnRef("customer", "c_region"),),
            aggregates=(Aggregate("COUNT", None),),
        )
        q = Query(
            qtype=QueryType.SELECT, tables=("orders", "customer"),
            join_predicates=(jp,),
            filters=(EqPredicate(ColumnRef("orders", "o_status"), 1),),
            group_by=(ColumnRef("customer", "c_region"),),
            aggregates=(Aggregate("COUNT", None),),
        )
        assert matching_views(q, Configuration([], [agg_view])) == []

    def test_view_cardinality_capped_by_group_domain(
        self, small_schema, stats
    ):
        jp = JoinPredicate(
            ColumnRef("orders", "o_cust"), ColumnRef("customer", "c_id")
        )
        plain = MaterializedView(("orders", "customer"), (jp,))
        grouped = MaterializedView(
            ("orders", "customer"), (jp,),
            group_by=(ColumnRef("customer", "c_region"),),
            aggregates=(Aggregate("COUNT", None),),
        )
        assert view_cardinality(grouped, small_schema, stats) <= 5
        assert view_cardinality(plain, small_schema, stats) > 5

    def test_aggregated_view_plan_cheaper(self, optimizer, empty_config):
        # A tiny aggregated view answers the grouped join directly; a
        # plain join view of 100K rows would rightly NOT be chosen for
        # a cheap two-way hash join.
        jp = JoinPredicate(
            ColumnRef("orders", "o_cust"), ColumnRef("customer", "c_id")
        )
        q = Query(
            qtype=QueryType.SELECT, tables=("orders", "customer"),
            join_predicates=(jp,),
            group_by=(ColumnRef("customer", "c_region"),),
            aggregates=(Aggregate("SUM", ColumnRef("orders", "o_total")),),
        )
        view = MaterializedView(
            ("orders", "customer"), (jp,),
            group_by=(ColumnRef("customer", "c_region"),),
            aggregates=(Aggregate("SUM", ColumnRef("orders", "o_total")),),
        )
        with_view = Configuration([], [view])
        assert optimizer.cost(q, with_view) < optimizer.cost(
            q, empty_config
        )
        assert optimizer.plan(q, with_view).view == view

    def test_join_view_rejected_when_scan_larger(
        self, optimizer, join_query, empty_config
    ):
        # The un-aggregated join view stores one row per order; a scan
        # of it costs more than the hash join, so the optimizer must
        # keep the no-view plan.
        view = MaterializedView(
            ("orders", "customer"), join_query.join_predicates
        )
        plan = optimizer.plan(join_query, Configuration([], [view]))
        assert plan.view is None
        assert plan.total_cost == pytest.approx(
            optimizer.cost(join_query, empty_config)
        )

    def test_view_never_matches_dml(self, update_query):
        view = MaterializedView(
            ("orders", "customer"),
            (JoinPredicate(ColumnRef("orders", "o_cust"),
                           ColumnRef("customer", "c_id")),),
        )
        assert matching_views(update_query, Configuration([], [view])) == []


class TestUpdateCosts:
    def test_select_part_structure(self, update_query):
        part = select_part(update_query)
        assert part.qtype == QueryType.SELECT
        assert part.filters == update_query.filters

    def test_select_part_rejects_select(self, join_query):
        with pytest.raises(ValueError):
            select_part(join_query)

    def test_affected_rows_scale_with_selectivity(
        self, small_schema, stats
    ):
        narrow = Query(
            qtype=QueryType.UPDATE, tables=("orders",),
            filters=(EqPredicate(ColumnRef("orders", "o_id"), 5),),
            set_columns=(ColumnRef("orders", "o_total"),),
        )
        broad = Query(
            qtype=QueryType.UPDATE, tables=("orders",),
            filters=(RangePredicate(ColumnRef("orders", "o_date"), 0, 900),),
            set_columns=(ColumnRef("orders", "o_total"),),
        )
        assert affected_rows(broad, small_schema, stats) > affected_rows(
            narrow, small_schema, stats
        )

    def test_update_cost_grows_with_touched_indexes(
        self, optimizer, update_query, empty_config, indexed_config
    ):
        assert optimizer.cost(update_query, indexed_config) > \
            optimizer.cost(update_query, empty_config)

    def test_update_untouched_index_not_charged(self, optimizer,
                                                update_query):
        unrelated = Configuration(
            [Index("customer", ("c_region",))]
        )
        base = optimizer.cost(update_query, Configuration(name="none"))
        assert optimizer.cost(update_query, unrelated) == pytest.approx(
            base
        )

    def test_delete_charges_all_indexes(self, optimizer, small_schema):
        q = Query(
            qtype=QueryType.DELETE, tables=("orders",),
            filters=(EqPredicate(ColumnRef("orders", "o_id"), 5),),
        )
        none = optimizer.cost(q, Configuration(name="none"))
        with_ix = optimizer.cost(
            q, Configuration([Index("orders", ("o_status",))])
        )
        assert with_ix > none

    def test_insert_constant_cost_per_structure(self, optimizer):
        q = Query(qtype=QueryType.INSERT, tables=("orders",))
        none = optimizer.cost(q, Configuration(name="none"))
        one = optimizer.cost(
            q, Configuration([Index("orders", ("o_status",))])
        )
        two = optimizer.cost(
            q,
            Configuration(
                [Index("orders", ("o_status",)),
                 Index("orders", ("o_date",))]
            ),
        )
        assert two - one == pytest.approx(one - none)

    def test_view_maintenance_dominates(self, optimizer, update_query):
        view = MaterializedView(
            ("orders", "customer"),
            (JoinPredicate(ColumnRef("orders", "o_cust"),
                           ColumnRef("customer", "c_id")),),
        )
        with_view = optimizer.cost(
            update_query, Configuration([], [view])
        )
        with_index = optimizer.cost(
            update_query,
            Configuration([Index("orders", ("o_total",))]),
        )
        assert with_view > with_index


class TestWhatIfOptimizer:
    def test_cost_deterministic(self, optimizer, join_query, indexed_config):
        a = optimizer.cost(join_query, indexed_config)
        b = optimizer.cost(join_query, indexed_config)
        assert a == b

    def test_cache_and_call_counting(self, optimizer, join_query,
                                     indexed_config):
        optimizer.reset_counters()
        optimizer.clear_cache()
        optimizer.cost(join_query, indexed_config)
        optimizer.cost(join_query, indexed_config)
        assert optimizer.calls == 1
        assert optimizer.cache_hits == 1

    def test_ideal_configuration_lower_bounds(
        self, optimizer, join_query, empty_config, indexed_config
    ):
        ideal = optimizer.ideal_configuration(join_query)
        ideal_cost = optimizer.cost(join_query, ideal)
        assert ideal_cost <= optimizer.cost(join_query, empty_config)
        assert ideal_cost <= optimizer.cost(join_query, indexed_config)

    def test_adding_index_never_hurts_select(
        self, optimizer, join_query, point_query, scan_query
    ):
        """Well-behavedness (Section 6.1): more structures, never costlier."""
        base = Configuration(name="base")
        extras = [
            Index("orders", ("o_cust",), ("o_total",)),
            Index("orders", ("o_id",)),
            Index("customer", ("c_region",), ("c_id",)),
            Index("orders", ("o_date",), ("o_status", "o_total")),
        ]
        for query in (join_query, point_query, scan_query):
            previous = optimizer.cost(query, base)
            grown = base
            for ix in extras:
                grown = grown.with_structures(indexes=[ix])
                current = optimizer.cost(query, grown)
                assert current <= previous + 1e-9
                previous = current

    @given(
        cust=st.integers(0, 4999),
        status=st.integers(0, 4),
        width=st.integers(0, 400),
    )
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_monotone_property(self, optimizer, cust, status, width):
        """Adding a covering index never increases any SELECT's cost."""
        q = Query(
            qtype=QueryType.SELECT,
            tables=("orders",),
            filters=(
                EqPredicate(ColumnRef("orders", "o_cust"), cust),
                RangePredicate(ColumnRef("orders", "o_date"), 0, width),
            ),
            select_columns=(ColumnRef("orders", "o_total"),),
        )
        without = optimizer.cost(q, Configuration(name="none"))
        with_ix = optimizer.cost(
            q,
            Configuration(
                [Index("orders", ("o_cust", "o_date"), ("o_total",))]
            ),
        )
        assert with_ix <= without + 1e-9

    def test_params_validation(self):
        with pytest.raises(ValueError):
            CostParams(seq_page_cost=0)

    def test_custom_params_change_costs(self, small_schema, join_query,
                                        empty_config):
        cheap = WhatIfOptimizer(small_schema)
        expensive = WhatIfOptimizer(
            small_schema, params=CostParams(seq_page_cost=10.0)
        )
        assert expensive.cost(join_query, empty_config) > cheap.cost(
            join_query, empty_config
        )
