"""Bitwise-parity tests for the vectorized bound and allocation kernels.

Every fast path introduced for the split/plan bottleneck must produce
the exact floats of the historical scalar code: the grouped DP
transition vs the per-residue-class walk, the memoized Section 6
bounds vs uncached evaluation, the batched allocation kernels vs
row-at-a-time calls, and the incremental split scorer vs the full
reference recompute.  Parity here is ``==`` on floats, not ``allclose``.
"""

import numpy as np
import pytest

from repro.bounds import bounds_cache_stats, clear_bounds_caches
from repro.bounds._dp import apply_group, apply_group_reference
from repro.bounds.skew_bound import max_skew_bound, skew_bound_cache_stats
from repro.bounds.variance_bound import (
    max_variance_bound,
    variance_bound_cache_stats,
)
from repro.core.allocation import (
    DeltaStratumScorer,
    allocation_variance_batch,
    neyman_allocation_batch,
    pick_delta_stratum,
    samples_needed_batch,
)
from repro.core.progressive import propose_split, propose_split_reference
from repro.core.stratification import Stratification


# ---------------------------------------------------------------------------
# Grouped DP transition (bounds/_dp.py)
# ---------------------------------------------------------------------------


def _random_state(rng, length, kind):
    fill = -np.inf if kind == "max" else np.inf
    state = rng.normal(scale=5.0, size=length)
    # Unreachable offsets are the fill value; sprinkle some in.
    mask = rng.random(length) < 0.3
    state[mask] = fill
    state[0] = 0.0  # offset zero is always reachable in real DPs
    return state


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("kind", ["max", "min"])
def test_apply_group_matches_reference(seed, kind):
    rng = np.random.default_rng(900 + seed)
    for _ in range(25):
        length = int(rng.integers(1, 40))
        d = int(rng.integers(1, 9))
        m = int(rng.integers(1, 11))
        base = float(rng.normal(scale=3.0))
        alpha = float(rng.normal(scale=3.0))
        state = _random_state(rng, length, kind)
        fast = apply_group(state, d, m, base, alpha, kind=kind)
        ref = apply_group_reference(state, d, m, base, alpha, kind=kind)
        assert fast.shape == ref.shape
        assert np.array_equal(fast, ref)


@pytest.mark.parametrize("kind", ["max", "min"])
def test_apply_group_branch_extremes(kind):
    """Force both the flip-enumeration and packed-filter branches."""
    rng = np.random.default_rng(77)
    state = _random_state(rng, 30, kind)
    # Wide interval, few items: m + 1 < d -> enumeration branch.
    for d, m in [(25, 2), (12, 1)]:
        fast = apply_group(state, d, m, 1.5, -0.75, kind=kind)
        ref = apply_group_reference(state, d, m, 1.5, -0.75, kind=kind)
        assert np.array_equal(fast, ref)
    # Narrow interval, many items: packed-filter branch, ragged rows.
    for d, m in [(1, 9), (3, 12), (7, 7)]:
        fast = apply_group(state, d, m, -2.25, 4.5, kind=kind)
        ref = apply_group_reference(state, d, m, -2.25, 4.5, kind=kind)
        assert np.array_equal(fast, ref)


def test_apply_group_rejects_degenerate_groups():
    state = np.zeros(4)
    for kernel in (apply_group, apply_group_reference):
        with pytest.raises(ValueError):
            kernel(state, 0, 3, 0.0, 1.0)
        with pytest.raises(ValueError):
            kernel(state, 2, 0, 0.0, 1.0)


# ---------------------------------------------------------------------------
# Memoized Section 6 bounds
# ---------------------------------------------------------------------------


def _random_intervals(rng, n):
    lows = rng.uniform(0.0, 10.0, size=n)
    highs = lows + rng.uniform(0.0, 5.0, size=n)
    # Some degenerate intervals (low == high) and repeated templates.
    lows[rng.random(n) < 0.25] = 2.0
    highs = np.maximum(highs, lows)
    return lows, highs


@pytest.mark.parametrize("seed", range(4))
def test_variance_bound_memo_matches_uncached(seed):
    clear_bounds_caches()
    rng = np.random.default_rng(1300 + seed)
    lows, highs = _random_intervals(rng, int(rng.integers(3, 24)))
    rho = 0.5
    first = max_variance_bound(lows, highs, rho)
    cached = max_variance_bound(lows, highs, rho)
    bare = max_variance_bound(lows, highs, rho, memoize=False)
    for other in (cached, bare):
        assert other.sigma2_hat == first.sigma2_hat
        assert other.theta == first.theta
        assert other.states == first.states
        assert other.rho == first.rho
    stats = variance_bound_cache_stats()
    assert stats["hits"] >= 1
    assert stats["misses"] >= 1


@pytest.mark.parametrize("seed", range(4))
def test_skew_bound_memo_matches_uncached(seed):
    clear_bounds_caches()
    rng = np.random.default_rng(1400 + seed)
    lows, highs = _random_intervals(rng, int(rng.integers(3, 20)))
    rho = 0.5
    first = max_skew_bound(lows, highs, rho)
    cached = max_skew_bound(lows, highs, rho)
    bare = max_skew_bound(lows, highs, rho, memoize=False)
    for other in (cached, bare):
        assert other.g1_max == first.g1_max
        assert other.states == first.states
    stats = skew_bound_cache_stats()
    assert stats["hits"] >= 1


def test_bound_memo_keys_on_interval_multiset():
    """Permuting the queries hits the memo: same multiset, same key."""
    clear_bounds_caches()
    rng = np.random.default_rng(31)
    lows, highs = _random_intervals(rng, 16)
    perm = rng.permutation(16)
    base_v = max_variance_bound(lows, highs, 0.5)
    perm_v = max_variance_bound(lows[perm], highs[perm], 0.5)
    assert perm_v.sigma2_hat == base_v.sigma2_hat
    assert perm_v.theta == base_v.theta
    base_s = max_skew_bound(lows, highs, 0.5)
    perm_s = max_skew_bound(lows[perm], highs[perm], 0.5)
    assert perm_s.g1_max == base_s.g1_max
    stats = bounds_cache_stats()
    assert stats["variance"]["hits"] >= 1
    assert stats["skew"]["hits"] >= 1


def test_bound_state_guard_raises():
    lows = np.zeros(4)
    highs = np.full(4, 100.0)
    with pytest.raises(ValueError, match="max_states"):
        max_variance_bound(lows, highs, 0.01, max_states=100)
    with pytest.raises(ValueError, match="max_states"):
        max_skew_bound(lows, highs, 0.01, max_states=100)


# ---------------------------------------------------------------------------
# Batched allocation kernels vs row-at-a-time evaluation
# ---------------------------------------------------------------------------


def _random_problems(rng, B, L):
    sizes = rng.integers(1, 400, size=(B, L)).astype(np.int64)
    variances = rng.uniform(0.0, 9.0, size=(B, L))
    # Degenerate strata: zero variance, singleton strata, empty demand.
    variances[rng.random((B, L)) < 0.2] = 0.0
    sizes[rng.random((B, L)) < 0.1] = 1
    floors = rng.integers(0, 12, size=(B, L)).astype(np.int64)
    floors = np.minimum(floors, sizes)
    # Some rows fully saturated by their floors.
    floors[0] = sizes[0]
    return sizes, variances, floors


@pytest.mark.parametrize("seed", range(5))
def test_neyman_batch_matches_rowwise(seed):
    rng = np.random.default_rng(2100 + seed)
    B, L = int(rng.integers(2, 10)), int(rng.integers(1, 14))
    sizes, variances, floors = _random_problems(rng, B, L)
    std = np.sqrt(variances)
    totals = rng.integers(0, 2 * int(sizes.sum(axis=1).max()), size=B)
    batch = neyman_allocation_batch(sizes, std, totals, floors=floors)
    for b in range(B):
        row = neyman_allocation_batch(
            sizes[b: b + 1], std[b: b + 1], totals[b: b + 1],
            floors=floors[b: b + 1],
        )[0]
        assert np.array_equal(batch[b], row)
        assert int(batch[b].sum()) == min(
            max(int(totals[b]), int(floors[b].sum())), int(sizes[b].sum())
        )


@pytest.mark.parametrize("seed", range(5))
def test_allocation_variance_batch_matches_rowwise(seed):
    rng = np.random.default_rng(2200 + seed)
    B, L = int(rng.integers(2, 10)), int(rng.integers(1, 14))
    sizes, variances, _ = _random_problems(rng, B, L)
    alloc = rng.integers(0, 50, size=(B, L)).astype(np.int64)
    alloc = np.minimum(alloc, sizes)
    # An unsampled *active* stratum (positive variance, size > 1) must
    # drive its row to inf; degenerate strata are skipped instead.
    active0 = np.flatnonzero((variances[0] > 0.0) & (sizes[0] > 1))
    if len(active0):
        alloc[0, active0[0]] = 0
    batch = allocation_variance_batch(
        sizes.astype(np.float64), variances, alloc.astype(np.float64)
    )
    for b in range(B):
        row = allocation_variance_batch(
            sizes[b: b + 1].astype(np.float64),
            variances[b: b + 1],
            alloc[b: b + 1].astype(np.float64),
        )[0]
        assert batch[b] == row or (np.isnan(batch[b]) and np.isnan(row))
    if len(active0):
        assert np.isinf(batch[0])


@pytest.mark.parametrize("seed", range(5))
def test_samples_needed_batch_matches_rowwise(seed):
    rng = np.random.default_rng(2300 + seed)
    B, L = int(rng.integers(2, 9)), int(rng.integers(1, 12))
    sizes, variances, floors = _random_problems(rng, B, L)
    targets = rng.uniform(1e-4, 50.0, size=B)
    targets[rng.random(B) < 0.2] = np.inf  # trivially satisfied rows
    batch = samples_needed_batch(sizes, variances, targets, floors=floors)
    for b in range(B):
        row = samples_needed_batch(
            sizes[b: b + 1], variances[b: b + 1], targets[b: b + 1],
            floors=floors[b: b + 1],
        )[0]
        assert batch[b] == row
        assert int(floors[b].sum()) <= batch[b] <= int(sizes[b].sum())


def test_samples_needed_batch_composition_invariance():
    """Row results do not depend on which rows share the batch."""
    rng = np.random.default_rng(57)
    sizes, variances, floors = _random_problems(rng, 8, 10)
    targets = rng.uniform(1e-3, 20.0, size=8)
    full = samples_needed_batch(sizes, variances, targets, floors=floors)
    half = samples_needed_batch(
        sizes[::2], variances[::2], targets[::2], floors=floors[::2]
    )
    assert np.array_equal(full[::2], half)


# ---------------------------------------------------------------------------
# Incremental Delta stratum scorer
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("with_overheads", [False, True])
def test_delta_scorer_matches_repeated_picks(with_overheads):
    rng = np.random.default_rng(4000 + int(with_overheads))
    L, P = 7, 5
    sizes = rng.integers(2, 15, size=L).astype(np.int64)
    pairs = [rng.uniform(0.0, 4.0, size=L) for _ in range(P)]
    pairs[1][2] = 0.0  # a dead stratum for one pair
    counts = rng.integers(0, 5, size=L).astype(np.int64)
    counts = np.minimum(counts, sizes)
    overheads = (
        rng.uniform(0.5, 3.0, size=L) if with_overheads else None
    )
    exhausted = counts >= sizes
    scorer = DeltaStratumScorer(sizes, pairs, counts, overheads=overheads)
    for round_no in range(200):
        expected = pick_delta_stratum(
            sizes, pairs, counts, exhausted, overheads=overheads
        )
        got = scorer.pick(exhausted)
        assert got == expected
        if got is None:
            break
        counts[got] += int(rng.integers(1, 4))
        if counts[got] >= sizes[got]:
            counts[got] = sizes[got]
            exhausted[got] = True
        scorer.refresh(got)
    else:
        pytest.fail("scorer never exhausted the strata")


def test_delta_scorer_no_pairs():
    sizes = np.array([10, 20, 30], dtype=np.int64)
    counts = np.zeros(3, dtype=np.int64)
    exhausted = np.array([True, False, False])
    scorer = DeltaStratumScorer(sizes, [], counts)
    assert scorer.pick(exhausted) == pick_delta_stratum(
        sizes, [], counts, exhausted
    )
    assert scorer.pick(np.ones(3, dtype=bool)) is None


# ---------------------------------------------------------------------------
# Incremental split search vs full reference recompute
# ---------------------------------------------------------------------------


def _split_fixture(rng, T):
    template_sizes = {t: int(rng.integers(3, 120)) for t in range(T)}
    strat = Stratification([tuple(range(T))], template_sizes)
    sizes = np.array([template_sizes[t] for t in range(T)], dtype=np.int64)
    counts = np.minimum(
        rng.integers(2, 30, size=T).astype(np.int64), sizes
    )
    # Continuous draws: no exact ties, so both search orders agree.
    means = rng.normal(scale=10.0, size=T)
    variances = rng.uniform(0.01, 25.0, size=T)
    return strat, sizes, counts, means, variances


@pytest.mark.parametrize("seed", range(4))
def test_propose_split_matches_reference(seed):
    rng = np.random.default_rng(5100 + seed)
    T = int(rng.integers(4, 18))
    strat, sizes, counts, means, variances = _split_fixture(rng, T)
    cache = {}
    for target_var in (1e-3, 0.05, 1.0, 20.0):
        fast = propose_split(
            strat, sizes, counts, means, variances, target_var, 4,
            cache=cache,
        )
        ref = propose_split_reference(
            strat, sizes, counts, means, variances, target_var, 4
        )
        assert (fast is None) == (ref is None)
        if fast is not None:
            assert fast.stratum_idx == ref.stratum_idx
            assert fast.left == ref.left
            assert fast.right == ref.right
            assert fast.expected_samples == ref.expected_samples
            assert fast.baseline_samples == ref.baseline_samples


def test_propose_split_cache_survives_ingests_and_splits():
    """Stamped cache entries stay correct as samples arrive and splits land."""
    rng = np.random.default_rng(61)
    T = 12
    strat, sizes, counts, means, variances = _split_fixture(rng, T)
    cache = {}
    for step in range(6):
        fast = propose_split(
            strat, sizes, counts, means, variances, 0.05, 3, cache=cache
        )
        ref = propose_split_reference(
            strat, sizes, counts, means, variances, 0.05, 3
        )
        assert (fast is None) == (ref is None)
        if fast is not None:
            assert fast.stratum_idx == ref.stratum_idx
            assert (fast.left, fast.right) == (ref.left, ref.right)
            assert fast.expected_samples == ref.expected_samples
            strat = strat.split(fast.stratum_idx, fast.left, fast.right)
        # Simulate an ingest into a few templates: counts grow, the
        # running moments drift.  Stale cache entries must be rebuilt
        # (stamp mismatch), untouched strata must be served from cache.
        touched = rng.choice(T, size=3, replace=False)
        for t in touched:
            counts[t] = min(int(sizes[t]), counts[t] + int(rng.integers(1, 6)))
            means[t] += float(rng.normal(scale=0.5))
            variances[t] = max(1e-6, variances[t] * float(rng.uniform(0.8, 1.2)))


def test_propose_split_degenerate_targets():
    rng = np.random.default_rng(62)
    strat, sizes, counts, means, variances = _split_fixture(rng, 6)
    for bad in (0.0, -1.0, np.inf, np.nan):
        assert propose_split(
            strat, sizes, counts, means, variances, bad, 4, cache={}
        ) is None
        assert propose_split_reference(
            strat, sizes, counts, means, variances, bad, 4
        ) is None
