"""Structural inventory checks for the TPC-D and CRM generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.queries import QueryType
from repro.workload import (
    crm_schema,
    crm_templates,
    tpcd_schema,
    tpcd_templates,
)


@pytest.fixture(scope="module")
def tpcd():
    return tpcd_schema(0.1)


@pytest.fixture(scope="module")
def crm():
    return crm_schema()


class TestTpcdTemplateInventory:
    def test_names_unique(self):
        names = [t.name for t in tpcd_templates()]
        assert len(names) == len(set(names))

    def test_every_column_reference_valid(self, tpcd):
        for template in tpcd_templates():
            for table in template.tables:
                assert table in tpcd, (template.name, table)
            for slot in template.slots:
                tpcd.column(slot.column.table, slot.column.column)
            for jp in template.join_predicates:
                tpcd.column(jp.left.table, jp.left.column)
                tpcd.column(jp.right.table, jp.right.column)
            for ref in (template.select_columns + template.group_by
                        + template.order_by + template.set_columns):
                tpcd.column(ref.table, ref.column)

    def test_joins_follow_foreign_keys(self, tpcd):
        fk_edges = {
            frozenset((fk.child_table, fk.parent_table))
            for fk in tpcd.foreign_keys
        }
        for template in tpcd_templates(include_dml=False):
            for jp in template.join_predicates:
                edge = frozenset(jp.tables())
                assert edge in fk_edges, (
                    f"{template.name} joins {sorted(edge)} without a "
                    "foreign key"
                )

    def test_join_fanout_spectrum(self):
        """The QGEN set spans single-table to 5-way joins."""
        joins = {len(t.join_predicates)
                 for t in tpcd_templates(include_dml=False)}
        assert 0 in joins
        assert max(joins) >= 4

    def test_dml_templates_cover_kinds(self):
        dml = [t for t in tpcd_templates()
               if t.qtype != QueryType.SELECT]
        kinds = {t.qtype for t in dml}
        assert kinds == {QueryType.UPDATE, QueryType.INSERT,
                         QueryType.DELETE}

    def test_filters_reference_from_tables(self):
        for template in tpcd_templates():
            tables = set(template.tables)
            for slot in template.slots:
                assert slot.column.table in tables, template.name


class TestCrmSchemaIntegrity:
    def test_every_fk_resolves(self, crm):
        for fk in crm.foreign_keys:
            child = crm.table(fk.child_table)
            parent = crm.table(fk.parent_table)
            assert fk.child_column in child
            assert fk.parent_column in parent

    def test_fk_domains_match_parent_cardinality(self, crm):
        for fk in crm.foreign_keys:
            child_col = crm.column(fk.child_table, fk.child_column)
            parent = crm.table(fk.parent_table)
            assert child_col.distinct_count == parent.row_count, fk

    def test_core_tables_present(self, crm):
        for name in ("account", "contact", "sales_order", "order_line",
                     "invoice", "payment"):
            assert name in crm

    def test_aux_tables_padded(self, crm):
        aux = [t.name for t in crm if t.name.startswith("aux_")]
        assert len(aux) == 490

    def test_templates_all_valid(self, crm):
        for template in crm_templates(crm):
            for table in template.tables:
                assert table in crm, (template.name, table)
            for slot in template.slots:
                crm.column(slot.column.table, slot.column.column)

    def test_template_kind_mix(self, crm):
        kinds = {t.qtype for t in crm_templates(crm)}
        assert kinds == set(QueryType.ALL)

    def test_schema_deterministic(self):
        a = crm_schema(seed=7)
        b = crm_schema(seed=7)
        assert [t.name for t in a] == [t.name for t in b]
        assert [t.row_count for t in a] == [t.row_count for t in b]
