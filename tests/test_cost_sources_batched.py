"""Tests for the vectorized cost-source API and batched-selector knobs.

Covers the PR 3 satellites around the batched sampling engine:

* ``CostSource.cost_many`` on both concrete sources — values, distinct
  optimizer-call accounting, cache-hit clustering, the scalar fallback;
* the packed ``q * k + c`` touched-set regression of
  :class:`MatrixCostSource`;
* mid-batch ``max_calls`` truncation of the draw-ahead selector;
* validation of the new :class:`SelectorOptions` batching knobs;
* agreement of the incremental (Welford) pairwise accumulators with the
  exact buffer recomputation to 1e-9, across splits and warm starts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MatrixCostSource, OptimizerCostSource
from repro.core.estimators import DeltaState
from repro.core.selector import ConfigurationSelector, SelectorOptions
from repro.core.sources import CostSource, resolve_cost_workers
from repro.core.stratification import Stratification
from repro.optimizer import WhatIfOptimizer
from repro.physical import build_pool, enumerate_configurations
from repro.workload import Workload
from repro.workload.tpcd import tpcd_generator, tpcd_schema


# ----------------------------------------------------------------------
# MatrixCostSource.cost_many + packed touched-set regression
# ----------------------------------------------------------------------
class TestMatrixCostMany:
    def _source(self):
        matrix = np.arange(24, dtype=np.float64).reshape(6, 4)
        return MatrixCostSource(matrix), matrix

    def test_values_match_scalar_loop(self):
        src, matrix = self._source()
        pairs = np.array([[0, 0], [5, 3], [2, 1], [2, 1], [4, 2]])
        batched = src.cost_many(pairs)
        scalar = [matrix[q, c] for q, c in pairs]
        assert batched.dtype == np.float64
        np.testing.assert_array_equal(batched, scalar)

    def test_duplicates_count_once(self):
        src, _ = self._source()
        src.cost_many([[1, 1], [1, 1], [2, 0], [1, 1]])
        assert src.calls == 2

    def test_scalar_and_vector_paths_share_accounting(self):
        src, _ = self._source()
        src.cost(3, 2)
        src.cost_many([[3, 2], [3, 3]])  # (3, 2) already touched
        assert src.calls == 2
        src.cost(3, 3)  # already touched via the batch
        assert src.calls == 2

    def test_touched_set_is_packed_ints(self):
        src, matrix = self._source()
        k = matrix.shape[1]
        src.cost(1, 2)
        src.cost_many([[4, 0], [0, 3]])
        assert src._touched == {1 * k + 2, 4 * k + 0, 0 * k + 3}
        assert all(isinstance(key, int) for key in src._touched)

    def test_reset_calls_clears_batched_touches(self):
        src, _ = self._source()
        src.cost_many([[0, 0], [1, 1]])
        assert src.calls == 2
        src.reset_calls()
        assert src.calls == 0
        src.cost_many([[0, 0]])
        assert src.calls == 1

    def test_empty_batch(self):
        src, _ = self._source()
        out = src.cost_many([])
        assert out.shape == (0,)
        assert src.calls == 0

    def test_rejects_bad_shape(self):
        src, _ = self._source()
        with pytest.raises(ValueError):
            src.cost_many(np.ones((3, 3), dtype=np.int64))
        with pytest.raises(ValueError):
            src.cost_many([1, 2, 3])


class _ScalarOnlySource(CostSource):
    """A source that only implements the scalar protocol."""

    def __init__(self, matrix):
        self._matrix = matrix
        self.scalar_calls = 0

    @property
    def n_queries(self):
        return self._matrix.shape[0]

    @property
    def n_configs(self):
        return self._matrix.shape[1]

    def cost(self, query_idx, config_idx):
        self.scalar_calls += 1
        return float(self._matrix[query_idx, config_idx])

    @property
    def calls(self):
        return self.scalar_calls


class TestCostManyFallback:
    def test_default_falls_back_to_scalar(self):
        matrix = np.arange(6, dtype=np.float64).reshape(3, 2)
        src = _ScalarOnlySource(matrix)
        pairs = [[0, 0], [2, 1], [1, 0]]
        out = src.cost_many(pairs)
        np.testing.assert_array_equal(
            out, [matrix[q, c] for q, c in pairs]
        )
        assert src.scalar_calls == 3

    def test_fallback_empty_batch(self):
        src = _ScalarOnlySource(np.ones((2, 2)))
        assert src.cost_many([]).shape == (0,)
        assert src.scalar_calls == 0


# ----------------------------------------------------------------------
# OptimizerCostSource.cost_many: counters, clustering, pooling
# ----------------------------------------------------------------------
def _tpcd_instance(size, k, seed=0):
    schema = tpcd_schema(scale_factor=0.1)
    workload = tpcd_generator(schema=schema).generate(
        size, np.random.default_rng(seed)
    )
    pool = build_pool(workload.queries, WhatIfOptimizer(schema))
    configs = enumerate_configurations(pool, k, np.random.default_rng(seed))
    return schema, workload, configs


class TestOptimizerCostMany:
    def test_matches_scalar_loop_values_and_counters(self):
        schema, workload, configs = _tpcd_instance(30, 3)
        rng = np.random.default_rng(11)
        qs = rng.integers(0, workload.size, size=60)
        cs = rng.integers(0, len(configs), size=60)
        pairs = np.stack([qs, cs], axis=1)

        serial_opt = WhatIfOptimizer(schema)
        serial_src = OptimizerCostSource(workload, configs, serial_opt)
        serial_vals = np.array(
            [serial_src.cost(int(q), int(c)) for q, c in pairs]
        )

        batch_opt = WhatIfOptimizer(schema)
        batch_src = OptimizerCostSource(workload, configs, batch_opt)
        batch_vals = batch_src.cost_many(pairs)

        np.testing.assert_array_equal(batch_vals, serial_vals)
        # Distinct-call accounting, cache hits and fingerprint hits are
        # all order-invariant totals — the batch must land on exactly
        # the scalar loop's counters.
        assert batch_src.calls == serial_src.calls
        assert batch_opt.calls == serial_opt.calls
        assert batch_opt.cache_hits == serial_opt.cache_hits
        assert batch_opt.fingerprint_hits == serial_opt.fingerprint_hits

    def test_repeated_batch_is_all_cache_hits(self):
        schema, workload, configs = _tpcd_instance(12, 2)
        src = OptimizerCostSource(
            workload, configs, WhatIfOptimizer(schema)
        )
        pairs = [[q, c] for q in range(workload.size)
                 for c in range(len(configs))]
        first = src.cost_many(pairs)
        calls_after_first = src.calls
        second = src.cost_many(pairs)
        np.testing.assert_array_equal(first, second)
        assert src.calls == calls_after_first == len(pairs)

    def test_batch_order_clusters_templates(self):
        _, workload, configs = _tpcd_instance(40, 2)
        src = OptimizerCostSource(
            workload, configs, WhatIfOptimizer(tpcd_schema(0.1))
        )
        rng = np.random.default_rng(3)
        pairs = np.stack(
            [
                rng.permutation(workload.size),
                rng.integers(0, len(configs), size=workload.size),
            ],
            axis=1,
        )
        order = src._batch_order(pairs)
        tids = np.asarray(workload.template_ids)[pairs[order, 0]]
        assert (np.diff(tids) >= 0).all()
        # Within a template, query-major: all lookups of one statement
        # run back to back.
        qs = pairs[order, 0]
        for t in np.unique(tids):
            qt = qs[tids == t]
            assert (np.diff(qt) >= 0).all()

    def test_empty_batch(self):
        schema, workload, configs = _tpcd_instance(5, 2)
        src = OptimizerCostSource(
            workload, configs, WhatIfOptimizer(schema)
        )
        assert src.cost_many([]).shape == (0,)
        assert src.calls == 0

    def test_small_workload_fixture(self, optimizer, empty_config,
                                    indexed_config, point_query,
                                    join_query):
        wl = Workload([point_query, join_query])
        src = OptimizerCostSource(
            wl, [empty_config, indexed_config], optimizer
        )
        pairs = [[0, 0], [1, 0], [0, 1], [1, 1], [0, 0]]
        vals = src.cost_many(pairs)
        assert vals.shape == (5,)
        assert src.calls == 4  # duplicate (0, 0) is free
        np.testing.assert_array_equal(vals[0], vals[4])

    def test_pooled_identical_to_serial(self):
        schema, workload, configs = _tpcd_instance(20, 2)
        pairs = np.array(
            [[q, c] for q in range(workload.size)
             for c in range(len(configs))],
            dtype=np.int64,
        )
        assert len(pairs) >= OptimizerCostSource.POOL_MIN_BATCH

        serial_opt = WhatIfOptimizer(schema)
        serial_src = OptimizerCostSource(workload, configs, serial_opt)
        serial_vals = serial_src.cost_many(pairs)

        pooled_opt = WhatIfOptimizer(schema)
        pooled_src = OptimizerCostSource(
            workload, configs, pooled_opt, workers=2
        )
        assert resolve_cost_workers(2) == 2
        try:
            pooled_vals = pooled_src.cost_many(pairs)
        finally:
            pooled_src.close()

        np.testing.assert_array_equal(pooled_vals, serial_vals)
        assert pooled_src.calls == serial_src.calls == len(pairs)
        assert pooled_opt.calls == serial_opt.calls
        assert pooled_opt.cache_hits == serial_opt.cache_hits
        assert pooled_opt.fingerprint_hits == serial_opt.fingerprint_hits

    def test_pooled_small_batch_serves_serially(self):
        schema, workload, configs = _tpcd_instance(5, 2)
        src = OptimizerCostSource(
            workload, configs, WhatIfOptimizer(schema), workers=2
        )
        try:
            # 10 pairs < POOL_MIN_BATCH: must not spin up the pool.
            vals = src.cost_many(
                [[q, c] for q in range(5) for c in range(2)]
            )
        finally:
            src.close()
        assert vals.shape == (10,)
        assert src._pool is None
        assert src.calls == 10


# ----------------------------------------------------------------------
# mid-batch max_calls truncation
# ----------------------------------------------------------------------
def _clustered_matrix(n=400, t=16, k=5, seed=123):
    rng = np.random.default_rng(seed)
    template_ids = np.sort(rng.integers(0, t, size=n))
    base = rng.lognormal(3.0, 1.0, size=t)
    factor = 1.0 + 0.12 * rng.standard_normal((t, k))
    noise = rng.lognormal(0.0, 0.15, size=(n, k))
    matrix = base[template_ids][:, None] * factor[template_ids] * noise
    return matrix, template_ids


class TestBatchedBudgetTruncation:
    @pytest.mark.parametrize("stratify", ["progressive", "none"])
    def test_delta_batch_respects_budget(self, stratify):
        matrix, template_ids = _clustered_matrix()
        k = matrix.shape[1]
        max_calls = 600
        options = SelectorOptions(
            alpha=0.999,
            scheme="delta",
            stratify=stratify,
            n_min=8,
            consecutive=10**9,  # never terminate on alpha
            eliminate=False,
            max_calls=max_calls,
            reeval_every=2,
            batch_rounds=16,
        )
        result = ConfigurationSelector(
            MatrixCostSource(matrix), template_ids, options,
            rng=np.random.default_rng(5),
        ).run()
        assert result.terminated_by == "max_calls"
        # A delta round costs one call per active configuration; the
        # draw-ahead must truncate mid-batch rather than overshoot by
        # whole batches.
        assert result.optimizer_calls <= max_calls + k
        assert result.optimizer_calls >= max_calls - k

    def test_independent_batch_respects_budget(self):
        matrix, template_ids = _clustered_matrix()
        max_calls = 500
        options = SelectorOptions(
            alpha=0.999,
            scheme="independent",
            stratify="progressive",
            n_min=8,
            consecutive=10**9,
            eliminate=False,
            max_calls=max_calls,
            reeval_every=2,
            batch_rounds=16,
        )
        result = ConfigurationSelector(
            MatrixCostSource(matrix), template_ids, options,
            rng=np.random.default_rng(5),
        ).run()
        assert result.terminated_by == "max_calls"
        assert result.optimizer_calls <= max_calls + 1

    def test_budget_truncation_on_optimizer_source(self):
        schema, workload, configs = _tpcd_instance(60, 3)
        max_calls = 100
        options = SelectorOptions(
            alpha=0.999,
            scheme="delta",
            stratify="progressive",
            n_min=6,
            consecutive=10**9,
            eliminate=False,
            max_calls=max_calls,
            reeval_every=2,
            batch_rounds=8,
        )
        src = OptimizerCostSource(
            workload, configs, WhatIfOptimizer(schema)
        )
        result = ConfigurationSelector(
            src, workload.template_ids, options,
            rng=np.random.default_rng(1),
        ).run()
        assert result.terminated_by == "max_calls"
        assert result.optimizer_calls <= max_calls + len(configs)
        assert src.calls == result.optimizer_calls


# ----------------------------------------------------------------------
# SelectorOptions validation of the batching knobs
# ----------------------------------------------------------------------
class TestBatchingOptionValidation:
    def test_valid_combinations_accepted(self):
        SelectorOptions(batch_rounds=1)
        SelectorOptions(batch_rounds=64, batch_growth=1.0,
                        batch_call_tolerance=0.0)
        SelectorOptions(estimator="buffer")
        SelectorOptions(estimator="welford")

    @pytest.mark.parametrize("rounds", [0, -1])
    def test_rejects_nonpositive_batch_rounds(self, rounds):
        with pytest.raises(ValueError, match="batch_rounds"):
            SelectorOptions(batch_rounds=rounds)

    @pytest.mark.parametrize(
        "growth", [0.5, 0.999, float("nan")]
    )
    def test_rejects_bad_growth(self, growth):
        with pytest.raises(ValueError, match="batch_growth"):
            SelectorOptions(batch_growth=growth)

    @pytest.mark.parametrize(
        "tol", [-0.01, float("nan")]
    )
    def test_rejects_bad_tolerance(self, tol):
        with pytest.raises(ValueError, match="batch_call_tolerance"):
            SelectorOptions(batch_call_tolerance=tol)

    def test_rejects_unknown_estimator(self):
        with pytest.raises(ValueError, match="estimator"):
            SelectorOptions(estimator="bogus")

    def test_delta_state_rejects_unknown_estimator(self):
        with pytest.raises(ValueError, match="estimator"):
            DeltaState(
                2, 1, {0: np.arange(4)}, np.random.default_rng(0),
                estimator="bogus",
            )


# ----------------------------------------------------------------------
# incremental (Welford) vs exact (buffer) pairwise accumulators
# ----------------------------------------------------------------------
def _template_layout(n_templates=4, per_template=30):
    indices = {}
    sizes = {}
    start = 0
    for t in range(n_templates):
        indices[t] = np.arange(start, start + per_template)
        sizes[t] = per_template
        start += per_template
    return indices, sizes


def _fresh_pair(estimator, indices, seed=0):
    return DeltaState(
        3, len(indices), indices,
        np.random.default_rng(seed), estimator=estimator,
    )


def _ingest_rounds(states, rng, tids, rounds):
    """Feed identical draws into every state (bypassing the sampler)."""
    for r in range(rounds):
        tid = int(tids[r % len(tids)])
        values = rng.lognormal(2.0, 0.5, size=3)
        for state in states:
            state.ingest(r, tid, [0, 1, 2], list(values))


def _assert_pair_agreement(buffer_state, welford_state, strat):
    for l, j in [(0, 1), (1, 0), (0, 2), (2, 1)]:
        eb, vb = buffer_state.pair_estimate(l, j, strat)
        ew, vw = welford_state.pair_estimate(l, j, strat)
        np.testing.assert_allclose(ew, eb, rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(vw, vb, rtol=1e-9, atol=1e-9)
        mb = buffer_state.pair_stratum_moments(l, j, strat)
        mw = welford_state.pair_stratum_moments(l, j, strat)
        assert [m[0] for m in mw] == [m[0] for m in mb]
        np.testing.assert_allclose(
            [m[1] for m in mw], [m[1] for m in mb],
            rtol=1e-9, atol=1e-9,
        )
        np.testing.assert_allclose(
            [m[2] for m in mw], [m[2] for m in mb],
            rtol=1e-9, atol=1e-9,
        )


class TestWelfordBufferAgreement:
    def test_agreement_through_splits(self):
        indices, sizes = _template_layout()
        buffer_state = _fresh_pair("buffer", indices)
        welford_state = _fresh_pair("welford", indices)
        rng = np.random.default_rng(77)
        strat = Stratification.single(sizes)

        # Interleave ingestion with reads so the Welford accumulators
        # genuinely advance incrementally rather than in one sweep.
        _ingest_rounds([buffer_state, welford_state], rng,
                       tids=[0, 1, 2, 3], rounds=12)
        _assert_pair_agreement(buffer_state, welford_state, strat)

        _ingest_rounds([buffer_state, welford_state], rng,
                       tids=[1, 3], rounds=9)
        strat = strat.split(0, [0, 1], [2, 3])
        _assert_pair_agreement(buffer_state, welford_state, strat)

        _ingest_rounds([buffer_state, welford_state], rng,
                       tids=[0, 2, 2], rounds=15)
        strat = strat.split(1, [2], [3])
        _assert_pair_agreement(buffer_state, welford_state, strat)

    def test_agreement_after_warm_start(self):
        indices, sizes = _template_layout()
        donor = _fresh_pair("buffer", indices, seed=1)
        rng = np.random.default_rng(99)
        _ingest_rounds([donor], rng, tids=[0, 1, 2], rounds=18)
        carried = donor.export_samples()

        buffer_state = _fresh_pair("buffer", indices, seed=2)
        welford_state = _fresh_pair("welford", indices, seed=2)
        assert buffer_state.import_samples(carried) > 0
        assert welford_state.import_samples(carried) > 0

        strat = Stratification.single(sizes).split(0, [0, 2], [1, 3])
        _assert_pair_agreement(buffer_state, welford_state, strat)

        # Continue sampling after the warm start and re-check.
        _ingest_rounds([buffer_state, welford_state], rng,
                       tids=[1, 2, 3], rounds=12)
        _assert_pair_agreement(buffer_state, welford_state, strat)

    def test_total_estimates_identical(self):
        # estimate_total reads the shared MomentGrid, which is common
        # to both modes — it must be bitwise identical.
        indices, sizes = _template_layout()
        buffer_state = _fresh_pair("buffer", indices)
        welford_state = _fresh_pair("welford", indices)
        rng = np.random.default_rng(5)
        _ingest_rounds([buffer_state, welford_state], rng,
                       tids=[0, 1, 2, 3, 3], rounds=20)
        strat = Stratification.single(sizes)
        for c in range(3):
            assert (
                buffer_state.estimate_total(c, strat)
                == welford_state.estimate_total(c, strat)
            )
