"""Tests for the experiment harness: sources, setups, Monte Carlo."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import MatrixCostSource, OptimizerCostSource
from repro.experiments import (
    SchemeSpec,
    format_kv,
    format_series,
    format_table,
    multi_config_table,
    prcs_curve,
    select_fixed_budget,
)
from repro.experiments.cache import cached_matrix
from repro.experiments.monte_carlo import _fine_allocation, _is_correct


class TestMatrixCostSource:
    def test_shape_and_lookup(self):
        M = np.arange(12, dtype=float).reshape(4, 3)
        src = MatrixCostSource(M)
        assert src.n_queries == 4 and src.n_configs == 3
        assert src.cost(2, 1) == 7.0

    def test_distinct_call_counting(self):
        src = MatrixCostSource(np.ones((5, 2)))
        src.cost(0, 0)
        src.cost(0, 0)
        src.cost(1, 0)
        assert src.calls == 2
        src.reset_calls()
        assert src.calls == 0

    def test_true_best(self):
        M = np.array([[5.0, 1.0], [5.0, 1.0]])
        assert MatrixCostSource(M).true_best() == 1

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            MatrixCostSource(np.ones(5))


class TestOptimizerCostSource:
    def test_counts_optimizer_calls(self, optimizer, empty_config,
                                    indexed_config, point_query):
        from repro.workload import Workload

        wl = Workload([point_query])
        src = OptimizerCostSource(
            wl, [empty_config, indexed_config], optimizer
        )
        src.cost(0, 0)
        src.cost(0, 0)  # cache hit inside the optimizer
        assert src.calls == 1
        assert src.n_queries == 1 and src.n_configs == 2


class TestIsCorrect:
    def test_exact_minimum_counts(self):
        totals = np.array([2.0e7, 2.2e7])
        assert _is_correct(totals, 0, 0.0)
        assert not _is_correct(totals, 1, 0.0)

    def test_delta_tolerance(self):
        totals = np.array([100.0, 104.0])
        assert _is_correct(totals, 1, 5.0)
        assert not _is_correct(totals, 1, 3.0)


class TestFineAllocation:
    def test_proportional_when_budget_ample(self, rng):
        sizes = np.array([100, 300])
        alloc = _fine_allocation(sizes, 40, rng)
        assert alloc.sum() == 40
        assert alloc[1] > alloc[0]
        assert (alloc >= 1).all()

    def test_subset_when_budget_tiny(self, rng):
        sizes = np.array([10, 10, 10, 10, 10])
        alloc = _fine_allocation(sizes, 3, rng)
        assert alloc.sum() == 3
        assert (alloc <= 1).all()

    def test_never_exceeds_sizes(self, rng):
        sizes = np.array([2, 1000])
        alloc = _fine_allocation(sizes, 500, rng)
        assert alloc[0] <= 2
        assert alloc.sum() == 500


def _easy_matrix(rng, n=800, k=3):
    tids = rng.integers(0, 6, size=n)
    base = np.exp(rng.normal(3, 1.5, size=6))[tids]
    base = base * np.exp(rng.normal(0, 0.2, size=n))
    cols = [base * (1 + 0.1 * c) * np.exp(rng.normal(0, 0.05, size=n))
            for c in range(k)]
    return tids, np.column_stack(cols)


class TestFixedBudgetSchemes:
    @pytest.mark.parametrize("scheme", ["delta", "independent"])
    @pytest.mark.parametrize("stratify", ["none", "fine", "progressive"])
    def test_picks_reasonably(self, rng, scheme, stratify):
        tids, M = _easy_matrix(rng)
        spec = SchemeSpec(scheme, stratify)
        correct = 0
        for t in range(20):
            choice = select_fixed_budget(
                M, tids, spec, budget=400, rng=np.random.default_rng(t)
            )
            correct += choice == int(np.argmin(M.sum(axis=0)))
        # Unstratified Independent Sampling is the weakest scheme (the
        # paper's point); hold it to a looser bar.
        floor = 12 if (scheme, stratify) == ("independent", "none") else 15
        assert correct >= floor

    def test_labels(self):
        assert "Delta" in SchemeSpec("delta", "none").label
        assert "Progressive" in SchemeSpec(
            "independent", "progressive"
        ).label


class TestPrcsCurve:
    def test_monotone_ish_and_bounded(self, rng):
        tids, M = _easy_matrix(rng)
        curve = prcs_curve(
            M, tids, SchemeSpec("delta", "none"), [20, 400],
            trials=30, seed=5,
        )
        assert 0 <= curve[0] <= 1 and 0 <= curve[1] <= 1
        assert curve[1] >= curve[0] - 0.15  # bigger budgets don't hurt

    def test_deterministic_given_seed(self, rng):
        tids, M = _easy_matrix(rng)
        a = prcs_curve(M, tids, SchemeSpec("independent", "none"),
                       [100], trials=20, seed=9)
        b = prcs_curve(M, tids, SchemeSpec("independent", "none"),
                       [100], trials=20, seed=9)
        assert np.array_equal(a, b)


class TestMultiConfigTable:
    def test_rows_and_shape(self, rng):
        tids, M = _easy_matrix(rng, n=600, k=4)
        rows = multi_config_table(
            M, tids, alpha=0.9, trials=5, seed=2, consecutive=3
        )
        assert [r.method for r in rows] == [
            "Delta-Sampling", "No Strat.", "Equal Alloc."
        ]
        for row in rows:
            assert 0 <= row.true_prcs <= 1
            assert row.max_delta_pct >= 0
            assert row.mean_queries > 0
        # the primitive must beat or match the naive baseline
        assert rows[0].true_prcs >= rows[1].true_prcs - 0.21


class TestCache:
    def test_cached_matrix_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        calls = {"n": 0}

        def builder():
            calls["n"] += 1
            return np.arange(6, dtype=float).reshape(3, 2)

        a = cached_matrix("unit-test-key", builder)
        b = cached_matrix("unit-test-key", builder)
        assert calls["n"] == 1
        assert np.array_equal(a, b)

    def test_no_cache_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        calls = {"n": 0}

        def builder():
            calls["n"] += 1
            return np.ones((1, 1))

        cached_matrix("k", builder)
        cached_matrix("k", builder)
        assert calls["n"] == 2


class TestColdVsWarmReplay:
    def test_scaled_down_replay(self):
        """End-to-end replay: drift is detected in both modes, warm
        retunes carry samples and spend fewer optimizer calls, and
        both modes land on the configuration a from-scratch run over
        the post-drift tail picks.  Everything is seeded, so the
        savings assertion is deterministic."""
        from repro.experiments.replay import (
            cold_vs_warm_replay,
            format_replay_report,
        )

        result = cold_vs_warm_replay(
            size=500, seed=1, window=180, batch=40, cooldown=80,
            threshold=0.04,
        )
        warm_calls = result["warm_drift_retune_calls"]
        cold_calls = result["cold_drift_retune_calls"]
        assert warm_calls, "drift never triggered a retune"
        assert len(warm_calls) == len(cold_calls)
        assert any(c > 0 for c in result["carried_samples"])
        assert sum(warm_calls) < sum(cold_calls)
        assert result["savings_fraction"] > 0
        assert result["warm_total_calls"] < result["cold_total_calls"]
        assert result["warm_final_index"] == result["scratch_tail_index"]
        assert result["cold_final_index"] == result["scratch_tail_index"]
        report = format_replay_report(result)
        assert "call savings" in report
        assert "final configuration" in report

    def test_rejects_unknown_db(self):
        from repro.experiments.replay import cold_vs_warm_replay

        with pytest.raises(ValueError):
            cold_vs_warm_replay(db="oracle")


class TestReport:
    def test_format_table_aligned(self):
        out = format_table(
            ["method", "value"], [["a", 1], ["long-name", 22]],
            title="T",
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "method" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        out = format_series(
            "budget", [10, 20], {"delta": [0.5, 0.9]}, title="fig"
        )
        assert "0.900" in out

    def test_format_kv(self):
        out = format_kv({"alpha": 0.9, "k": 3}, title="params")
        assert "alpha" in out and "0.9" in out
