"""Tests for the workload container, store and generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.physical import Configuration
from repro.queries import ColumnRef, EqPredicate, Query, QueryType
from repro.workload import (
    FilterSlot,
    QueryTemplate,
    Workload,
    WorkloadGenerator,
    WorkloadStore,
    crm_schema,
    crm_templates,
    generate_crm_workload,
    generate_tpcd_workload,
    tpcd_generator,
    tpcd_schema,
    tpcd_templates,
)


def _point(i: int) -> Query:
    return Query(
        qtype=QueryType.SELECT, tables=("orders",),
        filters=(EqPredicate(ColumnRef("orders", "o_id"), i),),
    )


def _status(i: int) -> Query:
    return Query(
        qtype=QueryType.SELECT, tables=("orders",),
        filters=(EqPredicate(ColumnRef("orders", "o_status"), i),),
    )


class TestWorkload:
    def test_template_ids_assigned(self):
        wl = Workload([_point(1), _point(2), _status(0)])
        assert wl.size == 3
        assert wl.template_count == 2
        assert wl.template_ids[0] == wl.template_ids[1]
        assert wl.template_ids[0] != wl.template_ids[2]

    def test_indices_by_template(self):
        wl = Workload([_point(1), _status(0), _point(2)])
        groups = wl.indices_by_template()
        sizes = sorted(len(v) for v in groups.values())
        assert sizes == [1, 2]

    def test_template_sizes(self):
        wl = Workload([_point(i) for i in range(5)] + [_status(0)])
        assert sorted(wl.template_sizes().values()) == [1, 5]

    def test_subset_shares_registry(self):
        wl = Workload([_point(1), _status(0), _point(2)])
        sub = wl.subset([0, 2])
        assert sub.size == 2
        assert sub.registry is wl.registry
        assert sub.template_ids[0] == wl.template_ids[0]

    def test_template_names(self):
        wl = Workload(
            [_point(1), _status(0)], template_names=["lookup", "by_status"]
        )
        assert wl.registry.name_of(int(wl.template_ids[0])) == "lookup"

    def test_template_names_length_mismatch(self):
        with pytest.raises(ValueError):
            Workload([_point(1)], template_names=["a", "b"])

    def test_dml_fraction(self):
        update = Query(
            qtype=QueryType.UPDATE, tables=("orders",),
            set_columns=(ColumnRef("orders", "o_total"),),
        )
        wl = Workload([_point(1), update])
        assert wl.dml_fraction() == pytest.approx(0.5)

    def test_cost_vector_and_matrix(self, optimizer, empty_config,
                                    indexed_config):
        wl = Workload([_point(i) for i in range(4)])
        vec = wl.cost_vector(optimizer, empty_config)
        assert vec.shape == (4,)
        matrix = wl.cost_matrix(optimizer, [empty_config, indexed_config])
        assert matrix.shape == (4, 2)
        assert wl.total_cost(optimizer, empty_config) == pytest.approx(
            vec.sum()
        )
        # indexed config must win for point lookups
        assert matrix[:, 1].sum() < matrix[:, 0].sum()


class TestWorkloadStore:
    def test_round_trip(self, rng):
        wl = Workload([_point(i) for i in range(10)] + [_status(1)])
        with WorkloadStore() as store:
            store.load(wl)
            assert store.count() == 11
            back = store.read_all()
            assert [q for _i, _t, q in back] == wl.queries
            assert [t for _i, t, _q in back] == list(wl.template_ids)

    def test_sample_without_replacement(self, rng):
        wl = Workload([_point(i) for i in range(50)])
        with WorkloadStore() as store:
            store.load(wl)
            sample = store.sample(20, rng)
            ids = [i for i, _q in sample]
            assert len(set(ids)) == 20

    def test_sample_too_large(self, rng):
        wl = Workload([_point(1)])
        with WorkloadStore() as store:
            store.load(wl)
            with pytest.raises(ValueError):
                store.sample(5, rng)

    def test_stratified_sample(self, rng):
        wl = Workload([_point(i) for i in range(30)] +
                      [_status(i % 3) for i in range(10)])
        with WorkloadStore() as store:
            store.load(wl)
            counts = store.template_counts()
            assert sorted(counts.values()) == [10, 30]
            t_small = min(counts, key=counts.get)
            out = store.sample_stratified({t_small: 5}, rng)
            assert len(out[t_small]) == 5
            for _i, q in out[t_small]:
                assert q.template_key() == _status(0).template_key()

    def test_stratified_overdraw(self, rng):
        wl = Workload([_status(0)])
        with WorkloadStore() as store:
            store.load(wl)
            tid = int(wl.template_ids[0])
            with pytest.raises(ValueError):
                store.sample_stratified({tid: 2}, rng)

    def test_read_missing_id(self):
        with WorkloadStore() as store:
            store.load(Workload([_point(1)]))
            with pytest.raises(KeyError):
                store.read([0, 99])

    def test_append_load(self):
        with WorkloadStore() as store:
            store.load(Workload([_point(1)]))
            store.load(Workload([_point(2)]))
            assert store.count() == 2


class TestGenerator:
    def test_filter_slot_validation(self):
        ref = ColumnRef("orders", "o_id")
        with pytest.raises(ValueError):
            FilterSlot(ref, "like")
        with pytest.raises(ValueError):
            FilterSlot(ref, "range", min_frac=0.5, max_frac=0.1)
        with pytest.raises(ValueError):
            FilterSlot(ref, "in", in_min=0)

    def test_generator_respects_weights(self, small_schema, rng):
        t1 = QueryTemplate(
            name="a", qtype=QueryType.SELECT, tables=("orders",),
            slots=(FilterSlot(ColumnRef("orders", "o_id"), "eq"),),
        )
        t2 = QueryTemplate(
            name="b", qtype=QueryType.SELECT, tables=("customer",),
            slots=(FilterSlot(ColumnRef("customer", "c_id"), "eq"),),
        )
        gen = WorkloadGenerator(small_schema, [t1, t2], weights=[1.0, 0.0])
        wl = gen.generate(50, rng)
        assert wl.template_count == 1
        assert all(q.tables == ("orders",) for q in wl)

    def test_generator_weight_validation(self, small_schema):
        t1 = QueryTemplate(
            name="a", qtype=QueryType.SELECT, tables=("orders",),
        )
        with pytest.raises(ValueError):
            WorkloadGenerator(small_schema, [t1], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            WorkloadGenerator(small_schema, [], weights=None)

    def test_range_slot_within_domain(self, small_schema, rng):
        t = QueryTemplate(
            name="r", qtype=QueryType.SELECT, tables=("orders",),
            slots=(FilterSlot(ColumnRef("orders", "o_date"), "range"),),
        )
        gen = WorkloadGenerator(small_schema, [t])
        for q in gen.generate(50, rng):
            pred = q.filters[0]
            assert 0 <= pred.lo <= pred.hi <= 999

    def test_in_slot_unique_sorted(self, small_schema, rng):
        t = QueryTemplate(
            name="i", qtype=QueryType.SELECT, tables=("orders",),
            slots=(FilterSlot(ColumnRef("orders", "o_status"), "in",
                              in_min=2, in_max=4),),
        )
        gen = WorkloadGenerator(small_schema, [t])
        for q in gen.generate(30, rng):
            values = q.filters[0].values
            assert tuple(sorted(set(values))) == values

    def test_eq_values_follow_skew(self, small_schema, rng):
        t = QueryTemplate(
            name="e", qtype=QueryType.SELECT, tables=("customer",),
            slots=(FilterSlot(ColumnRef("customer", "c_region"), "eq"),),
        )
        gen = WorkloadGenerator(small_schema, [t])
        values = [q.filters[0].value for q in gen.generate(400, rng)]
        # value 0 (the head of a theta=1 Zipf over 5 values) dominates
        counts = np.bincount(values, minlength=5)
        assert counts[0] == counts.max()

    def test_deterministic_given_seed(self, small_schema):
        t = QueryTemplate(
            name="d", qtype=QueryType.SELECT, tables=("orders",),
            slots=(FilterSlot(ColumnRef("orders", "o_id"), "eq"),),
        )
        gen = WorkloadGenerator(small_schema, [t])
        a = gen.generate(20, np.random.default_rng(5))
        b = gen.generate(20, np.random.default_rng(5))
        assert a.queries == b.queries


class TestTpcd:
    def test_schema_shape(self):
        schema = tpcd_schema(0.1)
        assert len(schema) == 8
        assert schema.table("lineitem").row_count == 600_000
        assert len(schema.foreign_keys) == 9

    def test_schema_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            tpcd_schema(0)

    def test_templates_counts(self):
        assert len(tpcd_templates(include_dml=False)) == 17
        assert len(tpcd_templates(include_dml=True)) == 22

    def test_workload_properties(self):
        wl = generate_tpcd_workload(400, seed=3)
        assert wl.size == 400
        assert 15 <= wl.template_count <= 22
        assert 0 < wl.dml_fraction() < 0.2
        # named templates registered
        names = {wl.registry.name_of(int(t))
                 for t in np.unique(wl.template_ids)}
        assert "Q1" in names

    def test_workload_deterministic(self):
        a = generate_tpcd_workload(50, seed=9)
        b = generate_tpcd_workload(50, seed=9)
        assert a.queries == b.queries

    def test_costs_heavy_tailed(self):
        schema = tpcd_schema()
        wl = generate_tpcd_workload(300, seed=1, schema=schema)
        from repro.optimizer import WhatIfOptimizer

        opt = WhatIfOptimizer(schema)
        costs = wl.cost_vector(opt, Configuration(name="empty"))
        assert costs.max() / costs.min() > 100  # orders of magnitude


class TestCrm:
    def test_schema_has_500_plus_tables(self):
        schema = crm_schema()
        assert len(schema) > 500

    def test_templates_exceed_120(self):
        schema = crm_schema()
        assert len(crm_templates(schema)) > 120

    def test_workload_has_dml_mix(self):
        wl = generate_crm_workload(600, seed=2)
        kinds = {q.qtype for q in wl}
        assert kinds >= {QueryType.SELECT, QueryType.UPDATE,
                         QueryType.INSERT}
        assert wl.dml_fraction() > 0.1

    def test_template_frequencies_skewed(self):
        wl = generate_crm_workload(2000, seed=2)
        sizes = np.array(sorted(wl.template_sizes().values()))
        # Zipf frequencies: the most common template dominates the rare
        assert sizes[-1] > 20 * sizes[0]
