"""Fault-tolerance layer: policy, injection, retries, and parity.

The contract under test (PR 5 tentpole): with fault injection disabled
the resilience wrapper is a bit-exact pass-through, and with transient
faults that recover within the retry budget the *selection* is
bit-identical to a no-fault run — same decisions, same floats, same
distinct optimizer-call count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.selector import ConfigurationSelector, SelectorOptions
from repro.core.sources import CostSource, MatrixCostSource
from repro.faults import (
    BatchCostError,
    CostSourceExhausted,
    CostTimeoutError,
    FakeClock,
    FaultPolicy,
    InjectedFaultCostSource,
    PermanentCostError,
    ResilientCostSource,
    TransientCostError,
)

from tests.test_batched_equivalence import synthetic_matrix


# ----------------------------------------------------------------------
# FaultPolicy
# ----------------------------------------------------------------------
class TestFaultPolicy:
    def test_defaults_are_valid(self):
        FaultPolicy()

    @pytest.mark.parametrize(
        "kw",
        [
            {"retries": -1},
            {"backoff_base": -0.1},
            {"backoff_factor": 0.5},
            {"backoff_max": -1.0},
            {"jitter": 1.0},
            {"jitter": -0.1},
            {"timeout": 0.0},
            {"failure_budget": 0},
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            FaultPolicy(**kw)

    def test_backoff_grows_and_caps(self):
        policy = FaultPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=0.35,
            jitter=0.0,
        )
        rng = np.random.default_rng(0)
        delays = [policy.backoff(i, rng) for i in range(4)]
        assert delays == pytest.approx([0.1, 0.2, 0.35, 0.35])

    def test_jitter_bounds_and_determinism(self):
        policy = FaultPolicy(
            backoff_base=1.0, backoff_factor=1.0, backoff_max=10.0,
            jitter=0.25,
        )
        a = [policy.backoff(0, np.random.default_rng(7)) for _ in range(3)]
        b = [policy.backoff(0, np.random.default_rng(7)) for _ in range(3)]
        assert a == b  # same rng state -> same jitter
        for d in a:
            assert 0.75 <= d <= 1.25


# ----------------------------------------------------------------------
# scripted flaky sources for unit-testing the wrapper
# ----------------------------------------------------------------------
class ScriptedSource(CostSource):
    """Fails the first ``fail_first`` scalar calls per pair."""

    def __init__(self, matrix, fail_first=0, error=TransientCostError,
                 slow_first=0, slow_seconds=0.0, clock=None):
        self._m = np.asarray(matrix, dtype=np.float64)
        self.fail_first = fail_first
        self.error = error
        self.slow_first = slow_first
        self.slow_seconds = slow_seconds
        self.clock = clock
        self.attempts = {}
        self.scalar_calls = 0

    @property
    def n_queries(self):
        return self._m.shape[0]

    @property
    def n_configs(self):
        return self._m.shape[1]

    @property
    def calls(self):
        return self.scalar_calls

    def cost(self, q, c):
        self.scalar_calls += 1
        key = (q, c)
        n = self.attempts.get(key, 0) + 1
        self.attempts[key] = n
        if n <= self.fail_first:
            raise self.error(f"scripted failure {n} at {key}")
        if n <= self.fail_first + self.slow_first:
            self.clock.advance(self.slow_seconds)
        return float(self._m[q, c])


class TestResilientScalar:
    MATRIX = np.arange(12, dtype=np.float64).reshape(4, 3) + 1.0

    def test_transient_failures_retried(self):
        clock = FakeClock()
        source = ScriptedSource(self.MATRIX, fail_first=2)
        wrapper = ResilientCostSource(
            source, FaultPolicy(retries=3, backoff_base=0.1, jitter=0.0),
            sleep=clock.sleep, clock=clock,
        )
        assert wrapper.cost(1, 2) == self.MATRIX[1, 2]
        stats = wrapper.fault_stats()
        assert stats["transient_failures"] == 2
        assert stats["retries_total"] == 2
        # 0.1 + 0.2 of exponential backoff, slept on the fake clock.
        assert clock.now == pytest.approx(0.3)
        assert stats["backoff_seconds"] == pytest.approx(0.3)

    def test_retry_budget_exhausts(self):
        source = ScriptedSource(self.MATRIX, fail_first=99)
        wrapper = ResilientCostSource(
            source, FaultPolicy(retries=2, backoff_base=0.0),
            sleep=lambda s: None,
        )
        with pytest.raises(CostSourceExhausted) as excinfo:
            wrapper.cost(0, 1)
        err = excinfo.value
        assert err.query_idx == 0 and err.config_idx == 1
        assert err.attempts == 3  # 1 initial + 2 retries
        assert isinstance(err.last_error, TransientCostError)

    def test_permanent_failure_exhausts_immediately(self):
        source = ScriptedSource(
            self.MATRIX, fail_first=99, error=PermanentCostError
        )
        wrapper = ResilientCostSource(
            source, FaultPolicy(retries=5), sleep=lambda s: None,
        )
        with pytest.raises(CostSourceExhausted):
            wrapper.cost(2, 0)
        assert source.scalar_calls == 1  # no pointless retries
        assert wrapper.fault_stats()["permanent_failures"] == 1

    def test_timeout_discards_and_retries(self):
        clock = FakeClock()
        source = ScriptedSource(
            self.MATRIX, slow_first=1, slow_seconds=9.0, clock=clock
        )
        wrapper = ResilientCostSource(
            source,
            FaultPolicy(retries=2, timeout=1.0, backoff_base=0.0),
            sleep=clock.sleep, clock=clock,
        )
        assert wrapper.cost(3, 1) == self.MATRIX[3, 1]
        stats = wrapper.fault_stats()
        assert stats["timeouts"] == 1
        assert source.scalar_calls == 2  # slow value discarded, redone

    def test_failure_budget_spans_pairs(self):
        source = ScriptedSource(self.MATRIX, fail_first=1)
        wrapper = ResilientCostSource(
            source,
            FaultPolicy(retries=3, backoff_base=0.0, failure_budget=3),
            sleep=lambda s: None,
        )
        wrapper.cost(0, 0)  # 1 failed attempt
        wrapper.cost(0, 1)  # 2 failed attempts
        with pytest.raises(CostSourceExhausted):
            wrapper.cost(0, 2)  # 3rd failed attempt spends the budget

    def test_no_fault_passthrough(self):
        source = MatrixCostSource(self.MATRIX)
        wrapper = ResilientCostSource(source, FaultPolicy())
        pairs = [(q, c) for q in range(4) for c in range(3)]
        np.testing.assert_array_equal(
            wrapper.cost_many(pairs), source.cost_many(pairs)
        )
        assert wrapper.calls == source.calls
        assert all(
            v == 0 for k, v in wrapper.fault_stats().items()
            if k != "backoff_seconds"
        )


# ----------------------------------------------------------------------
# injection
# ----------------------------------------------------------------------
class TestInjectedFaults:
    MATRIX = np.arange(20, dtype=np.float64).reshape(5, 4) + 1.0

    def test_fault_set_is_order_independent(self):
        a = InjectedFaultCostSource(
            MatrixCostSource(self.MATRIX), rate=0.5, seed=3
        )
        b = InjectedFaultCostSource(
            MatrixCostSource(self.MATRIX), rate=0.5, seed=3
        )
        pairs = [(q, c) for q in range(5) for c in range(4)]
        forward = [a.is_faulty(q, c) for q, c in pairs]
        backward = [b.is_faulty(q, c) for q, c in reversed(pairs)]
        assert forward == list(reversed(backward))
        assert any(forward) and not all(forward)

    def test_validation(self):
        inner = MatrixCostSource(self.MATRIX)
        with pytest.raises(ValueError):
            InjectedFaultCostSource(inner, rate=1.5)
        with pytest.raises(ValueError):
            InjectedFaultCostSource(inner, rate=0.1, mode="weird")
        with pytest.raises(ValueError):
            InjectedFaultCostSource(inner, rate=0.1, fail_attempts=0)
        with pytest.raises(ValueError):
            InjectedFaultCostSource(inner, rate=0.1, mode="slow")

    def test_transient_fault_never_reaches_inner(self):
        inner = MatrixCostSource(self.MATRIX)
        injected = InjectedFaultCostSource(inner, rate=1.0, seed=0)
        with pytest.raises(TransientCostError):
            injected.cost(0, 0)
        assert inner.calls == 0  # the failed attempt cost nothing
        assert injected.cost(0, 0) == self.MATRIX[0, 0]
        assert inner.calls == 1

    def test_batch_error_carries_partial_values(self):
        inner = MatrixCostSource(self.MATRIX)
        injected = InjectedFaultCostSource(inner, rate=0.4, seed=11)
        pairs = np.array(
            [(q, c) for q in range(5) for c in range(4)], dtype=np.int64
        )
        with pytest.raises(BatchCostError) as excinfo:
            injected.cost_many(pairs)
        err = excinfo.value
        assert err.ok.sum() + len(err.failures) == len(pairs)
        for i in np.flatnonzero(err.ok):
            assert err.values[i] == self.MATRIX[pairs[i, 0], pairs[i, 1]]

    def test_zero_rate_is_transparent(self):
        inner = MatrixCostSource(self.MATRIX)
        injected = InjectedFaultCostSource(inner, rate=0.0, seed=5)
        pairs = [(q, c) for q in range(5) for c in range(4)]
        np.testing.assert_array_equal(
            injected.cost_many(pairs),
            self.MATRIX[[p[0] for p in pairs], [p[1] for p in pairs]],
        )
        assert injected.injected == 0


# ----------------------------------------------------------------------
# full-selector fault matrix: parity with the no-fault run
# ----------------------------------------------------------------------
def _snapshot(result):
    return {
        "best_index": int(result.best_index),
        "prcs": float(result.prcs).hex(),
        "optimizer_calls": int(result.optimizer_calls),
        "queries_sampled": int(result.queries_sampled),
        "terminated_by": result.terminated_by,
        "estimates": [float(x).hex() for x in result.estimates],
        "history": [[int(c), float(p).hex()] for c, p in result.history],
    }


OPTIONS = SelectorOptions(
    alpha=0.9, scheme="delta", stratify="progressive", n_min=8,
    consecutive=3, eliminate=True, reeval_every=2,
)


def _select(source, template_ids, seed=0, options=OPTIONS):
    return ConfigurationSelector(
        source, template_ids, options, rng=np.random.default_rng(seed)
    ).run()


class TestSelectorUnderFaults:
    @pytest.fixture(scope="class")
    def baseline(self):
        matrix, template_ids = synthetic_matrix()
        source = MatrixCostSource(matrix)
        result = _select(source, template_ids)
        return matrix, template_ids, _snapshot(result), source.calls

    @pytest.mark.parametrize("rate", [0.02, 0.1, 0.3])
    @pytest.mark.parametrize("fail_attempts", [1, 2])
    def test_transient_faults_bit_identical(
        self, baseline, rate, fail_attempts
    ):
        matrix, template_ids, expected, expected_calls = baseline
        clock = FakeClock()
        inner = MatrixCostSource(matrix)
        injected = InjectedFaultCostSource(
            inner, rate=rate, mode="transient", seed=99,
            fail_attempts=fail_attempts,
        )
        wrapper = ResilientCostSource(
            injected, FaultPolicy(retries=3, backoff_base=0.01),
            sleep=clock.sleep, clock=clock,
        )
        result = _select(wrapper, template_ids)
        assert _snapshot(result) == expected
        # Distinct-pair accounting: recovered retries are free.
        assert inner.calls == expected_calls
        assert injected.injected > 0

    def test_slow_faults_bit_identical(self, baseline):
        matrix, template_ids, expected, expected_calls = baseline
        clock = FakeClock()
        inner = MatrixCostSource(matrix)
        injected = InjectedFaultCostSource(
            inner, rate=0.1, mode="slow", seed=99, slow_seconds=5.0,
            clock=clock,
        )
        wrapper = ResilientCostSource(
            injected,
            FaultPolicy(retries=3, timeout=1.0, backoff_base=0.0),
            sleep=clock.sleep, clock=clock,
        )
        result = _select(wrapper, template_ids)
        assert _snapshot(result) == expected
        assert inner.calls == expected_calls

    def test_insufficient_retries_exhaust(self, baseline):
        matrix, template_ids, _expected, _calls = baseline
        inner = MatrixCostSource(matrix)
        injected = InjectedFaultCostSource(
            inner, rate=0.2, mode="transient", seed=99, fail_attempts=4,
        )
        wrapper = ResilientCostSource(
            injected, FaultPolicy(retries=1, backoff_base=0.0),
            sleep=lambda s: None,
        )
        with pytest.raises(CostSourceExhausted):
            _select(wrapper, template_ids)

    def test_permanent_faults_exhaust_with_context(self, baseline):
        matrix, template_ids, _expected, _calls = baseline
        inner = MatrixCostSource(matrix)
        injected = InjectedFaultCostSource(
            inner, rate=0.05, mode="permanent", seed=99
        )
        wrapper = ResilientCostSource(
            injected, FaultPolicy(retries=3, backoff_base=0.0),
            sleep=lambda s: None,
        )
        with pytest.raises(CostSourceExhausted) as excinfo:
            _select(wrapper, template_ids)
        err = excinfo.value
        assert err.query_idx is not None
        assert injected.is_faulty(err.query_idx, err.config_idx)

    def test_wrapper_without_injection_bit_identical(self, baseline):
        matrix, template_ids, expected, expected_calls = baseline
        inner = MatrixCostSource(matrix)
        wrapper = ResilientCostSource(inner, FaultPolicy())
        result = _select(wrapper, template_ids)
        assert _snapshot(result) == expected
        assert inner.calls == expected_calls
