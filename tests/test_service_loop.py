"""End-to-end tests of the tuning session and the service loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SelectorOptions
from repro.optimizer import WhatIfOptimizer
from repro.physical import Configuration, Index
from repro.queries import ColumnRef, QueryType
from repro.service import (
    EventLog,
    ServiceConfig,
    TuningSession,
    read_events,
    run_service,
)
from repro.workload import WorkloadGenerator
from repro.workload.drift import change_point_workload, drifting_workload
from repro.workload.generator import FilterSlot, QueryTemplate


def _templates():
    lookup = QueryTemplate(
        name="lookup", qtype=QueryType.SELECT, tables=("orders",),
        slots=(FilterSlot(ColumnRef("orders", "o_id"), "eq"),),
        select_columns=(ColumnRef("orders", "o_total"),),
    )
    datescan = QueryTemplate(
        name="datescan", qtype=QueryType.SELECT, tables=("orders",),
        slots=(FilterSlot(ColumnRef("orders", "o_date"), "range",
                          min_frac=0.001, max_frac=0.01),),
        select_columns=(ColumnRef("orders", "o_total"),),
    )
    custscan = QueryTemplate(
        name="custscan", qtype=QueryType.SELECT, tables=("orders",),
        slots=(FilterSlot(ColumnRef("orders", "o_cust"), "eq"),),
        select_columns=(ColumnRef("orders", "o_total"),),
    )
    statusscan = QueryTemplate(
        name="statusscan", qtype=QueryType.SELECT, tables=("orders",),
        slots=(FilterSlot(ColumnRef("orders", "o_status"), "eq"),),
        select_columns=(ColumnRef("orders", "o_total"),),
    )
    return lookup, datescan, custscan, statusscan


@pytest.fixture
def generator(small_schema):
    lookup, datescan, _, _ = _templates()
    return WorkloadGenerator(small_schema, [lookup, datescan])


@pytest.fixture
def generator4(small_schema):
    """Two drifting templates plus two whose share stays constant —
    the partial-drift regime warm starts are designed for."""
    return WorkloadGenerator(small_schema, list(_templates()))


@pytest.fixture
def configs():
    """Two candidates with a decisive winner per template mix."""
    return [
        Configuration([Index("orders", ("o_id",), ("o_total",))],
                      name="for-lookups"),
        Configuration([Index("orders", ("o_date",), ("o_total",))],
                      name="for-datescans"),
    ]


OPTIONS = SelectorOptions(alpha=0.9, n_min=5, consecutive=3)


class NearTieOptimizer:
    """Counts calls; serves noisy near-tie costs for every config.

    Deterministic per (query, configuration) within a run, so repeated
    evaluations do not add information — ``Pr(CS)`` stays near chance
    and a budgeted selection is forced to terminate on ``max_calls``.
    """

    def __init__(self, seed: int = 0, spread: float = 0.05) -> None:
        self.calls = 0
        self.spread = spread
        self._rng = np.random.default_rng(seed)
        self._cache = {}

    def cost(self, query, config) -> float:
        self.calls += 1
        key = (id(query), id(config))
        if key not in self._cache:
            self._cache[key] = float(
                100.0 * (1.0 + self._rng.normal(0.0, self.spread))
            )
        return self._cache[key]


class TestTuningSession:
    def test_first_retune_deploys_best(self, small_schema, generator,
                                       configs, rng):
        wl = drifting_workload(generator, 120, [1, 0.2], [1, 0.2], rng)
        session = TuningSession(
            configs, WhatIfOptimizer(small_schema), options=OPTIONS,
            seed=1,
        )
        outcome = session.retune(wl, warm=True)
        assert not outcome.warm          # nothing to carry yet
        assert outcome.accepted
        assert session.current_index == outcome.chosen_index
        assert session.retune_count == 1
        assert session.total_calls == outcome.optimizer_calls

    def test_warm_retune_same_choice_fewer_calls(
        self, small_schema, generator, configs, rng
    ):
        """Matched pair: two sessions, identical per-retune seeds, same
        snapshots — the warm one must pick the same configuration while
        spending strictly fewer optimizer calls."""
        w1 = drifting_workload(generator, 120, [1, 0.2], [1, 0.2], rng)
        w2 = w1.subset(range(w1.size))  # same window, second retune

        def second_retune(warm: bool):
            session = TuningSession(
                configs, WhatIfOptimizer(small_schema),
                options=OPTIONS, seed=7,
            )
            session.retune(w1, warm=False)
            return session.retune(w2, warm=warm)

        warm = second_retune(True)
        cold = second_retune(False)
        assert warm.warm and not cold.warm
        assert warm.carried_samples > 0
        assert warm.chosen_index == cold.chosen_index
        assert warm.optimizer_calls < cold.optimizer_calls

    def test_invalidated_templates_are_resampled(
        self, small_schema, generator, configs, rng
    ):
        wl = drifting_workload(generator, 120, [1, 1], [1, 1], rng)
        session = TuningSession(
            configs, WhatIfOptimizer(small_schema), options=OPTIONS,
            seed=3,
        )
        session.retune(wl, warm=False)
        full_state = session.state
        tid = int(wl.template_ids[0])
        outcome = session.retune(
            wl, warm=True, invalidate_templates={tid}
        )
        assert outcome.invalidated_templates == {tid}
        assert tid not in full_state.drop_templates({tid}).template_ids()
        # Something was still carried for the surviving template.
        assert outcome.carried_samples > 0

    def test_budget_exhausted_keeps_current_config(self, generator, rng):
        """Graceful degradation: a budgeted retune that cannot reach
        alpha keeps the deployed configuration and flags low
        confidence."""
        wl = drifting_workload(generator, 100, [1, 1], [1, 1], rng)
        configs = [Configuration(name="a"), Configuration(name="b"),
                   Configuration(name="c")]
        session = TuningSession(
            configs, NearTieOptimizer(),
            options=SelectorOptions(alpha=0.95, n_min=3, consecutive=50),
            seed=5,
        )
        first = session.retune(wl, warm=False)
        # The first selection has nothing to fall back on: whatever it
        # found is deployed even if under-sampled.
        assert session.current_index == first.chosen_index

        session.retune_budget = 10
        deployed = session.current_index
        outcome = session.retune(wl, warm=False)
        assert outcome.low_confidence
        assert not outcome.accepted
        assert outcome.selection.terminated_by == "max_calls"
        assert outcome.chosen_index == deployed
        assert session.current_index == deployed

    def test_state_restore_roundtrip(self, small_schema, generator,
                                     configs, rng):
        from repro.core import SelectorState

        wl = drifting_workload(generator, 100, [1, 0.5], [1, 0.5], rng)
        session = TuningSession(
            configs, WhatIfOptimizer(small_schema), options=OPTIONS,
            seed=2,
        )
        session.retune(wl, warm=False)
        payload = session.state.to_dict()

        fresh = TuningSession(
            configs, WhatIfOptimizer(small_schema), options=OPTIONS,
            seed=2,
        )
        fresh.restore_state(SelectorState.from_dict(payload))
        outcome = fresh.retune(wl, warm=True)
        assert outcome.warm
        assert outcome.carried_samples > 0

    def test_validation(self, configs):
        with pytest.raises(ValueError):
            TuningSession([], NearTieOptimizer())
        with pytest.raises(ValueError):
            TuningSession(configs, NearTieOptimizer(), retune_budget=0)


class TestRunService:
    def trace(self, generator, n=240, change_at=120, seed=0):
        return change_point_workload(
            generator, n, [1.0, 0.05], [0.05, 1.0], change_at,
            np.random.default_rng(seed),
        )

    def service_config(self, **kw):
        base = dict(
            window_size=60, batch_size=20, reservoir_size=32,
            drift_threshold=0.05, cooldown=40, min_window_fill=0.5,
        )
        base.update(kw)
        return ServiceConfig(**base)

    def test_detects_planted_drift_and_retunes(
        self, small_schema, generator, configs, tmp_path
    ):
        trace = self.trace(generator)
        path = tmp_path / "events.jsonl"
        with EventLog(path) as events:
            report = run_service(
                trace, configs, WhatIfOptimizer(small_schema),
                config=self.service_config(), options=OPTIONS,
                events=events, rng=np.random.default_rng(0),
            )
        assert report.statements == trace.size
        assert report.retune_count >= 2          # initial + drift
        assert len(report.drift_retunes) >= 1
        triggered = [
            e for e in read_events(path)
            if e["kind"] == "drift_check" and e["triggered"]
        ]
        assert triggered
        assert all(e["position"] > 120 for e in triggered)

        # The service must end on the configuration a from-scratch
        # selection over the post-drift tail picks.
        from repro.core import ConfigurationSelector
        from repro.core.sources import OptimizerCostSource

        tail = trace.subset(range(120, trace.size))
        scratch = ConfigurationSelector(
            OptimizerCostSource(
                tail, configs, WhatIfOptimizer(small_schema)
            ),
            tail.template_ids, OPTIONS,
            rng=np.random.default_rng(1),
        ).run()
        assert report.final_index == scratch.best_index

    def test_event_log_is_valid_jsonl(
        self, small_schema, generator, configs, tmp_path
    ):
        trace = self.trace(generator)
        path = tmp_path / "events.jsonl"
        with EventLog(path) as events:
            run_service(
                trace, configs, WhatIfOptimizer(small_schema),
                config=self.service_config(), options=OPTIONS,
                events=events, rng=np.random.default_rng(0),
            )
        events = read_events(path)
        kinds = {e["kind"] for e in events}
        assert {"service_start", "ingest", "drift_check",
                "retune_start", "retune_end", "service_end"} <= kinds
        assert events[0]["kind"] == "service_start"
        assert events[-1]["kind"] == "service_end"

    def test_warm_saves_calls_over_cold(
        self, small_schema, generator4, configs
    ):
        """Same seed, same trace, warm on vs. off: drift retunes must
        be cheaper warm, and both runs must agree on the final
        configuration.

        The mix shift here is frequency-only — template *shares* move
        enough to trigger a retune, but no template's share moves past
        the invalidation tolerance, so every carried cost sample stays
        valid (a template's per-query cost distribution does not
        depend on how often it runs).  This is the regime warm starts
        are built for; wholesale mix replacement is covered by the
        replay experiment."""
        trace = change_point_workload(
            generator4, 240,
            [1.0, 0.6, 0.4, 0.4], [0.6, 1.0, 0.4, 0.4],
            120, np.random.default_rng(0),
        )

        def run(warm: bool):
            return run_service(
                trace, configs, WhatIfOptimizer(small_schema),
                config=self.service_config(
                    warm=warm, drift_threshold=0.01,
                    invalidate_rel_tol=0.6,
                ),
                options=OPTIONS,
                rng=np.random.default_rng(42),
            )

        warm_report = run(True)
        cold_report = run(False)
        warm_drift = warm_report.drift_retunes
        cold_drift = cold_report.drift_retunes
        assert warm_drift and cold_drift
        assert len(warm_drift) == len(cold_drift)
        assert all(r.carried_samples > 0 for r in warm_drift)
        assert sum(r.optimizer_calls for r in warm_drift) < sum(
            r.optimizer_calls for r in cold_drift
        )
        assert warm_report.final_index == cold_report.final_index

    def test_budget_degradation_emits_low_confidence(self, generator):
        trace = self.trace(generator)
        configs = [Configuration(name="a"), Configuration(name="b")]
        events = EventLog()
        report = run_service(
            trace, configs, NearTieOptimizer(),
            config=self.service_config(retune_budget=10),
            options=SelectorOptions(alpha=0.95, n_min=3, consecutive=50),
            events=events, rng=np.random.default_rng(0),
        )
        assert report.low_confidence_count >= 1
        flagged = [
            e for e in events.of_kind("retune_end")
            if e["low_confidence"]
        ]
        assert flagged
        # Drift retunes that degraded kept whatever was deployed at
        # that moment (accepted retunes in between may move it).
        deployed = report.retunes[0].chosen_index
        for outcome in report.drift_retunes:
            if outcome.low_confidence:
                assert not outcome.accepted
                assert outcome.chosen_index == deployed
            else:
                deployed = outcome.chosen_index

    def test_short_trace_still_tunes_once(self, small_schema, generator,
                                          configs):
        trace = drifting_workload(
            generator, 30, [1, 0.2], [1, 0.2],
            np.random.default_rng(3),
        )
        report = run_service(
            trace, configs, WhatIfOptimizer(small_schema),
            config=self.service_config(window_size=100),
            options=OPTIONS, rng=np.random.default_rng(0),
        )
        assert report.retune_count == 1
        assert report.final_index is not None

    def test_empty_trace_rejected(self, small_schema, configs):
        from repro.workload.workload import Workload

        with pytest.raises(ValueError):
            run_service(
                Workload([]), configs, WhatIfOptimizer(small_schema),
            )
