"""Tests for the greedy physical design tuner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.physical import Configuration, Index
from repro.queries import ColumnRef, EqPredicate, Query, QueryType
from repro.tuner import GreedyTuner, evaluate_configuration
from repro.workload import Workload


def _lookups(n: int):
    return [
        Query(
            qtype=QueryType.SELECT, tables=("orders",),
            filters=(EqPredicate(ColumnRef("orders", "o_id"), i),),
            select_columns=(ColumnRef("orders", "o_total"),),
        )
        for i in range(n)
    ]


def _region_scans(n: int):
    return [
        Query(
            qtype=QueryType.SELECT, tables=("customer",),
            filters=(EqPredicate(ColumnRef("customer", "c_region"),
                                 i % 5),),
            select_columns=(ColumnRef("customer", "c_name"),),
        )
        for i in range(n)
    ]


class TestGreedyTuner:
    def test_tuning_improves_cost(self, optimizer):
        queries = _lookups(20)
        tuner = GreedyTuner(optimizer, max_structures=3)
        result = tuner.tune(queries)
        assert result.training_cost < result.initial_cost
        assert result.improvement > 0.5  # point lookups love indexes
        assert result.chosen

    def test_respects_max_structures(self, optimizer):
        queries = _lookups(10) + _region_scans(10)
        tuner = GreedyTuner(optimizer, max_structures=1)
        result = tuner.tune(queries)
        assert len(result.chosen) <= 1

    def test_respects_storage_budget(self, optimizer):
        queries = _lookups(10)
        tuner = GreedyTuner(optimizer, storage_budget_bytes=1)
        result = tuner.tune(queries)
        assert result.chosen == []
        assert result.improvement == 0.0

    def test_weighted_queries_shift_choice(self, optimizer):
        # One lookup template, one scan template; weight the scans
        # overwhelmingly and the first structure must serve them.
        queries = _lookups(1) + _region_scans(1)
        weights = np.array([1.0, 10_000.0])
        tuner = GreedyTuner(optimizer, max_structures=1)
        result = tuner.tune(queries, weights=weights)
        assert result.chosen
        assert result.chosen[0].table == "customer"

    def test_empty_workload_rejected(self, optimizer):
        with pytest.raises(ValueError):
            GreedyTuner(optimizer).tune([])

    def test_weights_length_mismatch(self, optimizer):
        with pytest.raises(ValueError):
            GreedyTuner(optimizer).tune(
                _lookups(2), weights=np.array([1.0])
            )

    def test_initial_configuration_respected(self, optimizer):
        queries = _lookups(10)
        existing = Index("orders", ("o_id",), ("o_total",))
        tuner = GreedyTuner(optimizer, max_structures=2)
        result = tuner.tune(
            queries, initial=Configuration([existing])
        )
        # The lookup need is already served; no big further gain.
        assert result.improvement < 0.2

    def test_counts_optimizer_calls(self, optimizer):
        result = GreedyTuner(optimizer, max_structures=1).tune(_lookups(5))
        assert result.optimizer_calls > 0


class TestEvaluation:
    def test_full_workload_report(self, optimizer):
        wl = Workload(_lookups(15))
        tuned = GreedyTuner(optimizer, max_structures=2).tune(wl.queries)
        report = evaluate_configuration(wl, optimizer,
                                        tuned.configuration)
        assert report.tuned_cost < report.baseline_cost
        assert 0 < report.improvement <= 1

    def test_zero_baseline_handled(self, optimizer):
        report = evaluate_configuration.__wrapped__ if hasattr(
            evaluate_configuration, "__wrapped__"
        ) else None
        from repro.tuner.evaluation import QualityReport

        assert QualityReport(0.0, 0.0).improvement == 0.0

    def test_tuning_sample_generalizes(self, optimizer, rng):
        """Tuning a uniform sample recovers full-workload improvement."""
        wl = Workload(_lookups(30) + _region_scans(30))
        sample_idx = rng.choice(wl.size, size=12, replace=False)
        sample = [wl.queries[i] for i in sample_idx]
        tuned = GreedyTuner(optimizer, max_structures=4).tune(sample)
        report = evaluate_configuration(wl, optimizer,
                                        tuned.configuration)
        assert report.improvement > 0.3
