"""Cross-module integration tests: the full pipeline end to end."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ConfigurationSelector,
    MatrixCostSource,
    OptimizerCostSource,
    SelectorOptions,
    WhatIfOptimizer,
    base_configuration,
    build_pool,
    enumerate_configurations,
)
from repro.bounds import CostBounder
from repro.experiments import find_pair, tpcd_setup
from repro.workload import (
    WorkloadStore,
    generate_tpcd_workload,
    tpcd_schema,
)


@pytest.fixture(scope="module")
def tpcd_small():
    """A small TPC-D pipeline shared across integration tests."""
    schema = tpcd_schema(scale_factor=0.05)
    workload = generate_tpcd_workload(600, seed=17, schema=schema)
    optimizer = WhatIfOptimizer(schema)
    pool = build_pool(workload.queries[:150], optimizer)
    configs = enumerate_configurations(
        pool, 5, np.random.default_rng(17)
    )
    return schema, workload, optimizer, configs


class TestEndToEnd:
    def test_selector_agrees_with_ground_truth(self, tpcd_small):
        schema, workload, optimizer, configs = tpcd_small
        totals = [workload.total_cost(optimizer, c) for c in configs]
        truly_best = int(np.argmin(totals))

        source = OptimizerCostSource(workload, configs, optimizer)
        result = ConfigurationSelector(
            source, workload.template_ids,
            SelectorOptions(alpha=0.9, consecutive=5),
            rng=np.random.default_rng(3),
        ).run()
        assert result.best_index == truly_best

    def test_calls_saved_vs_exhaustive(self, tpcd_small):
        schema, workload, optimizer, configs = tpcd_small
        source = OptimizerCostSource(workload, configs, optimizer)
        result = ConfigurationSelector(
            source, workload.template_ids,
            SelectorOptions(alpha=0.9, consecutive=5),
            rng=np.random.default_rng(4),
        ).run()
        exhaustive = workload.size * len(configs)
        assert result.optimizer_calls < 0.6 * exhaustive

    def test_matrix_and_live_sources_agree(self, tpcd_small):
        schema, workload, optimizer, configs = tpcd_small
        matrix = workload.cost_matrix(optimizer, configs)
        live = OptimizerCostSource(workload, configs, optimizer)
        mat = MatrixCostSource(matrix)
        for q in (0, 5, 100):
            for c in range(len(configs)):
                assert live.cost(q, c) == pytest.approx(mat.cost(q, c))

    def test_store_round_trip_preserves_costs(self, tpcd_small, rng):
        schema, workload, optimizer, configs = tpcd_small
        with WorkloadStore() as store:
            store.load(workload)
            sample = store.sample(25, rng)
        for idx, query in sample:
            assert optimizer.cost(query, configs[0]) == pytest.approx(
                optimizer.cost(workload[idx], configs[0])
            )

    def test_bounds_hold_across_enumeration(self, tpcd_small):
        schema, workload, optimizer, configs = tpcd_small
        base = base_configuration(configs)
        union = configs[0]
        for cfg in configs[1:]:
            union = union.union(cfg)
        bounder = CostBounder(optimizer, workload, base, union)
        intervals = bounder.universal_intervals()
        for cfg in configs:
            costs = workload.cost_vector(optimizer, cfg.union(base))
            assert intervals.contains(costs, atol=1e-6)


class TestExperimentSetups:
    def test_tpcd_setup_shape(self):
        setup = tpcd_setup(n_queries=300, k=4, seed=3,
                           candidate_queries=100)
        assert setup.matrix.shape == (300, 4)
        assert setup.workload.size == 300
        assert len(setup.configurations) == 4
        assert setup.true_best == int(np.argmin(setup.matrix.sum(axis=0)))

    def test_setup_cached(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        import time

        t0 = time.perf_counter()
        a = tpcd_setup(n_queries=200, k=2, seed=4, candidate_queries=50)
        first = time.perf_counter() - t0
        # Best of three cached reads: the fingerprinted build is fast
        # enough that a single scheduler hiccup could flip the compare.
        second = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            b = tpcd_setup(n_queries=200, k=2, seed=4,
                           candidate_queries=50)
            second = min(second, time.perf_counter() - t0)
            assert np.array_equal(a.matrix, b.matrix)
        assert second < first

    def test_find_pair_orders_worse_first(self):
        setup = tpcd_setup(n_queries=300, k=6, seed=3,
                           candidate_queries=100)
        totals = setup.true_totals
        spreads = sorted(
            (max(totals[i], totals[j]) - min(totals[i], totals[j]))
            / max(totals[i], totals[j])
            for i in range(6) for j in range(i + 1, 6)
        )
        target = spreads[len(spreads) // 2]
        worse, better = find_pair(setup, target, tolerance=0.9)
        assert totals[worse] > totals[better]

    def test_find_pair_unsatisfiable(self):
        setup = tpcd_setup(n_queries=300, k=2, seed=3,
                           candidate_queries=100)
        with pytest.raises(LookupError):
            find_pair(setup, 0.5, tolerance=0.0)


class TestDeterminism:
    def test_full_pipeline_reproducible(self):
        """Same seeds -> bit-identical selection outcome."""
        outcomes = []
        for _ in range(2):
            setup = tpcd_setup(n_queries=300, k=4, seed=3,
                               candidate_queries=100)
            source = MatrixCostSource(setup.matrix)
            result = ConfigurationSelector(
                source, setup.workload.template_ids,
                SelectorOptions(alpha=0.9, consecutive=5),
                rng=np.random.default_rng(99),
            ).run()
            outcomes.append(
                (result.best_index, result.optimizer_calls,
                 tuple(result.estimates))
            )
        assert outcomes[0] == outcomes[1]
