"""Tests for the knockout-tournament search strategy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    MatrixCostSource,
    SelectorOptions,
    knockout_tournament,
)


def _field(rng, k=8, n=2500, step=0.04):
    tids = rng.integers(0, 6, n)
    base = np.exp(rng.normal(3, 1.5, 6))[tids]
    base = base * np.exp(rng.normal(0, 0.3, n))
    cols = [
        base * (1 + step * c) * np.exp(rng.normal(0, 0.08, n))
        for c in range(k)
    ]
    return tids, np.column_stack(cols)


class TestKnockoutTournament:
    def test_finds_best(self, rng):
        tids, matrix = _field(rng)
        source = MatrixCostSource(matrix)
        result = knockout_tournament(
            source, tids, alpha=0.9, rng=np.random.default_rng(1)
        )
        assert result.best_index == source.true_best()

    def test_guarantee_bounded(self, rng):
        tids, matrix = _field(rng)
        result = knockout_tournament(
            MatrixCostSource(matrix), tids, alpha=0.9,
            rng=np.random.default_rng(2),
        )
        assert 0.0 <= result.guarantee <= 1.0

    def test_round_structure(self, rng):
        tids, matrix = _field(rng, k=8)
        result = knockout_tournament(
            MatrixCostSource(matrix), tids, alpha=0.9,
            rng=np.random.default_rng(3),
        )
        assert result.round_count == 3  # 8 -> 4 -> 2 -> 1
        assert [len(r) for r in result.rounds] == [4, 2, 1]
        # winners flow through the bracket
        for games in result.rounds:
            for left, right, winner in games:
                assert winner in (left, right)

    def test_odd_field_byes(self, rng):
        tids, matrix = _field(rng, k=5)
        source = MatrixCostSource(matrix)
        result = knockout_tournament(
            source, tids, alpha=0.9, rng=np.random.default_rng(4)
        )
        assert result.best_index == source.true_best()

    def test_single_config_trivial(self, rng):
        tids, matrix = _field(rng, k=1)
        result = knockout_tournament(
            MatrixCostSource(matrix), tids, rng=rng
        )
        assert result.best_index == 0
        assert result.guarantee == 1.0
        assert result.optimizer_calls == 0

    def test_two_configs_single_round(self, rng):
        tids, matrix = _field(rng, k=2)
        result = knockout_tournament(
            MatrixCostSource(matrix), tids, alpha=0.9,
            rng=np.random.default_rng(5),
        )
        assert result.round_count == 1
        assert result.guarantee > 0.85

    def test_respects_base_options(self, rng):
        tids, matrix = _field(rng, k=4)
        result = knockout_tournament(
            MatrixCostSource(matrix), tids, alpha=0.9,
            rng=np.random.default_rng(6),
            options=SelectorOptions(stratify="none", consecutive=3),
        )
        assert result.best_index is not None

    def test_monte_carlo_meets_guarantee(self):
        """The end-to-end guarantee must hold empirically."""
        correct = 0
        trials = 30
        alphas = []
        for trial in range(trials):
            rng = np.random.default_rng(1000 + trial)
            tids, matrix = _field(rng, k=6, step=0.05)
            source = MatrixCostSource(matrix)
            result = knockout_tournament(
                source, tids, alpha=0.85,
                rng=np.random.default_rng(trial),
                options=SelectorOptions(consecutive=3),
            )
            alphas.append(result.guarantee)
            correct += result.best_index == source.true_best()
        frequency = correct / trials
        assert frequency >= 0.85 - 0.15  # MC slack at 30 trials
