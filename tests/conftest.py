"""Shared fixtures: a small schema, optimizer and workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog import Column, ColumnType, ForeignKey, Schema, Table
from repro.optimizer import WhatIfOptimizer
from repro.physical import Configuration, Index, MaterializedView
from repro.queries import (
    Aggregate,
    ColumnRef,
    EqPredicate,
    JoinPredicate,
    Query,
    QueryType,
    RangePredicate,
)


@pytest.fixture
def small_schema() -> Schema:
    """orders (100K rows) -> customer (5K rows), with skewed attributes."""
    schema = Schema("small")
    orders = schema.add_table(Table("orders", 100_000))
    orders.add_column(Column("o_id", distinct_count=100_000))
    orders.add_column(
        Column("o_cust", distinct_count=5_000, zipf_theta=1.0)
    )
    orders.add_column(
        Column("o_status", ColumnType.STRING, distinct_count=5,
               zipf_theta=1.0)
    )
    orders.add_column(
        Column("o_total", ColumnType.FLOAT, distinct_count=10_000)
    )
    orders.add_column(Column("o_date", ColumnType.DATE,
                             distinct_count=1_000))
    customer = schema.add_table(Table("customer", 5_000))
    customer.add_column(Column("c_id", distinct_count=5_000))
    customer.add_column(
        Column("c_region", distinct_count=5, zipf_theta=1.0)
    )
    customer.add_column(
        Column("c_name", ColumnType.STRING, distinct_count=5_000)
    )
    schema.add_foreign_key(
        ForeignKey("orders", "o_cust", "customer", "c_id")
    )
    return schema


@pytest.fixture
def optimizer(small_schema) -> WhatIfOptimizer:
    return WhatIfOptimizer(small_schema)


@pytest.fixture
def join_query() -> Query:
    """A two-table join with a selective filter."""
    return Query(
        qtype=QueryType.SELECT,
        tables=("orders", "customer"),
        join_predicates=(
            JoinPredicate(
                ColumnRef("orders", "o_cust"), ColumnRef("customer", "c_id")
            ),
        ),
        filters=(EqPredicate(ColumnRef("customer", "c_region"), 2),),
        select_columns=(ColumnRef("orders", "o_total"),),
    )


@pytest.fixture
def point_query() -> Query:
    """A selective single-table lookup."""
    return Query(
        qtype=QueryType.SELECT,
        tables=("orders",),
        filters=(EqPredicate(ColumnRef("orders", "o_id"), 42),),
        select_columns=(ColumnRef("orders", "o_total"),),
    )


@pytest.fixture
def scan_query() -> Query:
    """A broad range scan with aggregation."""
    return Query(
        qtype=QueryType.SELECT,
        tables=("orders",),
        filters=(RangePredicate(ColumnRef("orders", "o_date"), 0, 800),),
        group_by=(ColumnRef("orders", "o_status"),),
        aggregates=(Aggregate("SUM", ColumnRef("orders", "o_total")),),
    )


@pytest.fixture
def update_query() -> Query:
    return Query(
        qtype=QueryType.UPDATE,
        tables=("orders",),
        filters=(EqPredicate(ColumnRef("orders", "o_cust"), 7),),
        set_columns=(ColumnRef("orders", "o_total"),),
    )


@pytest.fixture
def empty_config() -> Configuration:
    return Configuration(name="empty")


@pytest.fixture
def indexed_config() -> Configuration:
    return Configuration(
        [
            Index("orders", ("o_cust",), ("o_total",)),
            Index("orders", ("o_id",), ("o_total",)),
            Index("customer", ("c_region",), ("c_id",)),
        ],
        name="indexed",
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
