"""Tests for physical design structures, configurations and candidates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.physical import (
    CandidatePool,
    Configuration,
    Index,
    MaterializedView,
    base_configuration,
    build_pool,
    enumerate_configurations,
)
from repro.queries import ColumnRef, JoinPredicate


JP = JoinPredicate(
    ColumnRef("orders", "o_cust"), ColumnRef("customer", "c_id")
)


class TestIndex:
    def test_name_deterministic(self):
        ix = Index("orders", ("o_cust",), ("o_total",))
        assert ix.name == "ix_orders_o_cust__inc_o_total"

    def test_requires_keys(self):
        with pytest.raises(ValueError):
            Index("orders", ())

    def test_rejects_key_include_overlap(self):
        with pytest.raises(ValueError):
            Index("orders", ("a",), ("a",))

    def test_covers(self):
        ix = Index("orders", ("a", "b"), ("c",))
        assert ix.covers(frozenset({"a", "c"}))
        assert not ix.covers(frozenset({"a", "z"}))

    def test_storage_scales_with_width(self, small_schema):
        narrow = Index("orders", ("o_id",))
        wide = Index("orders", ("o_id",), ("o_status", "o_total"))
        assert wide.storage_bytes(small_schema) > narrow.storage_bytes(
            small_schema
        )

    def test_leaf_pages_positive_for_empty_table(self, small_schema):
        from repro.catalog import Column, Table

        small_schema.add_table(Table("empty_t", 0)).add_column(Column("x"))
        assert Index("empty_t", ("x",)).leaf_pages(small_schema) == 1

    def test_ordering_and_hash(self):
        a = Index("orders", ("o_id",))
        b = Index("orders", ("o_id",))
        assert a == b and hash(a) == hash(b)
        assert sorted([Index("b", ("x",)), Index("a", ("x",))])[0].table \
            == "a"


class TestMaterializedView:
    def test_requires_join_or_group(self):
        with pytest.raises(ValueError):
            MaterializedView(("orders",), ())

    def test_rejects_stray_join_table(self):
        with pytest.raises(ValueError):
            MaterializedView(("orders", "lineitem"), (JP,))

    def test_rejects_stray_group_column(self):
        with pytest.raises(ValueError):
            MaterializedView(
                ("orders", "customer"), (JP,),
                group_by=(ColumnRef("nation", "n_name"),),
            )

    def test_name_and_hash_stable(self):
        v1 = MaterializedView(("orders", "customer"), (JP,))
        v2 = MaterializedView(("orders", "customer"), (JP,))
        assert v1 == v2 and hash(v1) == hash(v2)
        assert v1.name.startswith("mv_orders_customer")

    def test_join_edge_keys_order_independent(self):
        flipped = JoinPredicate(
            ColumnRef("customer", "c_id"), ColumnRef("orders", "o_cust")
        )
        v1 = MaterializedView(("orders", "customer"), (JP,))
        v2 = MaterializedView(("orders", "customer"), (flipped,))
        assert v1.join_edge_keys() == v2.join_edge_keys()


class TestConfiguration:
    def test_equality_order_independent(self):
        a = Index("orders", ("o_id",))
        b = Index("orders", ("o_cust",))
        assert Configuration([a, b]) == Configuration([b, a])
        assert hash(Configuration([a, b])) == hash(Configuration([b, a]))

    def test_indexes_on(self):
        cfg = Configuration(
            [Index("orders", ("o_id",)), Index("customer", ("c_id",))]
        )
        assert len(cfg.indexes_on("orders")) == 1
        assert cfg.indexes_on("nothing") == []

    def test_union_intersection(self):
        a = Index("orders", ("o_id",))
        b = Index("orders", ("o_cust",))
        c1 = Configuration([a])
        c2 = Configuration([a, b])
        assert c1.union(c2).indexes == {a, b}
        assert c1.intersection(c2).indexes == {a}

    def test_overlap_fraction(self):
        a = Index("orders", ("o_id",))
        b = Index("orders", ("o_cust",))
        assert Configuration([a]).overlap_fraction(
            Configuration([a])
        ) == pytest.approx(1.0)
        assert Configuration([a]).overlap_fraction(
            Configuration([b])
        ) == pytest.approx(0.0)
        assert Configuration([a, b]).overlap_fraction(
            Configuration([a])
        ) == pytest.approx(0.5)
        assert Configuration().overlap_fraction(
            Configuration()
        ) == pytest.approx(1.0)

    def test_contains_and_iter(self):
        a = Index("orders", ("o_id",))
        v = MaterializedView(("orders", "customer"), (JP,))
        cfg = Configuration([a], [v])
        assert a in cfg and v in cfg
        assert cfg.structure_count == 2
        assert len(list(cfg)) == 2

    def test_storage_bytes(self, small_schema):
        cfg = Configuration([Index("orders", ("o_id",))])
        assert cfg.storage_bytes(small_schema) > 0

    def test_base_configuration(self):
        a = Index("orders", ("o_id",))
        b = Index("orders", ("o_cust",))
        base = base_configuration(
            [Configuration([a, b]), Configuration([a])]
        )
        assert base.indexes == {a}
        assert base_configuration([]).structure_count == 0


class TestCandidates:
    def test_pool_from_workload(self, optimizer, join_query, point_query):
        pool = build_pool([join_query, point_query], optimizer)
        assert pool.size > 0
        # suggestions exist for both tables of the join query
        tables = {ix.table for ix in pool.indexes}
        assert {"orders", "customer"} <= tables

    def test_pool_weights_accumulate(self, optimizer, point_query):
        pool = build_pool([point_query, point_query], optimizer)
        assert max(pool.index_weights.values()) >= 2

    def test_enumerate_deterministic(self, optimizer, join_query,
                                     point_query, scan_query):
        pool = build_pool(
            [join_query, point_query, scan_query], optimizer
        )
        a = enumerate_configurations(
            pool, 5, np.random.default_rng(7), min_indexes=1,
            max_indexes=4,
        )
        b = enumerate_configurations(
            pool, 5, np.random.default_rng(7), min_indexes=1,
            max_indexes=4,
        )
        assert a == b
        assert len({cfg for cfg in a}) == 5

    def test_enumerate_index_only(self, optimizer, join_query,
                                  point_query, scan_query):
        pool = build_pool(
            [join_query, point_query, scan_query], optimizer
        )
        configs = enumerate_configurations(
            pool, 4, np.random.default_rng(1), index_only=True,
            min_indexes=1, max_indexes=4,
        )
        assert all(not cfg.views for cfg in configs)

    def test_enumerate_with_base(self, optimizer, join_query, point_query,
                                 scan_query):
        pool = build_pool(
            [join_query, point_query, scan_query], optimizer
        )
        shared = Index("orders", ("o_date",))
        configs = enumerate_configurations(
            pool, 3, np.random.default_rng(2),
            base=Configuration([shared]), min_indexes=1, max_indexes=3,
        )
        assert all(shared in cfg for cfg in configs)

    def test_enumerate_rejects_bad_k(self, optimizer, point_query):
        pool = build_pool([point_query], optimizer)
        with pytest.raises(ValueError):
            enumerate_configurations(pool, 0, np.random.default_rng(0))

    def test_enumerate_exhausted_pool(self, optimizer, point_query):
        pool = build_pool([point_query], optimizer)
        with pytest.raises(RuntimeError):
            enumerate_configurations(
                pool, 500, np.random.default_rng(0), min_indexes=1,
                max_indexes=1,
            )
