"""Tests for the next-sample selection policies (§5.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import pick_delta_stratum, pick_independent, \
    variance_reduction


class TestVarianceReduction:
    def test_positive_for_sampled_stratum(self):
        assert variance_reduction(100.0, 4.0, 10) > 0

    def test_zero_when_variance_zero(self):
        assert variance_reduction(100.0, 0.0, 10) == 0.0

    def test_zero_when_exhausted(self):
        assert variance_reduction(100.0, 4.0, 100) == 0.0

    def test_infinite_for_unsampled(self):
        assert variance_reduction(100.0, 4.0, 0) == float("inf")

    def test_decreasing_in_n(self):
        r_small = variance_reduction(1000.0, 4.0, 5)
        r_large = variance_reduction(1000.0, 4.0, 50)
        assert r_small > r_large

    def test_matches_closed_form(self):
        size, s2, n = 100.0, 9.0, 10
        current = size * size * s2 / n * (1 - n / size)
        nxt = size * size * s2 / (n + 1) * (1 - (n + 1) / size)
        assert variance_reduction(size, s2, n) == pytest.approx(
            current - nxt
        )


class TestPickIndependent:
    def test_prefers_high_variance_stratum(self):
        sizes = np.array([100, 100])
        pick = pick_independent(
            sizes,
            stratum_vars=[np.array([1.0, 100.0])],
            stratum_counts=[np.array([10, 10])],
            exhausted=[np.array([False, False])],
        )
        assert pick == (0, 1)

    def test_prefers_starved_configuration(self):
        sizes = np.array([100])
        pick = pick_independent(
            sizes,
            stratum_vars=[np.array([4.0]), np.array([4.0])],
            stratum_counts=[np.array([50]), np.array([5])],
            exhausted=[np.array([False]), np.array([False])],
        )
        assert pick == (1, 0)

    def test_skips_exhausted(self):
        sizes = np.array([100, 100])
        pick = pick_independent(
            sizes,
            stratum_vars=[np.array([100.0, 1.0])],
            stratum_counts=[np.array([100, 10])],
            exhausted=[np.array([True, False])],
        )
        assert pick == (0, 1)

    def test_none_when_all_exhausted(self):
        pick = pick_independent(
            np.array([10]),
            stratum_vars=[np.array([1.0])],
            stratum_counts=[np.array([10])],
            exhausted=[np.array([True])],
        )
        assert pick is None

    def test_overheads_divide_scores(self):
        sizes = np.array([100, 100])
        # Equal variances, but stratum 1 is 100x more expensive to
        # evaluate: pick stratum 0.
        pick = pick_independent(
            sizes,
            stratum_vars=[np.array([10.0, 10.0])],
            stratum_counts=[np.array([10, 10])],
            exhausted=[np.array([False, False])],
            overheads=[np.array([1.0, 100.0])],
        )
        assert pick == (0, 0)


class TestPickDeltaStratum:
    def test_sums_over_pairs(self):
        sizes = np.array([100, 100])
        # Pair A favours stratum 0, pair B strongly favours stratum 1.
        pick = pick_delta_stratum(
            sizes,
            pair_stratum_vars=[
                np.array([10.0, 1.0]),
                np.array([1.0, 500.0]),
            ],
            stratum_counts=np.array([10, 10]),
            exhausted=np.array([False, False]),
        )
        assert pick == 1

    def test_skips_exhausted(self):
        pick = pick_delta_stratum(
            np.array([100, 100]),
            pair_stratum_vars=[np.array([100.0, 1.0])],
            stratum_counts=np.array([100, 10]),
            exhausted=np.array([True, False]),
        )
        assert pick == 1

    def test_none_when_exhausted(self):
        pick = pick_delta_stratum(
            np.array([10]),
            pair_stratum_vars=[np.array([1.0])],
            stratum_counts=np.array([10]),
            exhausted=np.array([True]),
        )
        assert pick is None

    def test_overheads(self):
        pick = pick_delta_stratum(
            np.array([100, 100]),
            pair_stratum_vars=[np.array([10.0, 10.0])],
            stratum_counts=np.array([10, 10]),
            exhausted=np.array([False, False]),
            overheads=np.array([100.0, 1.0]),
        )
        assert pick == 1
