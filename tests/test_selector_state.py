"""Tests for SelectorState export/import and warm-started selection."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import (
    ConfigurationSelector,
    MatrixCostSource,
    SelectorOptions,
    SelectorState,
)

from tests.test_core_selector import make_population


def run_once(matrix, template_ids, scheme, seed, warm_state=None,
             **opt_kw):
    source = MatrixCostSource(matrix)
    options = SelectorOptions(alpha=0.9, scheme=scheme, **opt_kw)
    selector = ConfigurationSelector(
        source, template_ids, options,
        rng=np.random.default_rng(seed), warm_state=warm_state,
    )
    return selector, selector.run()


class TestStateExport:
    @pytest.mark.parametrize("scheme", ["delta", "independent"])
    def test_roundtrips_through_json(self, rng, scheme):
        template_ids, matrix = make_population(rng, n=600)
        selector, result = run_once(matrix, template_ids, scheme, 5)
        state = selector.export_state()
        assert state.scheme == scheme
        assert state.n_configs == matrix.shape[1]
        assert state.sample_count() > 0
        payload = json.loads(json.dumps(state.to_dict()))
        restored = SelectorState.from_dict(payload)
        assert restored.scheme == state.scheme
        assert restored.n_configs == state.n_configs
        assert restored.sample_count() == state.sample_count()
        assert restored.template_ids() == state.template_ids()

    def test_export_before_run_raises(self, rng):
        template_ids, matrix = make_population(rng, n=400)
        selector = ConfigurationSelector(
            MatrixCostSource(matrix), template_ids,
            SelectorOptions(alpha=0.9), rng=rng,
        )
        with pytest.raises(RuntimeError):
            selector.export_state()

    def test_drop_templates(self, rng):
        template_ids, matrix = make_population(rng, n=600)
        selector, _ = run_once(matrix, template_ids, "delta", 5)
        state = selector.export_state()
        victim = state.template_ids()[0]
        smaller = state.drop_templates([victim])
        assert victim not in smaller.template_ids()
        assert smaller.sample_count() < state.sample_count()
        # The original is untouched.
        assert victim in state.template_ids()


class TestWarmStart:
    @pytest.mark.parametrize("scheme", ["delta", "independent"])
    def test_warm_run_same_choice_fewer_calls(self, rng, scheme):
        """Re-running over the same population with the previous run's
        state carried forward must agree on the winner while spending
        strictly fewer fresh optimizer calls.  Gaps are wide enough
        that the winner is unambiguous — near-tie behaviour is covered
        by the session-level matched-pair tests."""
        template_ids, matrix = make_population(
            rng, n=800, rel_gaps=(0.0, 0.25, 0.5)
        )
        cold_selector, cold = run_once(matrix, template_ids, scheme, 9)
        state = cold_selector.export_state()
        warm_selector, warm = run_once(
            matrix, template_ids, scheme, 11, warm_state=state
        )
        assert warm_selector.carried_samples > 0
        assert warm.best_index == cold.best_index
        assert warm.optimizer_calls < cold.optimizer_calls

    def test_carried_counts_clamp_to_population(self, rng):
        """Warm state from a big window imported into a smaller one
        must not claim more samples than the new population holds."""
        template_ids, matrix = make_population(rng, n=900)
        cold_selector, _ = run_once(matrix, template_ids, "delta", 9)
        state = cold_selector.export_state()
        # Shrink the population: keep the first 120 queries.
        small_ids = template_ids[:120]
        small_matrix = matrix[:120]
        selector = ConfigurationSelector(
            MatrixCostSource(small_matrix), small_ids,
            SelectorOptions(alpha=0.9, scheme="delta"),
            rng=np.random.default_rng(3), warm_state=state,
        )
        result = selector.run()
        sizes = {
            int(t): int(c)
            for t, c in zip(*np.unique(small_ids, return_counts=True))
        }
        assert result.queries_sampled <= sum(sizes.values())

    def test_scheme_mismatch_rejected(self, rng):
        template_ids, matrix = make_population(rng, n=400)
        selector, _ = run_once(matrix, template_ids, "delta", 5)
        state = selector.export_state()
        with pytest.raises(ValueError):
            ConfigurationSelector(
                MatrixCostSource(matrix), template_ids,
                SelectorOptions(alpha=0.9, scheme="independent"),
                rng=rng, warm_state=state,
            )

    def test_config_count_mismatch_rejected(self, rng):
        template_ids, matrix = make_population(rng, n=400)
        selector, _ = run_once(matrix, template_ids, "delta", 5)
        state = selector.export_state()
        with pytest.raises(ValueError):
            ConfigurationSelector(
                MatrixCostSource(matrix[:, :2]), template_ids,
                SelectorOptions(alpha=0.9, scheme="delta"),
                rng=rng, warm_state=state,
            )
