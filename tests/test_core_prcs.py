"""Tests for Pr(CS) computation, Bonferroni and target variances."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.stats import norm

from repro.core import (
    bonferroni,
    pair_target_variance,
    pairwise_prcs,
    per_pair_alpha,
)


class TestPairwisePrcs:
    def test_zero_gap_zero_delta_is_half(self):
        assert pairwise_prcs(0.0, 1.0, 0.0) == pytest.approx(0.5)

    def test_positive_gap_above_half(self):
        assert pairwise_prcs(1.0, 1.0, 0.0) > 0.5

    def test_grows_with_gap(self):
        assert pairwise_prcs(2.0, 1.0) > pairwise_prcs(1.0, 1.0)

    def test_grows_with_delta(self):
        assert pairwise_prcs(1.0, 1.0, delta=1.0) > pairwise_prcs(
            1.0, 1.0, delta=0.0
        )

    def test_shrinking_variance_sharpens(self):
        assert pairwise_prcs(1.0, 0.01) > pairwise_prcs(1.0, 100.0)

    def test_zero_variance_exact(self):
        assert pairwise_prcs(1.0, 0.0) == 1.0
        assert pairwise_prcs(-1.0, 0.0) == 0.0
        assert pairwise_prcs(0.0, 0.0) == 0.5

    def test_infinite_variance_no_confidence(self):
        assert pairwise_prcs(5.0, float("inf")) == 0.0

    def test_matches_normal_cdf(self):
        assert pairwise_prcs(3.0, 4.0, 1.0) == pytest.approx(
            norm.cdf((3.0 + 1.0) / 2.0)
        )

    @given(
        gap=st.floats(-100, 100),
        var=st.floats(1e-6, 1e6),
        delta=st.floats(0, 50),
    )
    @settings(max_examples=100, deadline=None)
    def test_always_probability(self, gap, var, delta):
        p = pairwise_prcs(gap, var, delta)
        assert 0.0 <= p <= 1.0


class TestBonferroni:
    def test_empty_is_certain(self):
        assert bonferroni([]) == 1.0

    def test_single_passthrough(self):
        assert bonferroni([0.9]) == pytest.approx(0.9)

    def test_sum_rule(self):
        assert bonferroni([0.95, 0.98]) == pytest.approx(1 - 0.05 - 0.02)

    def test_clamped_at_zero(self):
        assert bonferroni([0.1, 0.1, 0.1]) == 0.0

    def test_lower_bounds_product(self):
        """Bonferroni is conservative vs the independence product."""
        ps = [0.95, 0.9, 0.99]
        prod = math.prod(ps)
        assert bonferroni(ps) <= prod


class TestPerPairAlpha:
    def test_two_configs_unchanged(self):
        assert per_pair_alpha(0.9, 2) == pytest.approx(0.9)

    def test_grows_with_k(self):
        assert per_pair_alpha(0.9, 10) > per_pair_alpha(0.9, 3)

    def test_combines_back(self):
        alpha, k = 0.9, 6
        pair = per_pair_alpha(alpha, k)
        assert bonferroni([pair] * (k - 1)) == pytest.approx(alpha)

    def test_validation(self):
        with pytest.raises(ValueError):
            per_pair_alpha(1.5, 3)


class TestPairTargetVariance:
    def test_inverts_prcs(self):
        gap, delta, alpha_pair = 10.0, 2.0, 0.95
        v = pair_target_variance(gap, delta, alpha_pair)
        assert pairwise_prcs(gap, v, delta) == pytest.approx(
            alpha_pair, abs=1e-9
        )
        assert pairwise_prcs(gap, v * 0.5, delta) > alpha_pair

    def test_zero_margin_impossible(self):
        assert pair_target_variance(0.0, 0.0, 0.95) == 0.0
        assert pair_target_variance(-5.0, 1.0, 0.95) == 0.0

    def test_alpha_below_half_always_met(self):
        assert pair_target_variance(1.0, 0.0, 0.4) == float("inf")

    def test_larger_gap_larger_budget(self):
        small = pair_target_variance(1.0, 0.0, 0.9)
        large = pair_target_variance(10.0, 0.0, 0.9)
        assert large > small
