"""Tests for the query substrate: ASTs, templates, rendering, parsing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queries import (
    Aggregate,
    ColumnRef,
    EqPredicate,
    InPredicate,
    JoinPredicate,
    ParseError,
    Query,
    QueryType,
    RangePredicate,
    TemplateRegistry,
    group_by_template,
    parse_query,
    render_query,
)

O_ID = ColumnRef("orders", "o_id")
O_CUST = ColumnRef("orders", "o_cust")
C_ID = ColumnRef("customer", "c_id")
C_REGION = ColumnRef("customer", "c_region")


def make_select(value: int = 5) -> Query:
    return Query(
        qtype=QueryType.SELECT,
        tables=("orders", "customer"),
        join_predicates=(JoinPredicate(O_CUST, C_ID),),
        filters=(EqPredicate(C_REGION, value),),
        select_columns=(O_ID,),
    )


class TestAstValidation:
    def test_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            Query(qtype="MERGE", tables=("t",))

    def test_rejects_empty_from(self):
        with pytest.raises(ValueError):
            Query(qtype=QueryType.SELECT, tables=())

    def test_dml_single_table_only(self):
        with pytest.raises(ValueError):
            Query(
                qtype=QueryType.DELETE,
                tables=("a", "b"),
            )

    def test_update_requires_set_columns(self):
        with pytest.raises(ValueError):
            Query(qtype=QueryType.UPDATE, tables=("orders",))

    def test_filter_table_must_be_in_from(self):
        with pytest.raises(ValueError, match="missing"):
            Query(
                qtype=QueryType.SELECT,
                tables=("orders",),
                filters=(EqPredicate(C_REGION, 1),),
            )

    def test_join_table_must_be_in_from(self):
        with pytest.raises(ValueError, match="missing"):
            Query(
                qtype=QueryType.SELECT,
                tables=("orders",),
                join_predicates=(JoinPredicate(O_CUST, C_ID),),
            )

    def test_join_within_single_table_rejected(self):
        with pytest.raises(ValueError):
            JoinPredicate(O_ID, O_CUST)

    def test_range_rejects_inverted(self):
        with pytest.raises(ValueError):
            RangePredicate(O_ID, 10, 5)

    def test_in_rejects_empty(self):
        with pytest.raises(ValueError):
            InPredicate(O_ID, ())

    def test_aggregate_validation(self):
        with pytest.raises(ValueError):
            Aggregate("MEDIAN", O_ID)
        with pytest.raises(ValueError):
            Aggregate("SUM", None)
        assert Aggregate("COUNT", None).column is None

    def test_target_table_select_raises(self):
        with pytest.raises(ValueError):
            _ = make_select().target_table

    def test_referenced_columns_deduplicated(self):
        q = make_select()
        refs = q.referenced_columns()
        assert len(refs) == len(set(refs))
        assert C_REGION in refs and O_CUST in refs and C_ID in refs


class TestTemplates:
    def test_same_structure_different_constants(self):
        assert make_select(1).template_key() == make_select(99).template_key()
        assert make_select(1).template_hash() == make_select(
            99
        ).template_hash()

    def test_different_structure(self):
        other = Query(
            qtype=QueryType.SELECT,
            tables=("orders", "customer"),
            join_predicates=(JoinPredicate(O_CUST, C_ID),),
            filters=(RangePredicate(C_REGION, 1, 3),),
            select_columns=(O_ID,),
        )
        assert other.template_key() != make_select().template_key()

    def test_in_list_length_not_part_of_template(self):
        q1 = Query(
            qtype=QueryType.SELECT, tables=("orders",),
            filters=(InPredicate(O_ID, (1, 2)),),
        )
        q2 = Query(
            qtype=QueryType.SELECT, tables=("orders",),
            filters=(InPredicate(O_ID, (3, 4, 5, 6)),),
        )
        assert q1.template_key() == q2.template_key()

    def test_registry_assigns_dense_ids(self):
        reg = TemplateRegistry()
        a = reg.template_id(make_select(1), name="lookup")
        b = reg.template_id(make_select(2))
        assert a == b == 0
        assert reg.name_of(0) == "lookup"
        assert reg.count == 1

    def test_registry_name_fallback_and_set(self):
        reg = TemplateRegistry()
        tid = reg.template_id(make_select())
        assert reg.name_of(tid) == f"T{tid}"
        reg.set_name(tid, "better")
        assert reg.name_of(tid) == "better"
        with pytest.raises(KeyError):
            reg.set_name(99, "x")
        with pytest.raises(KeyError):
            reg.hash_of(99)

    def test_registry_lookup_without_register(self):
        reg = TemplateRegistry()
        assert reg.lookup(make_select()) is None

    def test_group_by_template(self):
        queries = [make_select(i) for i in range(4)] + [
            Query(
                qtype=QueryType.SELECT, tables=("orders",),
                filters=(EqPredicate(O_ID, i),),
            )
            for i in range(3)
        ]
        groups = group_by_template(queries)
        assert sorted(len(v) for v in groups.values()) == [3, 4]


class TestRenderParse:
    def test_select_round_trip(self):
        q = make_select()
        assert parse_query(render_query(q)) == q

    def test_select_with_everything(self):
        q = Query(
            qtype=QueryType.SELECT,
            tables=("orders", "customer"),
            join_predicates=(JoinPredicate(O_CUST, C_ID),),
            filters=(
                EqPredicate(C_REGION, 3),
                RangePredicate(O_ID, 5, 50),
                InPredicate(O_CUST, (1, 2, 7)),
            ),
            select_columns=(O_ID,),
            aggregates=(
                Aggregate("SUM", ColumnRef("orders", "o_cust")),
                Aggregate("COUNT", None),
            ),
            group_by=(O_ID,),
            order_by=(O_ID,),
        )
        text = render_query(q)
        assert "BETWEEN" in text and "IN (" in text and "COUNT(*)" in text
        assert parse_query(text) == q

    def test_star_projection(self):
        q = Query(qtype=QueryType.SELECT, tables=("orders",))
        text = render_query(q)
        assert text.startswith("SELECT * FROM")
        assert parse_query(text) == q

    def test_update_round_trip(self):
        q = Query(
            qtype=QueryType.UPDATE,
            tables=("orders",),
            filters=(EqPredicate(O_CUST, 7),),
            set_columns=(ColumnRef("orders", "o_total"),
                         ColumnRef("orders", "o_status")),
        )
        assert parse_query(render_query(q)) == q

    def test_delete_round_trip(self):
        q = Query(
            qtype=QueryType.DELETE,
            tables=("orders",),
            filters=(RangePredicate(O_ID, 0, 9),),
        )
        assert parse_query(render_query(q)) == q

    def test_insert_round_trip(self):
        q = Query(qtype=QueryType.INSERT, tables=("orders",))
        text = render_query(q)
        assert text == "INSERT INTO orders VALUES (DEFAULT)"
        assert parse_query(text) == q

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "DROP TABLE orders",
            "SELECT FROM",
            "SELECT * FROM orders WHERE",
            "SELECT * FROM orders WHERE orders.o_id",
            "SELECT * FROM orders WHERE orders.o_id LIKE 5",
            "UPDATE orders WHERE orders.o_id = 1",
            "INSERT INTO orders VALUES (1)",
            "SELECT * FROM orders GROUP o_id",
            "SELECT * FROM orders trailing.junk",
        ],
    )
    def test_parse_errors(self, bad):
        with pytest.raises(ParseError):
            parse_query(bad)


# -- property-based round trip ------------------------------------------

_ident = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s.upper()
    not in {
        "SELECT", "FROM", "WHERE", "AND", "GROUP", "ORDER", "BY",
        "BETWEEN", "IN", "UPDATE", "SET", "DELETE", "INSERT", "INTO",
        "VALUES", "DEFAULT", "COUNT", "SUM", "AVG", "MIN", "MAX",
    }
)


@st.composite
def _queries(draw) -> Query:
    tables = draw(
        st.lists(_ident, min_size=1, max_size=3, unique=True)
    )
    cols = {t: draw(st.lists(_ident, min_size=1, max_size=3, unique=True))
            for t in tables}

    def any_ref():
        t = draw(st.sampled_from(tables))
        return ColumnRef(t, draw(st.sampled_from(cols[t])))

    qtype = draw(st.sampled_from(
        [QueryType.SELECT, QueryType.UPDATE, QueryType.DELETE,
         QueryType.INSERT]
    ))
    if qtype != QueryType.SELECT:
        table = tables[0]
        if qtype == QueryType.INSERT:
            return Query(qtype=qtype, tables=(table,))
        filters = tuple(
            draw(st.lists(
                st.builds(
                    EqPredicate,
                    st.just(ColumnRef(table, draw(st.sampled_from(
                        cols[table]
                    )))),
                    st.integers(0, 1000),
                ),
                max_size=2,
            ))
        )
        if qtype == QueryType.DELETE:
            return Query(qtype=qtype, tables=(table,), filters=filters)
        return Query(
            qtype=qtype, tables=(table,), filters=filters,
            set_columns=(ColumnRef(table, cols[table][0]),),
        )

    joins = []
    for a, b in zip(tables, tables[1:]):
        joins.append(
            JoinPredicate(ColumnRef(a, cols[a][0]), ColumnRef(b, cols[b][0]))
        )
    n_filters = draw(st.integers(0, 3))
    filters = []
    for _ in range(n_filters):
        ref = any_ref()
        kind = draw(st.integers(0, 2))
        if kind == 0:
            filters.append(EqPredicate(ref, draw(st.integers(0, 999))))
        elif kind == 1:
            lo = draw(st.integers(0, 500))
            filters.append(
                RangePredicate(ref, lo, lo + draw(st.integers(0, 100)))
            )
        else:
            values = draw(
                st.lists(st.integers(0, 99), min_size=1, max_size=4,
                         unique=True)
            )
            filters.append(InPredicate(ref, tuple(values)))
    return Query(
        qtype=QueryType.SELECT,
        tables=tuple(tables),
        join_predicates=tuple(joins),
        filters=tuple(filters),
        select_columns=(any_ref(),),
    )


class TestRoundTripProperty:
    @given(_queries())
    @settings(max_examples=200, deadline=None)
    def test_parse_render_round_trip(self, query):
        assert parse_query(render_query(query)) == query

    @given(_queries())
    @settings(max_examples=100, deadline=None)
    def test_template_survives_round_trip(self, query):
        parsed = parse_query(render_query(query))
        assert parsed.template_key() == query.template_key()
