"""Tests for the richer plan space: merge join and sort elision."""

from __future__ import annotations

import pytest

from repro.optimizer import WhatIfOptimizer
from repro.optimizer.params import CostParams
from repro.physical import Configuration, Index
from repro.queries import (
    ColumnRef,
    EqPredicate,
    JoinPredicate,
    Query,
    QueryType,
)


@pytest.fixture
def join_all() -> Query:
    """An unfiltered join (big inputs -> sorting costs matter)."""
    return Query(
        qtype=QueryType.SELECT,
        tables=("orders", "customer"),
        join_predicates=(
            JoinPredicate(ColumnRef("orders", "o_cust"),
                          ColumnRef("customer", "c_id")),
        ),
        select_columns=(ColumnRef("orders", "o_total"),),
    )


class TestMergeJoin:
    def test_merge_chosen_with_sorted_inputs(self, small_schema,
                                             join_all):
        # Make hashing expensive so pre-sorted merge wins.
        params = CostParams(hash_build_row_cost=0.05,
                            hash_probe_row_cost=0.05)
        optimizer = WhatIfOptimizer(small_schema, params=params)
        config = Configuration([
            Index("orders", ("o_cust",), ("o_total",)),
            Index("customer", ("c_id",)),
        ])
        plan = optimizer.plan(join_all, config)
        methods = {s.method for s in plan.join_plan.steps}
        assert "merge" in methods

    def test_merge_not_chosen_without_order(self, small_schema,
                                            join_all):
        params = CostParams(hash_build_row_cost=0.05,
                            hash_probe_row_cost=0.05,
                            sort_row_cost=0.05)
        optimizer = WhatIfOptimizer(small_schema, params=params)
        plan = optimizer.plan(join_all, Configuration(name="none"))
        methods = {s.method for s in plan.join_plan.steps}
        # Sorting both unsorted inputs at this sort cost cannot beat
        # hashing.
        assert methods == {"hash"}

    def test_merge_never_increases_cost(self, optimizer, join_all):
        """Adding the merge alternative can only help (min over more
        options), preserving well-behavedness."""
        sorted_cfg = Configuration([
            Index("orders", ("o_cust",), ("o_total",)),
            Index("customer", ("c_id",)),
        ])
        assert optimizer.cost(join_all, sorted_cfg) <= optimizer.cost(
            join_all, Configuration(name="none")
        ) + 1e-9


class TestSortElision:
    def _ordered_query(self) -> Query:
        return Query(
            qtype=QueryType.SELECT, tables=("orders",),
            filters=(EqPredicate(ColumnRef("orders", "o_cust"), 3),),
            select_columns=(ColumnRef("orders", "o_total"),),
            order_by=(ColumnRef("orders", "o_cust"),),
        )

    def test_sort_elided_with_leading_index(self, optimizer):
        q = self._ordered_query()
        config = Configuration(
            [Index("orders", ("o_cust",), ("o_total",))]
        )
        plan = optimizer.plan(q, config)
        assert plan.access_paths[0].index is not None
        assert plan.sort_cost == 0.0

    def test_sort_paid_without_index(self, optimizer, empty_config):
        plan = optimizer.plan(self._ordered_query(), empty_config)
        assert plan.sort_cost > 0.0

    def test_sort_paid_when_order_differs(self, optimizer):
        q = Query(
            qtype=QueryType.SELECT, tables=("orders",),
            filters=(EqPredicate(ColumnRef("orders", "o_cust"), 3),),
            select_columns=(ColumnRef("orders", "o_total"),),
            order_by=(ColumnRef("orders", "o_total"),),
        )
        config = Configuration(
            [Index("orders", ("o_cust",), ("o_total",))]
        )
        plan = optimizer.plan(q, config)
        assert plan.sort_cost > 0.0

    def test_elision_lowers_total(self, optimizer):
        q = self._ordered_query()
        with_ix = optimizer.cost(
            q, Configuration([Index("orders", ("o_cust",),
                                    ("o_total",))])
        )
        without = optimizer.cost(q, Configuration(name="none"))
        assert with_ix < without
