"""Tests for strata, Neyman allocation and #Samples estimation."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Stratification,
    allocation_variance,
    neyman_allocation,
    samples_needed,
)

SIZES = {0: 100, 1: 50, 2: 400}


class TestStratification:
    def test_single(self):
        strat = Stratification.single(SIZES)
        assert strat.stratum_count == 1
        assert strat.total_size == 550
        assert strat.stratum_of(2) == 0

    def test_split(self):
        strat = Stratification.single(SIZES)
        split = strat.split(0, [0, 1], [2])
        assert split.stratum_count == 2
        assert list(split.sizes) == [150, 400]
        assert split.stratum_of(2) == 1

    def test_split_validation(self):
        strat = Stratification.single(SIZES)
        with pytest.raises(ValueError):
            strat.split(0, [0], [2])  # loses template 1
        with pytest.raises(ValueError):
            strat.split(0, [0, 1, 2], [])

    def test_rejects_duplicate_template(self):
        with pytest.raises(ValueError):
            Stratification([(0, 1), (1, 2)], SIZES)

    def test_rejects_uncovered_template(self):
        with pytest.raises(ValueError):
            Stratification([(0, 1)], SIZES)

    def test_rejects_unknown_template(self):
        with pytest.raises(ValueError):
            Stratification([(0, 1, 2, 9)], SIZES)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Stratification([], SIZES)
        with pytest.raises(ValueError):
            Stratification([(), (0, 1, 2)], SIZES)

    def test_stratum_of_unknown(self):
        strat = Stratification.single(SIZES)
        with pytest.raises(KeyError):
            strat.stratum_of(77)


class TestNeymanAllocation:
    def test_proportional_to_size_times_std(self):
        sizes = np.array([100, 100])
        stds = np.array([1.0, 3.0])
        alloc = neyman_allocation(sizes, stds, 40)
        assert alloc.sum() == 40
        assert alloc[1] > alloc[0]
        # ratio roughly 1:3
        assert alloc[1] == pytest.approx(30, abs=2)

    def test_respects_floors(self):
        alloc = neyman_allocation(
            np.array([100, 100]), np.array([0.0, 5.0]), 20,
            floors=np.array([10, 0]),
        )
        assert alloc[0] >= 10
        assert alloc.sum() == 20

    def test_caps_at_sizes(self):
        alloc = neyman_allocation(
            np.array([5, 1000]), np.array([100.0, 0.1]), 500
        )
        assert alloc[0] <= 5
        assert alloc.sum() == 500

    def test_total_capped_at_population(self):
        alloc = neyman_allocation(
            np.array([10, 10]), np.array([1.0, 1.0]), 1000
        )
        assert alloc.sum() == 20

    def test_zero_variance_falls_back_to_proportional(self):
        alloc = neyman_allocation(
            np.array([300, 100]), np.array([0.0, 0.0]), 40
        )
        assert alloc.sum() == 40
        assert alloc[0] > alloc[1]

    @given(
        sizes=st.lists(st.integers(1, 500), min_size=1, max_size=6),
        total=st.integers(0, 800),
    )
    @settings(max_examples=60, deadline=None)
    def test_allocation_invariants(self, sizes, total):
        sizes = np.array(sizes)
        stds = np.linspace(0.5, 2.0, len(sizes))
        alloc = neyman_allocation(sizes, stds, total)
        assert (alloc >= 0).all()
        assert (alloc <= sizes).all()
        assert alloc.sum() == min(total, sizes.sum())


class TestAllocationVariance:
    def test_matches_formula(self):
        sizes = np.array([100, 200])
        variances = np.array([4.0, 9.0])
        alloc = np.array([10, 20])
        expected = (
            100**2 * 4.0 / 10 * (1 - 10 / 100)
            + 200**2 * 9.0 / 20 * (1 - 20 / 200)
        )
        assert allocation_variance(sizes, variances, alloc) == \
            pytest.approx(expected)

    def test_full_sample_zero_variance(self):
        sizes = np.array([50])
        assert allocation_variance(
            sizes, np.array([7.0]), np.array([50])
        ) == 0.0

    def test_unsampled_stratum_infinite(self):
        assert allocation_variance(
            np.array([10, 10]), np.array([1.0, 1.0]), np.array([5, 0])
        ) == float("inf")

    def test_zero_variance_stratum_free(self):
        assert allocation_variance(
            np.array([10]), np.array([0.0]), np.array([0])
        ) == 0.0

    def test_neyman_near_optimal(self):
        """Neyman allocation is within integer-rounding slack of the
        best integer allocation of eq. 5."""
        sizes = np.array([60, 40])
        variances = np.array([1.0, 25.0])
        total = 20
        neyman = neyman_allocation(sizes, np.sqrt(variances), total)
        ours = allocation_variance(sizes, variances, neyman)
        best = min(
            allocation_variance(
                sizes, variances, np.array([n0, total - n0])
            )
            for n0 in range(1, total)
            if n0 <= sizes[0] and total - n0 <= sizes[1]
        )
        assert ours <= best * 1.02


class TestSamplesNeeded:
    def test_monotone_in_target(self):
        sizes = np.array([500, 500])
        variances = np.array([100.0, 400.0])
        loose = samples_needed(sizes, variances, 1e9)
        tight = samples_needed(sizes, variances, 1e6)
        assert tight >= loose

    def test_reaches_target(self):
        sizes = np.array([500, 500])
        variances = np.array([100.0, 400.0])
        target = 1e7
        n = samples_needed(sizes, variances, target)
        alloc = neyman_allocation(
            sizes, np.sqrt(variances), n, floors=np.ones(2, dtype=int)
        )
        assert allocation_variance(sizes, variances, alloc) <= target

    def test_minimality(self):
        sizes = np.array([500, 500])
        variances = np.array([100.0, 400.0])
        target = 1e7
        n = samples_needed(sizes, variances, target)
        if n > 2:
            alloc = neyman_allocation(
                sizes, np.sqrt(variances), n - 1,
                floors=np.ones(2, dtype=int),
            )
            assert allocation_variance(sizes, variances, alloc) > target

    def test_full_population_when_unreachable(self):
        sizes = np.array([10])
        variances = np.array([1e12])
        assert samples_needed(sizes, variances, 1e-9) == 10

    def test_respects_floors(self):
        sizes = np.array([100, 100])
        variances = np.array([1.0, 1.0])
        n = samples_needed(
            sizes, variances, 1e9, floors=np.array([30, 30])
        )
        assert n >= 60

    def test_stratification_helps(self):
        """Splitting a bimodal stratum reduces the needed sample size."""
        # One stratum with huge pooled variance...
        coarse = samples_needed(
            np.array([1000]), np.array([10_000.0]), 1e8
        )
        # ...vs two homogeneous strata (between-variance removed).
        fine = samples_needed(
            np.array([500, 500]), np.array([100.0, 100.0]), 1e8
        )
        assert fine < coarse
