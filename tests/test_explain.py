"""Tests for the textual EXPLAIN renderer."""

from __future__ import annotations

import pytest

from repro.optimizer import explain_plan
from repro.physical import Configuration, Index, MaterializedView
from repro.queries import (
    Aggregate,
    ColumnRef,
    JoinPredicate,
    Query,
    QueryType,
)


class TestExplain:
    def test_single_table(self, optimizer, point_query, empty_config):
        text = explain_plan(optimizer.plan(point_query, empty_config))
        assert text.startswith("Plan")
        assert "HeapScan orders" in text

    def test_index_seek_shown(self, optimizer, point_query,
                              indexed_config):
        text = explain_plan(optimizer.plan(point_query, indexed_config))
        assert "IndexSeek orders via ix_orders_o_id" in text

    def test_join_methods_shown(self, optimizer, join_query,
                                empty_config):
        text = explain_plan(optimizer.plan(join_query, empty_config))
        assert "HashJoin" in text or "IndexNestedLoop" in text
        assert "customer" in text and "orders" in text

    def test_aggregate_and_sort_lines(self, optimizer, empty_config):
        q = Query(
            qtype=QueryType.SELECT, tables=("orders",),
            group_by=(ColumnRef("orders", "o_status"),),
            aggregates=(Aggregate("COUNT", None),),
            order_by=(ColumnRef("orders", "o_status"),),
        )
        text = explain_plan(optimizer.plan(q, empty_config))
        assert "Aggregate" in text
        assert "Sort" in text

    def test_view_scan_shown(self, optimizer):
        jp = JoinPredicate(
            ColumnRef("orders", "o_cust"), ColumnRef("customer", "c_id")
        )
        view = MaterializedView(
            ("orders", "customer"), (jp,),
            group_by=(ColumnRef("customer", "c_region"),),
            aggregates=(Aggregate("COUNT", None),),
        )
        q = Query(
            qtype=QueryType.SELECT, tables=("orders", "customer"),
            join_predicates=(jp,),
            group_by=(ColumnRef("customer", "c_region"),),
            aggregates=(Aggregate("COUNT", None),),
        )
        plan = optimizer.plan(q, Configuration([], [view]))
        assert plan.view == view
        assert f"ViewScan {view.name}" in explain_plan(plan)

    def test_costs_formatted(self, optimizer, join_query, empty_config):
        text = explain_plan(optimizer.plan(join_query, empty_config))
        assert "cost=" in text and "rows=" in text
