"""Checkpoint/resume: crash-safe snapshots and bit-identical restarts.

Two layers are pinned here.  The selector layer kills a run mid-flight
(a cost source that starts raising once its call budget is spent),
restarts from the on-disk checkpoint with a *fresh* source and a fresh
— deliberately different — RNG, and must land on the exact golden
record of the uninterrupted run: same best index, same float
estimates, same call accounting.  The service layer crashes the
continuous-tuning loop mid-retune and resumes from the service
checkpoint, which must reconstruct reservoirs, drift state and session
state so the recovered run is indistinguishable from one that never
crashed.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core import (
    CHECKPOINT_VERSION,
    load_checkpoint,
    restore_rng,
    rng_state,
    save_checkpoint,
)
from repro.core.selector import ConfigurationSelector
from repro.core.sources import CostSource, MatrixCostSource
from repro.optimizer import WhatIfOptimizer
from repro.service import EventLog, ServiceConfig, read_events, run_service
from repro.service.checkpoint import (
    load_service_checkpoint,
    save_service_checkpoint,
)
from repro.workload import WorkloadGenerator
from repro.workload.drift import change_point_workload

from tests.test_batched_equivalence import (
    GOLDEN_PATH,
    _case_key,
    _options,
    synthetic_matrix,
)
from tests.test_service_loop import OPTIONS as SERVICE_OPTIONS
from tests.test_service_loop import _templates, configs  # noqa: F401


# ----------------------------------------------------------------------
# checkpoint file format
# ----------------------------------------------------------------------
class TestCheckpointFile:
    def test_roundtrip_and_version_stamp(self, tmp_path):
        path = tmp_path / "ckpt.json"
        save_checkpoint(path, {"round": 3, "x": [1.5, 2.5]})
        loaded = load_checkpoint(path)
        assert loaded["round"] == 3
        assert loaded["x"] == [1.5, 2.5]
        assert loaded["version"] == CHECKPOINT_VERSION

    def test_missing_file_is_none(self, tmp_path):
        assert load_checkpoint(tmp_path / "absent.json") is None

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="unreadable"):
            load_checkpoint(path)

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text(json.dumps({"version": 999}), encoding="utf-8")
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(path)

    def test_no_temp_file_litter(self, tmp_path):
        path = tmp_path / "ckpt.json"
        for i in range(3):
            save_checkpoint(path, {"round": i})
        assert os.listdir(tmp_path) == ["ckpt.json"]

    def test_rng_state_roundtrips_exactly(self):
        rng = np.random.default_rng(5)
        rng.random(17)  # advance to a mid-stream state
        state = json.loads(json.dumps(rng_state(rng)))
        fresh = np.random.default_rng(12345)
        restore_rng(fresh, state)
        np.testing.assert_array_equal(rng.random(32), fresh.random(32))

    def test_rng_family_mismatch_raises(self):
        state = rng_state(np.random.default_rng(5))
        state["bit_generator"] = "MT19937"
        with pytest.raises(ValueError, match="MT19937"):
            restore_rng(np.random.default_rng(0), state)

    def test_service_checkpoint_kind_guard(self, tmp_path):
        path = tmp_path / "svc.json"
        save_checkpoint(path, {"kind": "selector"})
        with pytest.raises(ValueError, match="service"):
            load_service_checkpoint(path)
        save_service_checkpoint(path, {"position": 0})
        assert load_service_checkpoint(path)["position"] == 0


# ----------------------------------------------------------------------
# selector kill / resume against the golden fixture
# ----------------------------------------------------------------------
class Killed(RuntimeError):
    """Simulated hard crash of the cost source."""


class KillSource(MatrixCostSource):
    """Matrix source that dies once ``kill_after`` distinct calls are
    spent — before serving the request, like a backend going away."""

    def __init__(self, matrix, kill_after: int) -> None:
        super().__init__(matrix)
        self.kill_after = kill_after

    def _maybe_kill(self) -> None:
        if self.calls >= self.kill_after:
            raise Killed(f"source killed after {self.calls} calls")

    def cost(self, query_idx, config_idx):
        self._maybe_kill()
        return super().cost(query_idx, config_idx)

    def cost_many(self, pairs):
        self._maybe_kill()
        return super().cost_many(pairs)


def _result_record(case, result):
    """The golden-fixture record shape for a finished selection."""
    return {
        "case": {k: case[k] for k in ("scheme", "stratify", "seed",
                                      "max_calls")},
        "best_index": int(result.best_index),
        "prcs": float(result.prcs).hex(),
        "optimizer_calls": int(result.optimizer_calls),
        "queries_sampled": int(result.queries_sampled),
        "terminated_by": result.terminated_by,
        "eliminated": sorted(int(j) for j in result.eliminated),
        "estimates": [float(x).hex() for x in result.estimates],
        "history": [
            [int(c), float(p).hex()] for c, p in result.history
        ],
        "final_strata": [
            [int(t) for t in group] for group in result.final_strata
        ],
    }


RESUME_CASES = [
    ({"scheme": "delta", "stratify": "progressive", "seed": 0,
      "max_calls": None}, 150),
    ({"scheme": "delta", "stratify": "progressive", "seed": 0,
      "max_calls": None}, 400),
    ({"scheme": "delta", "stratify": "progressive", "seed": 7,
      "max_calls": 300}, 150),
    ({"scheme": "independent", "stratify": "progressive", "seed": 7,
      "max_calls": 240}, 150),
    ({"scheme": "independent", "stratify": "progressive", "seed": 0,
      "max_calls": None}, 80),
]


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


class TestSelectorResume:
    def test_checkpoint_every_validated(self):
        matrix, template_ids = synthetic_matrix(n=60, t=4)
        with pytest.raises(ValueError, match="checkpoint_every"):
            ConfigurationSelector(
                MatrixCostSource(matrix), template_ids,
                checkpoint_every=0,
            )

    def test_checkpointing_does_not_perturb_the_run(
        self, tmp_path, golden
    ):
        """Snapshot writes are pure reads: the checkpointed run's
        result is the golden record, bit for bit."""
        case = RESUME_CASES[0][0]
        matrix, template_ids = synthetic_matrix()
        selector = ConfigurationSelector(
            MatrixCostSource(matrix), template_ids, _options(case),
            rng=np.random.default_rng(case["seed"]),
            checkpoint_path=str(tmp_path / "ckpt.json"),
        )
        result = selector.run()
        assert _result_record(case, result) == golden[_case_key(case)]

    def test_resume_requires_a_path(self):
        matrix, template_ids = synthetic_matrix(n=60, t=4)
        selector = ConfigurationSelector(
            MatrixCostSource(matrix), template_ids
        )
        with pytest.raises(ValueError, match="no checkpoint path"):
            selector.resume()

    def test_resume_missing_file(self, tmp_path):
        matrix, template_ids = synthetic_matrix(n=60, t=4)
        selector = ConfigurationSelector(
            MatrixCostSource(matrix), template_ids,
            checkpoint_path=str(tmp_path / "absent.json"),
        )
        with pytest.raises(FileNotFoundError):
            selector.resume()

    def test_resume_rejects_mismatched_run(self, tmp_path):
        case = RESUME_CASES[0][0]
        path = str(tmp_path / "ckpt.json")
        matrix, template_ids = synthetic_matrix()
        source = KillSource(matrix, kill_after=150)
        selector = ConfigurationSelector(
            source, template_ids, _options(case),
            rng=np.random.default_rng(0), checkpoint_path=path,
        )
        with pytest.raises(Killed):
            selector.run()
        # Different scheme.
        other = ConfigurationSelector(
            MatrixCostSource(matrix), template_ids,
            _options({**case, "scheme": "independent"}),
            checkpoint_path=path,
        )
        with pytest.raises(ValueError, match="scheme"):
            other.resume()
        # Different options (same scheme).
        other = ConfigurationSelector(
            MatrixCostSource(matrix), template_ids,
            _options({**case, "max_calls": 9999}),
            checkpoint_path=path,
        )
        with pytest.raises(ValueError, match="options"):
            other.resume()
        # Different workload size.
        small, small_ids = synthetic_matrix(n=60, t=4)
        other = ConfigurationSelector(
            MatrixCostSource(small), small_ids, _options(case),
            checkpoint_path=path,
        )
        with pytest.raises(ValueError, match="queries"):
            other.resume()
        # Not a selector checkpoint at all.
        svc = str(tmp_path / "svc.json")
        save_service_checkpoint(svc, {"position": 0})
        other = ConfigurationSelector(
            MatrixCostSource(matrix), template_ids, _options(case),
            checkpoint_path=svc,
        )
        with pytest.raises(ValueError, match="selector checkpoint"):
            other.resume()

    @pytest.mark.parametrize(
        ("case", "kill_after"), RESUME_CASES,
        ids=[f"{_case_key(c)}/kill{k}" for c, k in RESUME_CASES],
    )
    def test_kill_and_resume_matches_golden(
        self, case, kill_after, tmp_path, golden
    ):
        """Kill mid-run, restart from disk, land on the golden record.

        The resuming selector gets a *fresh* source (no calls made in
        this process) and a deliberately different RNG seed — both must
        be irrelevant: the checkpoint carries spent-call accounting and
        the exact generator state.
        """
        path = str(tmp_path / "ckpt.json")
        matrix, template_ids = synthetic_matrix()
        source = KillSource(matrix, kill_after=kill_after)
        selector = ConfigurationSelector(
            source, template_ids, _options(case),
            rng=np.random.default_rng(case["seed"]),
            checkpoint_path=path,
        )
        with pytest.raises(Killed):
            selector.run()
        assert os.path.exists(path)

        fresh = ConfigurationSelector(
            MatrixCostSource(matrix), template_ids, _options(case),
            rng=np.random.default_rng(999),  # must be overwritten
        )
        result = fresh.resume(path)
        assert _result_record(case, result) == golden[_case_key(case)]

    def test_resume_after_every_round(self, tmp_path, golden):
        """Chained kills: crash repeatedly, resume each time, finish.

        Exercises resume-from-resume (the continuation itself writes
        checkpoints) at escalating kill points.
        """
        case = RESUME_CASES[0][0]
        path = str(tmp_path / "ckpt.json")
        matrix, template_ids = synthetic_matrix()
        result = None
        kill_points = [120, 260, 430, None]
        for kill in kill_points:
            if kill is None:
                source = MatrixCostSource(matrix)
            else:
                source = KillSource(matrix, kill_after=kill)
            selector = ConfigurationSelector(
                source, template_ids, _options(case),
                rng=np.random.default_rng(case["seed"]),
                checkpoint_path=path,
            )
            try:
                if os.path.exists(path):
                    result = selector.resume()
                else:
                    result = selector.run()
                break
            except Killed:
                continue
        assert result is not None
        assert _result_record(case, result) == golden[_case_key(case)]


# ----------------------------------------------------------------------
# service crash / resume
# ----------------------------------------------------------------------
class SimulatedCrash(RuntimeError):
    """Stands in for SIGKILL: aborts the loop mid-retune."""


class _CrashingSource(CostSource):
    def __init__(self, inner, after_calls: int) -> None:
        self._inner = inner
        self._remaining = after_calls

    @property
    def n_queries(self):
        return self._inner.n_queries

    @property
    def n_configs(self):
        return self._inner.n_configs

    @property
    def calls(self):
        return self._inner.calls

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def _spend(self, n: int) -> None:
        self._remaining -= n
        if self._remaining <= 0:
            raise SimulatedCrash("cost source vanished mid-retune")

    def cost(self, query_idx, config_idx):
        self._spend(1)
        return self._inner.cost(query_idx, config_idx)

    def cost_many(self, pairs):
        self._spend(len(pairs))
        return self._inner.cost_many(pairs)


class CrashOnRetune:
    """Injector that lets retunes before ``retune_idx`` finish and
    crashes the ``retune_idx``-th one after a few calls."""

    def __init__(self, retune_idx: int, after_calls: int = 5) -> None:
        self.retune_idx = retune_idx
        self.after_calls = after_calls
        self.invocations = 0

    def __call__(self, source):
        self.invocations += 1
        if self.invocations == self.retune_idx:
            return _CrashingSource(source, self.after_calls)
        return source


class TestServiceResume:
    def _trace(self, small_schema):
        lookup, datescan, _, _ = _templates()
        generator = WorkloadGenerator(small_schema, [lookup, datescan])
        return change_point_workload(
            generator, 240, [1.0, 0.05], [0.05, 1.0], 120,
            np.random.default_rng(0),
        )

    def _config(self, **kw):
        base = dict(
            window_size=60, batch_size=20, reservoir_size=32,
            drift_threshold=0.05, cooldown=40, min_window_fill=0.5,
        )
        base.update(kw)
        return ServiceConfig(**base)

    def _run(self, small_schema, trace, configs, *, config, events,
             fault_injector=None):
        return run_service(
            trace, configs, WhatIfOptimizer(small_schema),
            config=config, options=SERVICE_OPTIONS, events=events,
            rng=np.random.default_rng(0),
            fault_injector=fault_injector,
        )

    def test_checkpointing_run_matches_plain_run(
        self, small_schema, configs, tmp_path
    ):
        trace = self._trace(small_schema)
        with EventLog() as ev_a:
            plain = self._run(
                small_schema, trace, configs,
                config=self._config(), events=ev_a,
            )
        with EventLog() as ev_b:
            checked = self._run(
                small_schema, trace, configs,
                config=self._config(
                    checkpoint_path=str(tmp_path / "svc.json")
                ),
                events=ev_b,
            )
        assert plain.retune_count >= 2  # the scenario actually retunes
        assert checked.as_dict() == plain.as_dict()

    def test_crash_and_resume_matches_uninterrupted_run(
        self, small_schema, configs, tmp_path
    ):
        trace = self._trace(small_schema)
        with EventLog() as ref_events:
            reference = self._run(
                small_schema, trace, configs,
                config=self._config(), events=ref_events,
            )
        assert reference.retune_count >= 2

        ckpt = str(tmp_path / "svc.json")
        events_path = str(tmp_path / "events.jsonl")
        crasher = CrashOnRetune(retune_idx=2, after_calls=5)
        with pytest.raises(SimulatedCrash):
            with EventLog(events_path) as events:
                self._run(
                    small_schema, trace, configs,
                    config=self._config(checkpoint_path=ckpt),
                    events=events, fault_injector=crasher,
                )
        interrupted = load_service_checkpoint(ckpt)
        assert interrupted["position"] < trace.size  # mid-trace crash

        # Restart: fresh optimizer, fresh event-log handle on the same
        # file, a different rng (the stored seeds must win).
        with EventLog(events_path) as events:
            resumed = run_service(
                trace, configs, WhatIfOptimizer(small_schema),
                config=self._config(checkpoint_path=ckpt),
                options=SERVICE_OPTIONS, events=events,
                rng=np.random.default_rng(12345),
            )

        assert resumed.final_index == reference.final_index
        assert resumed.retune_count == reference.retune_count
        assert resumed.failed_count == 0
        # Same decisions, confidences and termination reasons.  Raw
        # call counts are NOT compared: the reference run's single
        # optimizer serves the later retunes out of its plan cache,
        # while the restarted process re-evaluates those pairs — the
        # unavoidable cost of at-least-once recovery.
        decisive = (
            "chosen_index", "accepted", "low_confidence", "failed",
            "prcs", "terminated_by",
        )
        assert [
            {k: r[k] for k in decisive}
            for r in resumed.as_dict()["retunes"]
        ] == [
            {k: r[k] for k in decisive}
            for r in reference.as_dict()["retunes"]
        ]
        assert (
            resumed.total_optimizer_calls
            >= reference.total_optimizer_calls
        )

        # The recovered event log is contiguous across the crash and
        # records the resume.
        records = read_events(events_path)
        kinds = [r["kind"] for r in records]
        assert "service_resume" in kinds
        assert kinds.count("service_start") == 1
        assert kinds[-1] == "service_end"
        seqs = [r["seq"] for r in records]
        assert seqs == list(range(len(records)))

        final = load_service_checkpoint(ckpt)
        assert final["position"] == trace.size

    def test_resume_rejects_short_trace(
        self, small_schema, configs, tmp_path
    ):
        trace = self._trace(small_schema)
        ckpt = str(tmp_path / "svc.json")
        with EventLog() as events:
            self._run(
                small_schema, trace, configs,
                config=self._config(checkpoint_path=ckpt),
                events=events,
            )
        short = change_point_workload(
            WorkloadGenerator(
                small_schema, list(_templates()[:2])
            ),
            60, [1.0, 0.05], [0.05, 1.0], 30,
            np.random.default_rng(0),
        )
        with pytest.raises(ValueError, match="position"):
            with EventLog() as events:
                self._run(
                    small_schema, short, configs,
                    config=self._config(checkpoint_path=ckpt),
                    events=events,
                )
