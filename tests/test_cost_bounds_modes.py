"""Tests for CostBounder's index-only mode and interval tightness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounds import CostBounder
from repro.optimizer import WhatIfOptimizer
from repro.physical import base_configuration, build_pool, \
    enumerate_configurations
from repro.workload import generate_tpcd_workload, tpcd_schema


@pytest.fixture(scope="module")
def index_only_space():
    schema = tpcd_schema(0.05)
    workload = generate_tpcd_workload(150, seed=33, schema=schema)
    optimizer = WhatIfOptimizer(schema)
    pool = build_pool(workload.queries[:80], optimizer,
                      include_views=False)
    configs = enumerate_configurations(
        pool, 4, np.random.default_rng(2), index_only=True
    )
    return schema, workload, optimizer, configs


class TestIndexOnlyBounds:
    def test_tighter_than_view_aware(self, index_only_space):
        schema, workload, optimizer, configs = index_only_space
        base = base_configuration(configs)
        union = configs[0]
        for cfg in configs[1:]:
            union = union.union(cfg)
        wide = CostBounder(optimizer, workload, base, union,
                           index_only=False).universal_intervals()
        tight = CostBounder(optimizer, workload, base, union,
                            index_only=True).universal_intervals()
        assert tight.widths().sum() <= wide.widths().sum()

    def test_still_contains_costs(self, index_only_space):
        schema, workload, optimizer, configs = index_only_space
        base = base_configuration(configs)
        union = configs[0]
        for cfg in configs[1:]:
            union = union.union(cfg)
        bounder = CostBounder(optimizer, workload, base, union,
                              index_only=True)
        intervals = bounder.universal_intervals()
        for cfg in configs:
            costs = workload.cost_vector(optimizer, cfg.union(base))
            assert intervals.contains(costs, atol=1e-6)

    def test_widths_drive_dp_states(self, index_only_space):
        """Tighter intervals mean a smaller DP state space for the same
        rho — the §6 practicality argument."""
        from repro.bounds import max_variance_bound

        schema, workload, optimizer, configs = index_only_space
        base = base_configuration(configs)
        union = configs[0]
        for cfg in configs[1:]:
            union = union.union(cfg)
        wide = CostBounder(optimizer, workload, base, union,
                           index_only=False).universal_intervals()
        tight = CostBounder(optimizer, workload, base, union,
                            index_only=True).universal_intervals()
        rho = max(1.0, float(np.median(wide.highs)) / 100)
        states_wide = max_variance_bound(
            wide.lows, wide.highs, rho
        ).states
        states_tight = max_variance_bound(
            tight.lows, tight.highs, rho
        ).states
        assert states_tight <= states_wide
