"""Tests for sampling state: samplers, moment grids, estimators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DeltaState,
    IndependentState,
    MatrixCostSource,
    MomentGrid,
    Stratification,
    TemplateSampler,
)


def _groups(template_ids: np.ndarray) -> dict:
    out: dict = {}
    for i, t in enumerate(template_ids):
        out.setdefault(int(t), []).append(i)
    return {t: np.array(v) for t, v in out.items()}


@pytest.fixture
def simple_population(rng):
    """200 queries, 2 templates with very different cost levels."""
    template_ids = np.array([0] * 150 + [1] * 50)
    matrix = np.empty((200, 3))
    base = np.where(template_ids == 0, 10.0, 1000.0)
    matrix[:, 0] = base + rng.normal(0, 1, 200)
    matrix[:, 1] = base * 1.1 + rng.normal(0, 1, 200)
    matrix[:, 2] = base * 1.5 + rng.normal(0, 1, 200)
    return template_ids, np.abs(matrix)


class TestTemplateSampler:
    def test_without_replacement(self, rng):
        sampler = TemplateSampler({0: np.arange(10)}, rng)
        drawn = [sampler.draw_from_template(0) for _ in range(10)]
        assert sorted(drawn) == list(range(10))
        assert sampler.draw_from_template(0) is None
        assert sampler.remaining(0) == 0

    def test_draw_from_stratum_covers_templates(self, rng):
        sampler = TemplateSampler(
            {0: np.arange(5), 1: np.arange(5, 10)}, rng
        )
        seen_templates = set()
        for _ in range(10):
            qidx, tid = sampler.draw_from_stratum([0, 1], rng)
            seen_templates.add(tid)
            if tid == 0:
                assert qidx < 5
            else:
                assert qidx >= 5
        assert seen_templates == {0, 1}
        assert sampler.draw_from_stratum([0, 1], rng) is None

    def test_drawn_order_prefix(self, rng):
        sampler = TemplateSampler({0: np.arange(20)}, rng)
        first = sampler.draw_from_template(0)
        second = sampler.draw_from_template(0)
        assert list(sampler.drawn_order(0)) == [first, second]

    def test_remaining_in(self, rng):
        sampler = TemplateSampler(
            {0: np.arange(3), 1: np.arange(3, 10)}, rng
        )
        assert sampler.remaining_in([0, 1]) == 10
        sampler.draw_from_template(1)
        assert sampler.remaining_in([0, 1]) == 9


class TestMomentGrid:
    def test_welford_matches_numpy(self, rng):
        grid = MomentGrid(1, 1)
        values = rng.normal(50, 10, 100)
        for v in values:
            grid.add(0, 0, float(v))
        assert grid.count[0, 0] == 100
        assert grid.mean[0, 0] == pytest.approx(values.mean())
        assert grid.m2[0, 0] / 99 == pytest.approx(values.var(ddof=1))

    def test_independent_cells(self):
        grid = MomentGrid(2, 2)
        grid.add(0, 0, 5.0)
        grid.add(1, 1, 7.0)
        assert grid.count[0, 1] == 0
        assert grid.template_counts(0).tolist() == [1, 0]


class TestIndependentState:
    def test_estimate_unbiased_at_full_sample(self, simple_population,
                                              rng):
        template_ids, matrix = simple_population
        source = MatrixCostSource(matrix)
        state = IndependentState(
            3, 2, _groups(template_ids), rng
        )
        strat = Stratification.single({0: 150, 1: 50})
        # Exhaust the whole workload for config 0.
        while state.sample_one(0, (0, 1), source, rng):
            pass
        est, var = state.estimate(0, strat)
        assert est == pytest.approx(matrix[:, 0].sum(), rel=1e-9)
        assert var == 0.0  # finite population fully sampled

    def test_stratified_variance_lower(self, simple_population, rng):
        template_ids, matrix = simple_population
        source = MatrixCostSource(matrix)
        state = IndependentState(3, 2, _groups(template_ids), rng)
        single = Stratification.single({0: 150, 1: 50})
        split = single.split(0, [0], [1])
        for _ in range(60):
            state.sample_one(0, (0, 1), source, rng)
        _, var_single = state.estimate(0, single)
        _, var_split = state.estimate(0, split)
        # Templates differ by 100x in cost: stratification must help.
        assert var_split < var_single

    def test_unsampled_stratum_infinite_variance(self, simple_population,
                                                 rng):
        template_ids, matrix = simple_population
        source = MatrixCostSource(matrix)
        state = IndependentState(3, 2, _groups(template_ids), rng)
        split = Stratification.single({0: 150, 1: 50}).split(0, [0], [1])
        # Only sample template 0.
        for _ in range(10):
            state.sample_one(0, (0,), source, rng)
        est, var = state.estimate(0, split)
        assert var == float("inf")
        assert np.isfinite(est)

    def test_sample_counts(self, simple_population, rng):
        template_ids, matrix = simple_population
        source = MatrixCostSource(matrix)
        state = IndependentState(3, 2, _groups(template_ids), rng)
        for _ in range(7):
            state.sample_one(1, (0, 1), source, rng)
        assert state.sample_count(1) == 7
        assert state.sample_count(0) == 0


class TestDeltaState:
    def test_shared_sample_alignment(self, simple_population, rng):
        template_ids, matrix = simple_population
        source = MatrixCostSource(matrix)
        state = DeltaState(3, 2, _groups(template_ids), rng)
        for _ in range(40):
            state.sample_one((0, 1), source, rng, [0, 1, 2])
        counts, means, m2s = state.diff_template_moments(0, 1)
        assert counts.sum() == 40
        # diffs of aligned queries: config1 = 1.1x config0 roughly
        assert means[counts > 0].mean() < 0

    def test_pair_estimate_sign(self, simple_population, rng):
        template_ids, matrix = simple_population
        source = MatrixCostSource(matrix)
        state = DeltaState(3, 2, _groups(template_ids), rng)
        strat = Stratification.single({0: 150, 1: 50})
        for _ in range(60):
            state.sample_one((0, 1), source, rng, [0, 1, 2])
        mean01, var01 = state.pair_estimate(0, 1, strat)
        assert mean01 < 0  # config 0 cheaper than config 1
        assert var01 >= 0
        mean10, _ = state.pair_estimate(1, 0, strat)
        assert mean10 == pytest.approx(-mean01)

    def test_pair_estimate_exact_at_exhaustion(self, simple_population,
                                               rng):
        template_ids, matrix = simple_population
        source = MatrixCostSource(matrix)
        state = DeltaState(3, 2, _groups(template_ids), rng)
        strat = Stratification.single({0: 150, 1: 50})
        while state.sample_one((0, 1), source, rng, [0, 1, 2]):
            pass
        mean, var = state.pair_estimate(0, 2, strat)
        truth = matrix[:, 0].sum() - matrix[:, 2].sum()
        assert mean == pytest.approx(truth, rel=1e-9)
        assert var == 0.0

    def test_eliminated_config_stops_growing(self, simple_population,
                                             rng):
        template_ids, matrix = simple_population
        source = MatrixCostSource(matrix)
        state = DeltaState(3, 2, _groups(template_ids), rng)
        for _ in range(10):
            state.sample_one((0, 1), source, rng, [0, 1, 2])
        for _ in range(10):
            state.sample_one((0, 1), source, rng, [0, 1])  # drop config 2
        counts_02, _, _ = state.diff_template_moments(0, 2)
        counts_01, _, _ = state.diff_template_moments(0, 1)
        assert counts_02.sum() == 10  # aligned prefix only
        assert counts_01.sum() == 20

    def test_delta_variance_below_independent(self, rng):
        """The §4.2 effect: positive covariance shrinks diff variance."""
        N = 400
        template_ids = np.zeros(N, dtype=int)
        base = np.abs(rng.lognormal(3, 1.5, N))
        matrix = np.column_stack([base, base * 1.08])
        source = MatrixCostSource(matrix)
        strat = Stratification.single({0: N})

        d_state = DeltaState(2, 1, _groups(template_ids), rng)
        for _ in range(50):
            d_state.sample_one((0,), source, rng, [0, 1])
        _, var_delta = d_state.pair_estimate(0, 1, strat)

        i_state = IndependentState(2, 1, _groups(template_ids), rng)
        for _ in range(50):
            i_state.sample_one(0, (0,), source, rng)
            i_state.sample_one(1, (0,), source, rng)
        _, var_0 = i_state.estimate(0, strat)
        _, var_1 = i_state.estimate(1, strat)
        assert var_delta < (var_0 + var_1) / 10
