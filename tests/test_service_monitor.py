"""Tests for drift scoring/triggering and the structured event log."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.service import (
    DriftMonitor,
    EventLog,
    js_divergence,
    read_events,
)


class TestJSDivergence:
    def test_identical_mixes_are_zero(self):
        assert js_divergence([3, 1, 6], [3, 1, 6]) == pytest.approx(0.0)
        # Scale-invariant: only the normalized mix matters.
        assert js_divergence([3, 1, 6], [30, 10, 60]) == pytest.approx(0.0)

    def test_disjoint_supports_are_one(self):
        assert js_divergence([1, 0], [0, 1]) == pytest.approx(1.0)

    def test_symmetric_and_bounded(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            p = rng.random(5)
            q = rng.random(5)
            d = js_divergence(p, q)
            assert 0.0 <= d <= 1.0
            assert d == pytest.approx(js_divergence(q, p))

    def test_validation(self):
        with pytest.raises(ValueError):
            js_divergence([1, 2], [1, 2, 3])
        with pytest.raises(ValueError):
            js_divergence([1, -1], [1, 1])
        with pytest.raises(ValueError):
            js_divergence([0, 0], [1, 1])


class TestDriftMonitor:
    def test_no_reference_never_triggers(self):
        monitor = DriftMonitor(threshold=0.01)
        decision = monitor.check({0: 10}, position=100)
        assert not decision.triggered
        assert decision.reason == "no-reference"

    def test_triggers_at_planted_change_point(self):
        """Simulate the window mix sliding across an abrupt change
        point: the monitor stays quiet before it and fires after."""
        monitor = DriftMonitor(threshold=0.05, cooldown=0)
        monitor.set_reference({0: 90, 1: 10})
        window = 100
        fired_at = None
        for position in range(100, 400, 20):
            # After the change point at 200 the window progressively
            # fills with template 1.
            new = max(0, min(window, position - 200))
            mix = {0: 90 * (window - new) // window + 1,
                   1: 10 * (window - new) // window + new}
            decision = monitor.check(mix, position)
            if decision.triggered and fired_at is None:
                fired_at = position
        assert fired_at is not None
        assert fired_at >= 200
        assert fired_at <= 300   # within one window of the change

    def test_quiet_on_stable_mix(self):
        monitor = DriftMonitor(threshold=0.05)
        monitor.set_reference({0: 50, 1: 50})
        for position in range(0, 1000, 50):
            decision = monitor.check({0: 52, 1: 48}, position)
            assert not decision.triggered
            assert decision.reason == "below-threshold"

    def test_cooldown_blocks_retrigger(self):
        monitor = DriftMonitor(threshold=0.05, cooldown=100)
        monitor.set_reference({0: 100})
        drifted = {0: 10, 1: 90}
        assert monitor.check(drifted, position=50).triggered
        held = monitor.check(drifted, position=100)
        assert not held.triggered
        assert held.reason == "cooldown"
        assert monitor.check(drifted, position=151).triggered

    def test_window_filling_suppresses(self):
        monitor = DriftMonitor(threshold=0.05, min_window_fill=0.5)
        monitor.set_reference({0: 100})
        decision = monitor.check({1: 10}, position=10, window_fill=0.1)
        assert not decision.triggered
        assert decision.reason == "window-filling"

    def test_changed_templates_is_the_invalidation_set(self):
        monitor = DriftMonitor()
        monitor.set_reference({0: 50, 1: 40, 2: 10})
        # Template 0 collapses, template 3 appears, 1 and 2 hold steady.
        changed = monitor.changed_templates({0: 5, 1: 40, 2: 10, 3: 45})
        assert 0 in changed
        assert 3 in changed
        assert 1 not in changed
        assert 2 not in changed

    def test_validation(self):
        with pytest.raises(ValueError):
            DriftMonitor(threshold=0.0)
        with pytest.raises(ValueError):
            DriftMonitor(cooldown=-1)
        with pytest.raises(ValueError):
            DriftMonitor(min_window_fill=1.5)
        monitor = DriftMonitor()
        with pytest.raises(RuntimeError):
            monitor.score({0: 1})
        with pytest.raises(ValueError):
            monitor.set_reference({})


class TestEventLog:
    def test_in_memory_sequencing(self):
        log = EventLog()
        log.emit("a", x=1)
        log.emit("b", y=2)
        log.emit("a", x=3)
        assert len(log) == 3
        kinds = [e["kind"] for e in log.events]
        assert kinds == ["a", "b", "a"]
        seqs = [e["seq"] for e in log.events]
        assert seqs == sorted(seqs)
        assert [e["x"] for e in log.of_kind("a")] == [1, 3]

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("service_start", statements=10)
            log.emit("retune_end", chosen_index=2)
        events = read_events(path)
        assert [e["kind"] for e in events] == [
            "service_start", "retune_end",
        ]
        assert events[1]["chosen_index"] == 2

    def test_read_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq": 0, "kind": "ok"}\nnot json\n')
        with pytest.raises(ValueError):
            read_events(path)

    def test_read_rejects_non_monotonic_seq(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"seq": 5, "kind": "a"}) + "\n"
            + json.dumps({"seq": 5, "kind": "b"}) + "\n"
        )
        with pytest.raises(ValueError):
            read_events(path)
