"""Tests for drift scoring/triggering and the structured event log."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.service import (
    DriftMonitor,
    EventLog,
    js_divergence,
    read_events,
)


class TestJSDivergence:
    def test_identical_mixes_are_zero(self):
        assert js_divergence([3, 1, 6], [3, 1, 6]) == pytest.approx(0.0)
        # Scale-invariant: only the normalized mix matters.
        assert js_divergence([3, 1, 6], [30, 10, 60]) == pytest.approx(0.0)

    def test_disjoint_supports_are_one(self):
        assert js_divergence([1, 0], [0, 1]) == pytest.approx(1.0)

    def test_symmetric_and_bounded(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            p = rng.random(5)
            q = rng.random(5)
            d = js_divergence(p, q)
            assert 0.0 <= d <= 1.0
            assert d == pytest.approx(js_divergence(q, p))

    def test_validation(self):
        with pytest.raises(ValueError):
            js_divergence([1, 2], [1, 2, 3])
        with pytest.raises(ValueError):
            js_divergence([1, -1], [1, 1])
        with pytest.raises(ValueError):
            js_divergence([0, 0], [1, 1])


class TestDriftMonitor:
    def test_no_reference_never_triggers(self):
        monitor = DriftMonitor(threshold=0.01)
        decision = monitor.check({0: 10}, position=100)
        assert not decision.triggered
        assert decision.reason == "no-reference"

    def test_triggers_at_planted_change_point(self):
        """Simulate the window mix sliding across an abrupt change
        point: the monitor stays quiet before it and fires after."""
        monitor = DriftMonitor(threshold=0.05, cooldown=0)
        monitor.set_reference({0: 90, 1: 10})
        window = 100
        fired_at = None
        for position in range(100, 400, 20):
            # After the change point at 200 the window progressively
            # fills with template 1.
            new = max(0, min(window, position - 200))
            mix = {0: 90 * (window - new) // window + 1,
                   1: 10 * (window - new) // window + new}
            decision = monitor.check(mix, position)
            if decision.triggered and fired_at is None:
                fired_at = position
        assert fired_at is not None
        assert fired_at >= 200
        assert fired_at <= 300   # within one window of the change

    def test_quiet_on_stable_mix(self):
        monitor = DriftMonitor(threshold=0.05)
        monitor.set_reference({0: 50, 1: 50})
        for position in range(0, 1000, 50):
            decision = monitor.check({0: 52, 1: 48}, position)
            assert not decision.triggered
            assert decision.reason == "below-threshold"

    def test_cooldown_blocks_retrigger(self):
        monitor = DriftMonitor(threshold=0.05, cooldown=100)
        monitor.set_reference({0: 100})
        drifted = {0: 10, 1: 90}
        assert monitor.check(drifted, position=50).triggered
        held = monitor.check(drifted, position=100)
        assert not held.triggered
        assert held.reason == "cooldown"
        assert monitor.check(drifted, position=151).triggered

    def test_window_filling_suppresses(self):
        monitor = DriftMonitor(threshold=0.05, min_window_fill=0.5)
        monitor.set_reference({0: 100})
        decision = monitor.check({1: 10}, position=10, window_fill=0.1)
        assert not decision.triggered
        assert decision.reason == "window-filling"

    def test_changed_templates_is_the_invalidation_set(self):
        monitor = DriftMonitor()
        monitor.set_reference({0: 50, 1: 40, 2: 10})
        # Template 0 collapses, template 3 appears, 1 and 2 hold steady.
        changed = monitor.changed_templates({0: 5, 1: 40, 2: 10, 3: 45})
        assert 0 in changed
        assert 3 in changed
        assert 1 not in changed
        assert 2 not in changed

    def test_validation(self):
        with pytest.raises(ValueError):
            DriftMonitor(threshold=0.0)
        with pytest.raises(ValueError):
            DriftMonitor(cooldown=-1)
        with pytest.raises(ValueError):
            DriftMonitor(min_window_fill=1.5)
        monitor = DriftMonitor()
        with pytest.raises(RuntimeError):
            monitor.score({0: 1})
        with pytest.raises(ValueError):
            monitor.set_reference({})


class TestEventLog:
    def test_in_memory_sequencing(self):
        log = EventLog()
        log.emit("a", x=1)
        log.emit("b", y=2)
        log.emit("a", x=3)
        assert len(log) == 3
        kinds = [e["kind"] for e in log.events]
        assert kinds == ["a", "b", "a"]
        seqs = [e["seq"] for e in log.events]
        assert seqs == sorted(seqs)
        assert [e["x"] for e in log.of_kind("a")] == [1, 3]

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("service_start", statements=10)
            log.emit("retune_end", chosen_index=2)
        events = read_events(path)
        assert [e["kind"] for e in events] == [
            "service_start", "retune_end",
        ]
        assert events[1]["chosen_index"] == 2

    def test_read_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq": 0, "kind": "ok"}\nnot json\n')
        with pytest.raises(ValueError):
            read_events(path)

    def test_read_rejects_non_monotonic_seq(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"seq": 5, "kind": "a"}) + "\n"
            + json.dumps({"seq": 5, "kind": "b"}) + "\n"
        )
        with pytest.raises(ValueError):
            read_events(path)


class TestDegenerateWindows:
    """Empty or zero-mass windows must never crash a drift check."""

    def _monitor(self) -> DriftMonitor:
        monitor = DriftMonitor(threshold=0.05)
        monitor.set_reference({1: 10, 2: 5})
        return monitor

    def test_check_empty_frequencies(self):
        decision = self._monitor().check({}, position=100)
        assert not decision.triggered
        assert decision.reason == "empty-window"
        assert decision.score == 0.0

    def test_check_zero_counts(self):
        decision = self._monitor().check({1: 0, 2: 0}, position=100)
        assert not decision.triggered
        assert decision.reason == "empty-window"

    def test_score_zero_mass_is_zero(self):
        assert self._monitor().score({}) == 0.0
        assert self._monitor().score({1: 0}) == 0.0

    def test_changed_templates_zero_mass_is_empty(self):
        assert self._monitor().changed_templates({}) == set()
        assert self._monitor().changed_templates({1: 0, 2: 0}) == set()

    def test_normal_path_unaffected(self):
        monitor = self._monitor()
        decision = monitor.check({1: 1, 2: 14}, position=100)
        assert decision.reason in ("triggered", "below-threshold")
        assert decision.score > 0.0

    def test_state_roundtrip(self):
        monitor = self._monitor()
        monitor.check({1: 1, 2: 20}, position=50)
        payload = json.loads(json.dumps(monitor.state_dict()))
        fresh = DriftMonitor(threshold=0.05)
        fresh.restore_state(payload)
        assert fresh.reference == monitor.reference
        assert fresh._last_trigger == monitor._last_trigger


class TestEventLogCrashRecovery:
    """Reopening an event log must append, not truncate (PR 5 bugfix)."""

    def test_reopen_appends_and_continues_seq(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("service_start", statements=10)
            log.emit("retune_end", chosen_index=2)
        with EventLog(path) as log:
            assert log.next_seq == 2
            log.emit("service_resume", position=5)
        events = read_events(path)
        assert [e["kind"] for e in events] == [
            "service_start", "retune_end", "service_resume",
        ]
        assert [e["seq"] for e in events] == [0, 1, 2]

    def test_emit_after_close_raises(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("a")
        log.close()
        with pytest.raises(RuntimeError):
            log.emit("b")
        # The on-disk history was not touched by the refused emit.
        assert [e["kind"] for e in read_events(path)] == ["a"]

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            json.dumps({"seq": 0, "kind": "a"}) + "\n"
            + '{"seq": 1, "kind": "b"'  # crash mid-write: no newline
        )
        with EventLog(path) as log:
            assert log.next_seq == 1
            log.emit("c")
        events = read_events(path)
        assert [e["kind"] for e in events] == ["a", "c"]
        assert [e["seq"] for e in events] == [0, 1]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"seq": 0, "kind": "a"}\n'
            "garbage\n"
            '{"seq": 1, "kind": "b"}\n'
        )
        with pytest.raises(ValueError):
            EventLog(path)

    def test_fresh_file_starts_at_zero(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            assert log.next_seq == 0
            log.emit("a")
        assert read_events(path)[0]["seq"] == 0
