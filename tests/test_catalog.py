"""Tests for the catalog substrate: zipf, schema, statistics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import (
    Column,
    ColumnType,
    ForeignKey,
    Histogram,
    Schema,
    StatisticsCatalog,
    Table,
    top_k_mass,
    zipf_cdf,
    zipf_pmf,
    zipf_weights,
)


class TestZipf:
    def test_pmf_sums_to_one(self):
        pmf = zipf_pmf(100, 1.0)
        assert pmf.sum() == pytest.approx(1.0)

    def test_uniform_when_theta_zero(self):
        pmf = zipf_pmf(10, 0.0)
        assert np.allclose(pmf, 0.1)

    def test_monotone_decreasing(self):
        pmf = zipf_pmf(50, 1.0)
        assert (np.diff(pmf) <= 1e-15).all()

    def test_head_mass_grows_with_theta(self):
        light = top_k_mass(1000, 0.5, 10)
        heavy = top_k_mass(1000, 1.5, 10)
        assert heavy > light

    def test_cdf_ends_at_one(self):
        assert zipf_cdf(37, 1.0)[-1] == pytest.approx(1.0)

    def test_weights_first_is_one(self):
        assert zipf_weights(5, 2.0)[0] == pytest.approx(1.0)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            zipf_pmf(0, 1.0)
        with pytest.raises(ValueError):
            zipf_pmf(5, -0.1)
        with pytest.raises(ValueError):
            top_k_mass(5, 1.0, -1)

    def test_top_k_capped_at_n(self):
        assert top_k_mass(5, 1.0, 100) == pytest.approx(1.0)

    @given(
        n=st.integers(1, 500),
        theta=st.floats(0.0, 3.0, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_pmf_valid_distribution(self, n, theta):
        pmf = zipf_pmf(n, theta)
        assert len(pmf) == n
        assert (pmf >= 0).all()
        assert pmf.sum() == pytest.approx(1.0)


class TestSchema:
    def test_column_width_defaults(self):
        col = Column("c", ColumnType.STRING, distinct_count=10)
        assert col.width == ColumnType.WIDTH_BYTES[ColumnType.STRING]

    def test_column_rejects_bad_type(self):
        with pytest.raises(ValueError):
            Column("c", "blob", distinct_count=10)

    def test_column_rejects_zero_distinct(self):
        with pytest.raises(ValueError):
            Column("c", distinct_count=0)

    def test_table_duplicate_column(self):
        table = Table("t", 100)
        table.add_column(Column("a"))
        with pytest.raises(ValueError):
            table.add_column(Column("a"))

    def test_table_pages_positive(self):
        table = Table("t", 0)
        table.add_column(Column("a"))
        assert table.pages() == 1

    def test_table_pages_scale_with_rows(self):
        small = Table("s", 1_000).add_column(Column("a"))
        large = Table("l", 1_000_000).add_column(Column("a"))
        assert large.pages() > small.pages()

    def test_table_row_width(self):
        table = Table("t", 10)
        table.add_column(Column("a", ColumnType.INT))
        table.add_column(Column("b", ColumnType.STRING))
        assert table.row_width == 8 + 32

    def test_missing_column_raises_keyerror_with_context(self):
        table = Table("t", 10).add_column(Column("a"))
        with pytest.raises(KeyError, match="no column"):
            table.column("zzz")

    def test_schema_fk_validation(self, small_schema):
        with pytest.raises(KeyError):
            small_schema.add_foreign_key(
                ForeignKey("orders", "nope", "customer", "c_id")
            )

    def test_schema_duplicate_table(self, small_schema):
        with pytest.raises(ValueError):
            small_schema.add_table(Table("orders", 5))

    def test_fk_between(self, small_schema):
        fk = small_schema.fk_between("customer", "orders")
        assert fk is not None
        assert fk.child_table == "orders"
        assert small_schema.fk_between("orders", "orders") is None

    def test_join_edges(self, small_schema):
        assert ("orders", "customer") in small_schema.join_edges()

    def test_len_iter_contains(self, small_schema):
        assert len(small_schema) == 2
        assert "orders" in small_schema
        assert {t.name for t in small_schema} == {"orders", "customer"}


class TestHistogram:
    def test_masses_sum_to_one(self):
        hist = Histogram(zipf_pmf(1000, 1.0), bucket_count=32)
        assert sum(b.mass for b in hist.buckets) == pytest.approx(1.0)

    def test_buckets_cover_domain(self):
        hist = Histogram(zipf_pmf(500, 1.0), bucket_count=16)
        assert hist.buckets[0].lo == 0
        assert hist.buckets[-1].hi == 499
        for prev, cur in zip(hist.buckets, hist.buckets[1:]):
            assert cur.lo == prev.hi + 1

    def test_eq_head_accurate_under_skew(self):
        pmf = zipf_pmf(1000, 1.0)
        hist = Histogram(pmf, bucket_count=32)
        # The most frequent value sits alone in its bucket.
        assert hist.eq_selectivity(0) == pytest.approx(pmf[0], rel=0.01)

    def test_eq_out_of_domain_is_zero(self):
        hist = Histogram(zipf_pmf(100, 1.0))
        assert hist.eq_selectivity(-1) == 0.0
        assert hist.eq_selectivity(100) == 0.0

    def test_range_full_domain_is_one(self):
        hist = Histogram(zipf_pmf(100, 1.0))
        assert hist.range_selectivity(0, 99) == pytest.approx(1.0)

    def test_range_empty(self):
        hist = Histogram(zipf_pmf(100, 1.0))
        assert hist.range_selectivity(50, 40) == 0.0

    def test_range_monotone_in_width(self):
        hist = Histogram(zipf_pmf(1000, 1.0))
        narrow = hist.range_selectivity(100, 200)
        wide = hist.range_selectivity(100, 500)
        assert wide >= narrow

    def test_uniform_histogram_exact(self):
        pmf = zipf_pmf(128, 0.0)
        hist = Histogram(pmf, bucket_count=16)
        assert hist.eq_selectivity(64) == pytest.approx(1 / 128, rel=0.05)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Histogram(np.array([]))

    @given(
        n=st.integers(2, 300),
        theta=st.floats(0.0, 2.0),
        buckets=st.integers(1, 64),
    )
    @settings(max_examples=40, deadline=None)
    def test_histogram_mass_conservation(self, n, theta, buckets):
        hist = Histogram(zipf_pmf(n, theta), bucket_count=buckets)
        assert sum(b.mass for b in hist.buckets) == pytest.approx(1.0)
        assert hist.range_selectivity(0, n - 1) == pytest.approx(1.0)


class TestStatistics:
    def test_exact_vs_estimated_eq(self, small_schema):
        stats = StatisticsCatalog(small_schema)
        col = stats.column("customer", "c_region")
        # The head value always sits alone in its equi-depth bucket.
        assert col.estimate_eq(0) == pytest.approx(col.exact_eq(0))
        # Bucket-level mass is conserved even where values share buckets.
        total_estimated = sum(col.estimate_eq(v) for v in range(5))
        assert total_estimated == pytest.approx(1.0, rel=1e-6)

    def test_exact_range_matches_cdf(self, small_schema):
        stats = StatisticsCatalog(small_schema)
        col = stats.column("orders", "o_cust")
        assert col.exact_range(0, col.distinct_count - 1) == pytest.approx(
            1.0
        )
        assert col.exact_range(10, 5) == 0.0

    def test_estimate_in(self, small_schema):
        stats = StatisticsCatalog(small_schema)
        col = stats.column("customer", "c_region")
        both = col.estimate_in([0, 1])
        assert both == pytest.approx(
            col.estimate_eq(0) + col.estimate_eq(1)
        )
        # Duplicates are counted once.
        assert col.estimate_in([0, 0]) == pytest.approx(col.estimate_eq(0))

    def test_lazy_build(self, small_schema):
        stats = StatisticsCatalog(small_schema)
        assert not stats._tables
        stats.table("orders")
        assert set(stats._tables) == {"orders"}

    def test_missing_column_error(self, small_schema):
        stats = StatisticsCatalog(small_schema)
        with pytest.raises(KeyError, match="no statistics"):
            stats.column("orders", "nope")
