"""Tests for report formatting helpers and the published-values module."""

from __future__ import annotations

import pytest

from repro.experiments import (
    SECTION6_FRACTIONS,
    TABLE1_SECONDS,
    TABLE2_TPCD,
    TABLE3_CRM,
    format_kv,
    format_series,
    format_table,
)


class TestPaperValues:
    def test_table1_shape(self):
        assert set(TABLE1_SECONDS) == {10.0, 1.0, 0.1}
        # linear-ish growth in 1/rho
        assert TABLE1_SECONDS[0.1] > TABLE1_SECONDS[1.0] > \
            TABLE1_SECONDS[10.0]

    @pytest.mark.parametrize("table", [TABLE2_TPCD, TABLE3_CRM])
    def test_multi_config_rows(self, table):
        methods = [row.method for row in table]
        assert methods == ["Delta-Sampling", "No Strat.", "Equal Alloc."]
        for row in table:
            assert set(row.true_prcs) == {50, 100, 500}
            for p in row.true_prcs.values():
                assert 0 < p <= 1
            for d in row.max_delta_pct.values():
                assert d >= 0

    def test_primitive_beats_baselines_in_paper(self):
        delta, nostrat, equal = TABLE2_TPCD
        for k in (50, 100, 500):
            assert delta.true_prcs[k] > nostrat.true_prcs[k]
            assert delta.true_prcs[k] > equal.true_prcs[k]
            assert delta.max_delta_pct[k] < nostrat.max_delta_pct[k]

    def test_section6_fractions_shrink(self):
        assert SECTION6_FRACTIONS[131_000] < SECTION6_FRACTIONS[13_000]


class TestFormatting:
    def test_table_handles_mixed_types(self):
        out = format_table(["a", "b"], [[1, 2.5], ["x", None]])
        assert "None" in out
        assert out.count("\n") == 3

    def test_table_alignment_width(self):
        out = format_table(["col"], [["verylongcontent"], ["x"]])
        lines = out.splitlines()
        assert len(lines[1]) == len(lines[2])  # separator spans width

    def test_series_mismatched_floats_formatted(self):
        out = format_series("x", [1], {"s": [0.123456]})
        assert "0.123" in out

    def test_kv_empty(self):
        assert format_kv({}) == ""

    def test_kv_alignment(self):
        out = format_kv({"a": 1, "longer_key": 2})
        lines = out.splitlines()
        assert lines[0].index(":") == lines[1].index(":")
