"""Cross-cutting property-based tests on core invariants."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds._dp import apply_group, group_intervals
from repro.core import (
    ConfigurationSelector,
    MatrixCostSource,
    SelectorOptions,
    pair_target_variance,
    pairwise_prcs,
)


class TestGroupedDpEquivalence:
    """The grouped max-plus transition must agree with the naive
    per-item DP on every instance."""

    @staticmethod
    def _naive_dp(items, kind):
        # items: list of (lo_val, hi_val, d)
        state = {0: 0.0}
        better = max if kind == "max" else min
        for lo, hi, d in items:
            new = {}
            for offset, value in state.items():
                for shift, add in ((0, lo), (d, hi)):
                    key = offset + shift
                    candidate = value + add
                    if key not in new:
                        new[key] = candidate
                    else:
                        new[key] = better(new[key], candidate)
            state = new
        return state

    @given(
        d=st.integers(1, 6),
        m=st.integers(1, 6),
        lo=st.floats(0, 50),
        gain=st.floats(0, 100),
        kind=st.sampled_from(["max", "min"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_single_group_matches_naive(self, d, m, lo, gain, kind):
        hi = lo + gain
        out = apply_group(np.zeros(1), d, m, base=lo, alpha=gain,
                          kind=kind)
        naive = self._naive_dp([(lo, hi, d)] * m, kind)
        for offset, value in naive.items():
            assert out[offset] == pytest.approx(value, abs=1e-6)
        # unreachable offsets stay at the fill value
        reachable = set(naive)
        for offset in range(len(out)):
            if offset not in reachable:
                assert not np.isfinite(out[offset])

    @given(
        seed=st.integers(0, 10_000),
        kind=st.sampled_from(["max", "min"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_multi_group_matches_naive(self, seed, kind):
        rng = np.random.default_rng(seed)
        groups = []
        items = []
        for _ in range(rng.integers(1, 4)):
            d = int(rng.integers(1, 5))
            m = int(rng.integers(1, 4))
            lo = float(rng.uniform(0, 20))
            gain = float(rng.uniform(0, 30))
            groups.append((d, m, lo, gain))
            items.extend([(lo, lo + gain, d)] * m)
        state = np.zeros(1)
        for d, m, lo, gain in groups:
            state = apply_group(state, d, m, base=lo, alpha=gain,
                                kind=kind)
        naive = self._naive_dp(items, kind)
        for offset, value in naive.items():
            assert state[offset] == pytest.approx(value, abs=1e-6)


class TestPrcsInversion:
    @given(
        gap=st.floats(0.01, 1e6),
        delta=st.floats(0, 1e5),
        alpha=st.floats(0.55, 0.999),
    )
    @settings(max_examples=100, deadline=None)
    def test_target_variance_inverts_prcs(self, gap, delta, alpha):
        v = pair_target_variance(gap, delta, alpha)
        if np.isfinite(v) and v > 0:
            assert pairwise_prcs(gap, v, delta) == pytest.approx(
                alpha, abs=1e-6
            )


class TestSelectorRobustness:
    @given(
        seed=st.integers(0, 500),
        k=st.integers(2, 5),
        scheme=st.sampled_from(["delta", "independent"]),
    )
    @settings(max_examples=15, deadline=None)
    def test_always_returns_valid_selection(self, seed, k, scheme):
        rng = np.random.default_rng(seed)
        n = 120
        template_ids = rng.integers(0, 4, n)
        matrix = np.abs(rng.lognormal(1, 1, (n, k))) + 1e-6
        source = MatrixCostSource(matrix)
        result = ConfigurationSelector(
            source, template_ids,
            SelectorOptions(alpha=0.9, scheme=scheme, n_min=5,
                            consecutive=2),
            rng=rng,
        ).run()
        assert 0 <= result.best_index < k
        assert 0.0 <= result.prcs <= 1.0
        assert result.optimizer_calls <= n * k
        assert result.terminated_by in ("alpha", "exhausted",
                                        "max_calls")
        assert np.isfinite(result.estimates).all()

    def test_constant_costs_tie(self, rng):
        """All configurations identical: any pick is correct; the
        procedure must terminate (via exhaustion) and not crash."""
        matrix = np.full((80, 3), 7.0)
        source = MatrixCostSource(matrix)
        result = ConfigurationSelector(
            source, np.zeros(80, dtype=int),
            SelectorOptions(alpha=0.9, n_min=5, consecutive=3),
            rng=rng,
        ).run()
        assert result.terminated_by in ("alpha", "exhausted")
        assert 0 <= result.best_index < 3
