"""Tests for the batch-means selection baseline (§2 related work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BatchingComparison,
    ConfigurationSelector,
    MatrixCostSource,
    SelectorOptions,
)


@pytest.fixture
def easy_matrix(rng):
    base = np.abs(rng.lognormal(2, 1.2, 2000))
    return np.column_stack([base, base * 1.08, base * 1.2])


class TestBatchingComparison:
    def test_selects_correctly(self, easy_matrix, rng):
        source = MatrixCostSource(easy_matrix)
        result = BatchingComparison(
            source, batch_size=150, batches=8, rng=rng
        ).run()
        assert result.best_index == source.true_best()
        assert 0 <= result.prcs <= 1
        assert result.batch_means.shape == (3, 8)

    def test_call_demand_is_fixed(self, easy_matrix, rng):
        source = MatrixCostSource(easy_matrix)
        result = BatchingComparison(
            source, batch_size=100, batches=5, rng=rng
        ).run()
        # Distinct (query, config) pairs touched: up to size*batches
        # per configuration.
        assert result.optimizer_calls <= 100 * 5 * 3
        assert result.optimizer_calls >= 100 * 5  # at least one config

    def test_resamples_when_workload_small(self, rng):
        base = np.abs(rng.lognormal(2, 1, 50))
        matrix = np.column_stack([base, base * 1.5])
        source = MatrixCostSource(matrix)
        result = BatchingComparison(
            source, batch_size=100, batches=4, rng=rng
        ).run()
        assert result.best_index == 0

    def test_validation(self, easy_matrix, rng):
        source = MatrixCostSource(easy_matrix)
        with pytest.raises(ValueError):
            BatchingComparison(source, batch_size=0, rng=rng)
        with pytest.raises(ValueError):
            BatchingComparison(source, batches=1, rng=rng)

    def test_far_more_expensive_than_primitive(self, easy_matrix):
        """The §2 claim: batching nullifies the sampling gain."""
        source_b = MatrixCostSource(easy_matrix)
        batching = BatchingComparison(
            source_b, batch_size=200, batches=8,
            rng=np.random.default_rng(1),
        ).run()

        source_p = MatrixCostSource(easy_matrix)
        primitive = ConfigurationSelector(
            source_p, np.zeros(len(easy_matrix), dtype=int),
            SelectorOptions(alpha=0.9, stratify="none", consecutive=5),
            rng=np.random.default_rng(1),
        ).run()

        assert batching.best_index == primitive.best_index
        assert primitive.optimizer_calls < batching.optimizer_calls / 3
