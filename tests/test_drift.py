"""Tests for workload drift simulation and ranking stability."""

from __future__ import annotations

import numpy as np
import pytest

from repro.queries import ColumnRef, QueryType
from repro.workload import WorkloadGenerator
from repro.workload.drift import (
    DriftReport,
    change_point_workload,
    drifting_workload,
    ranking_stability,
    window_totals,
)
from repro.workload.generator import FilterSlot, QueryTemplate


@pytest.fixture
def two_template_generator(small_schema):
    lookup = QueryTemplate(
        name="lookup", qtype=QueryType.SELECT, tables=("orders",),
        slots=(FilterSlot(ColumnRef("orders", "o_id"), "eq"),),
        select_columns=(ColumnRef("orders", "o_total"),),
    )
    datescan = QueryTemplate(
        name="datescan", qtype=QueryType.SELECT, tables=("orders",),
        slots=(FilterSlot(ColumnRef("orders", "o_date"), "range",
                          min_frac=0.001, max_frac=0.01),),
        select_columns=(ColumnRef("orders", "o_total"),),
    )
    return WorkloadGenerator(small_schema, [lookup, datescan])


class TestDriftingWorkload:
    def test_mix_shifts_head_to_tail(self, two_template_generator, rng):
        wl = drifting_workload(
            two_template_generator, 600, [1.0, 0.0], [0.0, 1.0], rng
        )
        head = wl.template_ids[:60]
        tail = wl.template_ids[-60:]
        # Head is dominated by one template, tail by the other (the
        # linear drift leaves a small admixture near the edges).
        head_mode = np.bincount(head).argmax()
        tail_mode = np.bincount(tail).argmax()
        assert (head == head_mode).mean() > 0.85
        assert (tail == tail_mode).mean() > 0.85
        assert head_mode != tail_mode

    def test_constant_weights_no_drift(self, two_template_generator,
                                       rng):
        wl = drifting_workload(
            two_template_generator, 400, [1.0, 1.0], [1.0, 1.0], rng
        )
        share_head = (wl.template_ids[:200] == 0).mean()
        share_tail = (wl.template_ids[200:] == 0).mean()
        assert abs(share_head - share_tail) < 0.15

    def test_change_point_is_abrupt(self, two_template_generator, rng):
        wl = change_point_workload(
            two_template_generator, 400, [1.0, 0.0], [0.0, 1.0], 250, rng
        )
        assert wl.size == 400
        # Pure mixes on either side of the planted change point.
        assert len(np.unique(wl.template_ids[:250])) == 1
        assert len(np.unique(wl.template_ids[250:])) == 1
        assert wl.template_ids[0] != wl.template_ids[-1]

    def test_change_point_validation(self, two_template_generator, rng):
        with pytest.raises(ValueError):
            change_point_workload(
                two_template_generator, 10, [1, 0], [0, 1], 0, rng
            )
        with pytest.raises(ValueError):
            change_point_workload(
                two_template_generator, 10, [1, 0], [0, 1], 10, rng
            )
        with pytest.raises(ValueError):
            change_point_workload(
                two_template_generator, 1, [1, 0], [0, 1], 1, rng
            )

    def test_validation(self, two_template_generator, rng):
        with pytest.raises(ValueError):
            drifting_workload(
                two_template_generator, 10, [1.0], [0.5, 0.5], rng
            )
        with pytest.raises(ValueError):
            drifting_workload(
                two_template_generator, 10, [0.0, 0.0], [1.0, 0.0], rng
            )
        with pytest.raises(ValueError):
            drifting_workload(
                two_template_generator, 0, [1, 0], [0, 1], rng
            )


class TestWindowAnalysis:
    def test_window_totals_shape_and_sum(
        self, two_template_generator, optimizer, empty_config,
        indexed_config, rng,
    ):
        wl = drifting_workload(
            two_template_generator, 100, [1, 0], [0, 1], rng
        )
        costs = window_totals(
            wl, optimizer, [empty_config, indexed_config], windows=4
        )
        assert costs.shape == (4, 2)
        total = wl.total_cost(optimizer, empty_config)
        assert costs[:, 0].sum() == pytest.approx(total)

    def test_drift_flips_the_winner(
        self, two_template_generator, optimizer, rng
    ):
        """A trace drifting from lookups to scans flips which index
        configuration wins."""
        from repro.physical import Configuration, Index

        lookup_cfg = Configuration(
            [Index("orders", ("o_id",), ("o_total",))], name="for-lookups"
        )
        scan_cfg = Configuration(
            [Index("orders", ("o_date",), ("o_total",))],
            name="for-datescans",
        )
        wl = drifting_workload(
            two_template_generator, 300, [1, 0], [0, 1], rng
        )
        costs = window_totals(
            wl, optimizer, [lookup_cfg, scan_cfg], windows=5
        )
        report = ranking_stability(costs)
        assert report.head_choice == 0
        assert report.drifted
        assert report.per_window_best[-1] == 1
        assert report.final_regret > 0

    def test_stable_without_drift(
        self, two_template_generator, optimizer, empty_config, rng
    ):
        from repro.physical import Configuration, Index

        cfg = Configuration([Index("orders", ("o_id",), ("o_total",))])
        wl = drifting_workload(
            two_template_generator, 200, [1, 0], [1, 0], rng
        )
        costs = window_totals(wl, optimizer, [cfg, empty_config],
                              windows=4)
        report = ranking_stability(costs)
        assert not report.drifted
        assert report.stable_windows == 4
        assert report.final_regret == pytest.approx(0.0)

    def test_ranking_stability_validation(self):
        with pytest.raises(ValueError):
            ranking_stability(np.zeros((3, 4, 2)))
        with pytest.raises(ValueError):
            ranking_stability(np.zeros((0, 3)))
        with pytest.raises(ValueError):
            ranking_stability(np.zeros((3, 0)))

    def test_single_window_trace(self):
        """A 1-D cost vector is one window: stable, zero regret."""
        report = ranking_stability(np.array([3.0, 1.0, 2.0]))
        assert report.head_choice == 1
        assert report.per_window_best == (1,)
        assert report.stable_windows == 1
        assert not report.drifted
        assert report.final_regret == pytest.approx(0.0)

    def test_empty_tail_windows_carry_winner_forward(self):
        """All-zero (empty) windows inherit the previous winner and are
        skipped by the regret computation."""
        costs = np.array([
            [5.0, 9.0],
            [6.0, 8.0],
            [0.0, 0.0],   # empty tail window (windows > statements)
        ])
        report = ranking_stability(costs)
        assert report.head_choice == 0
        assert report.per_window_best == (0, 0, 0)
        assert report.stable_windows == 3
        assert not report.drifted
        # Regret comes from the last non-empty window, where the head
        # choice still wins.
        assert report.final_regret == pytest.approx(0.0)

    def test_all_empty_windows_default(self):
        report = ranking_stability(np.zeros((4, 3)))
        assert report.head_choice == 0
        assert report.stable_windows == 4
        assert report.final_regret == pytest.approx(0.0)
