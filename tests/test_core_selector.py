"""End-to-end tests of the selection procedure (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ConfigurationSelector,
    MatrixCostSource,
    OptimizerCostSource,
    SelectorOptions,
)
from repro.core.progressive import propose_split
from repro.core.stratification import Stratification


def make_population(
    rng: np.random.Generator,
    n: int = 1500,
    k: int = 3,
    templates: int = 8,
    rel_gaps=(0.0, 0.06, 0.12),
):
    """Heavy-tailed template costs, strongly correlated across configs."""
    template_ids = rng.integers(0, templates, size=n)
    base = np.exp(rng.normal(3, 2, size=templates))[template_ids]
    base = base * np.exp(rng.normal(0, 0.3, size=n))
    matrix = np.empty((n, k))
    for c in range(k):
        noise = np.exp(rng.normal(0, 0.1, size=n))
        matrix[:, c] = base * (1.0 + rel_gaps[c]) * noise
    return template_ids, matrix


class TestSelectorBasics:
    @pytest.mark.parametrize("scheme", ["delta", "independent"])
    @pytest.mark.parametrize("stratify", ["none", "progressive", "fine"])
    def test_selects_correctly(self, rng, scheme, stratify):
        template_ids, matrix = make_population(rng)
        source = MatrixCostSource(matrix)
        options = SelectorOptions(
            alpha=0.9, scheme=scheme, stratify=stratify
        )
        result = ConfigurationSelector(
            source, template_ids, options, rng=rng
        ).run()
        assert result.best_index == source.true_best()
        assert result.prcs > 0.9 or result.terminated_by == "exhausted"

    def test_fewer_calls_than_exhaustive(self, rng):
        template_ids, matrix = make_population(rng)
        source = MatrixCostSource(matrix)
        result = ConfigurationSelector(
            source, template_ids, SelectorOptions(alpha=0.9), rng=rng
        ).run()
        assert result.optimizer_calls < matrix.size

    def test_delta_cheaper_than_independent(self, rng):
        """§4.2: Delta Sampling needs fewer calls on correlated costs."""
        template_ids, matrix = make_population(rng)
        calls = {}
        for scheme in ("delta", "independent"):
            source = MatrixCostSource(matrix)
            result = ConfigurationSelector(
                source, template_ids,
                SelectorOptions(alpha=0.9, scheme=scheme, stratify="none",
                                consecutive=5),
                rng=np.random.default_rng(77),
            ).run()
            calls[scheme] = result.optimizer_calls
        assert calls["delta"] < calls["independent"]

    def test_history_recorded(self, rng):
        template_ids, matrix = make_population(rng)
        source = MatrixCostSource(matrix)
        result = ConfigurationSelector(
            source, template_ids, SelectorOptions(alpha=0.9), rng=rng
        ).run()
        assert len(result.history) >= 1
        calls, prcs = result.history[-1]
        assert 0 <= prcs <= 1

    def test_estimates_close_to_truth(self, rng):
        template_ids, matrix = make_population(rng)
        source = MatrixCostSource(matrix)
        result = ConfigurationSelector(
            source, template_ids, SelectorOptions(alpha=0.95), rng=rng
        ).run()
        truth = matrix.sum(axis=0)
        rel_err = np.abs(result.estimates - truth) / truth
        assert rel_err.max() < 0.25

    def test_template_ids_length_mismatch(self, rng):
        _tids, matrix = make_population(rng)
        with pytest.raises(ValueError):
            ConfigurationSelector(
                MatrixCostSource(matrix), np.zeros(3), rng=rng
            )


class TestDeltaSensitivity:
    def test_delta_stops_early_on_near_ties(self, rng):
        """A large sensitivity lets near-identical configs finish fast."""
        template_ids = rng.integers(0, 5, size=1000)
        base = np.abs(rng.lognormal(3, 1.5, 1000))
        matrix = np.column_stack([base, base * 1.001])  # ~0.1% apart
        totals = matrix.sum(axis=0)
        big_delta = float(abs(totals[1] - totals[0]) * 20)

        strict = ConfigurationSelector(
            MatrixCostSource(matrix), template_ids,
            SelectorOptions(alpha=0.95, delta=0.0, stratify="none",
                            consecutive=3),
            rng=np.random.default_rng(5),
        ).run()
        lenient = ConfigurationSelector(
            MatrixCostSource(matrix), template_ids,
            SelectorOptions(alpha=0.95, delta=big_delta, stratify="none",
                            consecutive=3),
            rng=np.random.default_rng(5),
        ).run()
        assert lenient.optimizer_calls < strict.optimizer_calls

    def test_near_tie_resolved_correctly_on_tiny_workload(self, rng):
        """Near-identical configs on a tiny workload: the run either
        exhausts the workload (estimates exact) or converges via the
        shrinking finite-population correction — and is correct either
        way."""
        template_ids = rng.integers(0, 3, size=60)
        base = np.abs(rng.lognormal(2, 1, 60))
        matrix = np.column_stack([base, base * 1.0001])
        result = ConfigurationSelector(
            MatrixCostSource(matrix), template_ids,
            SelectorOptions(alpha=0.99, stratify="none", consecutive=10),
            rng=rng,
        ).run()
        assert result.terminated_by in ("exhausted", "alpha")
        assert result.best_index == int(np.argmin(matrix.sum(axis=0)))


class TestElimination:
    def test_clearly_bad_configs_dropped(self, rng):
        template_ids, matrix = make_population(
            rng, k=6, rel_gaps=(0.0, 0.5, 0.8, 1.0, 1.5, 2.0)
        )
        source = MatrixCostSource(matrix)
        result = ConfigurationSelector(
            source, template_ids,
            SelectorOptions(alpha=0.9, eliminate=True),
            rng=rng,
        ).run()
        assert len(result.eliminated) >= 3
        assert result.best_index == source.true_best()

    def test_elimination_saves_calls(self, rng):
        template_ids, matrix = make_population(
            rng, k=6, rel_gaps=(0.0, 0.5, 0.8, 1.0, 1.5, 2.0)
        )
        calls = {}
        for eliminate in (True, False):
            source = MatrixCostSource(matrix)
            result = ConfigurationSelector(
                source, template_ids,
                SelectorOptions(alpha=0.9, eliminate=eliminate,
                                consecutive=10),
                rng=np.random.default_rng(3),
            ).run()
            calls[eliminate] = result.optimizer_calls
        assert calls[True] <= calls[False]


class TestBudget:
    def test_max_calls_respected(self, rng):
        template_ids, matrix = make_population(rng)
        source = MatrixCostSource(matrix)
        result = ConfigurationSelector(
            source, template_ids,
            SelectorOptions(alpha=0.999, max_calls=120,
                            consecutive=10**9),
            rng=rng,
        ).run()
        assert result.terminated_by == "max_calls"
        assert result.optimizer_calls <= 120 + matrix.shape[1]

    def test_reeval_batching_same_selection(self, rng):
        template_ids, matrix = make_population(rng)
        picks = set()
        for reeval in (1, 4):
            source = MatrixCostSource(matrix)
            result = ConfigurationSelector(
                source, template_ids,
                SelectorOptions(alpha=0.9, reeval_every=reeval),
                rng=np.random.default_rng(11),
            ).run()
            picks.add(result.best_index)
        assert picks == {int(np.argmin(matrix.sum(axis=0)))}


class TestProgressiveStratification:
    def test_split_proposed_on_bimodal_population(self):
        sizes = np.array([500, 500, 0], dtype=np.int64)[:2]
        template_sizes = np.array([500, 500], dtype=np.int64)
        strat = Stratification.single({0: 500, 1: 500})
        counts = np.array([40, 40])
        means = np.array([10.0, 1000.0])
        variances = np.array([4.0, 4.0])
        decision = propose_split(
            strat, template_sizes, counts, means, variances,
            target_var=1e6, n_min=30,
        )
        assert decision is not None
        assert decision.saving > 0
        assert {decision.left, decision.right} == {(0,), (1,)}

    def test_no_split_on_homogeneous_population(self):
        template_sizes = np.array([500, 500], dtype=np.int64)
        strat = Stratification.single({0: 500, 1: 500})
        counts = np.array([40, 40])
        means = np.array([10.0, 10.1])
        variances = np.array([4.0, 4.0])
        decision = propose_split(
            strat, template_sizes, counts, means, variances,
            target_var=1e6, n_min=30,
        )
        assert decision is None

    def test_no_split_without_template_estimates(self):
        template_sizes = np.array([500, 500], dtype=np.int64)
        strat = Stratification.single({0: 500, 1: 500})
        counts = np.array([80, 0])  # template 1 never sampled
        means = np.array([10.0, 0.0])
        variances = np.array([4.0, 0.0])
        assert propose_split(
            strat, template_sizes, counts, means, variances,
            target_var=1e6, n_min=30,
        ) is None

    def test_progressive_reduces_calls_on_stratified_population(self, rng):
        """Progressive stratification must help when templates separate
        costs sharply (the Figure 1/3 effect)."""
        n, k = 3000, 2
        template_ids = rng.integers(0, 6, size=n)
        level = np.array([1, 10, 100, 1000, 5000, 20000.0])[template_ids]
        base = level * np.exp(rng.normal(0, 0.2, size=n))
        matrix = np.column_stack(
            [base, base * (1 + 0.04 * (level > 100))]
        )
        calls = {}
        for stratify in ("none", "progressive"):
            source = MatrixCostSource(matrix)
            result = ConfigurationSelector(
                source, template_ids,
                SelectorOptions(alpha=0.9, stratify=stratify,
                                consecutive=5),
                rng=np.random.default_rng(21),
            ).run()
            calls[stratify] = result.optimizer_calls
            assert result.best_index == int(np.argmin(matrix.sum(axis=0)))
        assert calls["progressive"] <= calls["none"]


class TestOptimizerSource:
    def test_live_source_counts_calls(self, optimizer, empty_config,
                                      indexed_config, rng):
        from repro.queries import ColumnRef, EqPredicate, Query, QueryType
        from repro.workload import Workload

        queries = [
            Query(
                qtype=QueryType.SELECT, tables=("orders",),
                filters=(EqPredicate(ColumnRef("orders", "o_id"), i),),
            )
            for i in range(300)
        ]
        wl = Workload(queries)
        source = OptimizerCostSource(
            wl, [empty_config, indexed_config], optimizer
        )
        result = ConfigurationSelector(
            source, wl.template_ids,
            SelectorOptions(alpha=0.9, n_min=10, consecutive=3),
            rng=rng,
        ).run()
        assert result.best_index == 1  # index helps point lookups
        assert source.calls == result.optimizer_calls
        assert source.calls <= 600
