"""Statistical validation of the paper's estimator math.

These tests check the *math*, not the code paths: unbiasedness of the
stratified total estimator, agreement of the equation-(5) variance
formula with the empirical variance of repeated sampling, calibration
of the Pr(CS) estimate, and the variance advantage of Delta Sampling
predicted by the covariance identity of §4.2.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DeltaState,
    IndependentState,
    MatrixCostSource,
    Stratification,
    allocation_variance,
    pairwise_prcs,
)


def _groups(template_ids):
    out = {}
    for i, t in enumerate(template_ids):
        out.setdefault(int(t), []).append(i)
    return {t: np.array(v) for t, v in out.items()}


@pytest.fixture(scope="module")
def population():
    rng = np.random.default_rng(1234)
    n = 2000
    template_ids = np.sort(rng.integers(0, 4, size=n))
    level = np.array([5.0, 50.0, 500.0, 5000.0])[template_ids]
    base = level * np.exp(rng.normal(0, 0.4, n))
    matrix = np.column_stack([base, base * 1.07])
    return template_ids, matrix


class TestEstimatorUnbiasedness:
    def test_stratified_total_unbiased(self, population):
        template_ids, matrix = population
        truth = matrix[:, 0].sum()
        sizes = {t: int((template_ids == t).sum()) for t in range(4)}
        strat = Stratification([(0, 1), (2, 3)], sizes)
        estimates = []
        for trial in range(300):
            rng = np.random.default_rng(trial)
            state = IndependentState(
                2, 4, _groups(template_ids), rng
            )
            source = MatrixCostSource(matrix)
            for stratum in strat.strata:
                for _ in range(25):
                    state.sample_one(0, stratum, source, rng)
            est, _var = state.estimate(0, strat)
            estimates.append(est)
        mean_est = float(np.mean(estimates))
        # Unbiased within Monte Carlo error (3 standard errors).
        se = float(np.std(estimates) / np.sqrt(len(estimates)))
        assert abs(mean_est - truth) < 4 * se + 1e-9

    def test_variance_formula_matches_empirical(self, population):
        template_ids, matrix = population
        sizes = {t: int((template_ids == t).sum()) for t in range(4)}
        strat = Stratification([(0, 1), (2, 3)], sizes)
        estimates = []
        predicted = []
        for trial in range(300):
            rng = np.random.default_rng(10_000 + trial)
            state = IndependentState(2, 4, _groups(template_ids), rng)
            source = MatrixCostSource(matrix)
            for stratum in strat.strata:
                for _ in range(30):
                    state.sample_one(0, stratum, source, rng)
            est, var = state.estimate(0, strat)
            estimates.append(est)
            predicted.append(var)
        empirical = float(np.var(estimates))
        mean_predicted = float(np.mean(predicted))
        # Formula (5) with sample variances tracks the true estimator
        # variance within a factor ~2 on this heavy-tailed population.
        assert 0.4 < mean_predicted / empirical < 2.5

    def test_allocation_variance_predicts_true_sampling(self):
        """Equation (5) with *true* stratum variances matches the
        empirical variance of stratified sampling exactly (up to MC
        error) on a synthetic population."""
        rng = np.random.default_rng(7)
        strata_values = [rng.normal(100, 20, 400),
                         rng.normal(10_000, 500, 100)]
        sizes = np.array([400, 100])
        alloc = np.array([20, 10])
        true_vars = np.array([
            v.var(ddof=1) for v in strata_values
        ])
        predicted = allocation_variance(sizes, true_vars, alloc)
        estimates = []
        for _ in range(4000):
            total = 0.0
            for v, n, size in zip(strata_values, alloc, sizes):
                sample = rng.choice(v, size=n, replace=False)
                total += size * sample.mean()
            estimates.append(total)
        empirical = float(np.var(estimates))
        assert predicted == pytest.approx(empirical, rel=0.15)


class TestPrcsCalibration:
    def test_claimed_probability_tracks_reality(self):
        """When the primitive claims Pr(CS) = p after a fixed sample,
        the empirical correctness frequency must be >= roughly p (the
        estimate is a Bonferroni-style lower bound)."""
        rng = np.random.default_rng(99)
        n = 3000
        base = np.abs(rng.lognormal(2, 1, n))
        matrix = np.column_stack([base, base * 1.03])
        truth_best = int(np.argmin(matrix.sum(axis=0)))
        template_ids = np.zeros(n, dtype=int)
        strat = Stratification.single({0: n})
        m = 150
        claims, corrects = [], []
        for trial in range(400):
            trial_rng = np.random.default_rng(trial)
            state = DeltaState(2, 1, _groups(template_ids), trial_rng)
            source = MatrixCostSource(matrix)
            for _ in range(m):
                state.sample_one((0,), source, trial_rng, [0, 1])
            mean_diff, var_diff = state.pair_estimate(0, 1, strat)
            chosen = 0 if mean_diff < 0 else 1
            claims.append(pairwise_prcs(abs(mean_diff), var_diff))
            corrects.append(chosen == truth_best)
        mean_claim = float(np.mean(claims))
        frequency = float(np.mean(corrects))
        # Calibration: claimed confidence within a few points of the
        # empirical frequency (sample variances make it approximate).
        assert frequency >= mean_claim - 0.08

    def test_delta_variance_identity(self):
        """sigma_{l,j}^2 = sigma_l^2 + sigma_j^2 - 2 Cov (§4.2)."""
        rng = np.random.default_rng(3)
        a = np.abs(rng.lognormal(2, 1, 5000))
        b = a * 1.1 + rng.normal(0, 0.1 * a.mean(), 5000)
        lhs = np.var(a - b)
        rhs = np.var(a) + np.var(b) - 2 * np.cov(a, b, bias=True)[0, 1]
        assert lhs == pytest.approx(rhs, rel=1e-9)
        # positive covariance -> delta variance below the sum
        assert lhs < np.var(a) + np.var(b)
