"""Tests for Monte Carlo internals: stratified fixed-budget estimates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.monte_carlo import (
    _fine_allocation,
    _stratified_estimate_fixed,
    _template_groups,
)


@pytest.fixture
def two_strata_population(rng):
    """800 queries in 2 groups with very different cost levels."""
    n = 800
    groups = [np.arange(0, 600), np.arange(600, 800)]
    matrix = np.empty((n, 2))
    level = np.where(np.arange(n) < 600, 10.0, 1000.0)
    matrix[:, 0] = level
    matrix[:, 1] = level * 1.1
    return groups, matrix


class TestTemplateGroups:
    def test_partition(self):
        tids = np.array([2, 0, 1, 0, 2, 2])
        groups = _template_groups(tids)
        assert sorted(groups) == [0, 1, 2]
        assert sorted(groups[2].tolist()) == [0, 4, 5]
        total = sum(len(g) for g in groups.values())
        assert total == 6


class TestStratifiedEstimateFixed:
    def test_exact_with_full_allocation(self, two_strata_population, rng):
        groups, matrix = two_strata_population
        alloc = np.array([600, 200])
        est = _stratified_estimate_fixed(matrix, groups, alloc, rng,
                                         shared=True)
        assert est[0] == pytest.approx(matrix[:, 0].sum())
        assert est[1] == pytest.approx(matrix[:, 1].sum())

    def test_close_with_partial_allocation(self, two_strata_population,
                                           rng):
        groups, matrix = two_strata_population
        alloc = np.array([30, 30])
        est = _stratified_estimate_fixed(matrix, groups, alloc, rng,
                                         shared=True)
        # Costs are constant within strata: the estimate is exact even
        # from a small per-stratum sample.
        assert est[0] == pytest.approx(matrix[:, 0].sum(), rel=1e-9)

    def test_fallback_for_unsampled_stratum(self, two_strata_population,
                                            rng):
        groups, matrix = two_strata_population
        alloc = np.array([30, 0])
        est = _stratified_estimate_fixed(matrix, groups, alloc, rng,
                                         shared=True)
        # Unsampled stratum contributes the observed strata's weighted
        # mean: here the low-cost stratum's mean, underestimating.
        assert est[0] < matrix[:, 0].sum()
        assert est[0] == pytest.approx(10.0 * 800)

    def test_shared_vs_independent_selection_consistency(
        self, two_strata_population, rng
    ):
        groups, matrix = two_strata_population
        alloc = np.array([50, 20])
        shared = _stratified_estimate_fixed(matrix, groups, alloc, rng,
                                            shared=True)
        independent = _stratified_estimate_fixed(
            matrix, groups, alloc, rng, shared=False
        )
        # Both must rank config 0 (cheaper) first.
        assert shared[0] < shared[1]
        assert independent[0] < independent[1]


class TestFineAllocationEdge:
    def test_single_stratum(self, rng):
        alloc = _fine_allocation(np.array([100]), 7, rng)
        assert alloc.tolist() == [7]

    def test_budget_equals_strata(self, rng):
        alloc = _fine_allocation(np.array([50, 50, 50]), 3, rng)
        assert alloc.sum() == 3
        assert (alloc >= 0).all()

    def test_budget_exceeds_population(self, rng):
        alloc = _fine_allocation(np.array([5, 5]), 100, rng)
        assert (alloc <= np.array([5, 5])).all()
