"""Release-quality checks: docs present, public API documented."""

from __future__ import annotations

import importlib
import inspect
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(repro.__file__).resolve().parents[2]

SUBPACKAGES = [
    "repro.catalog",
    "repro.queries",
    "repro.physical",
    "repro.optimizer",
    "repro.workload",
    "repro.core",
    "repro.bounds",
    "repro.compression",
    "repro.tuner",
    "repro.experiments",
]


class TestDocsPresent:
    @pytest.mark.parametrize(
        "name",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE",
         "pyproject.toml", "docs/paper_mapping.md"],
    )
    def test_file_exists(self, name):
        assert (REPO_ROOT / name).exists(), f"missing {name}"

    def test_design_lists_all_experiments(self):
        design = (REPO_ROOT / "DESIGN.md").read_text()
        for artefact in ("Table 1", "Figure 1", "Figure 2", "Figure 3",
                         "Figure 4", "Table 2", "Table 3"):
            assert artefact in design

    def test_experiments_covers_benches(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        for bench in (REPO_ROOT / "benchmarks").glob("bench_*.py"):
            assert bench.name in text, (
                f"{bench.name} not referenced in EXPERIMENTS.md"
            )


class TestPublicApiDocumented:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_module_docstrings(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a docstring"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_all_exports_resolve_and_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__")
        for name in module.__all__:
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert inspect.getdoc(obj), (
                    f"{module_name}.{name} lacks a docstring"
                )

    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_public_classes_have_documented_methods(self):
        from repro.core import ConfigurationSelector
        from repro.optimizer import WhatIfOptimizer
        from repro.workload import Workload, WorkloadStore

        for cls in (ConfigurationSelector, WhatIfOptimizer, Workload,
                    WorkloadStore):
            for name, member in inspect.getmembers(
                cls, predicate=inspect.isfunction
            ):
                if name.startswith("_"):
                    continue
                assert inspect.getdoc(member), (
                    f"{cls.__name__}.{name} lacks a docstring"
                )

    def test_version_exported(self):
        assert repro.__version__ == "1.0.0"
