"""Tests for figure export/rendering and workload profiling."""

from __future__ import annotations

import csv

import numpy as np
import pytest

from repro.experiments import ascii_chart, write_series_csv
from repro.queries import ColumnRef, EqPredicate, Query, QueryType
from repro.workload import Workload, profile_workload


class TestWriteSeriesCsv:
    def test_round_trip(self, tmp_path):
        path = write_series_csv(
            tmp_path / "fig.csv", "calls", [10, 20],
            {"delta": [0.5, 0.9], "independent": [0.4, 0.6]},
        )
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["calls", "delta", "independent"]
        assert rows[1] == ["10", "0.5", "0.4"]
        assert len(rows) == 3

    def test_creates_parent_dirs(self, tmp_path):
        path = write_series_csv(
            tmp_path / "deep" / "dir" / "fig.csv", "x", [1],
            {"s": [0.1]},
        )
        assert path.exists()

    def test_length_mismatch(self, tmp_path):
        with pytest.raises(ValueError):
            write_series_csv(
                tmp_path / "bad.csv", "x", [1, 2], {"s": [0.1]}
            )


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        out = ascii_chart(
            [0, 100], {"a": [0.0, 1.0], "b": [1.0, 0.0]},
            width=20, height=5,
        )
        assert "o = a" in out and "x = b" in out
        assert "o" in out.splitlines()[0] or "o" in out  # plotted

    def test_extremes_hit_edges(self):
        out = ascii_chart([0, 10], {"s": [0.0, 1.0]}, width=11,
                          height=5).splitlines()
        top_row = out[0]
        bottom_row = out[4]
        assert top_row.rstrip().endswith("o")     # y=1 at x=max
        assert "o" in bottom_row                  # y=0 at x=min

    def test_out_of_range_clamped(self):
        out = ascii_chart([0, 1], {"s": [-5.0, 5.0]}, width=10,
                          height=4)
        assert "o" in out  # no crash, clamped into the grid

    def test_title_and_axis_labels(self):
        out = ascii_chart([5, 50], {"s": [0.5, 0.5]}, title="Figure X")
        assert out.splitlines()[0] == "Figure X"
        assert "5" in out and "50" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart([], {"s": []})
        with pytest.raises(ValueError):
            ascii_chart([1], {"s": [1.0]}, y_min=1.0, y_max=1.0)
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"s": [1.0]})


def _point(i: int) -> Query:
    return Query(
        qtype=QueryType.SELECT, tables=("orders",),
        filters=(EqPredicate(ColumnRef("orders", "o_id"), i),),
    )


def _update(i: int) -> Query:
    return Query(
        qtype=QueryType.UPDATE, tables=("orders",),
        filters=(EqPredicate(ColumnRef("orders", "o_id"), i),),
        set_columns=(ColumnRef("orders", "o_total"),),
    )


class TestProfileWorkload:
    def test_basic_shape(self):
        wl = Workload([_point(i) for i in range(8)] + [_update(1),
                                                       _update(2)])
        costs = np.array([1.0] * 8 + [100.0, 100.0])
        profile = profile_workload(wl, costs)
        assert profile.size == 10
        assert profile.template_count == 2
        assert profile.dml_fraction == pytest.approx(0.2)
        assert profile.total_cost == pytest.approx(208.0)
        # updates dominate cost: the top template is the update one
        assert profile.top_templates[0].cost_share > 0.9
        assert profile.templates_for_half_cost == 1

    def test_heavy_tail_detection(self):
        wl = Workload([_point(i) for i in range(200)])
        flat = np.ones(200)
        skewed = np.ones(200)
        skewed[:2] = 10_000.0
        assert not profile_workload(wl, flat).heavy_tailed()
        assert profile_workload(wl, skewed).heavy_tailed()

    def test_without_costs(self):
        wl = Workload([_point(1), _update(2)])
        profile = profile_workload(wl)
        assert profile.total_cost == 0.0
        assert profile.cost_skewness == 0.0
        # ordered by count instead
        assert profile.top_templates[0].count == 1

    def test_template_cv(self):
        wl = Workload([_point(i) for i in range(4)])
        costs = np.array([1.0, 1.0, 1.0, 101.0])
        profile = profile_workload(wl, costs)
        assert profile.top_templates[0].cv > 0.5

    def test_validation(self):
        wl = Workload([_point(1)])
        with pytest.raises(ValueError):
            profile_workload(wl, np.array([1.0, 2.0]))

    def test_real_workload_cost_concentration(self):
        """On TPC-D, a handful of templates carries half the cost, and
        under a tuned configuration (cheap lookups, expensive joins
        remaining) the distribution is heavy-tailed upward — the §6
        regime."""
        from repro.physical import Configuration, build_pool
        from repro.workload import generate_tpcd_workload, tpcd_schema
        from repro.optimizer import WhatIfOptimizer

        schema = tpcd_schema(0.05)
        wl = generate_tpcd_workload(150, seed=4, schema=schema)
        opt = WhatIfOptimizer(schema)
        pool = build_pool(wl.queries[:80], opt, include_views=False)
        tuned = Configuration(pool.indexes, name="tuned")
        costs = wl.cost_vector(opt, tuned)
        profile = profile_workload(wl, costs)
        assert profile.templates_for_half_cost < profile.template_count
        assert profile.cost_p99_over_median > 2.0
