"""Tests for the Pr(CS) calibration measurement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import measure_calibration


def _pair_matrix(rng, n=1200, gap=1.02, sigma=1.2):
    base = np.abs(rng.lognormal(2, sigma, n))
    return np.column_stack([base, base * gap])


class TestMeasureCalibration:
    def test_shapes_and_bounds(self, rng):
        matrix = _pair_matrix(rng)
        report = measure_calibration(
            matrix, np.zeros(1200, dtype=int), sample_size=50,
            trials=80, seed=2,
        )
        assert 0 <= report.overall_claim <= 1
        assert 0 <= report.overall_empirical <= 1
        assert sum(b.trials for b in report.buckets) == 80

    def test_well_calibrated_on_benign_population(self, rng):
        """Mild skew + decent sample: claims track reality."""
        matrix = _pair_matrix(rng, gap=1.05, sigma=1.0)
        report = measure_calibration(
            matrix, np.zeros(1200, dtype=int), sample_size=120,
            trials=250, seed=3,
        )
        assert report.overall_empirical >= report.overall_claim - 0.08
        assert not report.overconfident

    def test_conservative_override_lowers_claims(self, rng):
        """Substituting a certified (larger) variance lowers claimed
        confidence — the §6.2 mechanism."""
        matrix = _pair_matrix(rng)
        tids = np.zeros(1200, dtype=int)
        plain = measure_calibration(
            matrix, tids, sample_size=60, trials=60, seed=4,
        )
        d = matrix[:, 0] - matrix[:, 1]
        n, N = 60, 1200
        inflated = N**2 * (10 * d.var()) / n * (1 - n / N)
        conservative = measure_calibration(
            matrix, tids, sample_size=60, trials=60, seed=4,
            variance_override=inflated,
        )
        assert conservative.overall_claim < plain.overall_claim
        # Conservatism preserves (or improves) the safety margin.
        assert conservative.overall_empirical >= \
            conservative.overall_claim - 0.05

    def test_bucket_partition(self, rng):
        matrix = _pair_matrix(rng)
        report = measure_calibration(
            matrix, np.zeros(1200, dtype=int), sample_size=10,
            trials=40, seed=5,
        )
        edges = [(b.claim_low, b.claim_high) for b in report.buckets]
        for (lo1, hi1), (lo2, _hi2) in zip(edges, edges[1:]):
            assert hi1 == pytest.approx(lo2, abs=1e-6) or hi1 == 1.0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            measure_calibration(
                np.ones((10, 3)), np.zeros(10, dtype=int), 5
            )
        with pytest.raises(ValueError):
            measure_calibration(
                np.ones((10, 2)), np.zeros(10, dtype=int), 50
            )
