"""Setuptools shim.

Present so that ``pip install -e .`` works on environments whose
setuptools predates PEP 660 editable-wheel support (all metadata lives
in ``pyproject.toml``).
"""

from setuptools import setup

setup()
