"""A greedy cost/benefit physical design tuner.

The §7.3 experiments compare *tuning quality* when a tuner runs on a
full workload, a compressed workload, or a random/Delta sample.  This
module provides the tuner: the classic greedy loop used (in more
elaborate forms) by commercial tools [1, 7, 20]:

1. build a candidate pool from per-query optimizer suggestions;
2. repeatedly add the structure with the best marginal benefit per
   storage byte on the (weighted) training workload;
3. stop when the storage budget is exhausted or no structure helps.

The tuner is deliberately simple — the paper's contribution is the
comparison primitive, not the search — but it is a real search over
real what-if costs, so compression-induced blind spots (e.g. templates
missing from a [20]-compressed workload) translate into genuinely
missing design structures, which is the effect §7.3 demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..physical.candidates import CandidatePool, build_pool
from ..physical.configuration import Configuration
from ..physical.structures import Index, MaterializedView

__all__ = ["TuningResult", "GreedyTuner"]


@dataclass
class TuningResult:
    """Outcome of a tuning run.

    Attributes
    ----------
    configuration:
        The recommended configuration.
    training_cost:
        Weighted training-workload cost under the recommendation.
    initial_cost:
        Weighted training-workload cost under the starting
        configuration.
    chosen:
        Structures in the order they were added.
    optimizer_calls:
        What-if calls the search spent.
    """

    configuration: Configuration
    training_cost: float
    initial_cost: float
    chosen: List[object] = field(default_factory=list)
    optimizer_calls: int = 0

    @property
    def improvement(self) -> float:
        """Relative training-cost improvement in [0, 1]."""
        if self.initial_cost <= 0:
            return 0.0
        return max(0.0, 1.0 - self.training_cost / self.initial_cost)


class GreedyTuner:
    """Greedy benefit-per-byte physical design search.

    Parameters
    ----------
    optimizer:
        A :class:`repro.optimizer.whatif.WhatIfOptimizer`.
    storage_budget_bytes:
        Upper bound on the combined storage of recommended structures
        (``None`` = unlimited).
    max_structures:
        Upper bound on the number of recommended structures.
    include_views:
        Whether materialized views enter the candidate pool.
    """

    def __init__(
        self,
        optimizer,
        storage_budget_bytes: Optional[int] = None,
        max_structures: int = 10,
        include_views: bool = True,
    ) -> None:
        self.optimizer = optimizer
        self.storage_budget_bytes = storage_budget_bytes
        self.max_structures = max_structures
        self.include_views = include_views

    # ------------------------------------------------------------------
    def _weighted_cost(
        self,
        queries: Sequence,
        weights: np.ndarray,
        config: Configuration,
    ) -> float:
        return float(
            sum(
                w * self.optimizer.cost(q, config)
                for q, w in zip(queries, weights)
            )
        )

    def _structure_storage(self, structure) -> int:
        schema = self.optimizer.schema
        if isinstance(structure, Index):
            return structure.storage_bytes(schema)
        # Views: reuse the configuration-level pessimistic sizing.
        return Configuration([], [structure]).storage_bytes(schema)

    # ------------------------------------------------------------------
    def tune(
        self,
        queries: Sequence,
        weights: Optional[np.ndarray] = None,
        initial: Optional[Configuration] = None,
        pool: Optional[CandidatePool] = None,
    ) -> TuningResult:
        """Recommend a configuration for the (weighted) training queries.

        Parameters
        ----------
        queries:
            Training statements (full, compressed or sampled workload).
        weights:
            Per-query weights (defaults to 1.0 each).
        initial:
            Starting configuration (defaults to empty).
        pool:
            Pre-built candidate pool; built from ``queries`` when
            omitted.
        """
        queries = list(queries)
        if not queries:
            raise ValueError("cannot tune an empty workload")
        if weights is None:
            weights = np.ones(len(queries))
        weights = np.asarray(weights, dtype=np.float64)
        if len(weights) != len(queries):
            raise ValueError(
                f"{len(weights)} weights for {len(queries)} queries"
            )
        start_calls = self.optimizer.calls
        current = initial if initial is not None else Configuration(
            name="initial"
        )
        if pool is None:
            pool = build_pool(
                queries, self.optimizer, include_views=self.include_views
            )
        candidates: List[object] = list(pool.indexes)
        if self.include_views:
            candidates.extend(pool.views)

        initial_cost = self._weighted_cost(queries, weights, current)
        current_cost = initial_cost
        used_bytes = current.storage_bytes(self.optimizer.schema)
        chosen: List[object] = []

        while len(chosen) < self.max_structures and candidates:
            best_structure = None
            best_cost = current_cost
            best_score = 0.0
            for structure in candidates:
                size = self._structure_storage(structure)
                if (
                    self.storage_budget_bytes is not None
                    and used_bytes + size > self.storage_budget_bytes
                ):
                    continue
                if isinstance(structure, Index):
                    trial = current.with_structures(indexes=[structure])
                else:
                    trial = current.with_structures(views=[structure])
                cost = self._weighted_cost(queries, weights, trial)
                benefit = current_cost - cost
                score = benefit / max(1, size)
                if benefit > 0 and score > best_score:
                    best_score = score
                    best_structure = structure
                    best_cost = cost
            if best_structure is None:
                break
            if isinstance(best_structure, Index):
                current = current.with_structures(indexes=[best_structure])
            else:
                current = current.with_structures(views=[best_structure])
            used_bytes += self._structure_storage(best_structure)
            current_cost = best_cost
            chosen.append(best_structure)
            candidates = [c for c in candidates if c != best_structure]

        return TuningResult(
            configuration=Configuration(
                current.indexes, current.views, name="tuned"
            ),
            training_cost=current_cost,
            initial_cost=initial_cost,
            chosen=chosen,
            optimizer_calls=self.optimizer.calls - start_calls,
        )
