"""Evaluating tuning quality on the full workload.

A recommendation is only as good as its effect on the *entire*
workload: §7.3 measures "the improvement (over the entire workload)
resulting from tuning" a compressed workload versus equal-size samples.
This module centralizes that measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..physical.configuration import Configuration

__all__ = ["QualityReport", "evaluate_configuration"]


@dataclass(frozen=True)
class QualityReport:
    """Full-workload quality of a recommended configuration.

    Attributes
    ----------
    baseline_cost:
        ``Cost(WL, initial)`` over the full workload.
    tuned_cost:
        ``Cost(WL, recommended)`` over the full workload.
    improvement:
        Relative improvement ``1 - tuned/baseline`` (clamped at 0).
    """

    baseline_cost: float
    tuned_cost: float

    @property
    def improvement(self) -> float:
        """Relative full-workload improvement in [0, 1]."""
        if self.baseline_cost <= 0:
            return 0.0
        return max(0.0, 1.0 - self.tuned_cost / self.baseline_cost)


def evaluate_configuration(
    workload,
    optimizer,
    recommended: Configuration,
    initial: Optional[Configuration] = None,
) -> QualityReport:
    """Measure a recommendation against the full workload.

    Parameters
    ----------
    workload:
        A :class:`repro.workload.workload.Workload`.
    optimizer:
        A :class:`repro.optimizer.whatif.WhatIfOptimizer`.
    recommended:
        The configuration to evaluate.
    initial:
        The baseline (defaults to empty).
    """
    baseline = initial if initial is not None else Configuration(
        name="initial"
    )
    return QualityReport(
        baseline_cost=workload.total_cost(optimizer, baseline),
        tuned_cost=workload.total_cost(optimizer, recommended),
    )
