"""Greedy physical design tuner and quality evaluation (for §7.3)."""

from .evaluation import QualityReport, evaluate_configuration
from .greedy import GreedyTuner, TuningResult

__all__ = [
    "QualityReport",
    "evaluate_configuration",
    "GreedyTuner",
    "TuningResult",
]
