"""Crash-recovery checkpoints for the online tuning service.

The service loop persists its durable state after every retune:
stream position, the derived ingest/session seeds, the tuning
session's deployed choice and warm-start estimator state, the drift
monitor's reference mix, and summaries of completed retunes.  A
resumed run reuses the stored seeds and *replays* the trace prefix
through a fresh ingestor — the reservoir RNG consumes the identical
draw sequence, so the reconstructed window and reservoirs match the
crashed run bit-for-bit without serializing any query objects.

Recovery is at-least-once: a crash after a retune but before its
checkpoint write resumes from the previous checkpoint and re-runs the
retune.  Per-retune seeding (``default_rng((seed, retune_count))``)
makes the redone retune identical, so the final selection is
unaffected; only duplicate work (and duplicate events, with fresh
``seq`` numbers) can occur, never lost or divergent state.

Files are written with the same atomic temp-file + ``os.replace``
publish as selector checkpoints (:mod:`repro.core.checkpoint`).
"""

from __future__ import annotations

import os
from typing import Optional

from ..core.checkpoint import load_checkpoint, save_checkpoint

__all__ = ["save_service_checkpoint", "load_service_checkpoint"]


def save_service_checkpoint(path: str, payload: dict) -> None:
    """Atomically publish the service-loop state as JSON."""
    payload = dict(payload)
    payload["kind"] = "service"
    save_checkpoint(path, payload)


def load_service_checkpoint(path: str) -> Optional[dict]:
    """Load a service checkpoint, or ``None`` when absent.

    Raises ``ValueError`` when the file exists but is not a service
    checkpoint (e.g. a selector checkpoint was pointed at by
    mistake) — resuming from the wrong kind of state must fail loudly.
    """
    payload = load_checkpoint(os.fspath(path))
    if payload is None:
        return None
    kind = payload.get("kind")
    if kind != "service":
        raise ValueError(
            f"checkpoint {path} has kind {kind!r}, expected 'service'"
        )
    return payload
