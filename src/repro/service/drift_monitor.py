"""Template-mix drift detection over the ingest window.

The paper assumes the trace stays representative; this module decides
*when it stops being so*.  The monitor keeps the template-frequency
distribution observed at the last re-selection (the *reference* mix)
and scores the live window's mix against it with the Jensen–Shannon
divergence — symmetric, finite for disjoint supports (unlike KL) and,
in base 2, bounded in ``[0, 1]``, which makes thresholds portable
across workloads.

A trigger requires three things at once: divergence above
``threshold``, a sufficiently full window (a half-empty window's mix
is noise), and the cooldown elapsed since the last trigger (guarding
against retune storms while the window still straddles a change
point).  Every decision is returned as a :class:`DriftDecision` so
the runner can log it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

import numpy as np

__all__ = ["js_divergence", "DriftDecision", "DriftMonitor"]


def js_divergence(p, q) -> float:
    """Base-2 Jensen–Shannon divergence of two frequency vectors.

    Inputs are non-negative count/weight vectors of equal length; they
    are normalized internally.  Returns a value in ``[0, 1]``: 0 for
    identical mixes, 1 for disjoint supports.
    """
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape or p.ndim != 1:
        raise ValueError(
            f"need equal-length 1-D vectors, got {p.shape} and {q.shape}"
        )
    if (p < 0).any() or (q < 0).any():
        raise ValueError("frequencies must be non-negative")
    if p.sum() <= 0 or q.sum() <= 0:
        raise ValueError("frequency vectors must have positive mass")
    p = p / p.sum()
    q = q / q.sum()
    m = 0.5 * (p + q)

    def _kl(a: np.ndarray, b: np.ndarray) -> float:
        mask = a > 0
        return float(np.sum(a[mask] * np.log2(a[mask] / b[mask])))

    return 0.5 * _kl(p, m) + 0.5 * _kl(q, m)


@dataclass(frozen=True)
class DriftDecision:
    """Outcome of one drift check.

    ``reason`` explains non-triggers: ``"no-reference"``,
    ``"window-filling"``, ``"cooldown"``, ``"below-threshold"`` — or
    ``"triggered"``.
    """

    score: float
    triggered: bool
    reason: str
    position: int


class DriftMonitor:
    """Windowed template-mix divergence with threshold and cooldown.

    Parameters
    ----------
    threshold:
        Jensen–Shannon divergence (base 2, in ``[0, 1]``) beyond which
        the mix counts as drifted.
    cooldown:
        Minimum statements between consecutive triggers.
    min_window_fill:
        Required window occupancy (fraction) before checks can
        trigger; suppresses noise while the window first fills after
        startup.
    """

    def __init__(
        self,
        threshold: float = 0.05,
        cooldown: int = 0,
        min_window_fill: float = 0.5,
    ) -> None:
        if not (0.0 < threshold <= 1.0):
            raise ValueError(
                f"threshold must be in (0, 1], got {threshold}"
            )
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        if not (0.0 <= min_window_fill <= 1.0):
            raise ValueError(
                f"min_window_fill must be in [0, 1], got {min_window_fill}"
            )
        self.threshold = threshold
        self.cooldown = cooldown
        self.min_window_fill = min_window_fill
        self._reference: Optional[Dict[int, int]] = None
        self._last_trigger: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def reference(self) -> Optional[Dict[int, int]]:
        """The mix the monitor currently scores against."""
        return None if self._reference is None else dict(self._reference)

    def set_reference(self, frequencies: Dict[int, int]) -> None:
        """Adopt a mix as the new reference (call after each retune)."""
        if not frequencies:
            raise ValueError("reference mix must be non-empty")
        self._reference = dict(frequencies)

    def score(self, frequencies: Dict[int, int]) -> float:
        """Divergence of a mix from the reference (no side effects).

        A zero-mass mix (every window entry expired, or the window not
        yet filled) scores ``0.0`` — there is no evidence of drift in
        an empty window, and :func:`js_divergence` is undefined there.
        """
        if self._reference is None:
            raise RuntimeError("no reference mix set")
        if sum(frequencies.values()) <= 0 or \
                sum(self._reference.values()) <= 0:
            return 0.0
        tids = sorted(set(self._reference) | set(frequencies))
        p = [self._reference.get(t, 0) for t in tids]
        q = [frequencies.get(t, 0) for t in tids]
        return js_divergence(p, q)

    def check(
        self,
        frequencies: Dict[int, int],
        position: int,
        window_fill: float = 1.0,
    ) -> DriftDecision:
        """Score the live mix and decide whether to trigger a retune.

        ``position`` is the stream position (total statements
        ingested) used for cooldown accounting; a trigger records it.
        Degenerate windows (no entries, or all counts zero) never
        trigger and never crash: they return an ``"empty-window"``
        no-drift decision.
        """
        if self._reference is None:
            return DriftDecision(0.0, False, "no-reference", position)
        if sum(frequencies.values()) <= 0:
            return DriftDecision(0.0, False, "empty-window", position)
        value = self.score(frequencies)
        if window_fill < self.min_window_fill:
            return DriftDecision(value, False, "window-filling", position)
        if (
            self._last_trigger is not None
            and position - self._last_trigger < self.cooldown
        ):
            return DriftDecision(value, False, "cooldown", position)
        if value <= self.threshold:
            return DriftDecision(value, False, "below-threshold", position)
        self._last_trigger = position
        return DriftDecision(value, True, "triggered", position)

    # ------------------------------------------------------------------
    # checkpoint snapshot/restore
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable monitor state (reference mix, cooldown)."""
        return {
            "reference": (
                None if self._reference is None
                else {str(t): int(n) for t, n in self._reference.items()}
            ),
            "last_trigger": self._last_trigger,
        }

    def restore_state(self, payload: dict) -> None:
        """Inverse of :meth:`state_dict`."""
        reference = payload.get("reference")
        self._reference = (
            None if reference is None
            else {int(t): int(n) for t, n in reference.items()}
        )
        last = payload.get("last_trigger")
        self._last_trigger = None if last is None else int(last)

    # ------------------------------------------------------------------
    def changed_templates(
        self,
        frequencies: Dict[int, int],
        abs_tol: float = 0.02,
        rel_tol: float = 0.25,
    ) -> Set[int]:
        """Templates whose window *share* moved materially.

        A template changes when its share moved by more than
        ``abs_tol`` (absolute, in share units) *and* by more than
        ``rel_tol`` relative to the larger of old and new share.  This
        is the warm-start invalidation set: only these templates get
        resampled on the next retune; everything else carries its cost
        samples forward.
        """
        if self._reference is None:
            raise RuntimeError("no reference mix set")
        ref_total = sum(self._reference.values())
        now_total = sum(frequencies.values())
        if now_total <= 0 or ref_total <= 0:
            # A degenerate window carries no share information; with
            # nothing measurable, invalidate nothing rather than
            # divide by zero.
            return set()
        changed: Set[int] = set()
        for tid in set(self._reference) | set(frequencies):
            old = self._reference.get(tid, 0) / ref_total
            new = frequencies.get(tid, 0) / now_total
            diff = abs(new - old)
            if diff > abs_tol and diff > rel_tol * max(old, new):
                changed.add(tid)
        return changed
