"""The continuous-tuning loop: ingest -> drift check -> retune.

:func:`run_service` replays a trace (recorded or generated) through
the streaming stack in batches: each batch is ingested, the drift
monitor scores the window mix against the mix at the last selection,
and a trigger re-runs the comparison primitive — warm-started from the
previous run's estimator state.  Every step emits a structured event
(:mod:`~repro.service.events`), and the whole run is summarized in a
:class:`ServiceReport`.

The first selection happens once the window has filled (or the trace
ends first); it is necessarily cold.  ``replay_speed`` throttles the
replay to a statements-per-second rate for demos and soak tests; the
default ``0`` replays as fast as the optimizer allows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..core.selector import SelectorOptions
from ..workload.workload import Workload
from .drift_monitor import DriftMonitor
from .events import EventLog
from .ingest import StreamIngestor
from .session import RetuneOutcome, TuningSession

__all__ = ["ServiceConfig", "ServiceReport", "run_service"]


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the service loop (see module docstring).

    ``warm=False`` forces every retune to run cold — the baseline the
    replay experiment compares against.
    """

    window_size: int = 400
    batch_size: int = 50
    reservoir_size: int = 64
    drift_threshold: float = 0.05
    cooldown: int = 200
    min_window_fill: float = 0.5
    retune_budget: Optional[int] = None
    warm: bool = True
    invalidate_abs_tol: float = 0.02
    invalidate_rel_tol: float = 0.25
    replay_speed: float = 0.0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.replay_speed < 0:
            raise ValueError(
                f"replay_speed must be >= 0, got {self.replay_speed}"
            )


@dataclass
class ServiceReport:
    """Summary of one service run."""

    statements: int = 0
    drift_checks: int = 0
    max_drift_score: float = 0.0
    retunes: List[RetuneOutcome] = field(default_factory=list)
    final_index: Optional[int] = None
    total_optimizer_calls: int = 0

    @property
    def retune_count(self) -> int:
        """Selections run, including the initial one."""
        return len(self.retunes)

    @property
    def drift_retunes(self) -> List[RetuneOutcome]:
        """Retunes caused by drift (everything after the initial)."""
        return self.retunes[1:]

    @property
    def low_confidence_count(self) -> int:
        """Retunes that exhausted their budget below ``alpha``."""
        return sum(1 for r in self.retunes if r.low_confidence)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly summary (selection history included)."""
        return {
            "statements": self.statements,
            "drift_checks": self.drift_checks,
            "max_drift_score": self.max_drift_score,
            "final_index": self.final_index,
            "total_optimizer_calls": self.total_optimizer_calls,
            "low_confidence_count": self.low_confidence_count,
            "retunes": [
                {
                    "chosen_index": r.chosen_index,
                    "optimizer_calls": r.optimizer_calls,
                    "warm": r.warm,
                    "carried_samples": r.carried_samples,
                    "invalidated_templates": sorted(
                        r.invalidated_templates
                    ),
                    "accepted": r.accepted,
                    "low_confidence": r.low_confidence,
                    "prcs": r.selection.prcs,
                    "terminated_by": r.selection.terminated_by,
                }
                for r in self.retunes
            ],
        }


def run_service(
    trace: Workload,
    configurations: Sequence,
    optimizer,
    config: ServiceConfig = ServiceConfig(),
    options: SelectorOptions = SelectorOptions(),
    events: Optional[EventLog] = None,
    rng: Optional[np.random.Generator] = None,
) -> ServiceReport:
    """Drive the continuous-tuning loop over a trace.

    Parameters
    ----------
    trace:
        The stream to replay, in trace order.
    configurations:
        The fixed candidate configurations the session chooses among.
    optimizer:
        The shared what-if optimizer (its call counter is the cost
        meter).
    config / options:
        Loop knobs and selection tunables.
    events:
        Event sink; an in-memory :class:`EventLog` is created if
        omitted.
    """
    if trace.size < 1:
        raise ValueError("trace must contain at least one statement")
    events = events if events is not None else EventLog()
    rng = rng if rng is not None else np.random.default_rng()
    # Independent streams for ingestion and selection, both derived
    # from the caller's rng: the reservoir contents and the retune
    # draws then depend only on the seed and the trace, not on how
    # many samples earlier retunes consumed.  Two runs differing only
    # in ``config.warm`` see identical snapshots and identical
    # per-retune randomness — a matched-pairs comparison.
    ingest_seed = int(rng.integers(2**31))
    session_seed = int(rng.integers(2**31))

    ingestor = StreamIngestor(
        window_size=config.window_size,
        reservoir_size=config.reservoir_size,
        rng=np.random.default_rng(ingest_seed),
    )
    monitor = DriftMonitor(
        threshold=config.drift_threshold,
        cooldown=config.cooldown,
        min_window_fill=config.min_window_fill,
    )
    session = TuningSession(
        configurations,
        optimizer,
        options=options,
        retune_budget=config.retune_budget,
        seed=session_seed,
    )
    report = ServiceReport()
    events.emit(
        "service_start",
        statements=trace.size,
        k=len(list(configurations)),
        window_size=config.window_size,
        batch_size=config.batch_size,
        reservoir_size=config.reservoir_size,
        drift_threshold=config.drift_threshold,
        cooldown=config.cooldown,
        retune_budget=config.retune_budget,
        warm=config.warm,
        alpha=options.alpha,
        scheme=options.scheme,
    )

    first_tune_at = min(config.window_size, trace.size)
    names = [
        trace.registry.name_of(int(t)) for t in trace.template_ids
    ]
    position = 0
    while position < trace.size:
        hi = min(position + config.batch_size, trace.size)
        batch_len = hi - position
        ingestor.observe_batch(
            trace.queries[position:hi], names[position:hi]
        )
        position = hi
        report.statements = position
        frequencies = ingestor.window_frequencies()
        events.emit(
            "ingest",
            position=position,
            batch=batch_len,
            window_fill=ingestor.window_fill,
            templates=len(frequencies),
        )
        if config.replay_speed > 0:
            time.sleep(batch_len / config.replay_speed)

        if session.current_index is None:
            if position >= first_tune_at:
                _retune(
                    session, ingestor, monitor, events, report,
                    warm=False, trigger_score=None,
                )
            continue

        decision = monitor.check(
            frequencies, position, window_fill=ingestor.window_fill
        )
        report.drift_checks += 1
        report.max_drift_score = max(
            report.max_drift_score, decision.score
        )
        events.emit(
            "drift_check",
            position=position,
            score=decision.score,
            triggered=decision.triggered,
            reason=decision.reason,
        )
        if decision.triggered:
            _retune(
                session, ingestor, monitor, events, report,
                warm=config.warm, trigger_score=decision.score,
                invalidate=(
                    monitor.changed_templates(
                        frequencies,
                        abs_tol=config.invalidate_abs_tol,
                        rel_tol=config.invalidate_rel_tol,
                    )
                    if config.warm
                    else None
                ),
            )

    report.final_index = session.current_index
    report.total_optimizer_calls = session.total_calls
    events.emit(
        "service_end",
        statements=report.statements,
        retunes=report.retune_count,
        final_index=report.final_index,
        total_optimizer_calls=report.total_optimizer_calls,
        low_confidence=report.low_confidence_count,
    )
    return report


def _retune(
    session: TuningSession,
    ingestor: StreamIngestor,
    monitor: DriftMonitor,
    events: EventLog,
    report: ServiceReport,
    warm: bool,
    trigger_score: Optional[float],
    invalidate=None,
) -> None:
    """One selection pass: snapshot, select, log, re-reference."""
    snapshot = ingestor.snapshot()
    events.emit(
        "retune_start",
        position=snapshot.position,
        trigger_score=trigger_score,
        warm=warm,
        window_statements=sum(snapshot.frequencies.values()),
        snapshot_statements=snapshot.workload.size,
        capped_templates=len(snapshot.capped_templates),
        invalidated_templates=sorted(invalidate or ()),
    )
    outcome = session.retune(
        snapshot.workload, warm=warm, invalidate_templates=invalidate
    )
    report.retunes.append(outcome)
    monitor.set_reference(snapshot.frequencies)
    events.emit(
        "retune_end",
        position=snapshot.position,
        chosen_index=outcome.chosen_index,
        optimizer_calls=outcome.optimizer_calls,
        warm=outcome.warm,
        carried_samples=outcome.carried_samples,
        accepted=outcome.accepted,
        low_confidence=outcome.low_confidence,
        prcs=outcome.selection.prcs,
        terminated_by=outcome.selection.terminated_by,
        phase_seconds=outcome.phase_seconds,
    )
