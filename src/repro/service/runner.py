"""The continuous-tuning loop: ingest -> drift check -> retune.

:func:`run_service` replays a trace (recorded or generated) through
the streaming stack in batches: each batch is ingested, the drift
monitor scores the window mix against the mix at the last selection,
and a trigger re-runs the comparison primitive — warm-started from the
previous run's estimator state.  Every step emits a structured event
(:mod:`~repro.service.events`), and the whole run is summarized in a
:class:`ServiceReport`.

The first selection happens once the window has filled (or the trace
ends first); it is necessarily cold.  ``replay_speed`` throttles the
replay to a statements-per-second rate for demos and soak tests; the
default ``0`` replays as fast as the optimizer allows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.selector import SelectorOptions, SelectorState
from ..core.sources import CostSource
from ..faults import FaultPolicy
from ..workload.workload import Workload
from .checkpoint import load_service_checkpoint, save_service_checkpoint
from .drift_monitor import DriftMonitor
from .events import EventLog
from .ingest import StreamIngestor
from .session import RetuneOutcome, TuningSession

__all__ = ["ServiceConfig", "ServiceReport", "run_service"]


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the service loop (see module docstring).

    ``warm=False`` forces every retune to run cold — the baseline the
    replay experiment compares against.  ``checkpoint_path`` enables
    crash recovery: the loop's durable state is published there after
    every retune, and a later :func:`run_service` pointed at the same
    path resumes mid-trace instead of starting over.
    """

    window_size: int = 400
    batch_size: int = 50
    reservoir_size: int = 64
    drift_threshold: float = 0.05
    cooldown: int = 200
    min_window_fill: float = 0.5
    retune_budget: Optional[int] = None
    warm: bool = True
    invalidate_abs_tol: float = 0.02
    invalidate_rel_tol: float = 0.25
    replay_speed: float = 0.0
    checkpoint_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.replay_speed < 0:
            raise ValueError(
                f"replay_speed must be >= 0, got {self.replay_speed}"
            )


def _summarize_retune(r: RetuneOutcome) -> Dict[str, Any]:
    """JSON-friendly summary of one retune (checkpoint + report row)."""
    return {
        "chosen_index": r.chosen_index,
        "optimizer_calls": r.optimizer_calls,
        "warm": r.warm,
        "carried_samples": r.carried_samples,
        "invalidated_templates": sorted(r.invalidated_templates),
        "accepted": r.accepted,
        "low_confidence": r.low_confidence,
        "failed": r.failed,
        "error": r.error,
        "prcs": None if r.selection is None else r.selection.prcs,
        "terminated_by": (
            None if r.selection is None else r.selection.terminated_by
        ),
    }


@dataclass
class ServiceReport:
    """Summary of one service run.

    A resumed run folds the crashed run's completed retunes in as
    ``prior_retunes`` (summaries recovered from the checkpoint), so
    counters cover the whole logical service lifetime, not just the
    process that finished it.
    """

    statements: int = 0
    drift_checks: int = 0
    max_drift_score: float = 0.0
    retunes: List[RetuneOutcome] = field(default_factory=list)
    prior_retunes: List[Dict[str, Any]] = field(default_factory=list)
    final_index: Optional[int] = None
    total_optimizer_calls: int = 0

    @property
    def retune_count(self) -> int:
        """Selections run, including the initial one and any
        completed before a resume."""
        return len(self.prior_retunes) + len(self.retunes)

    @property
    def drift_retunes(self) -> List[RetuneOutcome]:
        """Retunes caused by drift (everything after the initial)."""
        if self.prior_retunes:
            return list(self.retunes)
        return self.retunes[1:]

    @property
    def low_confidence_count(self) -> int:
        """Retunes that exhausted their budget below ``alpha``."""
        return (
            sum(1 for r in self.prior_retunes if r["low_confidence"])
            + sum(1 for r in self.retunes if r.low_confidence)
        )

    @property
    def failed_count(self) -> int:
        """Retunes that died on an exhausted cost source."""
        return (
            sum(1 for r in self.prior_retunes if r.get("failed"))
            + sum(1 for r in self.retunes if r.failed)
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly summary (selection history included)."""
        return {
            "statements": self.statements,
            "drift_checks": self.drift_checks,
            "max_drift_score": self.max_drift_score,
            "final_index": self.final_index,
            "total_optimizer_calls": self.total_optimizer_calls,
            "low_confidence_count": self.low_confidence_count,
            "failed_count": self.failed_count,
            "retunes": (
                list(self.prior_retunes)
                + [_summarize_retune(r) for r in self.retunes]
            ),
        }


def run_service(
    trace: Workload,
    configurations: Sequence,
    optimizer,
    config: ServiceConfig = ServiceConfig(),
    options: SelectorOptions = SelectorOptions(),
    events: Optional[EventLog] = None,
    rng: Optional[np.random.Generator] = None,
    fault_policy: Optional[FaultPolicy] = None,
    fault_injector: Optional[Callable[[CostSource], CostSource]] = None,
) -> ServiceReport:
    """Drive the continuous-tuning loop over a trace.

    Parameters
    ----------
    trace:
        The stream to replay, in trace order.
    configurations:
        The fixed candidate configurations the session chooses among.
    optimizer:
        The shared what-if optimizer (its call counter is the cost
        meter).
    config / options:
        Loop knobs and selection tunables.
    events:
        Event sink; an in-memory :class:`EventLog` is created if
        omitted.
    fault_policy / fault_injector:
        Passed through to :class:`TuningSession` — retry policy for an
        unreliable optimizer and the injection seam used by resilience
        tests (see :mod:`repro.faults`).

    When ``config.checkpoint_path`` names an existing service
    checkpoint, the run **resumes**: the stored seeds are reused, the
    trace prefix is replayed through a fresh ingestor (reconstructing
    window and reservoirs exactly — the reservoir RNG re-consumes the
    identical draws), and session/monitor/report state is restored
    before the loop continues at the recorded position.  Events from
    the fast-forward are not re-emitted; the resumed process emits one
    ``service_resume`` and continues the sequence.
    """
    if trace.size < 1:
        raise ValueError("trace must contain at least one statement")
    events = events if events is not None else EventLog()
    rng = rng if rng is not None else np.random.default_rng()
    resume = None
    if config.checkpoint_path is not None:
        resume = load_service_checkpoint(config.checkpoint_path)
    # Independent streams for ingestion and selection, both derived
    # from the caller's rng: the reservoir contents and the retune
    # draws then depend only on the seed and the trace, not on how
    # many samples earlier retunes consumed.  Two runs differing only
    # in ``config.warm`` see identical snapshots and identical
    # per-retune randomness — a matched-pairs comparison.  A resumed
    # run reuses the crashed run's seeds; the caller's rng is ignored.
    if resume is not None:
        ingest_seed = int(resume["ingest_seed"])
        session_seed = int(resume["session_seed"])
    else:
        ingest_seed = int(rng.integers(2**31))
        session_seed = int(rng.integers(2**31))

    ingestor = StreamIngestor(
        window_size=config.window_size,
        reservoir_size=config.reservoir_size,
        rng=np.random.default_rng(ingest_seed),
    )
    monitor = DriftMonitor(
        threshold=config.drift_threshold,
        cooldown=config.cooldown,
        min_window_fill=config.min_window_fill,
    )
    session = TuningSession(
        configurations,
        optimizer,
        options=options,
        retune_budget=config.retune_budget,
        seed=session_seed,
        fault_policy=fault_policy,
        fault_injector=fault_injector,
    )
    report = ServiceReport()

    first_tune_at = min(config.window_size, trace.size)
    names = [
        trace.registry.name_of(int(t)) for t in trace.template_ids
    ]
    position = 0

    def _save_state() -> None:
        if config.checkpoint_path is None:
            return
        selector_state = session.state
        save_service_checkpoint(
            config.checkpoint_path,
            {
                "position": int(position),
                "ingest_seed": ingest_seed,
                "session_seed": session_seed,
                "session": {
                    "current_index": session.current_index,
                    "retune_count": session.retune_count,
                    "total_calls": session.total_calls,
                    "failed_retunes": session.failed_retunes,
                    "state": (
                        None if selector_state is None
                        else selector_state.to_dict()
                    ),
                },
                "monitor": monitor.state_dict(),
                "report": {
                    "drift_checks": report.drift_checks,
                    "max_drift_score": report.max_drift_score,
                    "retunes": (
                        list(report.prior_retunes)
                        + [_summarize_retune(r) for r in report.retunes]
                    ),
                },
            },
        )

    if resume is not None:
        position = int(resume["position"])
        if position > trace.size:
            raise ValueError(
                f"checkpoint position {position} exceeds trace size "
                f"{trace.size}"
            )
        # Deterministic fast-forward: re-ingest the already-processed
        # prefix so window, reservoirs and registry match the crashed
        # run exactly.  No events are emitted for replayed batches.
        replay_at = 0
        while replay_at < position:
            hi = min(replay_at + config.batch_size, position)
            ingestor.observe_batch(
                trace.queries[replay_at:hi], names[replay_at:hi]
            )
            replay_at = hi
        stored = resume["session"]
        current = stored.get("current_index")
        session.current_index = None if current is None else int(current)
        session.retune_count = int(stored["retune_count"])
        session.total_calls = int(stored["total_calls"])
        session.failed_retunes = int(stored.get("failed_retunes", 0))
        state = stored.get("state")
        session.restore_state(
            None if state is None else SelectorState.from_dict(state)
        )
        monitor.restore_state(resume["monitor"])
        stored_report = resume["report"]
        report.statements = position
        report.drift_checks = int(stored_report["drift_checks"])
        report.max_drift_score = float(stored_report["max_drift_score"])
        report.prior_retunes = list(stored_report["retunes"])
        events.emit(
            "service_resume",
            position=position,
            retunes=report.retune_count,
            current_index=session.current_index,
            total_optimizer_calls=session.total_calls,
        )
    else:
        events.emit(
            "service_start",
            statements=trace.size,
            k=len(list(configurations)),
            window_size=config.window_size,
            batch_size=config.batch_size,
            reservoir_size=config.reservoir_size,
            drift_threshold=config.drift_threshold,
            cooldown=config.cooldown,
            retune_budget=config.retune_budget,
            warm=config.warm,
            alpha=options.alpha,
            scheme=options.scheme,
        )

    while position < trace.size:
        hi = min(position + config.batch_size, trace.size)
        batch_len = hi - position
        ingestor.observe_batch(
            trace.queries[position:hi], names[position:hi]
        )
        position = hi
        report.statements = position
        frequencies = ingestor.window_frequencies()
        events.emit(
            "ingest",
            position=position,
            batch=batch_len,
            window_fill=ingestor.window_fill,
            templates=len(frequencies),
        )
        if config.replay_speed > 0:
            time.sleep(batch_len / config.replay_speed)

        if session.current_index is None:
            if position >= first_tune_at:
                _retune(
                    session, ingestor, monitor, events, report,
                    warm=False, trigger_score=None,
                )
                _save_state()
            continue

        decision = monitor.check(
            frequencies, position, window_fill=ingestor.window_fill
        )
        report.drift_checks += 1
        report.max_drift_score = max(
            report.max_drift_score, decision.score
        )
        events.emit(
            "drift_check",
            position=position,
            score=decision.score,
            triggered=decision.triggered,
            reason=decision.reason,
        )
        if decision.triggered:
            _retune(
                session, ingestor, monitor, events, report,
                warm=config.warm, trigger_score=decision.score,
                invalidate=(
                    monitor.changed_templates(
                        frequencies,
                        abs_tol=config.invalidate_abs_tol,
                        rel_tol=config.invalidate_rel_tol,
                    )
                    if config.warm
                    else None
                ),
            )
            _save_state()

    report.final_index = session.current_index
    report.total_optimizer_calls = session.total_calls
    _save_state()
    events.emit(
        "service_end",
        statements=report.statements,
        retunes=report.retune_count,
        final_index=report.final_index,
        total_optimizer_calls=report.total_optimizer_calls,
        low_confidence=report.low_confidence_count,
        failed=report.failed_count,
    )
    return report


def _retune(
    session: TuningSession,
    ingestor: StreamIngestor,
    monitor: DriftMonitor,
    events: EventLog,
    report: ServiceReport,
    warm: bool,
    trigger_score: Optional[float],
    invalidate=None,
) -> None:
    """One selection pass: snapshot, select, log, re-reference."""
    snapshot = ingestor.snapshot()
    events.emit(
        "retune_start",
        position=snapshot.position,
        trigger_score=trigger_score,
        warm=warm,
        window_statements=sum(snapshot.frequencies.values()),
        snapshot_statements=snapshot.workload.size,
        capped_templates=len(snapshot.capped_templates),
        invalidated_templates=sorted(invalidate or ()),
    )
    outcome = session.retune(
        snapshot.workload, warm=warm, invalidate_templates=invalidate
    )
    report.retunes.append(outcome)
    if outcome.failed:
        # Cost source exhausted mid-run: the session kept the current
        # configuration.  The reference mix is deliberately *not*
        # updated — the drift that triggered this retune is still
        # unanswered, so the next window past cooldown re-triggers.
        events.emit(
            "retune_failed",
            position=snapshot.position,
            chosen_index=outcome.chosen_index,
            optimizer_calls=outcome.optimizer_calls,
            warm=outcome.warm,
            carried_samples=outcome.carried_samples,
            error=outcome.error,
        )
        return
    monitor.set_reference(snapshot.frequencies)
    events.emit(
        "retune_end",
        position=snapshot.position,
        chosen_index=outcome.chosen_index,
        optimizer_calls=outcome.optimizer_calls,
        warm=outcome.warm,
        carried_samples=outcome.carried_samples,
        accepted=outcome.accepted,
        low_confidence=outcome.low_confidence,
        prcs=outcome.selection.prcs,
        terminated_by=outcome.selection.terminated_by,
        phase_seconds=outcome.phase_seconds,
    )
