"""Structured JSONL event log for the online tuning service.

Every decision the service takes — ingest batches, drift scores,
retune start/stop, optimizer calls spent, the chosen configuration and
the achieved ``Pr(CS)`` — is emitted as one JSON object per line, so a
run is observable while it happens (``tail -f``) and replayable after
the fact (:func:`read_events`).  Events carry a monotonically
increasing ``seq`` and a wall-clock ``ts``; consumers should key on
``seq`` (wall clocks can step).
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional

__all__ = ["EventLog", "read_events"]


class EventLog:
    """Append-only event sink, in memory and optionally on disk.

    Parameters
    ----------
    path:
        JSONL file to append events to; ``None`` keeps events in
        memory only.  The file is created (truncated) on first emit,
        and each event is flushed immediately so a crashed run leaves
        a complete prefix.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self.events: List[Dict[str, Any]] = []
        self._seq = 0
        self._fh = None

    def emit(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Record one event and return it.

        ``kind`` names the event type (``"ingest"``, ``"drift_check"``,
        ``"retune_start"``, ``"retune_end"``, ...); keyword arguments
        become the payload and must be JSON-serializable.
        """
        event = {"seq": self._seq, "ts": time.time(), "kind": kind}
        event.update(fields)
        self._seq += 1
        self.events.append(event)
        if self.path is not None:
            if self._fh is None:
                self._fh = open(self.path, "w", encoding="utf-8")
            self._fh.write(json.dumps(event, default=float) + "\n")
            self._fh.flush()
        return event

    def of_kind(self, kind: str) -> List[Dict[str, Any]]:
        """All recorded events of one type, in emission order."""
        return [e for e in self.events if e["kind"] == kind]

    def close(self) -> None:
        """Close the underlying file (no-op for in-memory logs)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.events)


def read_events(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL event log back into a list of events.

    Raises ``ValueError`` on malformed lines or out-of-order ``seq``
    numbers, so it doubles as a validity check in tests and CI.
    """
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: malformed event line: {exc}"
                ) from exc
            if not isinstance(event, dict) or "kind" not in event:
                raise ValueError(
                    f"{path}:{lineno}: event is not an object with a "
                    f"'kind' field"
                )
            if events and event.get("seq", -1) <= events[-1].get("seq", -1):
                raise ValueError(
                    f"{path}:{lineno}: event seq {event.get('seq')} is "
                    f"not increasing"
                )
            events.append(event)
    return events
