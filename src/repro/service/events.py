"""Structured JSONL event log for the online tuning service.

Every decision the service takes — ingest batches, drift scores,
retune start/stop, optimizer calls spent, the chosen configuration and
the achieved ``Pr(CS)`` — is emitted as one JSON object per line, so a
run is observable while it happens (``tail -f``) and replayable after
the fact (:func:`read_events`).  Events carry a monotonically
increasing ``seq`` and a wall-clock ``ts``; consumers should key on
``seq`` (wall clocks can step).

The on-disk log is **append-only across restarts**: opening a path
that already holds events continues the sequence after the recorded
tail instead of truncating the history, so a crashed-and-resumed
service leaves one contiguous log.  A partially written final line
(the signature of a crash mid-write) is discarded on reopen; complete
history is never touched.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional

__all__ = ["EventLog", "read_events"]


def _scan_tail(path: str) -> tuple:
    """``(next_seq, truncate_at)`` for an existing event file.

    Walks the file once, tracking the last complete event's ``seq``
    and the byte offset after the last complete line.  Anything past
    that offset is a torn final write and is safe to drop; a torn
    line *before* the end means real corruption and raises.
    """
    next_seq = 0
    clean_end = 0
    try:
        size = os.path.getsize(path)
    except OSError:
        return 0, 0
    with open(path, "r", encoding="utf-8", newline="") as fh:
        offset = 0
        for line in fh:
            offset += len(line.encode("utf-8"))
            if not line.endswith("\n"):
                # Torn tail from a crash mid-write: everything before
                # it is intact, so resume after the previous line.
                if offset != size:
                    raise ValueError(
                        f"{path}: embedded unterminated event line"
                    )
                break
            stripped = line.strip()
            if not stripped:
                clean_end = offset
                continue
            try:
                event = json.loads(stripped)
            except json.JSONDecodeError:
                if offset != size:
                    raise ValueError(
                        f"{path}: malformed event line mid-file"
                    ) from None
                break
            clean_end = offset
            if isinstance(event, dict) and "seq" in event:
                next_seq = max(next_seq, int(event["seq"]) + 1)
    return next_seq, clean_end


class EventLog:
    """Append-only event sink, in memory and optionally on disk.

    Parameters
    ----------
    path:
        JSONL file to append events to; ``None`` keeps events in
        memory only.  An existing file is **appended to** — the
        sequence continues after the recorded tail, so restarting a
        service never wipes its history.  Each event is flushed
        immediately so a crashed run leaves a complete prefix.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self.events: List[Dict[str, Any]] = []
        self._seq = 0
        self._fh = None
        self._closed = False
        if path is not None and os.path.exists(path):
            next_seq, clean_end = _scan_tail(os.fspath(path))
            self._seq = next_seq
            if clean_end < os.path.getsize(path):
                # Drop the torn final line before the first append.
                os.truncate(path, clean_end)

    @property
    def next_seq(self) -> int:
        """The sequence number the next emitted event will carry."""
        return self._seq

    def emit(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Record one event and return it.

        ``kind`` names the event type (``"ingest"``, ``"drift_check"``,
        ``"retune_start"``, ``"retune_end"``, ...); keyword arguments
        become the payload and must be JSON-serializable.  Raises
        ``RuntimeError`` after :meth:`close` — silently reopening
        would truncate or fork the on-disk history.
        """
        if self._closed:
            raise RuntimeError("emit() on a closed EventLog")
        event = {"seq": self._seq, "ts": time.time(), "kind": kind}
        event.update(fields)
        self._seq += 1
        self.events.append(event)
        if self.path is not None:
            if self._fh is None:
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(json.dumps(event, default=float) + "\n")
            self._fh.flush()
        return event

    def of_kind(self, kind: str) -> List[Dict[str, Any]]:
        """All recorded events of one type, in emission order."""
        return [e for e in self.events if e["kind"] == kind]

    def close(self) -> None:
        """Close the log; further :meth:`emit` calls raise."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self._closed = True

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.events)


def read_events(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL event log back into a list of events.

    Raises ``ValueError`` on malformed lines or out-of-order ``seq``
    numbers, so it doubles as a validity check in tests and CI.
    """
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: malformed event line: {exc}"
                ) from exc
            if not isinstance(event, dict) or "kind" not in event:
                raise ValueError(
                    f"{path}:{lineno}: event is not an object with a "
                    f"'kind' field"
                )
            if events and event.get("seq", -1) <= events[-1].get("seq", -1):
                raise ValueError(
                    f"{path}:{lineno}: event seq {event.get('seq')} is "
                    f"not increasing"
                )
            events.append(event)
    return events
