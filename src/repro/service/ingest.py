"""Streaming workload ingestion for the online tuning service.

A production system does not hand the tuner a finished trace; queries
arrive one at a time.  :class:`StreamIngestor` consumes that stream
and maintains exactly the state re-selection needs:

* a **sliding window** of the last ``window_size`` statements, giving
  the current per-template frequency mix (what the drift monitor
  compares);
* a bounded **per-template reservoir** (Algorithm R) of query
  instances, so each template — each stratification atom of §5 — is
  represented by a *uniform* sample of its recent queries no matter
  how hot the template runs.  Uniformity within templates is what
  keeps the selector's stratified estimators unbiased.

:meth:`StreamIngestor.snapshot` assembles the two into a
:class:`~repro.workload.workload.Workload` mirroring the window's
template mix (heavy templates capped at the reservoir capacity), built
on a registry shared across snapshots so template ids are stable from
one retune to the next — the property warm starts rely on.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

from ..queries.ast import Query
from ..queries.templates import TemplateRegistry
from ..workload.workload import Workload

__all__ = ["StreamIngestor", "WindowSnapshot"]


@dataclass
class WindowSnapshot:
    """A point-in-time workload assembled from the ingest state.

    Attributes
    ----------
    workload:
        The selection-ready workload: per template, a uniform sample
        of its reservoir sized ``min(window count, reservoir size)``.
    frequencies:
        Per-template statement counts over the sliding window (the
        mix the snapshot approximates).
    capped_templates:
        Templates whose window count exceeded the reservoir capacity
        and were truncated; their relative weight in ``workload`` is
        lower than in the live window.
    position:
        Total statements ingested when the snapshot was taken.
    """

    workload: Workload
    frequencies: Dict[int, int]
    capped_templates: List[int] = field(default_factory=list)
    position: int = 0


class StreamIngestor:
    """Sliding-window + per-template-reservoir trace consumer.

    Parameters
    ----------
    window_size:
        Statements the sliding window holds; the frequency mix is
        computed over this horizon.
    reservoir_size:
        Per-template reservoir capacity (Algorithm R).  Bounds memory
        and snapshot size: a template never contributes more than this
        many queries to a snapshot.
    registry:
        Template registry shared with downstream consumers; a fresh
        one is created if omitted.  All snapshots share it, keeping
        template ids stable across retunes.
    rng:
        Drives reservoir replacement; defaults to a fresh generator.
    """

    def __init__(
        self,
        window_size: int = 400,
        reservoir_size: int = 64,
        registry: Optional[TemplateRegistry] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if window_size < 1:
            raise ValueError(f"window_size must be >= 1, got {window_size}")
        if reservoir_size < 1:
            raise ValueError(
                f"reservoir_size must be >= 1, got {reservoir_size}"
            )
        self.window_size = window_size
        self.reservoir_size = reservoir_size
        self.registry = registry if registry is not None else \
            TemplateRegistry()
        self.rng = rng if rng is not None else np.random.default_rng()
        self.total_seen = 0
        self._window: Deque[int] = deque()
        self._counts: Counter = Counter()
        self._reservoirs: Dict[int, List[Query]] = {}
        self._arrivals: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def observe(self, query: Query, name: Optional[str] = None) -> int:
        """Ingest one statement; returns its template id."""
        tid = self.registry.template_id(query, name=name)
        self.total_seen += 1
        self._window.append(tid)
        self._counts[tid] += 1
        if len(self._window) > self.window_size:
            evicted = self._window.popleft()
            self._counts[evicted] -= 1
            if self._counts[evicted] == 0:
                del self._counts[evicted]
        # Algorithm R within the template: after m arrivals the
        # reservoir is a uniform sample of them.
        reservoir = self._reservoirs.setdefault(tid, [])
        arrivals = self._arrivals.get(tid, 0) + 1
        self._arrivals[tid] = arrivals
        if len(reservoir) < self.reservoir_size:
            reservoir.append(query)
        else:
            slot = int(self.rng.integers(0, arrivals))
            if slot < self.reservoir_size:
                reservoir[slot] = query
        return tid

    def observe_batch(
        self,
        queries: Sequence[Query],
        names: Optional[Sequence[Optional[str]]] = None,
    ) -> List[int]:
        """Ingest a batch; returns the per-statement template ids."""
        if names is not None and len(names) != len(queries):
            raise ValueError(
                f"{len(names)} names for {len(queries)} queries"
            )
        return [
            self.observe(q, names[i] if names is not None else None)
            for i, q in enumerate(queries)
        ]

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def window_fill(self) -> float:
        """Occupied fraction of the sliding window."""
        return len(self._window) / self.window_size

    def window_frequencies(self) -> Dict[int, int]:
        """Per-template statement counts over the sliding window."""
        return dict(self._counts)

    def reservoir_count(self, template_id: int) -> int:
        """Queries currently held for one template."""
        return len(self._reservoirs.get(template_id, []))

    def reset_reservoir(self, template_id: int) -> None:
        """Drop one template's reservoir (forces fresh accumulation).

        Used when a template's binding distribution is suspected to
        have changed along with its frequency — the carried queries
        would otherwise keep representing the old regime.
        """
        self._reservoirs.pop(template_id, None)
        self._arrivals.pop(template_id, None)

    # ------------------------------------------------------------------
    # snapshotting
    # ------------------------------------------------------------------
    def snapshot(self) -> WindowSnapshot:
        """Assemble the current window into a selection-ready workload.

        Template ``t`` with window count ``c_t`` contributes
        ``min(c_t, reservoir size, reservoir fill)`` queries — a
        uniform subsample of its reservoir (any fixed subset of
        reservoir slots is itself uniform), so the workload's template
        mix tracks the window's up to the reservoir cap.

        Raises ``RuntimeError`` on an empty window.
        """
        if not self._counts:
            raise RuntimeError("cannot snapshot an empty window")
        queries: List[Query] = []
        names: List[str] = []
        capped: List[int] = []
        for tid in sorted(self._counts):
            count = self._counts[tid]
            reservoir = self._reservoirs.get(tid, [])
            take = min(count, len(reservoir))
            if take < count:
                capped.append(tid)
            name = self.registry.name_of(tid)
            for q in reservoir[:take]:
                queries.append(q)
                names.append(name)
        workload = Workload(
            queries, registry=self.registry, template_names=names
        )
        return WindowSnapshot(
            workload=workload,
            frequencies=self.window_frequencies(),
            capped_templates=capped,
            position=self.total_seen,
        )
