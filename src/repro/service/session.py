"""Warm-started re-selection sessions.

A :class:`TuningSession` owns the candidate configurations and the
"currently deployed" choice, and re-runs the paper's selection
procedure on demand.  Two operational concerns sit on top of the
offline primitive:

* **Warm starts** — after every run the selector's estimator state is
  exported (:class:`~repro.core.selector.SelectorState`) and carried
  into the next retune.  Templates whose mix changed (the drift
  monitor's invalidation set) are dropped and resampled; everything
  else reuses its per-stratum cost samples, so a retune after mild
  drift spends a fraction of a cold run's optimizer calls.
* **Budgeted degradation** — each retune gets an optimizer-call
  budget.  When the budget runs out before ``Pr(CS) > alpha``, the
  session *keeps the currently deployed configuration* and flags the
  outcome as low-confidence instead of deploying an under-sampled
  winner.  (The sampled state is still carried forward — the spent
  calls are not wasted.)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Sequence, Set

import numpy as np

from ..core.selector import (
    ConfigurationSelector,
    SelectionResult,
    SelectorOptions,
    SelectorState,
)
from ..core.sources import CostSource, OptimizerCostSource
from ..experiments.profiling import PhaseTimer
from ..faults import CostSourceExhausted, FaultPolicy, ResilientCostSource
from ..workload.workload import Workload

__all__ = ["RetuneOutcome", "TuningSession"]


@dataclass
class RetuneOutcome:
    """What one retune did.

    ``chosen_index`` is the configuration the session is deployed on
    *after* the retune — on graceful degradation that is the previous
    choice, not the run's ``selection.best_index``.  A ``failed``
    outcome means the cost source died mid-run (retries/failure budget
    exhausted): the session kept the deployed configuration and no
    selection result exists; partial sampled state is still carried
    into the next retune.
    """

    selection: Optional[SelectionResult]
    chosen_index: Optional[int]
    optimizer_calls: int
    warm: bool
    carried_samples: int
    invalidated_templates: Set[int] = field(default_factory=set)
    accepted: bool = True
    low_confidence: bool = False
    failed: bool = False
    error: Optional[str] = None
    #: Selector wall time by phase (plan/draw/cost/ingest/evaluate).
    phase_seconds: Dict[str, float] = field(default_factory=dict)


class TuningSession:
    """The deployed-configuration state machine around the selector.

    Parameters
    ----------
    configurations:
        The fixed candidate set; ``chosen_index`` values index it.
    optimizer:
        A :class:`~repro.optimizer.whatif.WhatIfOptimizer`; all
        retunes share it (and therefore its call counter).
    options:
        Selection tunables; ``max_calls`` is overridden per retune by
        ``retune_budget``.
    retune_budget:
        Optimizer-call budget per retune (``None`` = unbudgeted).
        Carried warm-start samples are free — the budget only limits
        *fresh* calls.
    seed:
        When given, retune ``i`` samples with a fresh
        ``default_rng((seed, i))`` — so two sessions over the same
        snapshots draw identically at each retune no matter how many
        draws earlier retunes consumed.  This is what makes cold and
        warm runs of the replay experiment matched pairs.
    rng:
        Shared generator driving all retunes; ignored when ``seed``
        is given.
    fault_policy:
        When given, each retune's cost source is wrapped in a
        :class:`~repro.faults.ResilientCostSource` with this policy:
        transient optimizer failures are retried with backoff, and an
        exhausted retry/failure budget degrades the retune to
        keep-current (a ``failed`` outcome) instead of killing the
        service loop.
    fault_injector:
        Optional callable ``source -> source`` applied to the raw
        per-retune cost source *before* the resilience wrapper —
        the seam fault-injection tests and the resilience experiment
        use to make the optimizer unreliable on purpose.
    """

    def __init__(
        self,
        configurations: Sequence,
        optimizer,
        options: SelectorOptions = SelectorOptions(),
        retune_budget: Optional[int] = None,
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        fault_policy: Optional[FaultPolicy] = None,
        fault_injector: Optional[Callable[[CostSource], CostSource]] = None,
    ) -> None:
        if not configurations:
            raise ValueError("need at least one candidate configuration")
        if retune_budget is not None and retune_budget < 1:
            raise ValueError(
                f"retune_budget must be >= 1, got {retune_budget}"
            )
        self.configurations = list(configurations)
        self.optimizer = optimizer
        self.options = options
        self.retune_budget = retune_budget
        self.seed = seed
        self.rng = rng if rng is not None else np.random.default_rng()
        self.fault_policy = fault_policy
        self.fault_injector = fault_injector
        self.current_index: Optional[int] = None
        self.retune_count = 0
        self.total_calls = 0
        self.failed_retunes = 0
        self._state: Optional[SelectorState] = None
        #: Session-wide selector phase profile, accumulated per retune.
        self.timer = PhaseTimer()

    def _retune_rng(self) -> np.random.Generator:
        if self.seed is not None:
            return np.random.default_rng((self.seed, self.retune_count))
        return self.rng

    # ------------------------------------------------------------------
    @property
    def state(self) -> Optional[SelectorState]:
        """The estimator state the next warm retune would start from."""
        return self._state

    def restore_state(self, state: Optional[SelectorState]) -> None:
        """Adopt a checkpointed estimator state (see
        :meth:`SelectorState.from_dict`)."""
        self._state = state

    def retune(
        self,
        workload: Workload,
        warm: bool = True,
        invalidate_templates: Optional[Set[int]] = None,
    ) -> RetuneOutcome:
        """Run a (re-)selection over a window snapshot.

        Parameters
        ----------
        workload:
            The selection workload, typically
            :meth:`~repro.service.ingest.StreamIngestor.snapshot`'s
            output; must share the template registry with previous
            snapshots for warm starts to line up.
        warm:
            Carry the previous run's estimator state forward.  The
            first retune of a session is always effectively cold.
        invalidate_templates:
            Templates to drop from the carried state (resampled from
            scratch); ignored for cold retunes.
        """
        invalidated = set(invalidate_templates or ())
        state = self._state if warm else None
        if state is not None and invalidated:
            state = state.drop_templates(invalidated)
        raw = OptimizerCostSource(
            workload, self.configurations, self.optimizer
        )
        source: CostSource = raw
        if self.fault_injector is not None:
            source = self.fault_injector(source)
        if self.fault_policy is not None:
            source = ResilientCostSource(source, self.fault_policy)
        options = replace(self.options, max_calls=self.retune_budget)
        retune_timer = PhaseTimer()
        selector = ConfigurationSelector(
            source,
            workload.template_ids,
            options,
            rng=self._retune_rng(),
            warm_state=state,
            timer=retune_timer,
        )
        try:
            result = selector.run()
        except CostSourceExhausted as exc:
            # The cost source died for good (retries and failure
            # budget spent).  Keep the deployed configuration rather
            # than taking the whole service down; carry whatever
            # partial state the run accumulated — those calls still
            # bought information.
            self.timer.merge(retune_timer)
            spent = int(raw.calls)
            try:
                self._state = selector.export_state()
            except RuntimeError:
                pass  # died before any estimator state existed
            self.retune_count += 1
            self.total_calls += spent
            self.failed_retunes += 1
            return RetuneOutcome(
                selection=None,
                chosen_index=self.current_index,
                optimizer_calls=spent,
                warm=state is not None,
                carried_samples=selector.carried_samples,
                invalidated_templates=invalidated,
                accepted=False,
                low_confidence=True,
                failed=True,
                error=str(exc),
                phase_seconds=retune_timer.as_dict(),
            )
        finally:
            raw.close()
        self.timer.merge(retune_timer)

        low_confidence = (
            result.terminated_by == "max_calls"
            and result.prcs <= self.options.alpha
        )
        degraded = low_confidence and self.current_index is not None
        chosen = self.current_index if degraded else result.best_index

        # Keep the sampled state either way: a degraded retune's calls
        # still bought information the next retune can reuse.
        self._state = selector.export_state()
        self.current_index = chosen
        self.retune_count += 1
        self.total_calls += result.optimizer_calls
        return RetuneOutcome(
            selection=result,
            chosen_index=int(chosen),
            optimizer_calls=result.optimizer_calls,
            warm=state is not None,
            carried_samples=selector.carried_samples,
            invalidated_templates=invalidated,
            accepted=not degraded,
            low_confidence=low_confidence,
            phase_seconds=retune_timer.as_dict(),
        )
