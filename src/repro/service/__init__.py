"""Online tuning service: the paper's primitive, run continuously.

The comparison primitive (:mod:`repro.core`) answers one *offline*
question: which of ``k`` configurations is best for *this* trace, with
``Pr(correct selection) >= alpha``.  Its own framing (§1) assumes the
trace is representative "for a representative period of time" — an
assumption production traffic violates whenever the template mix
drifts.  This package closes the loop:

* :mod:`~repro.service.ingest` — streaming trace consumption into a
  sliding window with per-template reservoirs;
* :mod:`~repro.service.drift_monitor` — windowed template-mix
  divergence with trigger thresholds and cooldowns;
* :mod:`~repro.service.session` — warm-started re-selection sessions
  around :class:`~repro.core.selector.ConfigurationSelector`, with a
  per-retune optimizer-call budget and graceful degradation;
* :mod:`~repro.service.events` — a structured JSONL event log making
  every decision observable and replayable;
* :mod:`~repro.service.runner` — the loop itself, driving ingest ->
  drift check -> retune over a recorded or generated trace
  (``repro serve`` on the command line).

Everything downstream of the drift trigger is the paper's machinery;
the service layer is an extension (see ``docs/paper_mapping.md``).
"""

from .checkpoint import load_service_checkpoint, save_service_checkpoint
from .drift_monitor import DriftDecision, DriftMonitor, js_divergence
from .events import EventLog, read_events
from .ingest import StreamIngestor, WindowSnapshot
from .runner import ServiceConfig, ServiceReport, run_service
from .session import RetuneOutcome, TuningSession

__all__ = [
    "DriftDecision",
    "DriftMonitor",
    "js_divergence",
    "EventLog",
    "read_events",
    "StreamIngestor",
    "WindowSnapshot",
    "ServiceConfig",
    "ServiceReport",
    "run_service",
    "RetuneOutcome",
    "TuningSession",
    "load_service_checkpoint",
    "save_service_checkpoint",
]
