"""Query substrate: ASTs, SQL rendering, parsing and templates."""

from .ast import (
    Aggregate,
    ColumnRef,
    EqPredicate,
    InPredicate,
    JoinPredicate,
    Predicate,
    Query,
    QueryType,
    RangePredicate,
)
from .parser import ParseError, parse_query
from .sqlgen import render_predicate, render_query
from .templates import TemplateRegistry, group_by_template

__all__ = [
    "Aggregate",
    "ColumnRef",
    "EqPredicate",
    "InPredicate",
    "JoinPredicate",
    "Predicate",
    "Query",
    "QueryType",
    "RangePredicate",
    "ParseError",
    "parse_query",
    "render_predicate",
    "render_query",
    "TemplateRegistry",
    "group_by_template",
]
