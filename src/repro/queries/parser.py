"""Parse dialect SQL text back to query ASTs.

Inverse of :mod:`repro.queries.sqlgen`.  A hand-written tokenizer plus
recursive-descent parser over the small dialect; raises
:class:`ParseError` with position information on malformed input.

The workload store uses this to rehydrate sampled queries from their
text representation, mirroring the paper's preprocessing step where
query strings live in a database table and only sampled queries are
read back into memory.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .ast import (
    Aggregate,
    ColumnRef,
    EqPredicate,
    InPredicate,
    JoinPredicate,
    Predicate,
    Query,
    QueryType,
    RangePredicate,
)

__all__ = ["ParseError", "parse_query"]


class ParseError(ValueError):
    """Raised when the input text is not valid dialect SQL."""


_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<number>-?\d+)"
    r"|(?P<qualified>[A-Za-z_][A-Za-z_0-9]*\.[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<word>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<punct>[(),*=])"
    r")"
)

_KEYWORDS = {
    "SELECT",
    "FROM",
    "WHERE",
    "AND",
    "GROUP",
    "ORDER",
    "BY",
    "BETWEEN",
    "IN",
    "UPDATE",
    "SET",
    "DELETE",
    "INSERT",
    "INTO",
    "VALUES",
    "DEFAULT",
}

_AGG_FUNCS = set(Aggregate.FUNCS)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    """Split ``text`` into (kind, value) tokens.

    Kinds: ``number``, ``qualified`` (table.column), ``word``
    (keyword/identifier, keywords upper-cased), ``punct``.
    """
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            if text[pos:].strip() == "":
                break
            raise ParseError(
                f"unexpected character {text[pos]!r} at position {pos}"
            )
        pos = match.end()
        for kind in ("number", "qualified", "word", "punct"):
            value = match.group(kind)
            if value is not None:
                if kind == "word" and value.upper() in (
                    _KEYWORDS | _AGG_FUNCS
                ):
                    value = value.upper()
                tokens.append((kind, value))
                break
    return tokens


class _TokenStream:
    """Cursor over the token list with the usual peek/expect helpers."""

    def __init__(self, tokens: List[Tuple[str, str]], text: str) -> None:
        self._tokens = tokens
        self._text = text
        self._pos = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def next(self) -> Tuple[str, str]:
        tok = self.peek()
        if tok is None:
            raise ParseError(f"unexpected end of input in {self._text!r}")
        self._pos += 1
        return tok

    def expect(self, value: str) -> None:
        kind, got = self.next()
        if got != value:
            raise ParseError(
                f"expected {value!r} but found {got!r} "
                f"(token {self._pos - 1}) in {self._text!r}"
            )

    def accept(self, value: str) -> bool:
        tok = self.peek()
        if tok is not None and tok[1] == value:
            self._pos += 1
            return True
        return False

    def at_end(self) -> bool:
        return self.peek() is None


def _parse_column_ref(ts: _TokenStream) -> ColumnRef:
    kind, value = ts.next()
    if kind != "qualified":
        raise ParseError(f"expected qualified column, found {value!r}")
    table, column = value.split(".", 1)
    return ColumnRef(table, column)


def _parse_number(ts: _TokenStream) -> int:
    kind, value = ts.next()
    if kind != "number":
        raise ParseError(f"expected integer constant, found {value!r}")
    return int(value)


def _parse_predicate(ts: _TokenStream, first: ColumnRef) -> Predicate:
    kind, op = ts.next()
    if op == "=":
        return EqPredicate(first, _parse_number(ts))
    if op == "BETWEEN":
        lo = _parse_number(ts)
        ts.expect("AND")
        hi = _parse_number(ts)
        return RangePredicate(first, lo, hi)
    if op == "IN":
        ts.expect("(")
        values = [_parse_number(ts)]
        while ts.accept(","):
            values.append(_parse_number(ts))
        ts.expect(")")
        return InPredicate(first, tuple(values))
    raise ParseError(f"expected a predicate operator, found {op!r}")


def _parse_where(
    ts: _TokenStream,
) -> Tuple[Tuple[JoinPredicate, ...], Tuple[Predicate, ...]]:
    """Parse an optional WHERE clause into join and filter predicates."""
    joins: List[JoinPredicate] = []
    filters: List[Predicate] = []
    if not ts.accept("WHERE"):
        return (), ()
    while True:
        left = _parse_column_ref(ts)
        peeked = ts.peek()
        if peeked is not None and peeked[1] == "=":
            nxt = ts._tokens[ts._pos + 1] if ts._pos + 1 < len(
                ts._tokens
            ) else None
            if nxt is not None and nxt[0] == "qualified":
                ts.expect("=")
                right = _parse_column_ref(ts)
                joins.append(JoinPredicate(left, right))
            else:
                filters.append(_parse_predicate(ts, left))
        else:
            filters.append(_parse_predicate(ts, left))
        if not ts.accept("AND"):
            break
    return tuple(joins), tuple(filters)


def _parse_column_list(ts: _TokenStream) -> Tuple[ColumnRef, ...]:
    cols = [_parse_column_ref(ts)]
    while ts.accept(","):
        cols.append(_parse_column_ref(ts))
    return tuple(cols)


def _parse_select(ts: _TokenStream) -> Query:
    select_columns: List[ColumnRef] = []
    aggregates: List[Aggregate] = []
    if not ts.accept("*"):
        while True:
            kind, value = ts.next()
            if kind == "word" and value in _AGG_FUNCS:
                ts.expect("(")
                if ts.accept("*"):
                    aggregates.append(Aggregate(value, None))
                else:
                    aggregates.append(Aggregate(value, _parse_column_ref(ts)))
                ts.expect(")")
            elif kind == "qualified":
                table, column = value.split(".", 1)
                select_columns.append(ColumnRef(table, column))
            else:
                raise ParseError(
                    f"expected projection item, found {value!r}"
                )
            if not ts.accept(","):
                break
    ts.expect("FROM")
    tables = [ts.next()[1]]
    while ts.accept(","):
        tables.append(ts.next()[1])
    joins, filters = _parse_where(ts)
    group_by: Tuple[ColumnRef, ...] = ()
    order_by: Tuple[ColumnRef, ...] = ()
    if ts.accept("GROUP"):
        ts.expect("BY")
        group_by = _parse_column_list(ts)
    if ts.accept("ORDER"):
        ts.expect("BY")
        order_by = _parse_column_list(ts)
    if not ts.at_end():
        raise ParseError(f"trailing tokens after SELECT: {ts.peek()}")
    return Query(
        qtype=QueryType.SELECT,
        tables=tuple(tables),
        join_predicates=joins,
        filters=filters,
        select_columns=tuple(select_columns),
        aggregates=tuple(aggregates),
        group_by=group_by,
        order_by=order_by,
    )


def _parse_update(ts: _TokenStream) -> Query:
    table = ts.next()[1]
    ts.expect("SET")
    set_columns: List[ColumnRef] = []
    while True:
        name = ts.next()[1]
        ts.expect("=")
        _parse_number(ts)  # assigned constant, always 0 in the dialect
        set_columns.append(ColumnRef(table, name))
        if not ts.accept(","):
            break
    joins, filters = _parse_where(ts)
    if joins:
        raise ParseError("UPDATE statements cannot contain join predicates")
    if not ts.at_end():
        raise ParseError(f"trailing tokens after UPDATE: {ts.peek()}")
    return Query(
        qtype=QueryType.UPDATE,
        tables=(table,),
        filters=filters,
        set_columns=tuple(set_columns),
    )


def _parse_delete(ts: _TokenStream) -> Query:
    ts.expect("FROM")
    table = ts.next()[1]
    joins, filters = _parse_where(ts)
    if joins:
        raise ParseError("DELETE statements cannot contain join predicates")
    if not ts.at_end():
        raise ParseError(f"trailing tokens after DELETE: {ts.peek()}")
    return Query(qtype=QueryType.DELETE, tables=(table,), filters=filters)


def _parse_insert(ts: _TokenStream) -> Query:
    ts.expect("INTO")
    table = ts.next()[1]
    ts.expect("VALUES")
    ts.expect("(")
    ts.expect("DEFAULT")
    ts.expect(")")
    if not ts.at_end():
        raise ParseError(f"trailing tokens after INSERT: {ts.peek()}")
    return Query(qtype=QueryType.INSERT, tables=(table,))


def parse_query(text: str) -> Query:
    """Parse dialect SQL text into a :class:`~repro.queries.ast.Query`.

    Raises
    ------
    ParseError
        If the text is not a valid statement of the dialect.
    """
    ts = _TokenStream(_tokenize(text), text)
    kind, head = ts.next()
    if head == "SELECT":
        return _parse_select(ts)
    if head == "UPDATE":
        return _parse_update(ts)
    if head == "DELETE":
        return _parse_delete(ts)
    if head == "INSERT":
        return _parse_insert(ts)
    raise ParseError(f"unknown statement head {head!r}")
