"""Query templates (signatures/skeletons) and the template registry.

Section 5 of the paper stratifies workloads by *template*: "two queries
have the same template if they are identical in everything but the
constant bindings of their parameters".  The AST layer already exposes
:meth:`~repro.queries.ast.Query.template_key`; this module assigns
small dense integer ids to templates, which the stratification and
workload-store code index by.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .ast import Query

__all__ = ["TemplateRegistry", "group_by_template"]


class TemplateRegistry:
    """Assigns dense integer ids to query templates.

    Ids are assigned in first-seen order, so a registry populated from
    the same workload in the same order is reproducible.  Optionally a
    human-readable name can be attached to a template (the TPC-D
    generator names templates ``Q1`` .. ``Q17``, ``U1`` .. etc.).
    """

    def __init__(self) -> None:
        self._ids: Dict[Tuple, int] = {}
        self._names: Dict[int, str] = {}
        self._hashes: Dict[int, str] = {}

    def template_id(self, query: Query, name: Optional[str] = None) -> int:
        """Return the template id for ``query``, registering if new.

        If ``name`` is given and the template is new, the name is
        attached; an existing template's name is never overwritten.
        """
        key = query.template_key()
        tid = self._ids.get(key)
        if tid is None:
            tid = len(self._ids)
            self._ids[key] = tid
            self._hashes[tid] = query.template_hash()
            if name is not None:
                self._names[tid] = name
        return tid

    def lookup(self, query: Query) -> Optional[int]:
        """Return the template id for ``query`` if registered, else ``None``."""
        return self._ids.get(query.template_key())

    def name_of(self, template_id: int) -> str:
        """Human-readable name of a template (falls back to ``T<id>``)."""
        return self._names.get(template_id, f"T{template_id}")

    def hash_of(self, template_id: int) -> str:
        """The stable hex digest recorded for a template id."""
        try:
            return self._hashes[template_id]
        except KeyError:
            raise KeyError(f"unknown template id {template_id}") from None

    def set_name(self, template_id: int, name: str) -> None:
        """Attach or replace the human-readable name of a template."""
        if template_id not in self._hashes:
            raise KeyError(f"unknown template id {template_id}")
        self._names[template_id] = name

    @property
    def count(self) -> int:
        """Number of distinct templates registered."""
        return len(self._ids)

    def __len__(self) -> int:
        return len(self._ids)


def group_by_template(
    queries: Iterable[Query], registry: Optional[TemplateRegistry] = None
) -> Dict[int, List[int]]:
    """Group query positions by template id.

    Returns a mapping ``template_id -> [indices of queries]`` where the
    indices refer to the iteration order of ``queries``.  A fresh
    registry is created when none is supplied.
    """
    registry = registry if registry is not None else TemplateRegistry()
    groups: Dict[int, List[int]] = {}
    for idx, query in enumerate(queries):
        tid = registry.template_id(query)
        groups.setdefault(tid, []).append(idx)
    return groups
