"""Query abstract syntax trees.

The comparison primitive treats a query as an opaque unit of optimizer
cost, but the substrates need structure: the cost model walks the join
graph and predicate list, the candidate generator inspects referenced
columns, and templates (Section 5 of the paper) are defined as "queries
identical in everything but the constant bindings of their parameters".

We therefore represent queries as small immutable dataclasses.  Constant
bindings live in the predicates (:class:`EqPredicate` values,
:class:`RangePredicate` bounds, :class:`InPredicate` lists); everything
else is template structure.  A query can be rendered to SQL text
(:mod:`repro.queries.sqlgen`) and parsed back
(:mod:`repro.queries.parser`), which the SQLite-backed workload store
relies on.

Value convention
----------------
Column values are integers in ``[0, distinct_count)`` where value ``v``
is the ``(v+1)``-th most frequent value of the column (see
:mod:`repro.catalog.stats`).  This keeps constants, selectivity
estimation and SQL rendering deterministic without materializing data.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "QueryType",
    "ColumnRef",
    "EqPredicate",
    "RangePredicate",
    "InPredicate",
    "Predicate",
    "JoinPredicate",
    "Aggregate",
    "Query",
]


class QueryType:
    """Enumeration of statement types, as plain string constants."""

    SELECT = "SELECT"
    UPDATE = "UPDATE"
    INSERT = "INSERT"
    DELETE = "DELETE"

    ALL = (SELECT, UPDATE, INSERT, DELETE)
    #: Statement types that modify data (whose cost includes index
    #: maintenance, per footnote 1 of the paper).
    DML = (UPDATE, INSERT, DELETE)


@dataclass(frozen=True, order=True)
class ColumnRef:
    """A qualified column reference ``table.column``."""

    table: str
    column: str

    def qualified(self) -> str:
        """Render as ``table.column``."""
        return f"{self.table}.{self.column}"

    def __str__(self) -> str:
        return self.qualified()


@dataclass(frozen=True)
class EqPredicate:
    """Equality filter ``column = value``."""

    column: ColumnRef
    value: int

    @property
    def op(self) -> str:
        """The SQL operator this predicate renders to."""
        return "="

    def template_part(self) -> Tuple:
        """Structure with the constant erased, for template extraction."""
        return ("eq", self.column.table, self.column.column)


@dataclass(frozen=True)
class RangePredicate:
    """Closed-range filter ``column BETWEEN lo AND hi``.

    One-sided comparisons are expressed by setting the other bound to
    the domain edge; the SQL renderer emits ``<=`` / ``>=`` forms when a
    bound is open-ended (``lo == 0`` or ``hi`` is ``None``-like large).
    """

    column: ColumnRef
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ValueError(
                f"range predicate on {self.column}: hi ({self.hi}) < "
                f"lo ({self.lo})"
            )

    @property
    def op(self) -> str:
        """The SQL operator this predicate renders to."""
        return "BETWEEN"

    def template_part(self) -> Tuple:
        """Structure with the constants erased."""
        return ("range", self.column.table, self.column.column)


@dataclass(frozen=True)
class InPredicate:
    """Membership filter ``column IN (v1, v2, ...)``.

    The *number* of list elements is part of the constants, not the
    template: two IN-queries with different list lengths still share a
    template, matching how workload-collection tools parameterize IN
    lists.
    """

    column: ColumnRef
    values: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"empty IN list on {self.column}")

    @property
    def op(self) -> str:
        """The SQL operator this predicate renders to."""
        return "IN"

    def template_part(self) -> Tuple:
        """Structure with the constants erased."""
        return ("in", self.column.table, self.column.column)


#: Union of the filter predicate kinds.
Predicate = Union[EqPredicate, RangePredicate, InPredicate]


@dataclass(frozen=True)
class JoinPredicate:
    """Equi-join predicate ``left = right`` between two tables."""

    left: ColumnRef
    right: ColumnRef

    def __post_init__(self) -> None:
        if self.left.table == self.right.table:
            raise ValueError(
                f"join predicate within a single table {self.left.table!r}"
            )

    def tables(self) -> Tuple[str, str]:
        """The pair of joined table names."""
        return (self.left.table, self.right.table)

    def template_part(self) -> Tuple:
        """Canonical (order-independent) structure of the join edge."""
        a = (self.left.table, self.left.column)
        b = (self.right.table, self.right.column)
        lo, hi = sorted([a, b])
        return ("join",) + lo + hi


@dataclass(frozen=True)
class Aggregate:
    """An aggregate expression in the SELECT list, e.g. ``SUM(t.c)``."""

    func: str
    column: Optional[ColumnRef] = None  # None => COUNT(*)

    FUNCS = ("COUNT", "SUM", "AVG", "MIN", "MAX")

    def __post_init__(self) -> None:
        if self.func not in self.FUNCS:
            raise ValueError(f"unknown aggregate function {self.func!r}")
        if self.func != "COUNT" and self.column is None:
            raise ValueError(f"{self.func} requires a column argument")

    def template_part(self) -> Tuple:
        """Structure of the aggregate, for template extraction."""
        if self.column is None:
            return ("agg", self.func, "*", "*")
        return ("agg", self.func, self.column.table, self.column.column)


@dataclass(frozen=True)
class Query:
    """An immutable query statement.

    Only the fields relevant to the statement type are populated:

    * ``SELECT``: tables, join_predicates, filters, select_columns,
      aggregates, group_by, order_by.
    * ``UPDATE``: a single table, filters, set_columns.
    * ``DELETE``: a single table, filters.
    * ``INSERT``: a single table (``filters`` empty).
    """

    qtype: str
    tables: Tuple[str, ...]
    join_predicates: Tuple[JoinPredicate, ...] = ()
    filters: Tuple[Predicate, ...] = ()
    select_columns: Tuple[ColumnRef, ...] = ()
    aggregates: Tuple[Aggregate, ...] = ()
    group_by: Tuple[ColumnRef, ...] = ()
    order_by: Tuple[ColumnRef, ...] = ()
    set_columns: Tuple[ColumnRef, ...] = ()

    def __hash__(self) -> int:
        # Queries key every optimizer cache, so the (deep, tuple-of-
        # dataclasses) hash is computed once and remembered.  Safe for a
        # frozen instance: all hashed fields are immutable.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((
                self.qtype,
                self.tables,
                self.join_predicates,
                self.filters,
                self.select_columns,
                self.aggregates,
                self.group_by,
                self.order_by,
                self.set_columns,
            ))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __getstate__(self) -> dict:
        # str hashes are salted per process: never ship a cached hash
        # across a pickle boundary.
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def __post_init__(self) -> None:
        if self.qtype not in QueryType.ALL:
            raise ValueError(f"unknown query type {self.qtype!r}")
        if not self.tables:
            raise ValueError("a query must reference at least one table")
        if self.qtype in QueryType.DML and len(self.tables) != 1:
            raise ValueError(
                f"{self.qtype} statements target exactly one table, "
                f"got {self.tables}"
            )
        if self.qtype == QueryType.UPDATE and not self.set_columns:
            raise ValueError("UPDATE requires at least one SET column")
        known = set(self.tables)
        for jp in self.join_predicates:
            for t in jp.tables():
                if t not in known:
                    raise ValueError(
                        f"join predicate references table {t!r} missing "
                        f"from the FROM list {self.tables}"
                    )
        for f in self.filters:
            if f.column.table not in known:
                raise ValueError(
                    f"filter references table {f.column.table!r} missing "
                    f"from the FROM list {self.tables}"
                )

    # ------------------------------------------------------------------
    # structure accessors
    # ------------------------------------------------------------------
    @property
    def target_table(self) -> str:
        """The single table a DML statement targets."""
        if self.qtype not in QueryType.DML:
            raise ValueError("target_table is only defined for DML statements")
        return self.tables[0]

    def filters_on(self, table: str) -> List[Predicate]:
        """Filter predicates applying to ``table``."""
        return [f for f in self.filters if f.column.table == table]

    def referenced_columns(self) -> List[ColumnRef]:
        """All column references in the query, without duplicates.

        Order is deterministic: filters, joins, projections, aggregates,
        group-by, order-by, set-columns.
        """
        seen = []
        for f in self.filters:
            seen.append(f.column)
        for jp in self.join_predicates:
            seen.extend([jp.left, jp.right])
        seen.extend(self.select_columns)
        for agg in self.aggregates:
            if agg.column is not None:
                seen.append(agg.column)
        seen.extend(self.group_by)
        seen.extend(self.order_by)
        seen.extend(self.set_columns)
        unique: List[ColumnRef] = []
        marker = set()
        for ref in seen:
            if ref not in marker:
                marker.add(ref)
                unique.append(ref)
        return unique

    @property
    def join_count(self) -> int:
        """Number of join predicates (0 for single-table queries)."""
        return len(self.join_predicates)

    # ------------------------------------------------------------------
    # templates
    # ------------------------------------------------------------------
    def template_key(self) -> Tuple:
        """The query's template: all structure, no constant bindings.

        Two queries share a template iff they are identical in
        everything but the constants of their filter predicates
        (Section 5 "Preprocessing").
        """
        return (
            self.qtype,
            self.tables,
            tuple(sorted(jp.template_part() for jp in self.join_predicates)),
            tuple(sorted(f.template_part() for f in self.filters)),
            self.select_columns,
            tuple(a.template_part() for a in self.aggregates),
            self.group_by,
            self.order_by,
            self.set_columns,
        )

    def template_hash(self) -> str:
        """A short stable hex digest of :meth:`template_key`."""
        digest = hashlib.sha1(repr(self.template_key()).encode("utf-8"))
        return digest.hexdigest()[:12]
