"""Render query ASTs to SQL text.

The workload store (Section 5 "Preprocessing" of the paper) keeps query
*text* in a database table and re-parses sampled queries; this module
and :mod:`repro.queries.parser` implement the two directions.  The
dialect is a small, regular subset of SQL chosen so that
``parse(render(q)) == q`` holds exactly (verified by property tests).

Dialect summary::

    SELECT t.a, SUM(t.b) FROM t, u WHERE t.k = u.k AND t.a = 5
        AND t.b BETWEEN 3 AND 9 AND t.c IN (1, 2) GROUP BY t.a
        ORDER BY t.a
    UPDATE t SET a = 0, b = 0 WHERE t.k = 7
    DELETE FROM t WHERE t.k BETWEEN 0 AND 4
    INSERT INTO t VALUES (DEFAULT)
"""

from __future__ import annotations

from typing import List

from .ast import (
    Aggregate,
    ColumnRef,
    EqPredicate,
    InPredicate,
    JoinPredicate,
    Predicate,
    Query,
    QueryType,
    RangePredicate,
)

__all__ = ["render_query", "render_predicate"]


def _render_column(ref: ColumnRef) -> str:
    return ref.qualified()


def _render_aggregate(agg: Aggregate) -> str:
    if agg.column is None:
        return f"{agg.func}(*)"
    return f"{agg.func}({_render_column(agg.column)})"


def render_predicate(pred: Predicate) -> str:
    """Render a single filter predicate."""
    col = _render_column(pred.column)
    if isinstance(pred, EqPredicate):
        return f"{col} = {pred.value}"
    if isinstance(pred, RangePredicate):
        return f"{col} BETWEEN {pred.lo} AND {pred.hi}"
    if isinstance(pred, InPredicate):
        values = ", ".join(str(v) for v in pred.values)
        return f"{col} IN ({values})"
    raise TypeError(f"unknown predicate type {type(pred).__name__}")


def _render_join(jp: JoinPredicate) -> str:
    return f"{_render_column(jp.left)} = {_render_column(jp.right)}"


def _render_where(query: Query) -> str:
    conjuncts: List[str] = [_render_join(jp) for jp in query.join_predicates]
    conjuncts.extend(render_predicate(f) for f in query.filters)
    if not conjuncts:
        return ""
    return " WHERE " + " AND ".join(conjuncts)


def _render_select(query: Query) -> str:
    items: List[str] = [_render_column(c) for c in query.select_columns]
    items.extend(_render_aggregate(a) for a in query.aggregates)
    select_list = ", ".join(items) if items else "*"
    sql = f"SELECT {select_list} FROM {', '.join(query.tables)}"
    sql += _render_where(query)
    if query.group_by:
        sql += " GROUP BY " + ", ".join(
            _render_column(c) for c in query.group_by
        )
    if query.order_by:
        sql += " ORDER BY " + ", ".join(
            _render_column(c) for c in query.order_by
        )
    return sql


def _render_update(query: Query) -> str:
    table = query.target_table
    sets = ", ".join(f"{c.column} = 0" for c in query.set_columns)
    return f"UPDATE {table} SET {sets}" + _render_where(query)


def _render_delete(query: Query) -> str:
    return f"DELETE FROM {query.target_table}" + _render_where(query)


def _render_insert(query: Query) -> str:
    return f"INSERT INTO {query.target_table} VALUES (DEFAULT)"


def render_query(query: Query) -> str:
    """Render a :class:`~repro.queries.ast.Query` to dialect SQL text."""
    if query.qtype == QueryType.SELECT:
        return _render_select(query)
    if query.qtype == QueryType.UPDATE:
        return _render_update(query)
    if query.qtype == QueryType.DELETE:
        return _render_delete(query)
    if query.qtype == QueryType.INSERT:
        return _render_insert(query)
    raise ValueError(f"unknown query type {query.qtype!r}")
