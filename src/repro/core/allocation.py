"""Next-sample selection policies (Section 5.2) and batched allocation kernels.

Ideally the next (query, configuration) evaluation would maximize
``Pr(CS)``; the paper uses the tractable greedy surrogate of minimizing
the *sum of estimator variances*, assuming sample means and variances
stay unchanged.  Adding one sample to stratum ``h`` (current allocation
``n_h``) changes that stratum's variance contribution from

    |WL_h|^2 * s_h^2 / n_h * (1 - n_h/|WL_h|)

to the same expression at ``n_h + 1``; the policy picks the
(configuration and) stratum with the largest reduction.  For Delta
Sampling, the sampled query is evaluated in every configuration, so
only the stratum is chosen — by the largest reduction summed over the
active pairwise difference estimators.

When per-evaluation optimizer overheads differ, the reduction is
divided by the expected overhead of the stratum/configuration pair
(``overheads`` argument), matching the paper's closing remark in §5.2.

This module also hosts the *batched* allocation kernels behind
``#Samples`` (footnote 3): :func:`neyman_allocation_batch`,
:func:`allocation_variance_batch` and :func:`samples_needed_batch` run
many independent (stratification, variance-profile) problems through
one vectorized binary search.  Per problem they are bit-identical to
the scalar functions in :mod:`repro.core.stratification` (which are
thin wrappers over the batch kernels): every per-element floating-point
operation keeps the scalar op order, and the eq. 5 sum accumulates
stratum-by-stratum in index order exactly as the historical ``zip``
loop did.
"""

from __future__ import annotations

import math
from collections import namedtuple
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "variance_reduction",
    "variance_reduction_many",
    "pick_independent",
    "pick_delta_stratum",
    "DeltaStratumScorer",
    "batch_multiplier",
    "neyman_allocation_batch",
    "allocation_variance_batch",
    "samples_needed_batch",
]


def variance_reduction(
    size: float, s2: float, n: int
) -> float:
    """Variance drop from sampling one more query in a stratum."""
    if s2 <= 0 or size <= 1 or n >= size:
        return 0.0
    if n <= 0:
        return float("inf")
    current = size * size * s2 / n * (1.0 - n / size)
    nxt = size * size * s2 / (n + 1) * (1.0 - (n + 1) / size)
    return max(0.0, current - nxt)


def variance_reduction_many(
    sizes: np.ndarray, variances: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Elementwise :func:`variance_reduction` over aligned arrays.

    Bit-identical per element to the scalar function (same operation
    order, same edge semantics: zero for empty/exhausted/degenerate
    strata, ``inf`` for unsampled strata with positive variance).
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    s2 = np.asarray(variances, dtype=np.float64)
    n = np.asarray(counts, dtype=np.float64)
    zero = (s2 <= 0.0) | (sizes <= 1.0) | (n >= sizes)
    with np.errstate(divide="ignore", invalid="ignore"):
        n1 = n + 1.0
        numer = sizes * sizes * s2
        current = numer / n * (1.0 - n / sizes)
        nxt = numer / n1 * (1.0 - n1 / sizes)
        diff = current - nxt
        # Python's max(0.0, x) keeps 0.0 unless x compares greater —
        # np.where on the same predicate reproduces that exactly (NaN
        # maps to 0.0, as the scalar path does).
        red = np.where(diff > 0.0, diff, 0.0)
    return np.where(zero, 0.0, np.where(n <= 0.0, np.inf, red))


def pick_independent(
    stratum_sizes: np.ndarray,
    stratum_vars: Sequence[np.ndarray],
    stratum_counts: Sequence[np.ndarray],
    exhausted: Sequence[np.ndarray],
    overheads: Optional[Sequence[np.ndarray]] = None,
) -> Optional[Tuple[int, int]]:
    """Choose ``(configuration, stratum)`` for Independent Sampling.

    Parameters
    ----------
    stratum_sizes:
        ``|WL_h|`` per stratum (shared across configurations).
    stratum_vars / stratum_counts:
        Per configuration: per-stratum sample variance and sample
        count arrays.
    exhausted:
        Per configuration: boolean array marking strata with no
        unsampled queries left for that configuration.
    overheads:
        Optional per (configuration, stratum) expected evaluation
        overheads; reductions are divided by them.

    Returns
    -------
    (config, stratum) or None
        ``None`` when every stratum of every configuration is
        exhausted.
    """
    sizes = np.asarray(stratum_sizes, dtype=np.float64)
    best: Optional[Tuple[int, int]] = None
    best_score = -1.0
    for config, (vars_h, counts_h, done_h) in enumerate(
        zip(stratum_vars, stratum_counts, exhausted)
    ):
        done_h = np.asarray(done_h, dtype=bool)
        if done_h.all():
            continue
        red = variance_reduction_many(sizes, vars_h, counts_h)
        if overheads is not None:
            red = red / np.maximum(1e-12, np.asarray(
                overheads[config], dtype=np.float64
            ))
        scores = np.where(done_h, -np.inf, red)
        h = int(np.argmax(scores))
        if scores[h] > best_score:
            best_score = float(scores[h])
            best = (config, h)
    return best


def batch_multiplier(
    prev: int,
    batch_rounds: int,
    growth: float,
    tolerance: float,
    calls_used: int,
    round_calls: int,
) -> int:
    """How many allocation rounds to coalesce into the next batch.

    The round-level draw-ahead plans ``m`` variance-greedy rounds at
    once (one termination/elimination/split re-check per batch instead
    of per round).  ``m`` grows geometrically from the previous batch
    (``ceil(prev * growth)``), clamped by two bounds:

    * ``batch_rounds`` — the configured hard cap (1 disables batching
      and reproduces the serial schedule bit-identically);
    * the re-check tolerance — the calls a batch spends beyond its
      first, serially scheduled round (``(m - 1) * round_calls``) may
      not exceed ``tolerance`` times the calls already spent, so even
      when termination lands mid-batch the overshoot against the
      serial schedule stays within tolerance.
    """
    if batch_rounds <= 1:
        return 1
    m = min(batch_rounds, int(math.ceil(prev * growth)))
    if round_calls > 0:
        m = min(m, 1 + int(tolerance * calls_used / round_calls))
    return max(1, m)


def pick_delta_stratum(
    stratum_sizes: np.ndarray,
    pair_stratum_vars: Sequence[np.ndarray],
    stratum_counts: np.ndarray,
    exhausted: np.ndarray,
    overheads: Optional[np.ndarray] = None,
) -> Optional[int]:
    """Choose the stratum for Delta Sampling.

    ``pair_stratum_vars`` holds, for each active pairwise difference
    estimator, its per-stratum sample variances; reductions are summed
    over pairs (minimizing the sum of the variances of all estimators,
    §5.2).  Ties break toward the lowest stratum index, as the
    historical per-stratum loop did.
    """
    exhausted = np.asarray(exhausted, dtype=bool)
    if exhausted.all():
        return None
    sizes = np.asarray(stratum_sizes, dtype=np.float64)
    pairs = list(pair_stratum_vars)
    if pairs:
        # One elementwise reduction over a (pairs, strata) stack; the
        # cumulative sum accumulates pair by pair in the same order as
        # the historical inner loop (cumsum is a sequential scan).
        stacked = np.stack(pairs).astype(np.float64, copy=False)
        red = variance_reduction_many(sizes, stacked, stratum_counts)
        total = np.cumsum(red, axis=0)[-1]
    else:
        total = np.zeros(len(sizes), dtype=np.float64)
    if overheads is not None:
        total = total / np.maximum(
            1e-12, np.asarray(overheads, dtype=np.float64)
        )
    scores = np.where(exhausted, -1.0, total)
    best = int(np.argmax(scores))
    return None if exhausted[best] else best


class DeltaStratumScorer:
    """Incremental §5.2 stratum scores across planned rounds.

    Bit-identical to calling :func:`pick_delta_stratum` once per
    planned round: between rounds only the picked stratum's count
    changes, :func:`variance_reduction_many` is elementwise, and the
    over-pairs cumulative sum is per-column — so only the touched
    column's score is recomputed instead of the full (pairs, strata)
    stack.  ``stratum_counts`` is held by reference: mutate it, then
    call :meth:`refresh` with the touched stratum.
    """

    def __init__(
        self,
        stratum_sizes: np.ndarray,
        pair_stratum_vars: Sequence[np.ndarray],
        stratum_counts: np.ndarray,
        overheads: Optional[np.ndarray] = None,
    ) -> None:
        self._sizes = np.asarray(stratum_sizes, dtype=np.float64)
        pairs = list(pair_stratum_vars)
        self._stacked = (
            np.stack(pairs).astype(np.float64, copy=False)
            if pairs else None
        )
        self._counts = stratum_counts
        self._over = (
            None if overheads is None
            else np.maximum(1e-12, np.asarray(overheads, dtype=np.float64))
        )
        if self._stacked is not None:
            red = variance_reduction_many(
                self._sizes, self._stacked, self._counts
            )
            total = np.cumsum(red, axis=0)[-1]
        else:
            total = np.zeros(len(self._sizes), dtype=np.float64)
        if self._over is not None:
            total = total / self._over
        self._total = total
        self._dirty: Optional[int] = None

    def refresh(self, h: int) -> None:
        """Note stratum ``h``'s count changed (recomputed lazily)."""
        if self._dirty is not None and self._dirty != h:
            self._flush()
        self._dirty = h

    def _flush(self) -> None:
        h = self._dirty
        self._dirty = None
        if h is None or self._stacked is None:
            return
        red = variance_reduction_many(
            self._sizes[h], self._stacked[:, h], self._counts[h]
        )
        score = np.cumsum(red)[-1]
        if self._over is not None:
            score = score / self._over[h]
        self._total[h] = score

    def pick(self, exhausted: np.ndarray) -> Optional[int]:
        """Best non-exhausted stratum (ties toward the lowest index)."""
        if self._dirty is not None:
            self._flush()
        scores = np.where(exhausted, -1.0, self._total)
        best = int(np.argmax(scores))
        return None if exhausted[best] else best


# ----------------------------------------------------------------------
# Batched allocation kernels (footnote 3's #Samples, many problems at
# once).  The scalar wrappers in repro.core.stratification delegate
# here with B=1, so there is exactly one implementation to keep
# bit-identical.
#
# The bisection in samples_needed_batch probes the same (sizes,
# variances, floors) rows a dozen-plus times with different totals, so
# everything that depends only on the rows — clamped floors, Neyman
# weights (with the degenerate-row replacement), eq. 5 numerators and
# active masks, row sums — is hoisted into a prep step shared by every
# probe.  The per-probe cores below consume the prepped arrays.
# ----------------------------------------------------------------------
#: Probe-invariant row state shared by every bisection probe.  The
#: stored ``weights`` already have the strata that start at their cap
#: (``floors >= sizes``, e.g. fully sampled strata) masked to zero —
#: exactly the masked weight vector the redistribution loop's first
#: pass would otherwise rebuild per probe.  ``wzero`` marks the
#: zero-weight strata: masking one out replaces a ``0.0`` with a
#: ``0.0``, so the fast no-masking path stays valid while only
#: zero-weight strata are closed (initially saturated strata, and the
#: zero-size padding column the split search appends to fold its
#: baseline row into the batch).  ``worder`` is the per-row descending
#: weight order the hand-out fallback walks.  ``no_degenerate`` and
#: ``fb_free`` are plain bools hoisted out of the iteration loop:
#: ``no_degenerate`` says no row has an all-nonpositive weight sum;
#: ``fb_free`` additionally says no initially-open stratum has zero
#: weight, so the masked weight sum of any row with an open stratum
#: left stays positive and the degenerate-weights fallback can never
#: fire (both remain valid — conservatively — for any row subset).
_NeymanPrep = namedtuple(
    "_NeymanPrep",
    "sizes sizes_f weights wsum_all wsum_nonpos wzero worder floors_c "
    "floors_sum sizes_sum no_degenerate fb_free",
)


def _neyman_prep(
    sizes: np.ndarray,
    std_devs: np.ndarray,
    floors: np.ndarray,
) -> _NeymanPrep:
    """Probe-invariant state for :func:`_neyman_core`.

    ``sizes``/``floors`` are int64 ``(B, L)``; ``std_devs`` float.
    The degenerate-row weight replacement is applied first (same
    expressions, in the same order, as the historical per-call
    prologue — the degeneracy test reads the unmasked weight sum),
    then the initially-closed strata are masked out.
    """
    sizes_f = sizes.astype(np.float64)
    floors_c = np.minimum(floors, sizes)
    floors_sum = floors_c.sum(axis=1)
    sizes_sum = sizes.sum(axis=1)
    weights = sizes_f * std_devs
    wsum_all = weights.sum(axis=1)
    degenerate = wsum_all <= 0
    if degenerate.any():
        weights = np.where(degenerate[:, None], sizes_f, weights)
        wsum_all = np.where(degenerate, sizes_f.sum(axis=1), wsum_all)
    open0 = floors_c < sizes
    if not open0.all():
        weights = np.where(open0, weights, 0.0)
        wsum_all = weights.sum(axis=1)
    wsum_nonpos = wsum_all <= 0
    wzero = weights == 0.0
    no_degenerate = not bool(wsum_nonpos.any())
    fb_free = no_degenerate and not bool((wzero & open0).any())
    return _NeymanPrep(
        sizes, sizes_f, weights, wsum_all, wsum_nonpos,
        wzero, np.argsort(-weights, axis=1),
        floors_c, floors_sum, sizes_sum, no_degenerate, fb_free,
    )


def _neyman_core(
    prep: _NeymanPrep,
    totals: np.ndarray,
    pre_clamped: bool = False,
) -> np.ndarray:
    """Lockstep iterative Neyman redistribution over prepped rows.

    Bit-identical per row to the scalar
    :func:`repro.core.stratification.neyman_allocation`: the common
    all-rows-active / all-strata-open iterations skip the masking and
    fancy-indexing machinery but compute the exact same values.
    ``pre_clamped`` skips the totals clamp when the caller already
    guarantees ``floors_sum <= totals <= sizes_sum`` (the bisection
    only probes inside that interval).
    """
    sizes = prep.sizes
    sizes_f = prep.sizes_f
    weights = prep.weights
    if pre_clamped:
        totals = np.asarray(totals)
    else:
        totals = np.minimum(
            np.maximum(totals, prep.floors_sum), prep.sizes_sum
        )
    alloc = prep.floors_c.copy()
    remaining = totals - prep.floors_sum
    fast = True

    with np.errstate(divide="ignore", invalid="ignore"):
        while True:
            act = remaining > 0
            n_act = int(act.sum())
            if n_act == 0:
                break
            open_mask = alloc < sizes
            if fast and (open_mask | prep.wzero).all():
                w = weights
                wsum = prep.wsum_all
                fallback = None
                if not prep.no_degenerate:
                    fb = act & prep.wsum_nonpos
                    fallback = fb if fb.any() else None
            else:
                # Allocations only grow, so once a positive-weight
                # stratum closes the no-masking path is gone for good
                # and its test stops being re-evaluated.  No per-row
                # all-strata-closed deactivation is needed either:
                # such a row has alloc == sizes everywhere and totals
                # are clamped to sizes_sum, so its remaining is
                # already <= 0 and the row is inactive.
                fast = False
                w = np.where(open_mask, weights, 0.0)
                wsum = w.sum(axis=1)
                if prep.fb_free:
                    # An active row always has an open stratum left,
                    # every open stratum kept a positive weight, and
                    # nonnegative floats only sum to zero when all are
                    # zero — the fallback cannot fire.  (Inactive rows
                    # may divide by a zero wsum below; their garbage
                    # shares are zeroed out exactly as the fallback
                    # path would leave them.)
                    fallback = None
                else:
                    nonpos = wsum <= 0.0
                    fallback = act & nonpos if nonpos.any() else None
            if fallback is not None:
                w = np.where(
                    fallback[:, None], np.where(open_mask, sizes_f, 0.0), w
                )
                wsum = np.where(fallback, w.sum(axis=1), wsum)
            # int64 truncation == floor here: active rows have
            # remaining > 0, w >= 0 and wsum > 0, so every kept
            # quotient is nonnegative; inactive rows are zeroed below.
            share = (
                remaining[:, None] * w / wsum[:, None]
            ).astype(np.int64)
            if n_act < act.size:
                share[~act] = 0
                handout = act & (share.sum(axis=1) == 0)
            else:
                handout = share.sum(axis=1) == 0
            n_handout = int(handout.sum())
            if n_handout < n_act:
                # Inactive and hand-out rows carry an all-zero share,
                # so the capped update is an exact integer no-op for
                # them: the whole batch updates unconditionally
                # without row-fancy indexing.
                new_alloc = np.minimum(alloc + share, sizes)
                remaining = remaining - (new_alloc - alloc).sum(axis=1)
                alloc = new_alloc
            if n_handout == 0:
                continue
            # Scalar fallback: walk strata by descending weight, give
            # one sample to each open stratum until the remainder is
            # spent.  Each stratum is visited at most once per pass, so
            # "the first `remaining` open strata in weight order" is
            # the exact same hand-out.  While ``w`` is the prepped
            # weight vector the prepped argsort is that same order.
            rows = np.flatnonzero(handout)
            if w is weights:
                order = prep.worder[rows]
            else:
                order = np.argsort(-w[rows], axis=1)
            open_in_order = np.take_along_axis(
                open_mask[rows], order, axis=1
            )
            rank = np.cumsum(open_in_order, axis=1)
            give_in_order = open_in_order & (
                rank <= remaining[rows][:, None]
            )
            give = np.zeros_like(give_in_order)
            np.put_along_axis(give, order, give_in_order, axis=1)
            alloc[rows] += give.astype(np.int64)
            remaining[rows] -= give.sum(axis=1)
    return alloc


def neyman_allocation_batch(
    sizes: np.ndarray,
    std_devs: np.ndarray,
    totals: np.ndarray,
    floors: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Neyman allocation for ``B`` independent problems at once.

    ``sizes``/``std_devs``/``floors`` are ``(B, L)``; ``totals`` is
    ``(B,)``.  Row ``b`` of the result equals the scalar
    :func:`repro.core.stratification.neyman_allocation` on row ``b``'s
    inputs, bit for bit: the iterative redistribution runs all rows in
    lockstep, masking rows that converged, and the one-at-a-time
    hand-out fallback is reproduced with a per-row argsort over the
    same weight vector the scalar loop sorts.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    if sizes.ndim != 2:
        raise ValueError(f"sizes must be 2-D (B, L), got {sizes.shape}")
    std_devs = np.asarray(std_devs, dtype=np.float64)
    totals = np.asarray(totals, dtype=np.int64).reshape(-1)
    if floors is None:
        floors = np.zeros_like(sizes)
    else:
        floors = np.asarray(floors, dtype=np.int64)
    prep = _neyman_prep(sizes, std_devs, floors)
    return _neyman_core(prep, totals)


def _alloc_variance_core(
    sizes_f: np.ndarray,
    numerators: np.ndarray,
    active: np.ndarray,
    alloc_f: np.ndarray,
    assume_fed: bool = False,
) -> np.ndarray:
    """Eq. 5 variance from prepped numerators and active masks.

    ``numerators`` is ``sizes^2 * variances``; ``active`` marks strata
    with positive variance and size ``> 1``.  Per row bit-identical to
    the historical sequential ``zip`` loop: the cumulative sum along
    axis 1 accumulates column by column in stratum order (cumsum is a
    sequential scan), adding an exact ``0.0`` for every masked
    stratum.  ``assume_fed`` skips the starved-stratum bookkeeping
    when the caller guarantees every active stratum is allocated at
    least one sample (the bisection's floors enforce exactly that), in
    which case no row can be ``inf``.
    """
    if assume_fed:
        with np.errstate(divide="ignore", invalid="ignore"):
            # alloc <= sizes makes the correction nonnegative already
            # (IEEE division of a <= s never rounds above 1), so the
            # max-with-zero of the general branch is an exact no-op.
            fpc = 1.0 - alloc_f / sizes_f
            terms = numerators / alloc_f * fpc
        terms = np.where(active, terms, 0.0)
        if terms.shape[1]:
            return np.cumsum(terms, axis=1)[:, -1]
        return np.zeros(len(terms), dtype=np.float64)
    starved = active & (alloc_f <= 0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        fpc = np.maximum(0.0, 1.0 - alloc_f / sizes_f)
        terms = numerators / alloc_f * fpc
    terms = np.where(active & ~starved, terms, 0.0)
    if terms.shape[1]:
        out = np.cumsum(terms, axis=1)[:, -1]
    else:
        out = np.zeros(len(terms), dtype=np.float64)
    out[starved.any(axis=1)] = np.inf
    return out


def allocation_variance_batch(
    sizes: np.ndarray,
    variances: np.ndarray,
    alloc: np.ndarray,
) -> np.ndarray:
    """Equation 5 variance for ``B`` allocations at once.

    Strata with nonpositive variance or size ``<= 1`` contribute
    nothing; an unsampled stratum with positive variance makes the row
    ``inf`` (the scalar worst-case semantics).  The sum accumulates
    column by column in stratum order — adding an exact ``0.0`` for
    every skipped stratum — so each row is bit-identical to the
    historical sequential ``zip`` loop.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    if sizes.ndim != 2:
        raise ValueError(f"sizes must be 2-D (B, L), got {sizes.shape}")
    variances = np.asarray(variances, dtype=np.float64)
    alloc = np.asarray(alloc, dtype=np.float64)
    active = (variances > 0.0) & (sizes > 1.0)
    numerators = sizes * sizes * variances
    return _alloc_variance_core(sizes, numerators, active, alloc)


def samples_needed_batch(
    sizes: np.ndarray,
    variances: np.ndarray,
    targets: np.ndarray,
    floors: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``#Samples`` for ``B`` problems in one vectorized binary search.

    Row ``b`` equals the scalar
    :func:`repro.core.stratification.samples_needed` on row ``b``'s
    inputs: the per-row probe sequence (lo check, hi check, bisection
    midpoints) is identical, each probe running the batched Neyman
    allocation and eq. 5 variance over the rows still searching.  Row
    invariants are prepped once and carried compacted alongside the
    still-active row set, so a probe only does the totals-dependent
    work.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    if sizes.ndim != 2:
        raise ValueError(f"sizes must be 2-D (B, L), got {sizes.shape}")
    B = sizes.shape[0]
    variances = np.asarray(variances, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64).reshape(-1)
    if floors is None:
        floors = np.zeros_like(sizes)
    else:
        floors = np.asarray(floors, dtype=np.int64)
    std_devs = np.sqrt(np.maximum(0.0, variances))
    eff_floors = np.maximum(floors, np.minimum(1, sizes))

    # Probe-invariant row state, kept compacted in lockstep with the
    # set of rows still searching.  Every bisection probe stays inside
    # [lo, hi] = [floors_sum, sizes_sum] and the effective floors feed
    # at least one sample to every stratum of size >= 1, so the cores
    # may skip the totals clamp and the starved-stratum bookkeeping.
    state = {
        "prep": _neyman_prep(sizes, std_devs, eff_floors),
        "targets": targets,
    }
    # The scalar search brackets at [min(max(floors, 1), sizes).sum(),
    # sizes.sum()]; elementwise min(max(f, 1), s) == min(max(f,
    # min(1, s)), s) for integer s >= 0, so both ends are already in
    # the prep.
    lo = state["prep"].floors_sum
    hi = state["prep"].sizes_sum
    sizes_f = state["prep"].sizes_f
    state["numerators"] = sizes_f * sizes_f * variances
    state["active"] = (variances > 0.0) & (sizes_f > 1.0)

    def var_at(totals: np.ndarray) -> np.ndarray:
        alloc = _neyman_core(state["prep"], totals, pre_clamped=True)
        return _alloc_variance_core(
            state["prep"].sizes_f, state["numerators"], state["active"],
            alloc.astype(np.float64), assume_fed=True,
        )

    def compress(keep: np.ndarray) -> None:
        if keep.all():
            return
        p = state["prep"]
        state["prep"] = _NeymanPrep(
            p.sizes[keep], p.sizes_f[keep], p.weights[keep],
            p.wsum_all[keep], p.wsum_nonpos[keep], p.wzero[keep],
            p.worder[keep], p.floors_c[keep], p.floors_sum[keep],
            p.sizes_sum[keep], p.no_degenerate, p.fb_free,
        )
        state["numerators"] = state["numerators"][keep]
        state["active"] = state["active"][keep]
        state["targets"] = state["targets"][keep]

    result = np.empty(B, dtype=np.int64)
    rows = np.arange(B)
    at_lo = var_at(lo) <= targets
    result[at_lo] = lo[at_lo]
    rows = rows[~at_lo]
    compress(~at_lo)
    lo_c = lo[rows]
    hi_c = hi[rows]
    if rows.size:
        # At full sampling every stratum's correction ``1 - n/|WL|``
        # is exactly zero, so with finite eq. 5 numerators the hi-side
        # variance is an exact 0.0 (finite / positive * 0.0): against
        # a nonnegative target the hi check can never trigger and its
        # probe is skipped.
        if (
            np.isfinite(state["numerators"]).all()
            and (targets >= 0.0).all()
        ):
            at_hi = np.zeros(rows.size, dtype=bool)
        else:
            at_hi = var_at(hi_c) > state["targets"]
            result[rows[at_hi]] = hi_c[at_hi]
            keep = ~at_hi
            rows = rows[keep]
            lo_c = lo_c[keep]
            hi_c = hi_c[keep]
            compress(keep)
    # The brackets ride compacted beside the row set; the integer
    # np.where updates write the same midpoints the per-row fancy
    # assignments would.
    while rows.size:
        finished = lo_c >= hi_c
        if finished.any():
            result[rows[finished]] = lo_c[finished]
            keep = ~finished
            rows = rows[keep]
            lo_c = lo_c[keep]
            hi_c = hi_c[keep]
            compress(keep)
            if not rows.size:
                break
        mid = (lo_c + hi_c) // 2
        ok = var_at(mid) <= state["targets"]
        hi_c = np.where(ok, mid, hi_c)
        lo_c = np.where(ok, lo_c, mid + 1)
    return result
