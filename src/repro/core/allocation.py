"""Next-sample selection policies (Section 5.2 of the paper).

Ideally the next (query, configuration) evaluation would maximize
``Pr(CS)``; the paper uses the tractable greedy surrogate of minimizing
the *sum of estimator variances*, assuming sample means and variances
stay unchanged.  Adding one sample to stratum ``h`` (current allocation
``n_h``) changes that stratum's variance contribution from

    |WL_h|^2 * s_h^2 / n_h * (1 - n_h/|WL_h|)

to the same expression at ``n_h + 1``; the policy picks the
(configuration and) stratum with the largest reduction.  For Delta
Sampling, the sampled query is evaluated in every configuration, so
only the stratum is chosen — by the largest reduction summed over the
active pairwise difference estimators.

When per-evaluation optimizer overheads differ, the reduction is
divided by the expected overhead of the stratum/configuration pair
(``overheads`` argument), matching the paper's closing remark in §5.2.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "variance_reduction",
    "pick_independent",
    "pick_delta_stratum",
    "batch_multiplier",
]


def variance_reduction(
    size: float, s2: float, n: int
) -> float:
    """Variance drop from sampling one more query in a stratum."""
    if s2 <= 0 or size <= 1 or n >= size:
        return 0.0
    if n <= 0:
        return float("inf")
    current = size * size * s2 / n * (1.0 - n / size)
    nxt = size * size * s2 / (n + 1) * (1.0 - (n + 1) / size)
    return max(0.0, current - nxt)


def pick_independent(
    stratum_sizes: np.ndarray,
    stratum_vars: Sequence[np.ndarray],
    stratum_counts: Sequence[np.ndarray],
    exhausted: Sequence[np.ndarray],
    overheads: Optional[Sequence[np.ndarray]] = None,
) -> Optional[Tuple[int, int]]:
    """Choose ``(configuration, stratum)`` for Independent Sampling.

    Parameters
    ----------
    stratum_sizes:
        ``|WL_h|`` per stratum (shared across configurations).
    stratum_vars / stratum_counts:
        Per configuration: per-stratum sample variance and sample
        count arrays.
    exhausted:
        Per configuration: boolean array marking strata with no
        unsampled queries left for that configuration.
    overheads:
        Optional per (configuration, stratum) expected evaluation
        overheads; reductions are divided by them.

    Returns
    -------
    (config, stratum) or None
        ``None`` when every stratum of every configuration is
        exhausted.
    """
    best: Optional[Tuple[int, int]] = None
    best_score = -1.0
    for config, (vars_h, counts_h, done_h) in enumerate(
        zip(stratum_vars, stratum_counts, exhausted)
    ):
        for h in range(len(stratum_sizes)):
            if done_h[h]:
                continue
            red = variance_reduction(
                float(stratum_sizes[h]), float(vars_h[h]), int(counts_h[h])
            )
            if overheads is not None:
                cost = max(1e-12, float(overheads[config][h]))
                red = red / cost
            if red > best_score:
                best_score = red
                best = (config, h)
    return best


def batch_multiplier(
    prev: int,
    batch_rounds: int,
    growth: float,
    tolerance: float,
    calls_used: int,
    round_calls: int,
) -> int:
    """How many allocation rounds to coalesce into the next batch.

    The round-level draw-ahead plans ``m`` variance-greedy rounds at
    once (one termination/elimination/split re-check per batch instead
    of per round).  ``m`` grows geometrically from the previous batch
    (``ceil(prev * growth)``), clamped by two bounds:

    * ``batch_rounds`` — the configured hard cap (1 disables batching
      and reproduces the serial schedule bit-identically);
    * the re-check tolerance — the calls a batch spends beyond its
      first, serially scheduled round (``(m - 1) * round_calls``) may
      not exceed ``tolerance`` times the calls already spent, so even
      when termination lands mid-batch the overshoot against the
      serial schedule stays within tolerance.
    """
    if batch_rounds <= 1:
        return 1
    m = min(batch_rounds, int(math.ceil(prev * growth)))
    if round_calls > 0:
        m = min(m, 1 + int(tolerance * calls_used / round_calls))
    return max(1, m)


def pick_delta_stratum(
    stratum_sizes: np.ndarray,
    pair_stratum_vars: Sequence[np.ndarray],
    stratum_counts: np.ndarray,
    exhausted: np.ndarray,
    overheads: Optional[np.ndarray] = None,
) -> Optional[int]:
    """Choose the stratum for Delta Sampling.

    ``pair_stratum_vars`` holds, for each active pairwise difference
    estimator, its per-stratum sample variances; reductions are summed
    over pairs (minimizing the sum of the variances of all estimators,
    §5.2).
    """
    best: Optional[int] = None
    best_score = -1.0
    for h in range(len(stratum_sizes)):
        if exhausted[h]:
            continue
        total = 0.0
        for vars_h in pair_stratum_vars:
            total += variance_reduction(
                float(stratum_sizes[h]), float(vars_h[h]),
                int(stratum_counts[h]),
            )
        if overheads is not None:
            total = total / max(1e-12, float(overheads[h]))
        if total > best_score:
            best_score = total
            best = h
    return best
