"""Sampling state and estimators for Independent and Delta sampling.

Implements Section 4 of the paper:

* **Independent Sampling** (§4.1) draws a separate uniform sample per
  configuration and estimates each total cost
  ``X_i = N / |SL_i| * sum Cost(q, C_i)`` (stratified generalization:
  ``X_i = sum_h |WL_h| * mean_h``).
* **Delta Sampling** (§4.2) draws a *single* shared sample, evaluates
  it in every (active) configuration and estimates cost differences
  ``X_{l,j}`` directly, profiting from the positive covariance of query
  costs across configurations.

Bookkeeping is per (configuration, template): templates are the atoms
of every stratification (§5), so stratum-level statistics pool template
accumulators and re-stratification costs nothing — matching the paper's
claim that "all necessary counters and measurements can be maintained
incrementally at constant cost".
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .sources import CostSource
from .stratification import Stratification

__all__ = [
    "TemplateSampler",
    "MomentGrid",
    "StratumStats",
    "IndependentState",
    "DeltaState",
]


class TemplateSampler:
    """Uniform without-replacement sampling from templates and strata.

    Each template's query positions are shuffled once; a cursor walks
    the shuffle.  Drawing from a stratum picks a member template with
    probability proportional to its *remaining* unsampled queries,
    which makes the stratum draw a simple random sample of the stratum
    — and, restricted to any template, a simple random sample of the
    template, so samples survive re-stratification unchanged.
    """

    def __init__(
        self,
        indices_by_template: Dict[int, np.ndarray],
        rng: np.random.Generator,
    ) -> None:
        self._order: Dict[int, np.ndarray] = {}
        self._cursor: Dict[int, int] = {}
        for tid, indices in indices_by_template.items():
            self._order[tid] = rng.permutation(np.asarray(indices))
            self._cursor[tid] = 0

    def has_template(self, template_id: int) -> bool:
        """Whether this sampler knows the template at all."""
        return template_id in self._order

    def remaining(self, template_id: int) -> int:
        """Unsampled queries left in one template."""
        return len(self._order[template_id]) - self._cursor[template_id]

    def remaining_in(self, templates: Iterable[int]) -> int:
        """Unsampled queries left in a union of templates."""
        return sum(self.remaining(t) for t in templates)

    def drawn(self, template_id: int) -> int:
        """Number of queries drawn so far from one template."""
        return self._cursor[template_id]

    def drawn_order(self, template_id: int) -> np.ndarray:
        """The query positions drawn so far, in draw order."""
        return self._order[template_id][: self._cursor[template_id]]

    def mark_drawn(self, template_id: int, n: int) -> int:
        """Advance the cursor by ``n`` draws without reading positions.

        Used when importing samples carried over from a previous
        selector run (warm start): the carried costs stand in for the
        first ``n`` draws of the template, so those positions must be
        consumed to keep the without-replacement accounting (and the
        finite-population corrections downstream) honest.  Returns the
        number of positions actually consumed, clamped to what is
        left.
        """
        if n < 0:
            raise ValueError(f"cannot mark {n} draws")
        consumed = min(n, self.remaining(template_id))
        self._cursor[template_id] += consumed
        return consumed

    def draw_from_template(self, template_id: int) -> Optional[int]:
        """Next unsampled query of a template (``None`` if exhausted)."""
        cur = self._cursor[template_id]
        if cur >= len(self._order[template_id]):
            return None
        self._cursor[template_id] = cur + 1
        return int(self._order[template_id][cur])

    def draw_from_stratum(
        self, templates: Sequence[int], rng: np.random.Generator
    ) -> Optional[Tuple[int, int]]:
        """Uniformly draw one unsampled query from a union of templates.

        Returns ``(query_idx, template_id)`` or ``None`` when the
        stratum is exhausted.
        """
        weights = np.array(
            [self.remaining(t) for t in templates], dtype=np.float64
        )
        total = weights.sum()
        if total <= 0:
            return None
        pick = int(rng.choice(len(templates), p=weights / total))
        tid = templates[pick]
        qidx = self.draw_from_template(tid)
        assert qidx is not None
        return qidx, tid


class MomentGrid:
    """Welford accumulators per (configuration, template).

    Stores count / mean / M2 in dense ``(k, T)`` arrays so stratum
    pooling is vectorized across configurations.
    """

    def __init__(self, n_configs: int, n_templates: int) -> None:
        self.count = np.zeros((n_configs, n_templates), dtype=np.int64)
        self.mean = np.zeros((n_configs, n_templates), dtype=np.float64)
        self.m2 = np.zeros((n_configs, n_templates), dtype=np.float64)

    def add(self, config: int, template: int, value: float) -> None:
        """Welford single-value update."""
        n = self.count[config, template] + 1
        self.count[config, template] = n
        delta = value - self.mean[config, template]
        self.mean[config, template] += delta / n
        self.m2[config, template] += delta * (
            value - self.mean[config, template]
        )

    def template_counts(self, config: int) -> np.ndarray:
        """Per-template sample counts for one configuration."""
        return self.count[config]


class StratumStats:
    """Pooled per-stratum sample statistics for one configuration."""

    def __init__(
        self, n: np.ndarray, mean: np.ndarray, var: np.ndarray
    ) -> None:
        self.n = n          #: samples per stratum
        self.mean = mean    #: sample mean per stratum
        self.var = var      #: sample variance (s^2) per stratum


def _pool_templates(
    grid: MomentGrid,
    config: int,
    strat: Stratification,
    fallback_var: Optional[float] = None,
) -> StratumStats:
    """Pool template accumulators into per-stratum statistics.

    Pooled mean is the plain sample mean of the stratum; pooled M2 is
    the exact within-stratum sum of squared deviations.  Strata with a
    single sample fall back to ``fallback_var`` (the configuration's
    overall sample variance) so they never report zero variance.
    """
    L = strat.stratum_count
    n = np.zeros(L, dtype=np.int64)
    mean = np.zeros(L, dtype=np.float64)
    var = np.zeros(L, dtype=np.float64)
    counts = grid.count[config]
    means = grid.mean[config]
    m2s = grid.m2[config]

    if fallback_var is None:
        total_n = int(counts.sum())
        if total_n >= 2:
            overall = float((counts * means).sum() / total_n)
            total_m2 = float(
                (m2s + counts * (means - overall) ** 2).sum()
            )
            fallback_var = total_m2 / (total_n - 1)
        else:
            fallback_var = 0.0

    for h, stratum in enumerate(strat.strata):
        tids = np.fromiter(stratum, dtype=np.int64)
        c = counts[tids]
        n_h = int(c.sum())
        n[h] = n_h
        if n_h == 0:
            mean[h] = np.nan
            var[h] = np.inf
            continue
        m_h = float((c * means[tids]).sum() / n_h)
        mean[h] = m_h
        if n_h >= 2:
            m2_h = float(
                (m2s[tids] + c * (means[tids] - m_h) ** 2).sum()
            )
            var[h] = m2_h / (n_h - 1)
        else:
            var[h] = fallback_var
    return StratumStats(n, mean, var)


def _stratified_estimate(
    stats: StratumStats, strat: Stratification
) -> Tuple[float, float]:
    """Stratified total estimate and its variance (equation 5).

    Strata with no samples contribute the average of the observed
    strata means (unbiased fallback only during transient states; the
    selection procedure pilots every new stratum before relying on the
    estimate) and infinite variance, which prevents premature
    termination.
    """
    sizes = strat.sizes.astype(np.float64)
    total = 0.0
    variance = 0.0
    observed = stats.n > 0
    fallback_mean = (
        float(np.average(stats.mean[observed], weights=sizes[observed]))
        if observed.any()
        else 0.0
    )
    for h in range(strat.stratum_count):
        size = sizes[h]
        if stats.n[h] == 0:
            total += size * fallback_mean
            variance = float("inf")
            continue
        total += size * stats.mean[h]
        if size > 1 and stats.var[h] > 0:
            fpc = max(0.0, 1.0 - stats.n[h] / size)
            variance += size * size * stats.var[h] / stats.n[h] * fpc
    return total, variance


class IndependentState:
    """Sampling state for Independent Sampling (§4.1).

    Every configuration owns an independent :class:`TemplateSampler`
    (its own shuffles) and its own accumulators; sample sizes per
    configuration may differ.
    """

    def __init__(
        self,
        n_configs: int,
        n_templates: int,
        indices_by_template: Dict[int, np.ndarray],
        rng: np.random.Generator,
    ) -> None:
        self.n_configs = n_configs
        self.n_templates = n_templates
        self.grid = MomentGrid(n_configs, n_templates)
        self.samplers = [
            TemplateSampler(indices_by_template, rng)
            for _ in range(n_configs)
        ]

    def sample_one(
        self,
        config: int,
        stratum_templates: Sequence[int],
        source: CostSource,
        rng: np.random.Generator,
    ) -> bool:
        """Draw and evaluate one query for ``config`` from a stratum.

        Returns ``False`` when the stratum is exhausted for this
        configuration.
        """
        drawn = self.samplers[config].draw_from_stratum(
            stratum_templates, rng
        )
        if drawn is None:
            return False
        qidx, tid = drawn
        self.grid.add(config, tid, source.cost(qidx, config))
        return True

    def sample_count(self, config: int) -> int:
        """Total queries sampled for one configuration."""
        return int(self.grid.count[config].sum())

    def stratum_stats(
        self, config: int, strat: Stratification
    ) -> StratumStats:
        """Pooled per-stratum statistics for one configuration."""
        return _pool_templates(self.grid, config, strat)

    def estimate(
        self, config: int, strat: Stratification
    ) -> Tuple[float, float]:
        """``(X_i, Var(X_i))`` under the given stratification."""
        return _stratified_estimate(self.stratum_stats(config, strat),
                                    strat)

    # ------------------------------------------------------------------
    # warm-start snapshot/restore
    # ------------------------------------------------------------------
    def export_moments(self) -> Dict[int, List[Tuple[int, float, float]]]:
        """Per-template ``(count, mean, M2)`` per configuration.

        Only templates with at least one sample in any configuration
        are included.
        """
        out: Dict[int, List[Tuple[int, float, float]]] = {}
        for t in range(self.n_templates):
            if not self.grid.count[:, t].any():
                continue
            out[t] = [
                (
                    int(self.grid.count[c, t]),
                    float(self.grid.mean[c, t]),
                    float(self.grid.m2[c, t]),
                )
                for c in range(self.n_configs)
            ]
        return out

    def import_moments(
        self, moments: Dict[int, List[Tuple[int, float, float]]]
    ) -> int:
        """Seed accumulators with moments from a previous run.

        Must be called before any sampling.  Templates unknown to the
        current workload are skipped; carried counts are clamped to
        the template's population in the current workload (preserving
        the sample variance) so the finite-population correction never
        sees more samples than queries.  Returns the number of carried
        samples (summed over configurations).
        """
        carried = 0
        for t, per_config in moments.items():
            if len(per_config) != self.n_configs:
                raise ValueError(
                    f"template {t} carries {len(per_config)} "
                    f"configurations, expected {self.n_configs}"
                )
            for c, (count, mean, m2) in enumerate(per_config):
                if count <= 0:
                    continue
                if not self.samplers[c].has_template(t):
                    continue
                kept = self.samplers[c].mark_drawn(t, count)
                if kept == 0:
                    continue
                if kept < count and count >= 2:
                    # Clamp the count but keep s^2 = M2/(n-1) invariant.
                    m2 = m2 / (count - 1) * max(0, kept - 1)
                self.grid.count[c, t] = kept
                self.grid.mean[c, t] = mean
                self.grid.m2[c, t] = m2 if kept >= 2 else 0.0
                carried += kept
        return carried


class _AlignedBuffers:
    """Per-template cost buffers aligned to the shared draw order.

    For Delta Sampling, template ``t``'s shared draw order is fixed by
    the single :class:`TemplateSampler`; configuration ``c``'s buffer
    holds the costs of the first ``m_{c,t}`` drawn queries (all of
    them while ``c`` is active — eliminated configurations simply stop
    extending their buffers).
    """

    def __init__(self, n_configs: int, n_templates: int) -> None:
        self._values: List[List[List[float]]] = [
            [[] for _ in range(n_templates)] for _ in range(n_configs)
        ]

    def append(self, config: int, template: int, value: float) -> None:
        self._values[config][template].append(value)

    def length(self, config: int, template: int) -> int:
        return len(self._values[config][template])

    def array(self, config: int, template: int,
              limit: Optional[int] = None) -> np.ndarray:
        vals = self._values[config][template]
        if limit is not None:
            vals = vals[:limit]
        return np.asarray(vals, dtype=np.float64)


class DeltaState:
    """Sampling state for Delta Sampling (§4.2).

    One shared sample; every drawn query is evaluated in all *active*
    configurations.  Pairwise difference statistics are computed from
    aligned per-template buffers, so the estimator of ``X_{l,j}`` uses
    exactly the queries both configurations have evaluated.
    """

    def __init__(
        self,
        n_configs: int,
        n_templates: int,
        indices_by_template: Dict[int, np.ndarray],
        rng: np.random.Generator,
    ) -> None:
        self.n_configs = n_configs
        self.n_templates = n_templates
        self.grid = MomentGrid(n_configs, n_templates)
        self.sampler = TemplateSampler(indices_by_template, rng)
        self.buffers = _AlignedBuffers(n_configs, n_templates)
        # Templates that have received at least one draw: pairwise
        # statistics only need to visit these (a large workload may
        # have hundreds of templates, most untouched early on).
        self._touched: set = set()

    def sample_one(
        self,
        stratum_templates: Sequence[int],
        source: CostSource,
        rng: np.random.Generator,
        active_configs: Sequence[int],
    ) -> bool:
        """Draw one shared query and evaluate it in all active configs.

        Returns ``False`` when the stratum is exhausted.
        """
        drawn = self.sampler.draw_from_stratum(stratum_templates, rng)
        if drawn is None:
            return False
        qidx, tid = drawn
        self._touched.add(tid)
        for config in active_configs:
            value = source.cost(qidx, config)
            self.grid.add(config, tid, value)
            self.buffers.append(config, tid, value)
        return True

    def sample_count(self) -> int:
        """Total shared queries sampled so far."""
        return sum(
            self.sampler.drawn(t)
            for t in self.sampler._order  # noqa: SLF001 - own class family
        )

    def estimate_total(
        self, config: int, strat: Stratification
    ) -> Tuple[float, float]:
        """Stratified ``(X_i, Var(X_i))`` from the shared sample."""
        return _stratified_estimate(
            _pool_templates(self.grid, config, strat), strat
        )

    # ------------------------------------------------------------------
    # warm-start snapshot/restore
    # ------------------------------------------------------------------
    def export_samples(self) -> Dict[int, List[List[float]]]:
        """Aligned per-template cost buffers, per configuration.

        ``{template_id: [costs_of_config_0, costs_of_config_1, ...]}``
        where each inner list follows the shared draw order (shorter
        for configurations eliminated mid-run).  Only touched
        templates are included.
        """
        return {
            t: [
                list(self.buffers.array(c, t))
                for c in range(self.n_configs)
            ]
            for t in sorted(self._touched)
        }

    def import_samples(
        self, samples: Dict[int, List[List[float]]]
    ) -> int:
        """Seed buffers/accumulators with a previous run's samples.

        Must be called before any sampling.  For each template the
        carried costs stand in for the first draws of the (fresh)
        shared permutation — valid because both the carried sample and
        the permutation prefix are uniform without-replacement samples
        of the template.  Carried draws are clamped to the template's
        population in the current workload.  Templates unknown to the
        current workload are skipped.  Returns the number of carried
        samples (summed over configurations).
        """
        carried = 0
        for t, per_config in samples.items():
            if len(per_config) != self.n_configs:
                raise ValueError(
                    f"template {t} carries {len(per_config)} "
                    f"configurations, expected {self.n_configs}"
                )
            if not self.sampler.has_template(t):
                continue
            shared = max((len(v) for v in per_config), default=0)
            shared = self.sampler.mark_drawn(t, shared)
            if shared == 0:
                continue
            touched = False
            for c, values in enumerate(per_config):
                for v in values[:shared]:
                    self.grid.add(c, t, float(v))
                    self.buffers.append(c, t, float(v))
                    carried += 1
                    touched = True
            if touched:
                self._touched.add(t)
        return carried

    # ------------------------------------------------------------------
    # pairwise difference statistics
    # ------------------------------------------------------------------
    def diff_template_moments(
        self, l: int, j: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-template ``(count, mean, M2)`` of ``Cost(q,C_l)-Cost(q,C_j)``.

        Uses the aligned prefix both configurations have evaluated.
        """
        T = self.n_templates
        counts = np.zeros(T, dtype=np.int64)
        means = np.zeros(T, dtype=np.float64)
        m2s = np.zeros(T, dtype=np.float64)
        for t in self._touched:
            m = min(self.buffers.length(l, t), self.buffers.length(j, t))
            if m == 0:
                continue
            diff = self.buffers.array(l, t, m) - self.buffers.array(j, t, m)
            counts[t] = m
            means[t] = float(diff.mean())
            if m >= 2:
                m2s[t] = float(((diff - diff.mean()) ** 2).sum())
        return counts, means, m2s

    def pair_estimate(
        self, l: int, j: int, strat: Stratification
    ) -> Tuple[float, float]:
        """``(X_{l,j}, Var(X_{l,j}))`` under the given stratification.

        ``X_{l,j}`` estimates ``Cost(WL,C_l) - Cost(WL,C_j)``; negative
        means ``C_l`` looks better.
        """
        counts, means, m2s = self.diff_template_moments(l, j)
        # Pool templates into strata, mirroring _pool_templates but on
        # the difference moments.
        L = strat.stratum_count
        sizes = strat.sizes.astype(np.float64)
        total_n = int(counts.sum())
        if total_n >= 2:
            overall = float((counts * means).sum() / total_n)
            fallback_var = float(
                (m2s + counts * (means - overall) ** 2).sum()
            ) / (total_n - 1)
        else:
            fallback_var = 0.0
        estimate = 0.0
        variance = 0.0
        observed_means = []
        observed_sizes = []
        per_stratum = []
        for h, stratum in enumerate(strat.strata):
            tids = np.fromiter(stratum, dtype=np.int64)
            c = counts[tids]
            n_h = int(c.sum())
            if n_h == 0:
                per_stratum.append((h, None, None))
                continue
            m_h = float((c * means[tids]).sum() / n_h)
            if n_h >= 2:
                s2_h = float(
                    (m2s[tids] + c * (means[tids] - m_h) ** 2).sum()
                ) / (n_h - 1)
            else:
                s2_h = fallback_var
            observed_means.append(m_h)
            observed_sizes.append(sizes[h])
            per_stratum.append((h, m_h, (n_h, s2_h)))
        fallback_mean = (
            float(np.average(observed_means, weights=observed_sizes))
            if observed_means
            else 0.0
        )
        for h, m_h, extra in per_stratum:
            size = sizes[h]
            if m_h is None:
                estimate += size * fallback_mean
                variance = float("inf")
                continue
            n_h, s2_h = extra
            estimate += size * m_h
            if size > 1 and s2_h > 0:
                fpc = max(0.0, 1.0 - n_h / size)
                variance += size * size * s2_h / n_h * fpc
        return estimate, variance
