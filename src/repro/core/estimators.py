"""Sampling state and estimators for Independent and Delta sampling.

Implements Section 4 of the paper:

* **Independent Sampling** (§4.1) draws a separate uniform sample per
  configuration and estimates each total cost
  ``X_i = N / |SL_i| * sum Cost(q, C_i)`` (stratified generalization:
  ``X_i = sum_h |WL_h| * mean_h``).
* **Delta Sampling** (§4.2) draws a *single* shared sample, evaluates
  it in every (active) configuration and estimates cost differences
  ``X_{l,j}`` directly, profiting from the positive covariance of query
  costs across configurations.

Bookkeeping is per (configuration, template): templates are the atoms
of every stratification (§5), so stratum-level statistics pool template
accumulators and re-stratification costs nothing — matching the paper's
claim that "all necessary counters and measurements can be maintained
incrementally at constant cost".

Pooled per-stratum moments are cached per (owner, stratum) and
validated by the stratum's sample count — a count that did not change
means no member template received a sample, so the cached pooled
moments are exact.  Splits change the stratum key (the tuple of member
templates), so only the affected strata repool; unchanged strata keep
serving their cached entries.  Pairwise difference moments come in two
flavors, selected by ``DeltaState(estimator=...)``:

* ``"buffer"`` (exact): per-template moments are recomputed from the
  aligned cost buffers, but only for templates whose aligned length
  changed since last read — bit-identical to a full recomputation.
* ``"welford"`` (incremental): per-template running Welford
  accumulators advance over newly aligned draws in O(1) amortized per
  sample; they agree with the buffer reduction to floating-point
  accumulation order (~1e-12 relative).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .sources import CostSource
from .stratification import Stratification

__all__ = [
    "TemplateSampler",
    "MomentGrid",
    "StratumStats",
    "IndependentState",
    "DeltaState",
]


class TemplateSampler:
    """Uniform without-replacement sampling from templates and strata.

    Each template's query positions are shuffled once; a cursor walks
    the shuffle.  Drawing from a stratum picks a member template with
    probability proportional to its *remaining* unsampled queries,
    which makes the stratum draw a simple random sample of the stratum
    — and, restricted to any template, a simple random sample of the
    template, so samples survive re-stratification unchanged.
    """

    def __init__(
        self,
        indices_by_template: Dict[int, np.ndarray],
        rng: np.random.Generator,
    ) -> None:
        self._order: Dict[int, np.ndarray] = {}
        self._cursor: Dict[int, int] = {}
        for tid, indices in indices_by_template.items():
            self._order[tid] = rng.permutation(np.asarray(indices))
            self._cursor[tid] = 0

    def has_template(self, template_id: int) -> bool:
        """Whether this sampler knows the template at all."""
        return template_id in self._order

    def remaining(self, template_id: int) -> int:
        """Unsampled queries left in one template."""
        return len(self._order[template_id]) - self._cursor[template_id]

    def remaining_in(self, templates: Iterable[int]) -> int:
        """Unsampled queries left in a union of templates."""
        return sum(self.remaining(t) for t in templates)

    def drawn(self, template_id: int) -> int:
        """Number of queries drawn so far from one template."""
        return self._cursor[template_id]

    def drawn_order(self, template_id: int) -> np.ndarray:
        """The query positions drawn so far, in draw order."""
        return self._order[template_id][: self._cursor[template_id]]

    def mark_drawn(self, template_id: int, n: int) -> int:
        """Advance the cursor by ``n`` draws without reading positions.

        Used when importing samples carried over from a previous
        selector run (warm start): the carried costs stand in for the
        first ``n`` draws of the template, so those positions must be
        consumed to keep the without-replacement accounting (and the
        finite-population corrections downstream) honest.  Returns the
        number of positions actually consumed, clamped to what is
        left.
        """
        if n < 0:
            raise ValueError(f"cannot mark {n} draws")
        consumed = min(n, self.remaining(template_id))
        self._cursor[template_id] += consumed
        return consumed

    def draw_from_template(self, template_id: int) -> Optional[int]:
        """Next unsampled query of a template (``None`` if exhausted)."""
        cur = self._cursor[template_id]
        if cur >= len(self._order[template_id]):
            return None
        self._cursor[template_id] = cur + 1
        return int(self._order[template_id][cur])

    def draw_from_stratum(
        self, templates: Sequence[int], rng: np.random.Generator
    ) -> Optional[Tuple[int, int]]:
        """Uniformly draw one unsampled query from a union of templates.

        Returns ``(query_idx, template_id)`` or ``None`` when the
        stratum is exhausted.
        """
        weights = np.array(
            [self.remaining(t) for t in templates], dtype=np.float64
        )
        total = weights.sum()
        if total <= 0:
            return None
        pick = int(rng.choice(len(templates), p=weights / total))
        tid = templates[pick]
        qidx = self.draw_from_template(tid)
        assert qidx is not None
        return qidx, tid

    # ------------------------------------------------------------------
    # checkpoint snapshot/restore
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Dict[str, object]]:
        """JSON-serializable snapshot of every shuffle and cursor.

        Unlike the warm-start export (which carries only costs and
        lets a fresh run re-shuffle), the checkpoint snapshot pins the
        exact permutations, so a resumed run draws the *same queries
        in the same order* as the uninterrupted one.
        """
        return {
            str(t): {
                "order": [int(q) for q in order],
                "cursor": int(self._cursor[t]),
            }
            for t, order in self._order.items()
        }

    def restore_state(self, payload: Dict[str, Dict[str, object]]) -> None:
        """Inverse of :meth:`state_dict`.

        The sampler must cover exactly the checkpointed templates
        (same workload); anything else is a corrupt resume.
        """
        templates = {int(t) for t in payload}
        if templates != set(self._order):
            raise ValueError(
                "checkpoint covers different templates than this "
                "workload"
            )
        for key, entry in payload.items():
            t = int(key)
            order = np.asarray(entry["order"], dtype=np.int64)
            if len(order) != len(self._order[t]):
                raise ValueError(
                    f"template {t} has {len(self._order[t])} queries, "
                    f"checkpoint recorded {len(order)}"
                )
            cursor = int(entry["cursor"])
            if not (0 <= cursor <= len(order)):
                raise ValueError(
                    f"template {t} cursor {cursor} out of range"
                )
            self._order[t] = order
            self._cursor[t] = cursor

    def draw_many(
        self,
        templates: Sequence[int],
        rng: np.random.Generator,
        n: int,
    ) -> List[Tuple[int, int]]:
        """Up to ``n`` consecutive stratum draws (the draw-ahead batch).

        Consumes the generator exactly as ``n`` successive
        :meth:`draw_from_stratum` calls would, so a draw-ahead schedule
        is RNG-identical to the serial one.  Stops early when the
        stratum runs dry; an exhausted attempt consumes no randomness.
        """
        out: List[Tuple[int, int]] = []
        for _ in range(n):
            drawn = self.draw_from_stratum(templates, rng)
            if drawn is None:
                break
            out.append(drawn)
        return out


class MomentGrid:
    """Welford accumulators per (configuration, template).

    Stores count / mean / M2 in dense ``(k, T)`` arrays so stratum
    pooling is vectorized across configurations.
    """

    def __init__(self, n_configs: int, n_templates: int) -> None:
        self.count = np.zeros((n_configs, n_templates), dtype=np.int64)
        self.mean = np.zeros((n_configs, n_templates), dtype=np.float64)
        self.m2 = np.zeros((n_configs, n_templates), dtype=np.float64)

    def add(self, config: int, template: int, value: float) -> None:
        """Welford single-value update."""
        n = self.count[config, template] + 1
        self.count[config, template] = n
        delta = value - self.mean[config, template]
        self.mean[config, template] += delta / n
        self.m2[config, template] += delta * (
            value - self.mean[config, template]
        )

    def template_counts(self, config: int) -> np.ndarray:
        """Per-template sample counts for one configuration."""
        return self.count[config]


class StratumStats:
    """Pooled per-stratum sample statistics for one configuration."""

    def __init__(
        self, n: np.ndarray, mean: np.ndarray, var: np.ndarray
    ) -> None:
        self.n = n          #: samples per stratum
        self.mean = mean    #: sample mean per stratum
        self.var = var      #: sample variance (s^2) per stratum


#: Cached pooled stratum moments: ``(owner, stratum) -> (n_h, mean_h,
#: M2_h)``.  ``n_h`` doubles as the validity stamp — per-template
#: counts only grow, so an unchanged stratum count proves no member
#: template moved and the cached floats are exactly what a repool
#: would produce.
_StratumMomentCache = Dict[Tuple, Tuple[int, float, float]]


def _pool_templates(
    grid: MomentGrid,
    config: int,
    strat: Stratification,
    fallback_var: Optional[float] = None,
    cache: Optional[_StratumMomentCache] = None,
) -> StratumStats:
    """Pool template accumulators into per-stratum statistics.

    Pooled mean is the plain sample mean of the stratum; pooled M2 is
    the exact within-stratum sum of squared deviations.  Strata with a
    single sample fall back to ``fallback_var`` (the configuration's
    overall sample variance) so they never report zero variance.

    With a ``cache``, strata whose sample count is unchanged reuse
    their pooled ``(mean, M2)`` instead of re-gathering — the hot path
    of every evaluation round, where most strata received no draw.
    """
    L = strat.stratum_count
    n = np.zeros(L, dtype=np.int64)
    mean = np.zeros(L, dtype=np.float64)
    var = np.zeros(L, dtype=np.float64)
    counts = grid.count[config]
    means = grid.mean[config]
    m2s = grid.m2[config]

    if fallback_var is None:
        total_n = int(counts.sum())
        if total_n >= 2:
            overall = float((counts * means).sum() / total_n)
            total_m2 = float(
                (m2s + counts * (means - overall) ** 2).sum()
            )
            fallback_var = total_m2 / (total_n - 1)
        else:
            fallback_var = 0.0

    for h, stratum in enumerate(strat.strata):
        tids = strat.tid_arrays[h]
        c = counts[tids]
        n_h = int(c.sum())
        n[h] = n_h
        if n_h == 0:
            mean[h] = np.nan
            var[h] = np.inf
            continue
        key = (config, stratum)
        hit = cache.get(key) if cache is not None else None
        if hit is not None and hit[0] == n_h:
            m_h, m2_h = hit[1], hit[2]
        else:
            m_h = float((c * means[tids]).sum() / n_h)
            if n_h >= 2:
                m2_h = float(
                    (m2s[tids] + c * (means[tids] - m_h) ** 2).sum()
                )
            else:
                m2_h = 0.0
            if cache is not None:
                cache[key] = (n_h, m_h, m2_h)
        mean[h] = m_h
        var[h] = m2_h / (n_h - 1) if n_h >= 2 else fallback_var
    return StratumStats(n, mean, var)


def _stratified_estimate(
    stats: StratumStats, strat: Stratification
) -> Tuple[float, float]:
    """Stratified total estimate and its variance (equation 5).

    Strata with no samples contribute the average of the observed
    strata means (unbiased fallback only during transient states; the
    selection procedure pilots every new stratum before relying on the
    estimate) and infinite variance, which prevents premature
    termination.
    """
    sizes = strat.sizes.astype(np.float64)
    total = 0.0
    variance = 0.0
    observed = stats.n > 0
    fallback_mean = (
        float(np.average(stats.mean[observed], weights=sizes[observed]))
        if observed.any()
        else 0.0
    )
    for h in range(strat.stratum_count):
        size = sizes[h]
        if stats.n[h] == 0:
            total += size * fallback_mean
            variance = float("inf")
            continue
        total += size * stats.mean[h]
        if size > 1 and stats.var[h] > 0:
            fpc = max(0.0, 1.0 - stats.n[h] / size)
            variance += size * size * stats.var[h] / stats.n[h] * fpc
    return total, variance


class IndependentState:
    """Sampling state for Independent Sampling (§4.1).

    Every configuration owns an independent :class:`TemplateSampler`
    (its own shuffles) and its own accumulators; sample sizes per
    configuration may differ.
    """

    def __init__(
        self,
        n_configs: int,
        n_templates: int,
        indices_by_template: Dict[int, np.ndarray],
        rng: np.random.Generator,
    ) -> None:
        self.n_configs = n_configs
        self.n_templates = n_templates
        self.grid = MomentGrid(n_configs, n_templates)
        self.samplers = [
            TemplateSampler(indices_by_template, rng)
            for _ in range(n_configs)
        ]
        self._stratum_cache: _StratumMomentCache = {}

    def ingest(self, config: int, template: int, value: float) -> None:
        """Fold one evaluated draw into the accumulators."""
        self.grid.add(config, template, float(value))

    def sample_one(
        self,
        config: int,
        stratum_templates: Sequence[int],
        source: CostSource,
        rng: np.random.Generator,
    ) -> bool:
        """Draw and evaluate one query for ``config`` from a stratum.

        Returns ``False`` when the stratum is exhausted for this
        configuration.
        """
        drawn = self.samplers[config].draw_from_stratum(
            stratum_templates, rng
        )
        if drawn is None:
            return False
        qidx, tid = drawn
        self.ingest(config, tid, source.cost(qidx, config))
        return True

    def sample_count(self, config: int) -> int:
        """Total queries sampled for one configuration."""
        return int(self.grid.count[config].sum())

    def stratum_stats(
        self, config: int, strat: Stratification
    ) -> StratumStats:
        """Pooled per-stratum statistics for one configuration."""
        return _pool_templates(
            self.grid, config, strat, cache=self._stratum_cache
        )

    def estimate(
        self, config: int, strat: Stratification
    ) -> Tuple[float, float]:
        """``(X_i, Var(X_i))`` under the given stratification."""
        return _stratified_estimate(self.stratum_stats(config, strat),
                                    strat)

    # ------------------------------------------------------------------
    # checkpoint snapshot/restore (exact, including sampler shuffles)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable exact snapshot for mid-run checkpoints.

        Captures the per-configuration sampler shuffles/cursors and
        the raw Welford moments; :meth:`restore_state` reproduces the
        state bit for bit (floats round-trip exactly through JSON's
        shortest-repr encoding).
        """
        touched = [
            t for t in range(self.n_templates)
            if self.grid.count[:, t].any()
        ]
        return {
            "samplers": [s.state_dict() for s in self.samplers],
            "moments": {
                str(t): [
                    [
                        int(self.grid.count[c, t]),
                        float(self.grid.mean[c, t]),
                        float(self.grid.m2[c, t]),
                    ]
                    for c in range(self.n_configs)
                ]
                for t in touched
            },
        }

    def restore_state(self, payload: dict) -> None:
        """Inverse of :meth:`state_dict`; requires a fresh state."""
        if self.grid.count.any():
            raise RuntimeError(
                "restore_state requires a state with no samples"
            )
        samplers = payload["samplers"]
        if len(samplers) != self.n_configs:
            raise ValueError(
                f"checkpoint carries {len(samplers)} samplers for "
                f"{self.n_configs} configurations"
            )
        for key, per_config in payload["moments"].items():
            t = int(key)
            if len(per_config) != self.n_configs:
                raise ValueError(
                    f"template {t} carries {len(per_config)} "
                    f"configurations, expected {self.n_configs}"
                )
            for c, (count, mean, m2) in enumerate(per_config):
                self.grid.count[c, t] = int(count)
                self.grid.mean[c, t] = float(mean)
                self.grid.m2[c, t] = float(m2)
        for sampler, state in zip(self.samplers, samplers):
            sampler.restore_state(state)

    # ------------------------------------------------------------------
    # warm-start snapshot/restore
    # ------------------------------------------------------------------
    def export_moments(self) -> Dict[int, List[Tuple[int, float, float]]]:
        """Per-template ``(count, mean, M2)`` per configuration.

        Only templates with at least one sample in any configuration
        are included.
        """
        out: Dict[int, List[Tuple[int, float, float]]] = {}
        for t in range(self.n_templates):
            if not self.grid.count[:, t].any():
                continue
            out[t] = [
                (
                    int(self.grid.count[c, t]),
                    float(self.grid.mean[c, t]),
                    float(self.grid.m2[c, t]),
                )
                for c in range(self.n_configs)
            ]
        return out

    def import_moments(
        self, moments: Dict[int, List[Tuple[int, float, float]]]
    ) -> int:
        """Seed accumulators with moments from a previous run.

        Must be called before any sampling.  Templates unknown to the
        current workload are skipped; carried counts are clamped to
        the template's population in the current workload (preserving
        the sample variance) so the finite-population correction never
        sees more samples than queries.  Returns the number of carried
        samples (summed over configurations).
        """
        carried = 0
        for t, per_config in moments.items():
            if len(per_config) != self.n_configs:
                raise ValueError(
                    f"template {t} carries {len(per_config)} "
                    f"configurations, expected {self.n_configs}"
                )
            for c, (count, mean, m2) in enumerate(per_config):
                if count <= 0:
                    continue
                if not self.samplers[c].has_template(t):
                    continue
                kept = self.samplers[c].mark_drawn(t, count)
                if kept == 0:
                    continue
                if kept < count and count >= 2:
                    # Clamp the count but keep s^2 = M2/(n-1) invariant.
                    m2 = m2 / (count - 1) * max(0, kept - 1)
                self.grid.count[c, t] = kept
                self.grid.mean[c, t] = mean
                self.grid.m2[c, t] = m2 if kept >= 2 else 0.0
                carried += kept
        return carried


class _AlignedBuffers:
    """Per-template cost buffers aligned to the shared draw order.

    For Delta Sampling, template ``t``'s shared draw order is fixed by
    the single :class:`TemplateSampler`; configuration ``c``'s buffer
    holds the costs of the first ``m_{c,t}`` drawn queries (all of
    them while ``c`` is active — eliminated configurations simply stop
    extending their buffers).
    """

    def __init__(self, n_configs: int, n_templates: int) -> None:
        self._values: List[List[List[float]]] = [
            [[] for _ in range(n_templates)] for _ in range(n_configs)
        ]

    def append(self, config: int, template: int, value: float) -> None:
        self._values[config][template].append(value)

    def length(self, config: int, template: int) -> int:
        return len(self._values[config][template])

    def raw(self, config: int, template: int) -> List[float]:
        """The live buffer list (read-only use expected)."""
        return self._values[config][template]

    def array(self, config: int, template: int,
              limit: Optional[int] = None) -> np.ndarray:
        vals = self._values[config][template]
        if limit is not None:
            vals = vals[:limit]
        return np.asarray(vals, dtype=np.float64)


class _PairDiff:
    """Per-template moments of one ordered pair's aligned cost diffs.

    Owns dense ``(T,)`` count / mean / M2 arrays over the *canonical*
    direction (``lo - hi`` with ``lo < hi``) plus the pooled per-
    stratum cache.  :meth:`DeltaState._refresh_pair` advances the
    arrays over newly aligned draws; consumers read them in place.
    """

    __slots__ = ("counts", "means", "m2s", "strata")

    def __init__(self, n_templates: int) -> None:
        self.counts = np.zeros(n_templates, dtype=np.int64)
        self.means = np.zeros(n_templates, dtype=np.float64)
        self.m2s = np.zeros(n_templates, dtype=np.float64)
        #: ``stratum -> (n_h, mean_h, M2_h)`` pooled moments, validated
        #: by the stratum's aligned sample count.
        self.strata: _StratumMomentCache = {}


class DeltaState:
    """Sampling state for Delta Sampling (§4.2).

    One shared sample; every drawn query is evaluated in all *active*
    configurations.  Pairwise difference statistics are computed from
    aligned per-template buffers, so the estimator of ``X_{l,j}`` uses
    exactly the queries both configurations have evaluated.

    Parameters
    ----------
    estimator:
        ``"buffer"`` (default) recomputes a template's difference
        moments from the aligned buffers whenever its aligned length
        changed — exact, bit-identical to a full recomputation.
        ``"welford"`` keeps running accumulators per (pair, template)
        that fold each newly aligned draw in at O(1) — the batched
        selector's mode, agreeing with the buffer reduction to
        floating-point accumulation order.
    """

    def __init__(
        self,
        n_configs: int,
        n_templates: int,
        indices_by_template: Dict[int, np.ndarray],
        rng: np.random.Generator,
        estimator: str = "buffer",
    ) -> None:
        if estimator not in ("buffer", "welford"):
            raise ValueError(f"unknown estimator mode {estimator!r}")
        self.estimator = estimator
        self.n_configs = n_configs
        self.n_templates = n_templates
        self.grid = MomentGrid(n_configs, n_templates)
        self.sampler = TemplateSampler(indices_by_template, rng)
        self.buffers = _AlignedBuffers(n_configs, n_templates)
        # Templates that have received at least one draw: pairwise
        # statistics only need to visit these (a large workload may
        # have hundreds of templates, most untouched early on).
        self._touched: set = set()
        self._pairs: Dict[Tuple[int, int], _PairDiff] = {}
        self._stratum_cache: _StratumMomentCache = {}

    def ingest(
        self,
        qidx: int,
        tid: int,
        active_configs: Sequence[int],
        values: Sequence[float],
    ) -> None:
        """Fold one drawn query's per-config costs into the state.

        ``values`` is aligned with ``active_configs``; the accumulator
        update order matches the serial per-config loop exactly.
        """
        self._touched.add(tid)
        for config, value in zip(active_configs, values):
            v = float(value)
            self.grid.add(config, tid, v)
            self.buffers.append(config, tid, v)

    def sample_one(
        self,
        stratum_templates: Sequence[int],
        source: CostSource,
        rng: np.random.Generator,
        active_configs: Sequence[int],
    ) -> bool:
        """Draw one shared query and evaluate it in all active configs.

        Returns ``False`` when the stratum is exhausted.
        """
        drawn = self.sampler.draw_from_stratum(stratum_templates, rng)
        if drawn is None:
            return False
        qidx, tid = drawn
        self.ingest(
            qidx, tid, active_configs,
            [source.cost(qidx, c) for c in active_configs],
        )
        return True

    def sample_count(self) -> int:
        """Total shared queries sampled so far."""
        return sum(
            self.sampler.drawn(t)
            for t in self.sampler._order  # noqa: SLF001 - own class family
        )

    def estimate_total(
        self, config: int, strat: Stratification
    ) -> Tuple[float, float]:
        """Stratified ``(X_i, Var(X_i))`` from the shared sample."""
        return _stratified_estimate(
            _pool_templates(
                self.grid, config, strat, cache=self._stratum_cache
            ),
            strat,
        )

    # ------------------------------------------------------------------
    # checkpoint snapshot/restore (exact, including sampler shuffle)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable exact snapshot for mid-run checkpoints.

        Captures the shared sampler's shuffles/cursors plus the
        aligned cost buffers.  :meth:`restore_state` replays the
        buffers through the same per-cell Welford updates the original
        ingestion performed — each grid cell sees its values in the
        same order, so every accumulator is restored bit for bit; the
        lazily rebuilt pairwise moments then reproduce identical
        floats in both estimator modes.
        """
        return {
            "sampler": self.sampler.state_dict(),
            "values": {
                str(t): [
                    [float(x) for x in self.buffers.raw(c, t)]
                    for c in range(self.n_configs)
                ]
                for t in sorted(self._touched)
            },
        }

    def restore_state(self, payload: dict) -> None:
        """Inverse of :meth:`state_dict`; requires a fresh state."""
        if self._touched:
            raise RuntimeError(
                "restore_state requires a state with no samples"
            )
        for key, per_config in payload["values"].items():
            t = int(key)
            if len(per_config) != self.n_configs:
                raise ValueError(
                    f"template {t} carries {len(per_config)} "
                    f"configurations, expected {self.n_configs}"
                )
            for c, values in enumerate(per_config):
                for v in values:
                    v = float(v)
                    self.grid.add(c, t, v)
                    self.buffers.append(c, t, v)
            self._touched.add(t)
        self.sampler.restore_state(payload["sampler"])

    # ------------------------------------------------------------------
    # warm-start snapshot/restore
    # ------------------------------------------------------------------
    def export_samples(self) -> Dict[int, List[List[float]]]:
        """Aligned per-template cost buffers, per configuration.

        ``{template_id: [costs_of_config_0, costs_of_config_1, ...]}``
        where each inner list follows the shared draw order (shorter
        for configurations eliminated mid-run).  Only touched
        templates are included.
        """
        return {
            t: [
                list(self.buffers.array(c, t))
                for c in range(self.n_configs)
            ]
            for t in sorted(self._touched)
        }

    def import_samples(
        self, samples: Dict[int, List[List[float]]]
    ) -> int:
        """Seed buffers/accumulators with a previous run's samples.

        Must be called before any sampling.  For each template the
        carried costs stand in for the first draws of the (fresh)
        shared permutation — valid because both the carried sample and
        the permutation prefix are uniform without-replacement samples
        of the template.  Carried draws are clamped to the template's
        population in the current workload.  Templates unknown to the
        current workload are skipped.  Returns the number of carried
        samples (summed over configurations).
        """
        carried = 0
        for t, per_config in samples.items():
            if len(per_config) != self.n_configs:
                raise ValueError(
                    f"template {t} carries {len(per_config)} "
                    f"configurations, expected {self.n_configs}"
                )
            if not self.sampler.has_template(t):
                continue
            shared = max((len(v) for v in per_config), default=0)
            shared = self.sampler.mark_drawn(t, shared)
            if shared == 0:
                continue
            touched = False
            for c, values in enumerate(per_config):
                for v in values[:shared]:
                    self.grid.add(c, t, float(v))
                    self.buffers.append(c, t, float(v))
                    carried += 1
                    touched = True
            if touched:
                self._touched.add(t)
        return carried

    # ------------------------------------------------------------------
    # pairwise difference statistics
    # ------------------------------------------------------------------
    def _pair(self, l: int, j: int) -> Tuple[_PairDiff, float]:
        """The refreshed canonical accumulator and the sign of
        ``l - j`` relative to it."""
        lo, hi = (l, j) if l < j else (j, l)
        pd = self._pairs.get((lo, hi))
        if pd is None:
            pd = _PairDiff(self.n_templates)
            self._pairs[(lo, hi)] = pd
        self._refresh_pair(pd, lo, hi)
        return pd, (1.0 if l == lo else -1.0)

    def _refresh_pair(self, pd: _PairDiff, lo: int, hi: int) -> None:
        """Catch the pair's template moments up to the aligned prefix.

        Only templates whose aligned length grew since the last read
        are revisited; in ``"buffer"`` mode those templates recompute
        from the buffers (exact), in ``"welford"`` mode the running
        accumulators fold in just the new aligned draws.
        """
        counts, means, m2s = pd.counts, pd.means, pd.m2s
        welford = self.estimator == "welford"
        for t in self._touched:
            m = min(self.buffers.length(lo, t), self.buffers.length(hi, t))
            if m == counts[t]:
                continue
            if welford:
                lo_vals = self.buffers.raw(lo, t)
                hi_vals = self.buffers.raw(hi, t)
                n = int(counts[t])
                mean = float(means[t])
                m2 = float(m2s[t])
                for i in range(n, m):
                    d = lo_vals[i] - hi_vals[i]
                    n += 1
                    delta = d - mean
                    mean += delta / n
                    m2 += delta * (d - mean)
                counts[t] = n
                means[t] = mean
                m2s[t] = m2
            else:
                diff = (
                    self.buffers.array(lo, t, m)
                    - self.buffers.array(hi, t, m)
                )
                counts[t] = m
                mu = diff.mean()
                means[t] = float(mu)
                m2s[t] = (
                    float(((diff - mu) ** 2).sum()) if m >= 2 else 0.0
                )

    def diff_template_moments(
        self, l: int, j: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-template ``(count, mean, M2)`` of ``Cost(q,C_l)-Cost(q,C_j)``.

        Uses the aligned prefix both configurations have evaluated.
        The returned arrays are maintained incrementally and shared
        with the state — treat them as read-only.
        """
        pd, sign = self._pair(l, j)
        if sign < 0:
            return pd.counts, -pd.means, pd.m2s
        return pd.counts, pd.means, pd.m2s

    def pair_stratum_moments(
        self, l: int, j: int, strat: Stratification
    ) -> List[Tuple[int, float, float]]:
        """Cached pooled ``(n_h, mean_h, M2_h)`` of the pair per stratum.

        ``mean_h`` follows the ``l - j`` direction; ``M2_h`` is
        direction-free.  Pooled entries are reused while the stratum's
        aligned sample count is unchanged, so evaluation rounds cost
        O(1) per untouched (stratum, pair); a split changes the
        stratum key and rebuilds only the two new strata.
        """
        pd, sign = self._pair(l, j)
        counts, means, m2s = pd.counts, pd.means, pd.m2s
        # One segmented reduction yields every stratum's aligned count
        # (exact: integer sums), so the common all-cached call does
        # dict lookups only instead of L gather-and-sum dispatches.
        n_all = strat.member_sums(counts)
        out: List[Tuple[int, float, float]] = []
        for h, stratum in enumerate(strat.strata):
            n_h = int(n_all[h])
            if n_h == 0:
                out.append((0, 0.0, 0.0))
                continue
            hit = pd.strata.get(stratum)
            if hit is not None and hit[0] == n_h:
                m_h, m2_h = hit[1], hit[2]
            else:
                tids = strat.tid_arrays[h]
                c = counts[tids]
                m_h = float((c * means[tids]).sum() / n_h)
                if n_h >= 2:
                    m2_h = float(
                        (m2s[tids] + c * (means[tids] - m_h) ** 2).sum()
                    )
                else:
                    m2_h = 0.0
                pd.strata[stratum] = (n_h, m_h, m2_h)
            out.append((n_h, sign * m_h, m2_h))
        return out

    def pair_estimate(
        self, l: int, j: int, strat: Stratification
    ) -> Tuple[float, float]:
        """``(X_{l,j}, Var(X_{l,j}))`` under the given stratification.

        ``X_{l,j}`` estimates ``Cost(WL,C_l) - Cost(WL,C_j)``; negative
        means ``C_l`` looks better.
        """
        pd, sign = self._pair(l, j)
        counts, means, m2s = pd.counts, pd.means, pd.m2s
        # The overall (fallback) variance of the differences pools all
        # templates; it is sign-invariant, so the canonical direction
        # serves both orientations.
        total_n = int(counts.sum())
        if total_n >= 2:
            overall = float((counts * means).sum() / total_n)
            fallback_var = float(
                (m2s + counts * (means - overall) ** 2).sum()
            ) / (total_n - 1)
        else:
            fallback_var = 0.0
        sizes = strat.sizes.astype(np.float64)
        estimate = 0.0
        variance = 0.0
        observed_means = []
        observed_sizes = []
        per_stratum = []
        for h, (n_h, m_h, m2_h) in enumerate(
            self.pair_stratum_moments(l, j, strat)
        ):
            if n_h == 0:
                per_stratum.append((h, None, None))
                continue
            s2_h = m2_h / (n_h - 1) if n_h >= 2 else fallback_var
            observed_means.append(m_h)
            observed_sizes.append(sizes[h])
            per_stratum.append((h, m_h, (n_h, s2_h)))
        fallback_mean = (
            float(np.average(observed_means, weights=observed_sizes))
            if observed_means
            else 0.0
        )
        for h, m_h, extra in per_stratum:
            size = sizes[h]
            if m_h is None:
                estimate += size * fallback_mean
                variance = float("inf")
                continue
            n_h, s2_h = extra
            estimate += size * m_h
            if size > 1 and s2_h > 0:
                fpc = max(0.0, 1.0 - n_h / size)
                variance += size * size * s2_h / n_h * fpc
        return estimate, variance
