"""Search strategies over the comparison primitive.

Section 1 of the paper positions the primitive as "the core comparison
primitive inside an automated physical design tool, providing both
scalability and locally good decisions with probabilistic guarantees on
the accuracy of each comparison.  Depending on the search strategy
used, the latter can be extended to guarantees on the quality of the
final result."

This module implements that extension: a **knockout tournament** over
the candidate configurations.  Each round halves the field by pairwise
comparisons; a union bound over the ``ceil(log2 k)`` comparisons on the
eventual winner's path converts per-comparison guarantees into an
end-to-end guarantee:

    Pr(winner within delta per round of the best)
        >= 1 - sum of per-round error budgets.

Compared to running Algorithm 1 once over all ``k`` configurations,
the tournament evaluates each sampled query in at most 2 live
configurations (vs up to ``k`` for Delta Sampling before elimination),
which can win when ``k`` is large and the field is full of near-ties
that elimination cannot drop quickly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .selector import ConfigurationSelector, SelectorOptions
from .sources import CostSource

__all__ = ["TournamentResult", "knockout_tournament"]


class _PairView(CostSource):
    """A two-configuration view over a wider cost source."""

    def __init__(self, parent: CostSource, left: int, right: int) -> None:
        self._parent = parent
        self._pair = (left, right)

    @property
    def n_queries(self) -> int:
        return self._parent.n_queries

    @property
    def n_configs(self) -> int:
        return 2

    def cost(self, query_idx: int, config_idx: int) -> float:
        return self._parent.cost(query_idx, self._pair[config_idx])

    @property
    def calls(self) -> int:
        return self._parent.calls


@dataclass
class TournamentResult:
    """Outcome of a knockout tournament."""

    best_index: int
    guarantee: float
    optimizer_calls: int
    rounds: List[List[Tuple[int, int, int]]] = field(
        default_factory=list
    )  #: per round: (left, right, winner) triples

    @property
    def round_count(self) -> int:
        """Number of knockout rounds played."""
        return len(self.rounds)


def knockout_tournament(
    source: CostSource,
    template_ids: np.ndarray,
    alpha: float = 0.9,
    delta: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    options: Optional[SelectorOptions] = None,
) -> TournamentResult:
    """Select the best configuration by a knockout tournament.

    Parameters
    ----------
    source:
        Cost source over all ``k`` configurations.
    template_ids:
        Per-query template ids (stratification atoms).
    alpha:
        End-to-end target: the returned configuration is within
        ``delta`` per round of the best with probability >= ``alpha``.
        The error budget ``1 - alpha`` is split evenly across the
        ``ceil(log2 k)`` rounds.
    delta:
        Per-comparison sensitivity (regret accumulates additively
        across rounds in the guarantee).
    options:
        Base selector options for each pairwise comparison; ``alpha``
        and ``delta`` fields are overridden per round.

    Returns
    -------
    TournamentResult
        Winner, the end-to-end guarantee actually achieved (combining
        the per-comparison ``Pr(CS)`` values on the winner's path via
        a union bound), total optimizer calls and the full bracket.
    """
    rng = rng if rng is not None else np.random.default_rng()
    k = source.n_configs
    if k < 1:
        raise ValueError("need at least one configuration")
    if k == 1:
        return TournamentResult(0, 1.0, 0, [])

    rounds_needed = max(1, math.ceil(math.log2(k)))
    per_round_alpha = 1.0 - (1.0 - alpha) / rounds_needed
    base = options if options is not None else SelectorOptions()

    start_calls = source.calls
    field_indices = list(range(k))
    rng.shuffle(field_indices)
    bracket: List[List[Tuple[int, int, int]]] = []
    # Pr(CS) of the comparisons along each surviving config's path.
    path_prcs = {i: [] for i in field_indices}

    while len(field_indices) > 1:
        next_round: List[int] = []
        games: List[Tuple[int, int, int]] = []
        it = iter(field_indices)
        for left in it:
            right = next(it, None)
            if right is None:
                next_round.append(left)  # bye
                continue
            pair_source = _PairView(source, left, right)
            round_options = SelectorOptions(
                alpha=per_round_alpha,
                delta=delta,
                scheme=base.scheme,
                stratify=base.stratify,
                n_min=base.n_min,
                consecutive=base.consecutive,
                eliminate=False,
                elimination_threshold=base.elimination_threshold,
                max_calls=base.max_calls,
                reeval_every=base.reeval_every,
                split_check_every=base.split_check_every,
            )
            result = ConfigurationSelector(
                pair_source, template_ids, round_options, rng=rng
            ).run()
            winner = left if result.best_index == 0 else right
            loser = right if winner == left else left
            games.append((left, right, winner))
            path_prcs[winner].append(result.prcs)
            path_prcs.pop(loser, None)
            next_round.append(winner)
        bracket.append(games)
        field_indices = next_round

    winner = field_indices[0]
    # Union bound over the winner's path.
    guarantee = max(
        0.0, 1.0 - sum(1.0 - p for p in path_prcs.get(winner, []))
    )
    return TournamentResult(
        best_index=winner,
        guarantee=guarantee,
        optimizer_calls=source.calls - start_calls,
        rounds=bracket,
    )
