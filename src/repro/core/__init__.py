"""The paper's contribution: the probabilistic comparison primitive.

Sampling schemes (:mod:`~repro.core.estimators`), probability of
correct selection (:mod:`~repro.core.prcs`), workload stratification
(:mod:`~repro.core.stratification`, :mod:`~repro.core.progressive`),
sample allocation (:mod:`~repro.core.allocation`) and the selection
procedure itself (:mod:`~repro.core.selector`).
"""

from .batching import BatchingComparison, BatchingResult
from .allocation import pick_delta_stratum, pick_independent, \
    variance_reduction
from .checkpoint import (
    CHECKPOINT_VERSION,
    load_checkpoint,
    restore_rng,
    rng_state,
    save_checkpoint,
)
from .estimators import (
    DeltaState,
    IndependentState,
    MomentGrid,
    StratumStats,
    TemplateSampler,
)
from .prcs import bonferroni, pair_target_variance, pairwise_prcs, \
    per_pair_alpha
from .progressive import SplitDecision, estimate_stratum_variance, \
    propose_split
from .selector import ConfigurationSelector, SelectionResult, \
    SelectorOptions, SelectorState
from .sources import CostSource, MatrixCostSource, OptimizerCostSource
from .tournament import TournamentResult, knockout_tournament
from .stratification import (
    Stratification,
    allocation_variance,
    neyman_allocation,
    samples_needed,
)

__all__ = [
    "BatchingComparison",
    "BatchingResult",
    "CHECKPOINT_VERSION",
    "load_checkpoint",
    "restore_rng",
    "rng_state",
    "save_checkpoint",
    "pick_delta_stratum",
    "pick_independent",
    "variance_reduction",
    "DeltaState",
    "IndependentState",
    "MomentGrid",
    "StratumStats",
    "TemplateSampler",
    "bonferroni",
    "pair_target_variance",
    "pairwise_prcs",
    "per_pair_alpha",
    "SplitDecision",
    "estimate_stratum_variance",
    "propose_split",
    "ConfigurationSelector",
    "SelectionResult",
    "SelectorOptions",
    "SelectorState",
    "CostSource",
    "MatrixCostSource",
    "OptimizerCostSource",
    "TournamentResult",
    "knockout_tournament",
    "Stratification",
    "allocation_variance",
    "neyman_allocation",
    "samples_needed",
]
