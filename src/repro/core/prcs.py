"""Probability of correct selection: pairwise estimates and combination.

Section 4 of the paper: having picked the configuration with the
smallest estimated cost, the probability that this choice is correct
with respect to one alternative ``C_j`` is assessed through the
standardized statistic ``Delta_{l,j} ~ N(0,1)``.  Operationally, with
observed gap ``g = X_j - X_l >= 0`` (the selected configuration looked
better by ``g``) and estimated standard error ``se`` of the difference
estimator, the selection is wrong only if the true difference exceeds
the sensitivity ``delta`` in the other direction, hence

    Pr(CS_{l,j}) = Phi((g + delta) / se).

For ``k > 2`` configurations, the Bonferroni inequality (equation 3)
gives ``Pr(CS) >= 1 - sum_j (1 - Pr(CS_{l,j}))``.

The same normal machinery inverts into *target variances*: the
variance the difference estimator must reach so that a pair meets its
share of the overall target probability — the quantity the progressive
stratification algorithm's ``#Samples`` estimates are built on (§5.1).
"""

from __future__ import annotations

import math
from typing import Sequence

from scipy.stats import norm

__all__ = [
    "pairwise_prcs",
    "bonferroni",
    "per_pair_alpha",
    "pair_target_variance",
]


def pairwise_prcs(gap: float, variance: float, delta: float = 0.0) -> float:
    """``Pr(CS_{l,j})`` for one pair.

    Parameters
    ----------
    gap:
        Observed estimate of ``Cost(WL, C_j) - Cost(WL, C_l)`` where
        ``C_l`` is the selected configuration (usually positive).
    variance:
        Estimated variance of the difference estimator (``Var(X_l) +
        Var(X_j)`` for Independent Sampling, ``Var(X_{l,j})`` for Delta
        Sampling).
    delta:
        The sensitivity parameter: differences below ``delta`` do not
        count as incorrect selections.
    """
    margin = gap + delta
    if math.isinf(variance):
        return 0.0
    if variance <= 0.0:
        # Exhaustive or degenerate sample: the estimate is exact.
        if margin > 0:
            return 1.0
        if margin < 0:
            return 0.0
        return 0.5
    return float(norm.cdf(margin / math.sqrt(variance)))


def bonferroni(pairwise: Sequence[float]) -> float:
    """Lower bound on ``Pr(CS)`` from pairwise probabilities (eq. 3)."""
    total = 1.0 - sum(1.0 - p for p in pairwise)
    return max(0.0, min(1.0, total))


def per_pair_alpha(alpha: float, k_active: int) -> float:
    """Per-pair probability target that Bonferroni-combines to ``alpha``.

    With ``k_active`` configurations still in play there are
    ``k_active - 1`` comparisons against the selected one; requiring
    each at ``1 - (1 - alpha)/(k_active - 1)`` suffices.
    """
    if not (0.0 < alpha < 1.0):
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if k_active < 2:
        return alpha
    return 1.0 - (1.0 - alpha) / (k_active - 1)


def pair_target_variance(
    gap: float, delta: float, alpha_pair: float
) -> float:
    """Variance the difference estimator must reach for one pair.

    Inverts :func:`pairwise_prcs`: ``Phi((gap + delta)/sqrt(V)) >=
    alpha_pair`` iff ``V <= ((gap + delta)/z)^2`` with
    ``z = Phi^{-1}(alpha_pair)``.  Returns ``0`` when the pair cannot
    be separated at this gap (forcing a full evaluation of the pair —
    typically prevented by the sensitivity ``delta``), and ``inf`` when
    any variance suffices.
    """
    margin = gap + delta
    # norm.ppf is the dominant cost of a target-variance evaluation
    # and alpha_pair takes a handful of distinct values per selection
    # (it only moves when a configuration is eliminated), so the
    # quantile is memoized — same float, bit for bit.
    try:
        z = _PPF_CACHE[alpha_pair]
    except KeyError:
        z = _PPF_CACHE[alpha_pair] = float(norm.ppf(alpha_pair))
        if len(_PPF_CACHE) > 1024:  # pragma: no cover - safety valve
            _PPF_CACHE.clear()
            _PPF_CACHE[alpha_pair] = z
    if z <= 0:
        return float("inf")
    if margin <= 0:
        return 0.0
    return (margin / z) ** 2


_PPF_CACHE: dict = {}
