"""Atomic JSON checkpoints for long-running selections.

A budgeted selection over a live optimizer can run for hours; a crash
must not discard the accumulated sample.  The selector snapshots its
complete round state (estimators, sampler shuffles, stratification,
RNG state, loop counters) between rounds; this module owns the file
format and the crash-safe publish.

Writes follow the same pattern as :mod:`repro.experiments.cache`:
serialize to a temp file in the destination directory, then
``os.replace`` — a reader (including a resuming run) sees either the
previous complete checkpoint or the new complete one, never a torn
write.

The RNG state is the PCG64 ``bit_generator.state`` dict, which is
JSON-serializable and restores the generator exactly; Python floats
round-trip bit-exactly through ``json`` (shortest-repr encoding), so
a resumed run continues on identical floats.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Optional

import numpy as np

__all__ = [
    "CHECKPOINT_VERSION",
    "save_checkpoint",
    "load_checkpoint",
    "rng_state",
    "restore_rng",
]

CHECKPOINT_VERSION = 1


def save_checkpoint(path: str, payload: dict) -> None:
    """Atomically publish a checkpoint payload as JSON."""
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    payload = dict(payload)
    payload.setdefault("version", CHECKPOINT_VERSION)
    fd, tmp_name = tempfile.mkstemp(
        dir=directory,
        prefix=os.path.basename(path) + "_",
        suffix=".tmp",
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, default=float)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load_checkpoint(path: str) -> Optional[dict]:
    """Load a checkpoint, or ``None`` when the file does not exist.

    Raises ``ValueError`` on unreadable/incompatible payloads — a
    corrupt checkpoint should be surfaced, not silently restarted
    over.
    """
    path = os.fspath(path)
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable checkpoint {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError(f"checkpoint {path} is not a JSON object")
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint {path} has version {version!r}, this build "
            f"reads version {CHECKPOINT_VERSION}"
        )
    return payload


def rng_state(rng: np.random.Generator) -> dict:
    """JSON-serializable exact state of a NumPy generator."""
    state = rng.bit_generator.state
    return json.loads(json.dumps(state, default=int))


def restore_rng(rng: np.random.Generator, state: dict) -> None:
    """Restore a generator to a previously captured exact state."""
    expected = rng.bit_generator.state.get("bit_generator")
    recorded = state.get("bit_generator")
    if recorded != expected:
        raise ValueError(
            f"checkpoint RNG is {recorded!r}, this run uses "
            f"{expected!r}"
        )
    rng.bit_generator.state = state
