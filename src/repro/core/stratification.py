"""Strata over a workload, Neyman allocation, and sample-size estimation.

Section 5 of the paper stratifies the workload into disjoint strata
that are always unions of *templates* (queries of a template cluster
tightly in cost, so per-template means estimated from few samples
characterize a stratum well).  This module provides:

* :class:`Stratification` — an ordered partition of template ids;
* :func:`neyman_allocation` — the optimal allocation of a sample budget
  across strata proportional to ``|WL_h| * S_h``;
* :func:`allocation_variance` — the stratified estimator variance of
  equation (5);
* :func:`samples_needed` — the paper's ``#Samples(C_i, ST, NT)``:
  the minimum total sample size whose Neyman allocation reaches a
  target variance, via binary search (``O(L log N)`` as in footnote 3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .allocation import (
    allocation_variance_batch,
    neyman_allocation_batch,
    samples_needed_batch,
)

__all__ = [
    "Stratification",
    "neyman_allocation",
    "allocation_variance",
    "samples_needed",
]


class Stratification:
    """An ordered partition of template ids into strata.

    Parameters
    ----------
    strata:
        One tuple of template ids per stratum.  Every template of the
        workload must appear in exactly one stratum.
    template_sizes:
        Mapping ``template_id -> number of workload queries``.
    """

    def __init__(
        self,
        strata: Sequence[Tuple[int, ...]],
        template_sizes: Dict[int, int],
    ) -> None:
        if not strata:
            raise ValueError("a stratification needs at least one stratum")
        seen: set = set()
        for stratum in strata:
            if not stratum:
                raise ValueError("empty stratum in stratification")
            for tid in stratum:
                if tid in seen:
                    raise ValueError(
                        f"template {tid} appears in multiple strata"
                    )
                if tid not in template_sizes:
                    raise ValueError(
                        f"template {tid} missing from template_sizes"
                    )
                seen.add(tid)
        missing = set(template_sizes) - seen
        if missing:
            raise ValueError(
                f"templates {sorted(missing)[:5]} not covered by any stratum"
            )
        self.strata: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(s) for s in strata
        )
        self.template_sizes = dict(template_sizes)
        self._stratum_of = {
            tid: h for h, stratum in enumerate(self.strata) for tid in stratum
        }
        self.sizes = np.array(
            [
                sum(template_sizes[tid] for tid in stratum)
                for stratum in self.strata
            ],
            dtype=np.int64,
        )
        #: Member template ids per stratum as ready-made index arrays —
        #: the estimators gather per-template moments with these every
        #: evaluation round, so they are built once per stratification.
        self.tid_arrays: Tuple[np.ndarray, ...] = tuple(
            np.fromiter(stratum, dtype=np.int64, count=len(stratum))
            for stratum in self.strata
        )
        self._concat_layout: Optional[Tuple[np.ndarray, np.ndarray]] = None

    @classmethod
    def single(cls, template_sizes: Dict[int, int]) -> "Stratification":
        """The trivial stratification: one stratum holding everything."""
        return cls([tuple(sorted(template_sizes))], template_sizes)

    @property
    def stratum_count(self) -> int:
        """Number of strata L."""
        return len(self.strata)

    @property
    def total_size(self) -> int:
        """Workload size N."""
        return int(self.sizes.sum())

    def member_sums(self, per_template: np.ndarray) -> np.ndarray:
        """Per-stratum sums of a dense per-template array.

        One gather plus one segmented reduction over a lazily built
        concatenated index layout — the split search stamps every
        stratum by its member sample count on each call, and ``L``
        separate gather-and-sum dispatches dominate that loop for
        fine stratifications.  Integer inputs sum exactly, so the
        result matches the per-stratum ``per_template[tids].sum()``
        loop for the sample-count use case.
        """
        if self._concat_layout is None:
            lengths = np.array(
                [len(t) for t in self.tid_arrays], dtype=np.int64
            )
            offsets = np.zeros(len(lengths), dtype=np.int64)
            np.cumsum(lengths[:-1], out=offsets[1:])
            self._concat_layout = (
                np.concatenate(self.tid_arrays), offsets
            )
        tids, offsets = self._concat_layout
        return np.add.reduceat(per_template[tids], offsets)

    def stratum_of(self, template_id: int) -> int:
        """Index of the stratum containing ``template_id``."""
        try:
            return self._stratum_of[template_id]
        except KeyError:
            raise KeyError(
                f"template {template_id} not in this stratification"
            ) from None

    def split(
        self,
        stratum_idx: int,
        left: Sequence[int],
        right: Sequence[int],
    ) -> "Stratification":
        """A new stratification with one stratum split in two."""
        old = set(self.strata[stratum_idx])
        if set(left) | set(right) != old or set(left) & set(right):
            raise ValueError(
                "split halves must partition the stratum exactly"
            )
        if not left or not right:
            raise ValueError("both split halves must be non-empty")
        new_strata: List[Tuple[int, ...]] = list(self.strata)
        new_strata[stratum_idx] = tuple(left)
        new_strata.insert(stratum_idx + 1, tuple(right))
        return Stratification(new_strata, self.template_sizes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Stratification(L={self.stratum_count}, "
            f"sizes={self.sizes.tolist()})"
        )


def neyman_allocation(
    sizes: np.ndarray,
    std_devs: np.ndarray,
    total: int,
    floors: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Allocate ``total`` samples across strata by Neyman allocation.

    The optimal allocation is ``n_h proportional to |WL_h| * S_h``,
    subject to per-stratum floors (samples already taken plus the
    minimum pilot size) and ceilings (stratum sizes).  Excess demand is
    redistributed proportionally among unclamped strata.

    Parameters
    ----------
    sizes:
        Stratum sizes ``|WL_h|``.
    std_devs:
        Stratum standard deviations ``S_h`` (zeros allowed).
    total:
        Total sample budget; silently raised to ``sum(floors)`` and
        capped at ``sum(sizes)``.
    floors:
        Minimum per-stratum allocation (defaults to zero).

    Returns
    -------
    numpy.ndarray
        Integer allocation summing to ``min(max(total, sum(floors)),
        sum(sizes))``.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    std_devs = np.asarray(std_devs, dtype=np.float64)
    if floors is None:
        floors = np.zeros_like(sizes)
    floors = np.asarray(floors, dtype=np.int64)
    return neyman_allocation_batch(
        sizes[None, :], std_devs[None, :],
        np.array([int(total)], dtype=np.int64),
        floors=floors[None, :],
    )[0]


def allocation_variance(
    sizes: np.ndarray,
    variances: np.ndarray,
    alloc: np.ndarray,
) -> float:
    """Stratified estimator variance of equation (5).

    ``Var(X) = sum_h |WL_h|^2 * S_h^2 / n_h * (1 - n_h / |WL_h|)``;
    strata with no samples contribute worst-case variance via
    ``n_h -> 0`` being disallowed — callers must allocate at least one
    sample to every stratum with nonzero variance, otherwise ``inf`` is
    returned.

    Delegates to :func:`repro.core.allocation.allocation_variance_batch`
    (one masked NumPy reduction, accumulated in stratum order), which
    is bit-identical to the historical sequential loop.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    variances = np.asarray(variances, dtype=np.float64)
    alloc = np.asarray(alloc, dtype=np.float64)
    return float(
        allocation_variance_batch(
            sizes[None, :], variances[None, :], alloc[None, :]
        )[0]
    )


def samples_needed(
    sizes: np.ndarray,
    variances: np.ndarray,
    target_var: float,
    floors: Optional[np.ndarray] = None,
) -> int:
    """Minimum total samples whose Neyman allocation meets ``target_var``.

    This is the paper's ``#Samples(C_i, ST, NT)``: assuming the stratum
    variances stay constant, binary-search the total sample size
    (``O(L log N)`` per footnote 3 — one Neyman allocation plus one
    variance evaluation per probe).  Returns ``sum(sizes)`` (full
    evaluation) when even that is needed, which drives the variance to
    zero via the finite population correction.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    variances = np.asarray(variances, dtype=np.float64)
    if floors is None:
        floors = np.zeros_like(sizes)
    floors = np.asarray(floors, dtype=np.int64)
    return int(
        samples_needed_batch(
            sizes[None, :], variances[None, :],
            np.array([target_var], dtype=np.float64),
            floors=floors[None, :],
        )[0]
    )
