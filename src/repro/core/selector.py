"""The configuration-selection procedure (Algorithm 1 of the paper).

Given a cost source over a workload and ``k`` candidate configurations,
:class:`ConfigurationSelector` incrementally samples queries, estimates
the probability of correct selection after each round and terminates
once the target probability ``alpha`` holds (for a configurable number
of consecutive samples, guarding against oscillation — Section 7.2).

Two sampling schemes (§4) and three stratification modes (§5) are
supported:

==================  ====================================================
``scheme``          ``"independent"`` or ``"delta"``
``stratify``        ``"progressive"`` (Algorithm 2), ``"none"``, or
                    ``"fine"`` (one stratum per template up front —
                    the strawman of Figure 2)
==================  ====================================================

Configurations whose pairwise ``Pr(CS_{l,j})`` exceeds an elimination
threshold are dropped from further sampling (the large-``k``
optimization of §5); they keep contributing their frozen estimates to
the Bonferroni combination.

Budgets are measured in *optimizer calls* — the unit the paper
minimizes.  One Delta-Sampling draw costs one call per active
configuration; one Independent-Sampling draw costs one call.
"""

from __future__ import annotations

import math
from contextlib import nullcontext
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .allocation import (
    DeltaStratumScorer,
    batch_multiplier,
    pick_delta_stratum,
    variance_reduction_many,
)
from .checkpoint import (
    load_checkpoint,
    restore_rng,
    rng_state,
    save_checkpoint,
)
from .estimators import DeltaState, IndependentState
from .prcs import (
    bonferroni,
    pair_target_variance,
    pairwise_prcs,
    per_pair_alpha,
)
from .progressive import propose_split, propose_split_reference
from .sources import CostSource
from .stratification import Stratification

__all__ = [
    "SelectorOptions",
    "SelectionResult",
    "SelectorState",
    "ConfigurationSelector",
]


def _jsonify_options(options: "SelectorOptions") -> dict:
    """Options as the plain dict a JSON checkpoint round-trips.

    Every field is a scalar (int/float/str/None), all of which
    round-trip exactly through JSON, so dict equality doubles as an
    options-compatibility check on resume.
    """
    return asdict(options)


class _NullTimer:
    """No-op stand-in for :class:`repro.experiments.profiling.PhaseTimer`.

    The selector times its round phases (plan/draw/cost/ingest/
    evaluate) through whatever object with a ``phase(name)`` context
    manager it is given; without one, timing costs nothing.
    """

    def phase(self, name: str):
        return nullcontext()


@dataclass
class SelectorState:
    """Portable snapshot of a selector's estimator state.

    Produced by :meth:`ConfigurationSelector.export_state` after a run
    and consumed via the ``warm_state`` constructor argument of a
    later selector over the *same candidate configurations* (possibly
    a different workload window sharing the template registry).  Two
    uses:

    * **Warm-started re-selection** — the online tuning service
      carries still-valid per-template cost samples from the previous
      run forward, so only templates whose mix changed need fresh
      optimizer calls (:mod:`repro.service.session`).
    * **Checkpointing** — :meth:`to_dict` / :meth:`from_dict` are
      JSON-round-trippable, so long selections can be snapshotted and
      resumed across processes.

    The payload depends on the scheme: Delta Sampling stores the
    aligned per-template cost buffers (``values``); Independent
    Sampling stores per-(configuration, template) Welford moments
    (``moments``).
    """

    scheme: str
    n_configs: int
    #: Delta: ``{template_id: [per-config aligned cost lists]}``.
    values: Dict[int, List[List[float]]] = field(default_factory=dict)
    #: Independent: ``{template_id: [(count, mean, M2) per config]}``.
    moments: Dict[int, List[Tuple[int, float, float]]] = field(
        default_factory=dict
    )
    #: The run's final stratification (template-id groups).  A warm
    #: run resumes from these groups: carried per-template counts are
    #: proportional *within* them (that is the stratification they
    #: were drawn under), which keeps the count-weighted stratum means
    #: unbiased.  Pooling carried templates any other way would not be.
    strata: Optional[List[List[int]]] = None

    def sample_count(self) -> int:
        """Total carried samples, summed over configurations."""
        if self.scheme == "delta":
            return sum(
                len(v) for cfgs in self.values.values() for v in cfgs
            )
        return sum(
            int(c) for cfgs in self.moments.values() for c, _m, _s in cfgs
        )

    def template_ids(self) -> Tuple[int, ...]:
        """Templates with carried state, ascending."""
        store = self.values if self.scheme == "delta" else self.moments
        return tuple(sorted(store))

    def template_counts(self, reduce: str = "max") -> Dict[int, int]:
        """Carried samples per template, aggregated over configurations.

        ``reduce="max"`` suits Delta Sampling (shared draws, so active
        configurations hold equally many); ``"min"`` is the
        conservative choice for Independent Sampling, where every
        configuration samples on its own.
        """
        agg = max if reduce == "max" else min
        if self.scheme == "delta":
            return {
                t: agg((len(v) for v in cfgs), default=0)
                for t, cfgs in self.values.items()
            }
        return {
            t: agg((int(c) for c, _m, _s in cfgs), default=0)
            for t, cfgs in self.moments.items()
        }

    def drop_templates(self, template_ids) -> "SelectorState":
        """A copy without the given templates (to force resampling)."""
        drop = set(int(t) for t in template_ids)
        strata = None
        if self.strata is not None:
            strata = [
                kept for kept in (
                    [t for t in group if t not in drop]
                    for group in self.strata
                ) if kept
            ]
        return SelectorState(
            scheme=self.scheme,
            n_configs=self.n_configs,
            values={
                t: [list(v) for v in cfgs]
                for t, cfgs in self.values.items() if t not in drop
            },
            moments={
                t: [tuple(m) for m in cfgs]
                for t, cfgs in self.moments.items() if t not in drop
            },
            strata=strata,
        )

    def to_dict(self) -> dict:
        """JSON-serializable snapshot."""
        return {
            "scheme": self.scheme,
            "n_configs": self.n_configs,
            "values": {
                str(t): [[float(x) for x in v] for v in cfgs]
                for t, cfgs in self.values.items()
            },
            "moments": {
                str(t): [
                    [int(c), float(m), float(s)] for c, m, s in cfgs
                ]
                for t, cfgs in self.moments.items()
            },
            "strata": (
                None if self.strata is None
                else [[int(t) for t in group] for group in self.strata]
            ),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SelectorState":
        """Inverse of :meth:`to_dict`."""
        return cls(
            scheme=str(payload["scheme"]),
            n_configs=int(payload["n_configs"]),
            values={
                int(t): [[float(x) for x in v] for v in cfgs]
                for t, cfgs in payload.get("values", {}).items()
            },
            moments={
                int(t): [
                    (int(c), float(m), float(s)) for c, m, s in cfgs
                ]
                for t, cfgs in payload.get("moments", {}).items()
            },
            strata=(
                None if payload.get("strata") is None
                else [
                    [int(t) for t in group]
                    for group in payload["strata"]
                ]
            ),
        )


@dataclass(frozen=True)
class SelectorOptions:
    """Tunables of the selection procedure.

    Attributes
    ----------
    alpha:
        Target probability of correct selection.
    delta:
        Sensitivity: cost differences below ``delta`` never count as
        incorrect selections (expressed in absolute cost units).
    scheme:
        ``"delta"`` (default, §4.2) or ``"independent"`` (§4.1).
    stratify:
        ``"progressive"`` (default), ``"none"`` or ``"fine"``.
    n_min:
        Pilot/minimum stratum sample size (the paper's rule of thumb
        is 30).
    consecutive:
        The termination condition must hold for this many consecutive
        samples (§7.2 uses 10).
    eliminate:
        Drop configurations once their pairwise probability exceeds
        ``elimination_threshold``.
    elimination_threshold:
        Pairwise ``Pr(CS_{l,j})`` beyond which ``C_j`` stops being
        sampled (§7.2 uses 0.995).
    max_calls:
        Optional hard budget of optimizer calls; ``None`` means run to
        termination (bounded by full evaluation).
    reeval_every:
        Recompute estimates/allocation every this many draws (1
        reproduces the paper exactly; larger values trade a slightly
        stale allocation for speed in Monte Carlo runs).
    split_check_every:
        How often (in draws) Algorithm 2 is consulted.
    batch_rounds:
        Maximum number of variance-greedy allocation rounds coalesced
        into one draw-ahead batch (drawn, costed via
        ``CostSource.cost_many`` and ingested together, with a single
        termination/elimination/split re-check per batch).  ``1`` (the
        default) disables coalescing and is bit-identical to the
        serial schedule under a fixed seed.
    batch_growth:
        Geometric growth factor of the batch size: each batch plans up
        to ``ceil(previous * batch_growth)`` rounds (clamped by
        ``batch_rounds`` and the call tolerance).  Must be >= 1.
    batch_call_tolerance:
        Bound on the optimizer calls batching may spend beyond the
        serial schedule: a batch's rounds past its first may cost at
        most this fraction of the calls already spent, so PRCS is
        re-checked often enough that termination overshoot stays
        within tolerance.
    estimator:
        Pairwise difference estimator mode for Delta Sampling:
        ``"buffer"`` (exact aligned-buffer reductions), ``"welford"``
        (incremental accumulators, O(1) per ingested sample), or
        ``"auto"`` (default — ``"buffer"`` when ``batch_rounds == 1``
        so serial runs stay bit-identical, ``"welford"`` otherwise).
    split_scoring:
        Algorithm 2 split-search implementation: ``"incremental"``
        (default — count-stamped per-stratum prefix-sum aggregates,
        all cuts scored through one batched ``#Samples`` search) or
        ``"reference"`` (the historical per-cut recompute, kept for
        parity testing and benchmarking).  Both produce the same
        decisions on the pinned scenarios (golden fixture).
    """

    alpha: float = 0.9
    delta: float = 0.0
    scheme: str = "delta"
    stratify: str = "progressive"
    n_min: int = 30
    consecutive: int = 10
    eliminate: bool = True
    elimination_threshold: float = 0.995
    max_calls: Optional[int] = None
    reeval_every: int = 1
    split_check_every: int = 1
    batch_rounds: int = 1
    batch_growth: float = 2.0
    batch_call_tolerance: float = 0.05
    estimator: str = "auto"
    split_scoring: str = "incremental"

    def __post_init__(self) -> None:
        if not (0.0 < self.alpha < 1.0):
            raise ValueError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.delta < 0:
            raise ValueError(f"delta must be >= 0, got {self.delta}")
        if self.scheme not in ("delta", "independent"):
            raise ValueError(f"unknown scheme {self.scheme!r}")
        if self.stratify not in ("progressive", "none", "fine"):
            raise ValueError(f"unknown stratify mode {self.stratify!r}")
        if self.n_min < 2:
            raise ValueError(f"n_min must be >= 2, got {self.n_min}")
        if self.reeval_every < 1:
            raise ValueError(
                f"reeval_every must be >= 1, got {self.reeval_every}"
            )
        if self.split_check_every < 1:
            raise ValueError(
                f"split_check_every must be >= 1, got "
                f"{self.split_check_every}"
            )
        if self.batch_rounds < 1:
            raise ValueError(
                f"batch_rounds must be >= 1, got {self.batch_rounds}"
            )
        if not self.batch_growth >= 1.0:
            raise ValueError(
                f"batch_growth must be >= 1, got {self.batch_growth}"
            )
        if not self.batch_call_tolerance >= 0.0:
            raise ValueError(
                f"batch_call_tolerance must be >= 0, got "
                f"{self.batch_call_tolerance}"
            )
        if self.estimator not in ("auto", "buffer", "welford"):
            raise ValueError(
                f"unknown estimator mode {self.estimator!r}"
            )
        if self.split_scoring not in ("incremental", "reference"):
            raise ValueError(
                f"unknown split_scoring mode {self.split_scoring!r}"
            )


@dataclass
class SelectionResult:
    """Outcome of a selection run.

    Attributes
    ----------
    best_index:
        The selected configuration.
    prcs:
        The final estimated probability of correct selection.
    optimizer_calls:
        What-if calls spent (the paper's efficiency metric).
    estimates:
        Final estimated total costs per configuration.
    eliminated:
        Configurations dropped by the large-``k`` optimization.
    stratum_counts:
        Per-stratum workload sizes of the final stratification (Delta)
        or per-configuration stratum counts (Independent).
    terminated_by:
        ``"alpha"``, ``"max_calls"`` or ``"exhausted"``.
    history:
        ``(calls, Pr(CS))`` after each evaluation round.
    queries_sampled:
        Distinct workload queries drawn (per configuration for
        Independent Sampling, shared count for Delta Sampling).
    final_strata:
        The final stratification as tuples of template ids (Delta) —
        used by the Table 2/3 allocation baselines.
    """

    best_index: int
    prcs: float
    optimizer_calls: int
    estimates: np.ndarray
    eliminated: List[int]
    stratum_counts: Dict[int, int]
    terminated_by: str
    history: List[Tuple[int, float]] = field(default_factory=list)
    queries_sampled: int = 0
    final_strata: Tuple[Tuple[int, ...], ...] = ()


class ConfigurationSelector:
    """Algorithm 1: sample until ``Pr(CS) > alpha``.

    Parameters
    ----------
    source:
        Where costs come from (live optimizer or precomputed matrix).
    template_ids:
        Per-query template id (length ``source.n_queries``); templates
        are the stratification atoms.
    options:
        Procedure tunables.
    rng:
        Random generator driving all sampling.
    warm_state:
        Optional :class:`SelectorState` from a previous run over the
        same candidate configurations.  Carried samples seed the
        estimators before any sampling, so templates whose state is
        carried forward need few (often zero) fresh optimizer calls.
        The scheme and configuration count must match.
    timer:
        Optional :class:`repro.experiments.profiling.PhaseTimer` (any
        object with a ``phase(name)`` context manager): rounds are
        instrumented as ``plan`` (allocation), ``draw`` (RNG draws),
        ``cost`` (cost-source evaluation), ``ingest`` (accumulator
        updates) and ``evaluate`` (estimates + PRCS).
    checkpoint_path:
        When given, the complete round state (estimators, sampler
        shuffles, stratification, RNG, loop counters) is snapshotted
        to this path between rounds (atomic ``os.replace`` publish).
        A later selector over the same workload/options can
        :meth:`resume` from it and finish the run **bit-identically**
        to an uninterrupted one.  Snapshotting is a pure read of the
        state — it consumes no randomness and changes no float — so
        runs with and without a checkpoint path are identical.
    checkpoint_every:
        Snapshot every this many evaluation rounds (default 1).
    """

    def __init__(
        self,
        source: CostSource,
        template_ids: np.ndarray,
        options: SelectorOptions = SelectorOptions(),
        rng: Optional[np.random.Generator] = None,
        template_overheads: Optional[np.ndarray] = None,
        warm_state: Optional[SelectorState] = None,
        timer=None,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: int = 1,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.source = source
        self.options = options
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        self._timer = timer if timer is not None else _NullTimer()
        self._round_mult = 1
        if warm_state is not None:
            if warm_state.scheme != options.scheme:
                raise ValueError(
                    f"warm state is for scheme {warm_state.scheme!r}, "
                    f"options use {options.scheme!r}"
                )
            if warm_state.n_configs != source.n_configs:
                raise ValueError(
                    f"warm state carries {warm_state.n_configs} "
                    f"configurations, source has {source.n_configs}"
                )
        self.warm_state = warm_state
        self.carried_samples = 0
        # Per-owner Algorithm 2 split caches (stratum tuple -> stamped
        # aggregates; see repro.core.progressive).  Delta Sampling keys
        # by the *directed* binding pair — diff_template_moments negates
        # means with direction, which flips the cut ordering —
        # Independent Sampling by configuration.
        self._split_caches: Dict[Tuple, Dict] = {}
        self._delta_state: Optional[DeltaState] = None
        self._independent_state: Optional[IndependentState] = None
        self._final_strata: Optional[Tuple[Tuple[int, ...], ...]] = None
        self.template_overheads = (
            np.asarray(template_overheads, dtype=np.float64)
            if template_overheads is not None else None
        )
        self.rng = rng if rng is not None else np.random.default_rng()
        template_ids = np.asarray(template_ids, dtype=np.int64)
        if len(template_ids) != source.n_queries:
            raise ValueError(
                f"template_ids has {len(template_ids)} entries for "
                f"{source.n_queries} queries"
            )
        self.template_ids = template_ids
        order = np.argsort(template_ids, kind="stable")
        sorted_ids = template_ids[order]
        boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
        groups = np.split(order, boundaries)
        self.indices_by_template: Dict[int, np.ndarray] = {
            int(template_ids[g[0]]): g for g in groups
        }
        self.template_sizes: Dict[int, int] = {
            t: len(g) for t, g in self.indices_by_template.items()
        }
        self.n_templates = (
            int(template_ids.max()) + 1 if len(template_ids) else 0
        )
        self._template_size_arr = np.zeros(self.n_templates, dtype=np.int64)
        for t, size in self.template_sizes.items():
            self._template_size_arr[t] = size
        self._warm_strata: Optional[List[Tuple[int, ...]]] = None
        if self.warm_state is not None:
            self._normalize_warm_state()

    def _normalize_warm_state(self) -> None:
        """Trim the warm state to the groups worth resuming from.

        Carried counts are only unbiased to pool within the strata
        they were drawn under, so each carried group of the previous
        run's final stratification becomes a stratum of this run.  A
        group is kept only when it carries at least ``n_min`` samples
        — it then skips the pilot entirely and starts with a solid
        variance estimate.  Thinner groups cost more than they save
        (pilot top-up plus a permanent extra stratum), so their
        samples are dropped and their templates resample in the
        pooled fresh stratum.
        """
        reduce = "min" if self.options.scheme == "independent" else "max"
        counts = self.warm_state.template_counts(reduce)
        carried = set(self.warm_state.template_ids())
        carried &= set(self.template_sizes)
        groups = self.warm_state.strata
        if groups is None:
            # Old checkpoints without strata: per-template groups are
            # the only allocation-free resumption.
            groups = [[t] for t in sorted(carried)]
        kept_strata: List[Tuple[int, ...]] = []
        drop = set(self.warm_state.template_ids()) - carried
        for group in groups:
            kept = tuple(t for t in group if t in carried)
            if not kept:
                continue
            if sum(counts.get(t, 0) for t in kept) >= self.options.n_min:
                kept_strata.append(kept)
            else:
                drop.update(kept)
        if not kept_strata:
            self.warm_state = None
            return
        if drop:
            self.warm_state = self.warm_state.drop_templates(drop)
        self._warm_strata = kept_strata

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self) -> SelectionResult:
        """Run Algorithm 1 to termination."""
        if self.options.scheme == "delta":
            return self._run_delta()
        return self._run_independent()

    def resume(self, path: Optional[str] = None) -> SelectionResult:
        """Continue a checkpointed run to termination.

        Loads the checkpoint at ``path`` (default: this selector's
        ``checkpoint_path``), restores the complete round state —
        estimator accumulators, sampler shuffles and cursors,
        stratification, elimination set, PRCS history, RNG — and
        re-enters the round loop.  The continuation is bit-identical
        to the uninterrupted run: same draws, same floats, same
        decisions (pinned by the golden-fixture resume tests).

        The selector must be constructed over the same workload with
        the same options as the checkpointing run; mismatches raise
        ``ValueError``.  Spent optimizer calls are carried: budgets
        and the ``(calls, Pr(CS))`` history continue from the
        checkpointed counts whether this process's source already
        performed those calls or starts fresh.
        """
        path = path if path is not None else self.checkpoint_path
        if path is None:
            raise ValueError("no checkpoint path to resume from")
        payload = load_checkpoint(path)
        if payload is None:
            raise FileNotFoundError(f"no checkpoint at {path}")
        if payload.get("kind") != "selector":
            raise ValueError(
                f"checkpoint {path} is not a selector checkpoint"
            )
        if payload["scheme"] != self.options.scheme:
            raise ValueError(
                f"checkpoint is for scheme {payload['scheme']!r}, "
                f"options use {self.options.scheme!r}"
            )
        if int(payload["n_configs"]) != self.source.n_configs:
            raise ValueError(
                f"checkpoint carries {payload['n_configs']} "
                f"configurations, source has {self.source.n_configs}"
            )
        if int(payload["n_queries"]) != self.source.n_queries:
            raise ValueError(
                f"checkpoint is over {payload['n_queries']} queries, "
                f"source has {self.source.n_queries}"
            )
        recorded = payload.get("options")
        if recorded != _jsonify_options(self.options):
            raise ValueError(
                "checkpoint was written under different selector "
                "options; resuming would not be bit-identical"
            )
        if self.options.scheme == "delta":
            return self._run_delta(resume=payload)
        return self._run_independent(resume=payload)

    # ------------------------------------------------------------------
    # checkpoint plumbing
    # ------------------------------------------------------------------
    def _checkpoint_due(self, round_idx: int) -> bool:
        return (
            self.checkpoint_path is not None
            and round_idx % self.checkpoint_every == 0
        )

    def _checkpoint_common(self, round_idx: int, calls_used: int,
                           active: Sequence[int],
                           eliminated: Sequence[int], consec: int,
                           history: Sequence[Tuple[int, float]]) -> dict:
        """Scheme-independent part of a checkpoint payload.

        Pure state read: captures the RNG without consuming it and
        floats without transforming them, so writing a checkpoint can
        never perturb the run it snapshots.
        """
        return {
            "kind": "selector",
            "scheme": self.options.scheme,
            "n_configs": int(self.source.n_configs),
            "n_queries": int(self.source.n_queries),
            "options": _jsonify_options(self.options),
            "rng": rng_state(self.rng),
            "round": int(round_idx),
            "calls_used": int(calls_used),
            "carried_samples": int(self.carried_samples),
            "round_mult": int(self._round_mult),
            "active": [int(j) for j in active],
            "eliminated": [int(j) for j in eliminated],
            "consec": int(consec),
            "history": [[int(c), float(p)] for c, p in history],
        }

    def export_state(self) -> SelectorState:
        """Snapshot the estimator state of the completed (or
        in-progress) run for warm starts and checkpointing.

        Raises ``RuntimeError`` before the first :meth:`run`.
        """
        strata = (
            None if self._final_strata is None
            else [[int(t) for t in group] for group in self._final_strata]
        )
        if self._delta_state is not None:
            return SelectorState(
                scheme="delta",
                n_configs=self.source.n_configs,
                values=self._delta_state.export_samples(),
                strata=strata,
            )
        if self._independent_state is not None:
            return SelectorState(
                scheme="independent",
                n_configs=self.source.n_configs,
                moments=self._independent_state.export_moments(),
                strata=strata,
            )
        raise RuntimeError("no run to export state from")

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _initial_stratification(self) -> Stratification:
        if self.options.stratify == "fine":
            return Stratification(
                [(t,) for t in sorted(self.template_sizes)],
                self.template_sizes,
            )
        # A warm run resumes from the previous run's final strata
        # (normalized in _normalize_warm_state): carried counts are
        # proportional to template sizes within those groups — the
        # stratification they were drawn under — which is exactly the
        # condition for count-weighted stratum means to stay unbiased.
        # Everything else — new templates, invalidated ones, thinly
        # carried groups — pools into one fresh stratum whose draws
        # are all fresh and uniform, keeping the pilot as cheap as a
        # cold run's.
        if self.warm_state is not None and self._warm_strata:
            strata = list(self._warm_strata)
            assigned = {t for group in strata for t in group}
            fresh = tuple(
                t for t in sorted(self.template_sizes)
                if t not in assigned
            )
            if fresh:
                strata.append(fresh)
            return Stratification(strata, self.template_sizes)
        return Stratification.single(self.template_sizes)

    def _stratum_overheads(self, strat: Stratification) -> Optional[
            np.ndarray]:
        """Expected per-draw optimization overhead of each stratum.

        The size-weighted mean of the member templates' overheads
        (Section 5.2's closing remark: select the stratum maximizing
        variance reduction *relative to the expected overhead*).
        """
        if self.template_overheads is None:
            return None
        out = np.empty(strat.stratum_count)
        for h, stratum in enumerate(strat.strata):
            tids = np.fromiter(stratum, dtype=np.int64)
            sizes = self._template_size_arr[tids].astype(np.float64)
            total = sizes.sum()
            if total <= 0:
                out[h] = 1.0
                continue
            out[h] = float(
                (sizes * self.template_overheads[tids]).sum() / total
            )
        return out

    def _budget_left(self, calls: int) -> bool:
        return (
            self.options.max_calls is None
            or calls < self.options.max_calls
        )

    def _estimator_mode(self) -> str:
        """Resolve the pairwise-estimator mode (``"auto"`` dispatch)."""
        if self.options.estimator != "auto":
            return self.options.estimator
        return "buffer" if self.options.batch_rounds == 1 else "welford"

    def _chunk_allowance(self, pending: int, per_draw: int) -> int:
        """Draws affordable right now under the serial budget check.

        Serially the budget is re-checked before every draw; a draw is
        allowed while spent calls stay strictly below ``max_calls``.
        With at most ``per_draw`` calls per draw, the next
        ``ceil(left / per_draw)`` draws are each serially allowed, so
        they can be drawn ahead and costed in one batch; callers loop,
        re-reading the true call counter between chunks, until
        ``pending`` is used up or the budget binds — reproducing the
        serial truncation point exactly even when cache hits make
        draws cheaper than ``per_draw``.
        """
        if self.options.max_calls is None:
            return pending
        left = self.options.max_calls - (
            self.source.calls - self._start_calls
        )
        if left <= 0:
            return 0
        return min(pending, -(-left // per_draw))

    def _next_batch_rounds(self, calls_used: int, round_calls: int,
                           consec: int) -> int:
        """Allocation rounds to coalesce into the next draw-ahead batch.

        Once the termination condition starts holding (``consec > 0``)
        the schedule drops back to serial so the consecutive-round
        confirmation tail costs exactly what it costs serially.
        """
        if consec > 0:
            self._round_mult = 1
            return 1
        mult = batch_multiplier(
            self._round_mult,
            self.options.batch_rounds,
            self.options.batch_growth,
            self.options.batch_call_tolerance,
            calls_used,
            round_calls,
        )
        self._round_mult = mult
        return mult

    # ------------------------------------------------------------------
    # Delta Sampling driver
    # ------------------------------------------------------------------
    def _run_delta(self, resume: Optional[dict] = None) -> SelectionResult:
        opts = self.options
        k = self.source.n_configs
        state = DeltaState(
            k, self.n_templates, self.indices_by_template, self.rng,
            estimator=self._estimator_mode(),
        )
        self._delta_state = state
        if resume is not None:
            # Restore overwrites the fresh shuffles and RNG state the
            # construction above consumed; from here on every draw and
            # every float matches the uninterrupted run.
            state.restore_state(resume["state"])
            restore_rng(self.rng, resume["rng"])
            self.carried_samples = int(resume["carried_samples"])
            self._round_mult = int(resume["round_mult"])
            strat = Stratification(
                [tuple(int(t) for t in g) for g in resume["strata"]],
                self.template_sizes,
            )
            active = [int(j) for j in resume["active"]]
            eliminated = [int(j) for j in resume["eliminated"]]
            consec = int(resume["consec"])
            history = [
                (int(c), float(p)) for c, p in resume["history"]
            ]
            strat_version = int(resume["strat_version"])
            round_idx = int(resume["round"])
            # Budget/history accounting continues from the recorded
            # spend whether this process's source already made those
            # calls or starts fresh (sampling is without replacement,
            # so no checkpointed pair is ever re-requested).
            start_calls = self.source.calls - int(resume["calls_used"])
        else:
            self._round_mult = 1
            if self.warm_state is not None:
                self.carried_samples = state.import_samples(
                    self.warm_state.values
                )
            strat = self._initial_stratification()
            active = list(range(k))
            eliminated = []
            consec = 0
            history = []
            strat_version = 0
            round_idx = 0
            start_calls = self.source.calls
        self._start_calls = start_calls
        terminated_by = "exhausted"

        def calls_used() -> int:
            return self.source.calls - start_calls

        if resume is None:
            # Pilot: n_min draws per stratum (shared across configs).
            self._delta_pilot(state, strat, active)

        # Eliminated configurations stop sampling, so their aligned
        # difference moments against any configuration are frozen; cache
        # their pair estimates per (best, stratification) to keep large-k
        # rounds cheap.  (Rebuilt from frozen buffers on resume, so the
        # recomputed entries are bit-identical.)
        pair_cache: Dict[int, Tuple[float, float]] = {}
        cache_key: Optional[Tuple[int, int]] = None

        while True:
            if self._checkpoint_due(round_idx):
                payload = self._checkpoint_common(
                    round_idx, calls_used(), active, eliminated,
                    consec, history,
                )
                payload["strata"] = [
                    [int(t) for t in group] for group in strat.strata
                ]
                payload["strat_version"] = int(strat_version)
                payload["state"] = state.state_dict()
                save_checkpoint(self.checkpoint_path, payload)
            round_idx += 1
            # --- evaluate ---
            with self._timer.phase("evaluate"):
                totals = np.array(
                    [state.estimate_total(c, strat)[0] for c in range(k)]
                )
                best = int(np.argmin(np.where(np.isfinite(totals), totals,
                                              np.inf)))
                round_key = (best, strat_version)
                if round_key != cache_key:
                    pair_cache = {}
                    cache_key = round_key
                active_set = set(active)
                pair_stats: Dict[int, Tuple[float, float]] = {}
                pairwise: List[float] = []
                for j in range(k):
                    if j == best:
                        continue
                    if j not in active_set and j in pair_cache:
                        mean_diff, var_diff = pair_cache[j]
                    else:
                        mean_diff, var_diff = state.pair_estimate(
                            best, j, strat
                        )
                        if j not in active_set:
                            pair_cache[j] = (mean_diff, var_diff)
                    pair_stats[j] = (mean_diff, var_diff)
                    pairwise.append(
                        pairwise_prcs(-mean_diff, var_diff, opts.delta)
                    )
                prcs = bonferroni(pairwise) if pairwise else 1.0
            history.append((calls_used(), prcs))

            # --- terminate? ---
            if prcs > opts.alpha:
                consec += 1
            else:
                consec = 0
            if consec >= opts.consecutive:
                terminated_by = "alpha"
                break
            if not self._budget_left(calls_used()):
                terminated_by = "max_calls"
                break

            # --- eliminate ---
            if opts.eliminate:
                still = []
                for j in active:
                    if j == best:
                        still.append(j)
                        continue
                    mean_diff, var_diff = pair_stats[j]
                    p = pairwise_prcs(-mean_diff, var_diff, opts.delta)
                    if p > opts.elimination_threshold:
                        eliminated.append(j)
                    else:
                        still.append(j)
                active = still
                if best not in active:
                    active.append(best)

            # --- progressive stratification (Algorithm 2) ---
            if opts.stratify == "progressive":
                with self._timer.phase("split"):
                    new_strat = self._delta_split(
                        state, strat, best, pair_stats, len(active)
                    )
                if new_strat is not strat:
                    strat = new_strat
                    strat_version += 1

            # --- draw the next batch of samples ---
            rounds = self._next_batch_rounds(
                calls_used(),
                max(1, opts.reeval_every) * max(1, len(active)),
                consec,
            )
            if not self._delta_draw(state, strat, best, pair_stats, active,
                                    rounds):
                # Workload exhausted: estimates are now exact.
                terminated_by = "exhausted"
                totals = np.array(
                    [state.estimate_total(c, strat)[0] for c in range(k)]
                )
                best = int(np.argmin(totals))
                prcs = 1.0
                break

        totals = np.array(
            [state.estimate_total(c, strat)[0] for c in range(k)]
        )
        best = int(np.argmin(totals))
        self._final_strata = strat.strata
        return SelectionResult(
            best_index=best,
            prcs=prcs,
            optimizer_calls=calls_used(),
            estimates=totals,
            eliminated=eliminated,
            stratum_counts={h: int(n) for h, n in enumerate(strat.sizes)},
            terminated_by=terminated_by,
            history=history,
            queries_sampled=state.sample_count(),
            final_strata=strat.strata,
        )

    def _delta_pilot(
        self,
        state: DeltaState,
        strat: Stratification,
        active: Sequence[int],
    ) -> None:
        """Fill every stratum to ``n_min`` shared samples (or exhaust).

        Carried warm-start samples count toward the target, so a
        well-carried stratum costs the pilot nothing.  Each stratum's
        deficit is drawn ahead and costed in one ``cost_many`` batch
        (chunked only where the call budget may bind).
        """
        active = list(active)
        per_draw = max(1, len(active))
        for stratum in strat.strata:
            drawn = sum(state.sampler.drawn(t) for t in stratum)
            target = min(
                self.options.n_min,
                sum(self.template_sizes[t] for t in stratum),
            )
            while drawn < target:
                chunk = self._chunk_allowance(target - drawn, per_draw)
                if chunk <= 0:
                    return
                with self._timer.phase("draw"):
                    draws = state.sampler.draw_many(
                        stratum, self.rng, chunk
                    )
                if draws:
                    self._delta_ingest(state, draws, active)
                    drawn += len(draws)
                if len(draws) < chunk:
                    break

    def _delta_ingest(
        self,
        state: DeltaState,
        draws: Sequence[Tuple[int, int]],
        active: Sequence[int],
    ) -> None:
        """Cost a draw-ahead batch in one call and fold it in.

        Pairs are laid out query-major (every active configuration of
        a draw back to back), so ingestion replays the serial
        accumulator-update order exactly.
        """
        k_a = len(active)
        qs = np.fromiter(
            (q for q, _t in draws), dtype=np.int64, count=len(draws)
        )
        pairs = np.empty((len(draws) * k_a, 2), dtype=np.int64)
        pairs[:, 0] = np.repeat(qs, k_a)
        pairs[:, 1] = np.tile(
            np.asarray(active, dtype=np.int64), len(draws)
        )
        with self._timer.phase("cost"):
            values = self.source.cost_many(pairs)
        with self._timer.phase("ingest"):
            for d, (qidx, tid) in enumerate(draws):
                state.ingest(
                    qidx, tid, active, values[d * k_a:(d + 1) * k_a]
                )

    def _delta_split(
        self,
        state: DeltaState,
        strat: Stratification,
        best: int,
        pair_stats: Dict[int, Tuple[float, float]],
        k_active: int,
    ) -> Stratification:
        """Consult Algorithm 2 using the binding pair's difference stats."""
        binding = self._binding_pair(pair_stats, k_active)
        if binding is None:
            return strat
        j, target_var = binding
        counts, means, m2s = state.diff_template_moments(best, j)
        t_vars = np.where(counts >= 2, m2s / np.maximum(1, counts - 1), 0.0)
        decision = self._propose_split(
            ("delta", best, j),
            strat,
            counts,
            means,
            t_vars,
            target_var,
        )
        if decision is None:
            return strat
        new_strat = strat.split(
            decision.stratum_idx, decision.left, decision.right
        )
        # Line 8 of Algorithm 1: pilot the refreshed strata.
        self._delta_pilot(state, new_strat, self._active_or_all(pair_stats,
                                                                best))
        return new_strat

    def _active_or_all(
        self, pair_stats: Dict[int, Tuple[float, float]], best: int
    ) -> List[int]:
        return sorted(set(pair_stats) | {best})

    def _propose_split(
        self,
        owner: Tuple,
        strat: Stratification,
        counts: np.ndarray,
        means: np.ndarray,
        t_vars: np.ndarray,
        target_var: float,
    ):
        """Dispatch Algorithm 2 per ``options.split_scoring``.

        The incremental kernel reuses one cache per moment owner;
        entries are stamped by stratum sample counts, so only strata
        that ingested samples since the owner's last check rebuild.
        """
        if self.options.split_scoring == "reference":
            return propose_split_reference(
                strat, self._template_size_arr, counts, means, t_vars,
                target_var, self.options.n_min,
            )
        cache = self._split_caches.setdefault(owner, {})
        return propose_split(
            strat, self._template_size_arr, counts, means, t_vars,
            target_var, self.options.n_min, cache=cache,
        )

    def _binding_pair(
        self,
        pair_stats: Dict[int, Tuple[float, float]],
        k_active: int,
    ) -> Optional[Tuple[int, float]]:
        """The pair needing the smallest (hardest) target variance."""
        alpha_pair = per_pair_alpha(self.options.alpha, max(2, k_active))
        best_j: Optional[int] = None
        best_target = math.inf
        for j, (mean_diff, _var) in pair_stats.items():
            target = pair_target_variance(
                -mean_diff, self.options.delta, alpha_pair
            )
            if 0 < target < best_target:
                best_target = target
                best_j = j
        if best_j is None:
            return None
        return best_j, best_target

    def _delta_draw(
        self,
        state: DeltaState,
        strat: Stratification,
        best: int,
        pair_stats: Dict[int, Tuple[float, float]],
        active: Sequence[int],
        rounds: int = 1,
    ) -> bool:
        """Plan up to ``rounds`` §5.2 stratum picks ahead, then draw.

        Each planned round re-runs the variance-greedy stratum choice
        against the simulated (post-draw) counts, so a batch follows
        the same allocation trajectory the serial schedule would; the
        whole plan is then drawn, costed via ``cost_many`` and
        ingested.  ``rounds=1`` reproduces the serial behavior
        bit-identically (one pick, up to ``reeval_every`` draws, the
        serial budget-truncation arithmetic).
        """
        with self._timer.phase("plan"):
            sizes = strat.sizes
            L = strat.stratum_count
            counts = np.zeros(L, dtype=np.int64)
            remaining = np.zeros(L, dtype=np.int64)
            for h, stratum in enumerate(strat.strata):
                counts[h] = sum(state.sampler.drawn(t) for t in stratum)
                remaining[h] = state.sampler.remaining_in(stratum)
            exhausted = remaining == 0
            if exhausted.all():
                return False
            # Per-pair per-stratum variances for the variance-sum
            # heuristic (pooled moments are cached inside the state).
            pair_vars = []
            for j in pair_stats:
                vars_h = np.zeros(L)
                for h, (n_h, _m_h, m2_h) in enumerate(
                    state.pair_stratum_moments(best, j, strat)
                ):
                    if n_h >= 2:
                        vars_h[h] = m2_h / (n_h - 1)
                pair_vars.append(vars_h)
            overheads = self._stratum_overheads(strat)
            per_round = max(1, self.options.reeval_every)
            # Round-to-round only the picked stratum's count moves, so
            # the variance-greedy scores are maintained incrementally
            # (bit-identical to a per-round pick_delta_stratum call).
            scorer = (
                DeltaStratumScorer(
                    sizes, pair_vars, counts, overheads=overheads
                )
                if pair_vars else None
            )
            plan: List[Tuple[int, int]] = []
            for _ in range(max(1, rounds)):
                if exhausted.all():
                    break
                if scorer is not None:
                    pick = scorer.pick(exhausted)
                else:
                    pick = int(np.argmax(np.where(exhausted, -1, sizes)))
                if pick is None:
                    break
                n = int(min(per_round, remaining[pick]))
                if n <= 0:
                    exhausted[pick] = True
                    continue
                if plan and plan[-1][0] == pick:
                    plan[-1] = (pick, plan[-1][1] + n)
                else:
                    plan.append((pick, n))
                counts[pick] += n
                remaining[pick] -= n
                if remaining[pick] == 0:
                    exhausted[pick] = True
                if scorer is not None:
                    scorer.refresh(pick)
        # Draw/cost/ingest the plan, chunked where the budget may bind.
        active = list(active)
        per_draw = max(1, len(active))
        drew_any = False
        for pick, n in plan:
            stratum = strat.strata[pick]
            pending = n
            while pending > 0:
                chunk = self._chunk_allowance(pending, per_draw)
                if chunk <= 0 and not drew_any:
                    # Serially, the round's first draw skips the budget
                    # check (possible after a split's pilot spent it).
                    chunk = 1
                if chunk <= 0:
                    return drew_any
                with self._timer.phase("draw"):
                    draws = state.sampler.draw_many(
                        stratum, self.rng, chunk
                    )
                if draws:
                    self._delta_ingest(state, draws, active)
                    drew_any = True
                    pending -= len(draws)
                if len(draws) < chunk:
                    break
        return drew_any

    # ------------------------------------------------------------------
    # Independent Sampling driver
    # ------------------------------------------------------------------
    def _run_independent(
        self, resume: Optional[dict] = None
    ) -> SelectionResult:
        opts = self.options
        k = self.source.n_configs
        state = IndependentState(
            k, self.n_templates, self.indices_by_template, self.rng
        )
        self._independent_state = state
        if resume is not None:
            state.restore_state(resume["state"])
            restore_rng(self.rng, resume["rng"])
            self.carried_samples = int(resume["carried_samples"])
            self._round_mult = int(resume["round_mult"])
            strats = [
                Stratification(
                    [tuple(int(t) for t in g) for g in groups],
                    self.template_sizes,
                )
                for groups in resume["strats"]
            ]
            active = [int(j) for j in resume["active"]]
            eliminated = [int(j) for j in resume["eliminated"]]
            consec = int(resume["consec"])
            history = [
                (int(c), float(p)) for c, p in resume["history"]
            ]
            last_sampled = (
                None if resume["last_sampled"] is None
                else int(resume["last_sampled"])
            )
            round_idx = int(resume["round"])
            start_calls = self.source.calls - int(resume["calls_used"])
        else:
            self._round_mult = 1
            if self.warm_state is not None:
                self.carried_samples = state.import_moments(
                    self.warm_state.moments
                )
            strats = [
                self._initial_stratification() for _ in range(k)
            ]
            active = list(range(k))
            eliminated = []
            consec = 0
            history = []
            last_sampled = None
            round_idx = 0
            start_calls = self.source.calls
        self._start_calls = start_calls
        terminated_by = "exhausted"

        def calls_used() -> int:
            return self.source.calls - start_calls

        if resume is None:
            for c in range(k):
                self._independent_pilot(state, strats[c], c)

        while True:
            if self._checkpoint_due(round_idx):
                payload = self._checkpoint_common(
                    round_idx, calls_used(), active, eliminated,
                    consec, history,
                )
                payload["strats"] = [
                    [[int(t) for t in group] for group in s.strata]
                    for s in strats
                ]
                payload["last_sampled"] = (
                    None if last_sampled is None else int(last_sampled)
                )
                payload["state"] = state.state_dict()
                save_checkpoint(self.checkpoint_path, payload)
            round_idx += 1
            with self._timer.phase("evaluate"):
                ests = [state.estimate(c, strats[c]) for c in range(k)]
                totals = np.array([e[0] for e in ests])
                variances = np.array([e[1] for e in ests])
                best = int(np.argmin(np.where(np.isfinite(totals), totals,
                                              np.inf)))
                pairwise = []
                pair_stats: Dict[int, Tuple[float, float]] = {}
                for j in range(k):
                    if j == best:
                        continue
                    gap = float(totals[j] - totals[best])
                    var = float(variances[j] + variances[best])
                    pair_stats[j] = (-gap, var)
                    pairwise.append(pairwise_prcs(gap, var, opts.delta))
                prcs = bonferroni(pairwise) if pairwise else 1.0
            history.append((calls_used(), prcs))

            if prcs > opts.alpha:
                consec += 1
            else:
                consec = 0
            if consec >= opts.consecutive:
                terminated_by = "alpha"
                break
            if not self._budget_left(calls_used()):
                terminated_by = "max_calls"
                break

            if opts.eliminate:
                still = []
                for j in active:
                    if j == best:
                        still.append(j)
                        continue
                    gap, var = -pair_stats[j][0], pair_stats[j][1]
                    if pairwise_prcs(gap, var, opts.delta) > \
                            opts.elimination_threshold:
                        eliminated.append(j)
                    else:
                        still.append(j)
                active = still
                if best not in active:
                    active.append(best)

            # Progressive stratification for the last-sampled config.
            if opts.stratify == "progressive" and last_sampled is not None \
                    and last_sampled in active:
                with self._timer.phase("split"):
                    strats[last_sampled] = self._independent_split(
                        state, strats[last_sampled], last_sampled,
                        pair_stats, len(active),
                    )

            # Plan up to `rounds` greedy (configuration, stratum) picks
            # ahead; pending draws feed back into the scores so the
            # batch follows the serial allocation trajectory.
            rounds = self._next_batch_rounds(
                calls_used(), max(1, opts.reeval_every), consec
            )
            per_round = max(1, opts.reeval_every)
            with self._timer.phase("plan"):
                plan: List[Tuple[int, int, int]] = []
                pending: Dict[Tuple[int, int], int] = {}
                for _ in range(max(1, rounds)):
                    pick = self._independent_pick(
                        state, strats, active, pending
                    )
                    if pick is None:
                        break
                    config, stratum_idx = pick
                    already = pending.get((config, stratum_idx), 0)
                    avail = state.samplers[config].remaining_in(
                        strats[config].strata[stratum_idx]
                    ) - already
                    n = int(min(per_round, avail))
                    if n <= 0:
                        break
                    plan.append((config, stratum_idx, n))
                    pending[(config, stratum_idx)] = already + n
            if not plan:
                terminated_by = "exhausted"
                prcs = 1.0
                break
            drew_any = False
            budget_bound = False
            for config, stratum_idx, n in plan:
                stratum = strats[config].strata[stratum_idx]
                remaining = n
                while remaining > 0:
                    chunk = self._chunk_allowance(remaining, 1)
                    if chunk <= 0 and not drew_any:
                        # Serially, the round's first draw skips the
                        # budget check (possible after a split pilot).
                        chunk = 1
                    if chunk <= 0:
                        budget_bound = True
                        break
                    with self._timer.phase("draw"):
                        draws = state.samplers[config].draw_many(
                            stratum, self.rng, chunk
                        )
                    if draws:
                        self._independent_ingest(state, config, draws)
                        drew_any = True
                        last_sampled = config
                        remaining -= len(draws)
                    if len(draws) < chunk:
                        break
                if budget_bound:
                    break
            if not drew_any:
                # Raced into exhaustion; try again next round.
                continue

        ests = [state.estimate(c, strats[c]) for c in range(k)]
        totals = np.array([e[0] for e in ests])
        best = int(np.argmin(totals))
        self._final_strata = strats[best].strata
        return SelectionResult(
            best_index=best,
            prcs=prcs,
            optimizer_calls=calls_used(),
            estimates=totals,
            eliminated=eliminated,
            stratum_counts={
                c: strats[c].stratum_count for c in range(k)
            },
            terminated_by=terminated_by,
            history=history,
            queries_sampled=sum(
                state.sample_count(c) for c in range(k)
            ),
            final_strata=strats[best].strata,
        )

    def _independent_pilot(
        self, state: IndependentState, strat: Stratification, config: int
    ) -> None:
        for stratum in strat.strata:
            drawn = sum(
                int(state.grid.count[config, t]) for t in stratum
            )
            target = min(
                self.options.n_min,
                sum(self.template_sizes[t] for t in stratum),
            )
            while drawn < target:
                chunk = self._chunk_allowance(target - drawn, 1)
                if chunk <= 0:
                    return
                with self._timer.phase("draw"):
                    draws = state.samplers[config].draw_many(
                        stratum, self.rng, chunk
                    )
                if draws:
                    self._independent_ingest(state, config, draws)
                    drawn += len(draws)
                if len(draws) < chunk:
                    break

    def _independent_ingest(
        self,
        state: IndependentState,
        config: int,
        draws: Sequence[Tuple[int, int]],
    ) -> None:
        """Cost one configuration's draw-ahead batch and fold it in."""
        pairs = np.empty((len(draws), 2), dtype=np.int64)
        pairs[:, 0] = np.fromiter(
            (q for q, _t in draws), dtype=np.int64, count=len(draws)
        )
        pairs[:, 1] = config
        with self._timer.phase("cost"):
            values = self.source.cost_many(pairs)
        with self._timer.phase("ingest"):
            for (qidx, tid), value in zip(draws, values):
                state.ingest(config, tid, value)

    def _independent_split(
        self,
        state: IndependentState,
        strat: Stratification,
        config: int,
        pair_stats: Dict[int, Tuple[float, float]],
        k_active: int,
    ) -> Stratification:
        binding = self._binding_pair(pair_stats, k_active)
        if binding is None:
            return strat
        _j, pair_target = binding
        # Per-config target: half the pair's variance budget (the pair
        # variance is the sum of two per-config variances).
        target_var = pair_target / 2.0
        counts = state.grid.count[config]
        means = state.grid.mean[config]
        m2s = state.grid.m2[config]
        t_vars = np.where(counts >= 2, m2s / np.maximum(1, counts - 1), 0.0)
        decision = self._propose_split(
            ("independent", config),
            strat,
            counts,
            means,
            t_vars,
            target_var,
        )
        if decision is None:
            return strat
        new_strat = strat.split(
            decision.stratum_idx, decision.left, decision.right
        )
        self._independent_pilot(state, new_strat, config)
        return new_strat

    def _independent_pick(
        self,
        state: IndependentState,
        strats: Sequence[Stratification],
        active: Sequence[int],
        pending: Optional[Dict[Tuple[int, int], int]] = None,
    ) -> Optional[Tuple[int, int]]:
        """Greedy (configuration, stratum) choice per §5.2.

        ``pending`` maps ``(config, stratum)`` to draws already planned
        (but not yet taken) by the current draw-ahead batch; they are
        treated as taken, so successive picks of one batch follow the
        same trajectory a serial re-pick after each round would.
        """
        best_pick: Optional[Tuple[int, int]] = None
        best_score = -1.0
        for config in active:
            strat = strats[config]
            stats = state.stratum_stats(config, strat)
            overheads = self._stratum_overheads(strat)
            L = strat.stratum_count
            planned = np.zeros(L, dtype=np.int64)
            open_mask = np.zeros(L, dtype=bool)
            for h, stratum in enumerate(strat.strata):
                p = pending.get((config, h), 0) if pending else 0
                planned[h] = p
                open_mask[h] = (
                    state.samplers[config].remaining_in(stratum) - p > 0
                )
            if not open_mask.any():
                continue
            n_eff = np.asarray(stats.n, dtype=np.int64) + planned
            s2 = np.where(np.isfinite(stats.var), stats.var, 0.0)
            red = variance_reduction_many(strat.sizes, s2, n_eff)
            if overheads is not None:
                red = red / np.maximum(1e-12, overheads)
            red = np.where(n_eff == 0, math.inf, red)
            scores = np.where(open_mask, red, -math.inf)
            h = int(np.argmax(scores))
            if scores[h] > best_score:
                best_score = float(scores[h])
                best_pick = (config, h)
        return best_pick
