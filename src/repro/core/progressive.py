"""Progressive stratification: Algorithm 2 of the paper.

Starting from a single stratum, the selection procedure repeatedly
considers refining the stratification by splitting one existing stratum
in two at a template boundary, ordered by average template cost.  A
split is adopted when the estimated total number of samples needed to
reach the target variance — ``#Samples(C_i, ST, NT)``, computed via
Neyman allocation and binary search (:mod:`repro.core.stratification`)
— decreases.

Only one stratum is split per step, and only strata whose expected
allocation is at least ``2 * n_min`` are considered (each new stratum
must support a normal estimate of its own).  Stratum variances for
candidate splits are estimated from per-template running statistics:

    S^2_h  ~=  sum_t (N_t / N_h) * (s_t^2 + (m_t - m_h)^2)

the within-template variance plus the between-template spread, which is
exactly what makes template-aligned strata effective.

Two implementations of the split search are provided:

* :func:`propose_split` — the incremental kernel.  Per stratum it keeps
  a cache entry (stamped by the stratum's member sample count, so it is
  invalidated exactly when that stratum ingests samples) holding the
  stratum's variance estimate and, for splittable strata, prefix-sum
  aggregates (count / size-weighted sum / size-weighted sum of squares
  over the mean-sorted member templates) from which every cut's left
  and right variance is an O(1) read.  All ``(stratum, cut)``
  candidates are then scored through one
  :func:`repro.core.allocation.samples_needed_batch` call — a split
  check is an array reduction instead of a per-cut recompute.
* :func:`propose_split_reference` — the historical per-cut recompute
  (one full candidate stratification and variance pass per cut), kept
  as the parity baseline for tests and the benchmark's kernel A/B.

Both return the same decisions on the covered scenarios (pinned by the
golden fixture and ``tests/test_bound_kernels.py``); the candidate
enumeration order (stratum index ascending, cut ascending, strict
improvement) is identical, so tie-breaking matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .allocation import samples_needed_batch
from .stratification import (
    Stratification,
    neyman_allocation,
    samples_needed,
)

__all__ = [
    "SplitDecision",
    "estimate_stratum_variance",
    "propose_split",
    "propose_split_reference",
]


@dataclass(frozen=True)
class SplitDecision:
    """The outcome of a profitable split search."""

    stratum_idx: int
    left: Tuple[int, ...]
    right: Tuple[int, ...]
    expected_samples: int
    baseline_samples: int

    @property
    def saving(self) -> int:
        """Expected optimizer calls saved by adopting the split."""
        return self.baseline_samples - self.expected_samples


def estimate_stratum_variance(
    templates: Sequence[int],
    template_sizes: np.ndarray,
    template_means: np.ndarray,
    template_vars: np.ndarray,
) -> float:
    """Estimate a (candidate) stratum's population variance.

    Combines within-template sample variances with the between-template
    spread of means, weighting templates by their workload share.
    """
    tids = np.fromiter(templates, dtype=np.int64)
    sizes = template_sizes[tids].astype(np.float64)
    total = sizes.sum()
    if total <= 0:
        return 0.0
    means = template_means[tids]
    variances = np.maximum(0.0, template_vars[tids])
    m_h = float((sizes * means).sum() / total)
    return float(
        (sizes * (variances + (means - m_h) ** 2)).sum() / total
    )


def _strata_variances(
    strat: Stratification,
    template_sizes: np.ndarray,
    template_means: np.ndarray,
    template_vars: np.ndarray,
) -> np.ndarray:
    return np.array(
        [
            estimate_stratum_variance(
                stratum, template_sizes, template_means, template_vars
            )
            for stratum in strat.strata
        ]
    )


@dataclass
class _StratumSplitEntry:
    """Cached per-stratum split aggregates, stamped by sample count.

    ``stamp`` is the stratum's summed member sample count at build
    time; template moments only move when a member template ingests
    samples (counts are monotone), so an unchanged stamp certifies
    every cached number below is still exact.
    """

    stamp: int
    #: Whole-stratum variance (estimate_stratum_variance, bit-exact).
    variance: float
    #: Mean-sorted member template ids; None when the stratum is not
    #: splittable from cached data (fewer than 2 templates, or some
    #: member still unsampled).
    ordered: Optional[np.ndarray] = None
    left_sizes: Optional[np.ndarray] = None
    right_sizes: Optional[np.ndarray] = None
    left_sampled: Optional[np.ndarray] = None
    right_sampled: Optional[np.ndarray] = None
    left_vars: Optional[np.ndarray] = None
    right_vars: Optional[np.ndarray] = None


def _build_entry(
    stratum: Tuple[int, ...],
    n_h: int,
    template_sizes: np.ndarray,
    template_counts: np.ndarray,
    template_means: np.ndarray,
    template_vars: np.ndarray,
) -> _StratumSplitEntry:
    entry = _StratumSplitEntry(
        stamp=n_h,
        variance=estimate_stratum_variance(
            stratum, template_sizes, template_means, template_vars
        ),
    )
    if len(stratum) < 2:
        return entry
    tids = np.fromiter(stratum, dtype=np.int64)
    # Section 5.1: order templates only once every member has cost
    # estimates ("once we have seen a small number of queries for each
    # template").
    if (template_counts[tids] == 0).any():
        return entry
    order = np.argsort(template_means[tids], kind="stable")
    ordered = tids[order]
    sizes = template_sizes[ordered]
    counts = template_counts[ordered]
    sizes_f = sizes.astype(np.float64)
    means = template_means[ordered]
    variances = np.maximum(0.0, template_vars[ordered])
    # Prefix/suffix aggregates over the mean-sorted templates: stratum
    # sizes and sampled counts are exact integers; the variance of any
    # contiguous cut is recovered from the size-weighted first and
    # second moments, Var = S2/S0 - (S1/S0)^2.
    s0 = np.cumsum(sizes_f)
    s1 = np.cumsum(sizes_f * means)
    s2 = np.cumsum(sizes_f * (variances + means * means))
    r0 = s0[-1] - s0[:-1]
    r1 = s1[-1] - s1[:-1]
    r2 = s2[-1] - s2[:-1]
    with np.errstate(divide="ignore", invalid="ignore"):
        lm = s1[:-1] / s0[:-1]
        left_vars = np.maximum(0.0, s2[:-1] / s0[:-1] - lm * lm)
        rm = r1 / r0
        right_vars = np.maximum(0.0, r2 / r0 - rm * rm)
    left_vars = np.where(s0[:-1] > 0, left_vars, 0.0)
    right_vars = np.where(r0 > 0, right_vars, 0.0)
    entry.ordered = ordered
    entry.left_sizes = np.cumsum(sizes)[:-1]
    entry.right_sizes = int(sizes.sum()) - entry.left_sizes
    entry.left_sampled = np.cumsum(counts)[:-1]
    entry.right_sampled = n_h - entry.left_sampled
    entry.left_vars = left_vars
    entry.right_vars = right_vars
    return entry


def propose_split(
    strat: Stratification,
    template_sizes: np.ndarray,
    template_counts: np.ndarray,
    template_means: np.ndarray,
    template_vars: np.ndarray,
    target_var: float,
    n_min: int,
    cache: Optional[Dict[Tuple[int, ...], _StratumSplitEntry]] = None,
) -> Optional[SplitDecision]:
    """Search for the most profitable single-stratum split (Algorithm 2).

    Parameters
    ----------
    strat:
        The current stratification.
    template_sizes / template_counts / template_means / template_vars:
        Dense per-template arrays: workload sizes, samples drawn so
        far, running mean and running sample variance of the quantity
        being estimated (per-configuration costs for Independent
        Sampling; cost differences of the binding pair for Delta
        Sampling, which uses a single ranking across pairs).
    target_var:
        The variance the estimator must reach (from
        :func:`repro.core.prcs.pair_target_variance`).
    n_min:
        Minimum per-stratum sample size for normality.
    cache:
        Optional dict (stratum tuple -> :class:`_StratumSplitEntry`)
        reused across calls for the same moment arrays; entries are
        stamped by the stratum's sample count, so only strata that
        ingested samples since the last call are rebuilt.  The selector
        keeps one cache per moment owner (per directed configuration
        pair for Delta Sampling, per configuration for Independent).

    Returns
    -------
    SplitDecision or None
        ``None`` when no split reduces the expected total sample count.
    """
    if not np.isfinite(target_var) or target_var <= 0:
        return None

    sizes = strat.sizes
    L = strat.stratum_count
    sampled = strat.member_sums(template_counts)
    variances = np.empty(L, dtype=np.float64)
    entries = []
    for h, stratum in enumerate(strat.strata):
        n_h = int(sampled[h])
        entry = cache.get(stratum) if cache is not None else None
        if entry is None or entry.stamp != n_h:
            entry = _build_entry(
                stratum, n_h, template_sizes, template_counts,
                template_means, template_vars,
            )
            if cache is not None:
                cache[stratum] = entry
        variances[h] = entry.variance
        entries.append(entry)
    floors = np.maximum(np.minimum(n_min, sizes), sampled)

    # When no stratum is splittable there is no decision to make —
    # skip the baseline ``#Samples`` entirely (late-stage calls on
    # fine stratifications hit this constantly).
    splittable = [h for h, e in enumerate(entries) if e.ordered is not None]
    if not splittable:
        return None

    # The baseline problem rides the candidate batch as row 0, padded
    # to width L+1 with a zero-size stratum (size 0, variance 0, zero
    # samples): it gets a zero floor and weight, is never opened by
    # the allocation and contributes an exact ``+0.0`` to the eq. 5
    # sum, so row 0's bisection is bit-identical to the scalar
    # ``samples_needed`` call it replaces.  The one place padding
    # could leak is NumPy's pairwise summation of the Neyman weights:
    # appending a zero changes the reduction tree exactly when
    # ``L % 8 == 7`` or the 128-element block boundary is crossed, so
    # those widths keep the separate scalar baseline call.
    folded = L % 8 != 7 and L + 1 <= 128
    if not folded:
        baseline = samples_needed(
            sizes, variances, target_var, floors=floors
        )

    # Assemble every (stratum, cut) candidate as one row of a (B, L+1)
    # problem batch: the untouched strata keep their cached baseline
    # variance, the split stratum is replaced by the cut's left/right
    # aggregates.  Candidate order is stratum index ascending, cut
    # ascending — the reference enumeration order.  All rows share the
    # same global columns modulo a one-slot shift past the split
    # stratum, so the whole batch is one shifted-column gather plus
    # two scatters into the left/right slots per array.  The
    # ``expected_alloc`` gate (line 7 of Algorithm 2) needs the
    # baseline total, so it is applied to the scored rows afterwards.
    cand_index = []
    for h in splittable:
        n_cuts = len(entries[h].ordered) - 1
        cand_index.extend((h, cut) for cut in range(1, n_cuts + 1))
    cand_h = np.fromiter(
        (h for h, _ in cand_index), dtype=np.int64, count=len(cand_index)
    )
    cols = np.arange(L + 1, dtype=np.int64)[None, :]
    src = cols - (cols > cand_h[:, None] + 1)
    np.minimum(src, L - 1, out=src)  # slots h, h+1 are overwritten
    slot = cand_h[:, None]
    all_sizes = sizes[src]
    all_vars = variances[src]
    all_sampled = sampled[src]
    for field, target in (
        ("left_sizes", all_sizes), ("left_vars", all_vars),
        ("left_sampled", all_sampled),
    ):
        np.put_along_axis(
            target, slot,
            np.concatenate(
                [getattr(entries[h], field) for h in splittable]
            )[:, None],
            axis=1,
        )
    for field, target in (
        ("right_sizes", all_sizes), ("right_vars", all_vars),
        ("right_sampled", all_sampled),
    ):
        np.put_along_axis(
            target, slot + 1,
            np.concatenate(
                [getattr(entries[h], field) for h in splittable]
            )[:, None],
            axis=1,
        )
    if folded:
        all_sizes = np.concatenate(
            [np.append(sizes, 0)[None, :], all_sizes]
        )
        all_vars = np.concatenate(
            [np.append(variances, 0.0)[None, :], all_vars]
        )
        all_sampled = np.concatenate(
            [np.append(sampled, 0)[None, :], all_sampled]
        )
    all_floors = np.maximum(np.minimum(n_min, all_sizes), all_sampled)
    needed = samples_needed_batch(
        all_sizes, all_vars,
        np.full(len(all_sizes), target_var, dtype=np.float64),
        floors=all_floors,
    )
    if folded:
        baseline = int(needed[0])
        needed = needed[1:]

    # Expected allocation at the baseline total (line 7 of Algorithm 2)
    # gates which strata may split; losing rows are masked before the
    # argmin, whose first-occurrence tie-breaking preserves the
    # reference enumeration order.
    expected_alloc = neyman_allocation(
        sizes, np.sqrt(variances), baseline, floors=floors
    )
    gate = expected_alloc[np.asarray(cand_h, dtype=np.int64)] >= 2 * n_min
    valid = gate & (needed < baseline)
    if not valid.any():
        return None
    best_pos = int(
        np.argmin(np.where(valid, needed, np.iinfo(np.int64).max))
    )
    h, cut = cand_index[best_pos]
    ordered = entries[h].ordered
    return SplitDecision(
        stratum_idx=h,
        left=tuple(int(t) for t in ordered[:cut]),
        right=tuple(int(t) for t in ordered[cut:]),
        expected_samples=int(needed[best_pos]),
        baseline_samples=baseline,
    )


def propose_split_reference(
    strat: Stratification,
    template_sizes: np.ndarray,
    template_counts: np.ndarray,
    template_means: np.ndarray,
    template_vars: np.ndarray,
    target_var: float,
    n_min: int,
) -> Optional[SplitDecision]:
    """The historical split search: full recompute per candidate cut.

    Semantically identical to :func:`propose_split`; kept as the
    parity/benchmark baseline.  Builds one complete candidate
    ``Stratification`` and variance pass per cut, so a check over a
    stratum with ``T`` templates costs ``O(T^2)`` variance estimates
    where the incremental kernel reads ``O(T)`` prefix sums.
    """
    if not np.isfinite(target_var) or target_var <= 0:
        return None

    sizes = strat.sizes
    sampled = np.array(
        [
            int(template_counts[np.fromiter(s, dtype=np.int64)].sum())
            for s in strat.strata
        ],
        dtype=np.int64,
    )
    floors = np.maximum(np.minimum(n_min, sizes), sampled)
    variances = _strata_variances(
        strat, template_sizes, template_means, template_vars
    )
    baseline = samples_needed(sizes, variances, target_var, floors=floors)

    expected_alloc = neyman_allocation(
        sizes, np.sqrt(variances), baseline, floors=floors
    )

    best: Optional[SplitDecision] = None
    for h, stratum in enumerate(strat.strata):
        if len(stratum) < 2:
            continue
        if expected_alloc[h] < 2 * n_min:
            continue
        tids = np.fromiter(stratum, dtype=np.int64)
        if (template_counts[tids] == 0).any():
            continue
        order = np.argsort(template_means[tids], kind="stable")
        ordered = [int(t) for t in tids[order]]
        for cut in range(1, len(ordered)):
            left = tuple(ordered[:cut])
            right = tuple(ordered[cut:])
            candidate = strat.split(h, left, right)
            cand_sampled = np.array(
                [
                    int(
                        template_counts[
                            np.fromiter(s, dtype=np.int64)
                        ].sum()
                    )
                    for s in candidate.strata
                ],
                dtype=np.int64,
            )
            cand_floors = np.maximum(
                np.minimum(n_min, candidate.sizes), cand_sampled
            )
            cand_vars = _strata_variances(
                candidate, template_sizes, template_means, template_vars
            )
            needed = samples_needed(
                candidate.sizes, cand_vars, target_var, floors=cand_floors
            )
            if needed < baseline and (
                best is None or needed < best.expected_samples
            ):
                best = SplitDecision(
                    stratum_idx=h,
                    left=left,
                    right=right,
                    expected_samples=needed,
                    baseline_samples=baseline,
                )
    return best
