"""Progressive stratification: Algorithm 2 of the paper.

Starting from a single stratum, the selection procedure repeatedly
considers refining the stratification by splitting one existing stratum
in two at a template boundary, ordered by average template cost.  A
split is adopted when the estimated total number of samples needed to
reach the target variance — ``#Samples(C_i, ST, NT)``, computed via
Neyman allocation and binary search (:mod:`repro.core.stratification`)
— decreases.

Only one stratum is split per step, and only strata whose expected
allocation is at least ``2 * n_min`` are considered (each new stratum
must support a normal estimate of its own).  Stratum variances for
candidate splits are estimated from per-template running statistics:

    S^2_h  ~=  sum_t (N_t / N_h) * (s_t^2 + (m_t - m_h)^2)

the within-template variance plus the between-template spread, which is
exactly what makes template-aligned strata effective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from .stratification import (
    Stratification,
    neyman_allocation,
    samples_needed,
)

__all__ = ["SplitDecision", "estimate_stratum_variance", "propose_split"]


@dataclass(frozen=True)
class SplitDecision:
    """The outcome of a profitable split search."""

    stratum_idx: int
    left: Tuple[int, ...]
    right: Tuple[int, ...]
    expected_samples: int
    baseline_samples: int

    @property
    def saving(self) -> int:
        """Expected optimizer calls saved by adopting the split."""
        return self.baseline_samples - self.expected_samples


def estimate_stratum_variance(
    templates: Sequence[int],
    template_sizes: np.ndarray,
    template_means: np.ndarray,
    template_vars: np.ndarray,
) -> float:
    """Estimate a (candidate) stratum's population variance.

    Combines within-template sample variances with the between-template
    spread of means, weighting templates by their workload share.
    """
    tids = np.fromiter(templates, dtype=np.int64)
    sizes = template_sizes[tids].astype(np.float64)
    total = sizes.sum()
    if total <= 0:
        return 0.0
    means = template_means[tids]
    variances = np.maximum(0.0, template_vars[tids])
    m_h = float((sizes * means).sum() / total)
    return float(
        (sizes * (variances + (means - m_h) ** 2)).sum() / total
    )


def _strata_variances(
    strat: Stratification,
    template_sizes: np.ndarray,
    template_means: np.ndarray,
    template_vars: np.ndarray,
) -> np.ndarray:
    return np.array(
        [
            estimate_stratum_variance(
                stratum, template_sizes, template_means, template_vars
            )
            for stratum in strat.strata
        ]
    )


def propose_split(
    strat: Stratification,
    template_sizes: np.ndarray,
    template_counts: np.ndarray,
    template_means: np.ndarray,
    template_vars: np.ndarray,
    target_var: float,
    n_min: int,
) -> Optional[SplitDecision]:
    """Search for the most profitable single-stratum split (Algorithm 2).

    Parameters
    ----------
    strat:
        The current stratification.
    template_sizes / template_counts / template_means / template_vars:
        Dense per-template arrays: workload sizes, samples drawn so
        far, running mean and running sample variance of the quantity
        being estimated (per-configuration costs for Independent
        Sampling; cost differences of the binding pair for Delta
        Sampling, which uses a single ranking across pairs).
    target_var:
        The variance the estimator must reach (from
        :func:`repro.core.prcs.pair_target_variance`).
    n_min:
        Minimum per-stratum sample size for normality.

    Returns
    -------
    SplitDecision or None
        ``None`` when no split reduces the expected total sample count.
    """
    if not np.isfinite(target_var) or target_var <= 0:
        return None

    sizes = strat.sizes
    sampled = np.array(
        [
            int(template_counts[np.fromiter(s, dtype=np.int64)].sum())
            for s in strat.strata
        ],
        dtype=np.int64,
    )
    floors = np.maximum(np.minimum(n_min, sizes), sampled)
    variances = _strata_variances(
        strat, template_sizes, template_means, template_vars
    )
    baseline = samples_needed(sizes, variances, target_var, floors=floors)

    # Expected allocation at the baseline total (line 7 of Algorithm 2).
    expected_alloc = neyman_allocation(
        sizes, np.sqrt(variances), baseline, floors=floors
    )

    best: Optional[SplitDecision] = None
    for h, stratum in enumerate(strat.strata):
        if len(stratum) < 2:
            continue
        if expected_alloc[h] < 2 * n_min:
            continue
        tids = np.fromiter(stratum, dtype=np.int64)
        # Require cost estimates for every member template before
        # ordering them (Section 5.1: "once we have seen a small number
        # of queries for each template").
        if (template_counts[tids] == 0).any():
            continue
        order = np.argsort(template_means[tids], kind="stable")
        ordered = [int(t) for t in tids[order]]
        for cut in range(1, len(ordered)):
            left = tuple(ordered[:cut])
            right = tuple(ordered[cut:])
            candidate = strat.split(h, left, right)
            cand_sampled = np.array(
                [
                    int(
                        template_counts[
                            np.fromiter(s, dtype=np.int64)
                        ].sum()
                    )
                    for s in candidate.strata
                ],
                dtype=np.int64,
            )
            cand_floors = np.maximum(
                np.minimum(n_min, candidate.sizes), cand_sampled
            )
            cand_vars = _strata_variances(
                candidate, template_sizes, template_means, template_vars
            )
            needed = samples_needed(
                candidate.sizes, cand_vars, target_var, floors=cand_floors
            )
            if needed < baseline and (
                best is None or needed < best.expected_samples
            ):
                best = SplitDecision(
                    stratum_idx=h,
                    left=left,
                    right=right,
                    expected_samples=needed,
                    baseline_samples=baseline,
                )
    return best
