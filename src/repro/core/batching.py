"""Batch-means statistical selection — the §2 related-work baseline.

Classical statistical selection and ranking [15] assumes normally
distributed measurements.  Query costs are anything but normal, so
those methods are adapted by *batching* (e.g. Steiger & Wilson [17]):
draw a large number of raw measurements, group them into batches big
enough that batch means are approximately independent and normal, and
run the selection procedure on the batch means.

The paper's §2 argument against this approach in the physical-design
setting: "because procedures of this type need to produce a number of
normally distributed estimates per configuration, they require a large
number of initial measurements (according to [15], batch sizes of over
1000 measurements are common), thereby nullifying the efficiency gain
due to sampling."

This module implements the baseline faithfully so the claim can be
*measured*: per configuration it draws ``batches x batch_size`` raw
query costs, forms batch means, picks the configuration with the best
grand mean and assesses pairwise confidence with Welch's t-statistic
over batch means.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np
from scipy.stats import t as student_t

from .prcs import bonferroni
from .sources import CostSource

__all__ = ["BatchingResult", "BatchingComparison"]


@dataclass
class BatchingResult:
    """Outcome of a batch-means selection run."""

    best_index: int
    prcs: float
    optimizer_calls: int
    grand_means: np.ndarray
    batch_means: np.ndarray  # shape (k, batches)


class BatchingComparison:
    """Batch-means selection over a cost source.

    Parameters
    ----------
    source:
        Where costs come from.
    batch_size:
        Raw measurements per batch; the literature uses 1000+ for
        non-normal data, which is exactly what makes the method
        uncompetitive here.  Batches are drawn without replacement
        per configuration (resampling when the workload is smaller
        than the demand, as the classical method assumes an unbounded
        measurement stream).
    batches:
        Number of batch means per configuration (>= 2).
    """

    def __init__(
        self,
        source: CostSource,
        batch_size: int = 1000,
        batches: int = 10,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if batches < 2:
            raise ValueError(f"need >= 2 batches, got {batches}")
        self.source = source
        self.batch_size = batch_size
        self.batches = batches
        self.rng = rng if rng is not None else np.random.default_rng()

    def _draw_batches(self, config: int) -> np.ndarray:
        """Batch means for one configuration."""
        n = self.source.n_queries
        demand = self.batch_size * self.batches
        if demand <= n:
            order = self.rng.permutation(n)[:demand]
        else:
            # The classical method assumes an unbounded stream of
            # measurements; emulate by sampling with replacement.
            order = self.rng.integers(0, n, size=demand)
        costs = np.array(
            [self.source.cost(int(q), config) for q in order]
        )
        return costs.reshape(self.batches, self.batch_size).mean(axis=1)

    def _pair_confidence(
        self, means_l: np.ndarray, means_j: np.ndarray
    ) -> float:
        """Welch-t confidence that l's true mean is below j's."""
        b = self.batches
        diff = float(means_j.mean() - means_l.mean())
        var = float(means_l.var(ddof=1) / b + means_j.var(ddof=1) / b)
        if var <= 0:
            return 1.0 if diff > 0 else (0.5 if diff == 0 else 0.0)
        se = math.sqrt(var)
        # Welch-Satterthwaite degrees of freedom.
        vl = means_l.var(ddof=1) / b
        vj = means_j.var(ddof=1) / b
        denom = (vl**2 + vj**2) / (b - 1) if (vl + vj) > 0 else 1.0
        dof = max(1.0, (vl + vj) ** 2 / denom) if denom > 0 else 1.0
        return float(student_t.cdf(diff / se, df=dof))

    def run(self) -> BatchingResult:
        """Draw all batches, select, and assess confidence."""
        k = self.source.n_configs
        calls_before = self.source.calls
        all_means = np.stack(
            [self._draw_batches(c) for c in range(k)]
        )
        grand = all_means.mean(axis=1)
        best = int(np.argmin(grand))
        pairwise: List[float] = []
        for j in range(k):
            if j == best:
                continue
            pairwise.append(
                self._pair_confidence(all_means[best], all_means[j])
            )
        return BatchingResult(
            best_index=best,
            prcs=bonferroni(pairwise) if pairwise else 1.0,
            optimizer_calls=self.source.calls - calls_before,
            grand_means=grand,
            batch_means=all_means,
        )
