"""Cost sources: where the comparison primitive gets ``Cost(q, C)`` from.

The selection procedure is agnostic to whether costs come from live
what-if optimizer calls or from a precomputed matrix:

* :class:`OptimizerCostSource` adapts a workload + configurations +
  :class:`~repro.optimizer.whatif.WhatIfOptimizer`; every evaluation is
  a real (simulated) optimizer call, the expensive unit the paper
  minimizes.
* :class:`MatrixCostSource` serves costs from a precomputed ``N x k``
  matrix.  The Monte Carlo experiments (Section 7) compute the matrix
  once and then replay thousands of selection runs against it cheaply;
  the number of *distinct* (query, configuration) lookups is still
  counted, because that is what would have been optimizer calls.
"""

from __future__ import annotations

import abc
from typing import Sequence, Set, Tuple

import numpy as np

__all__ = ["CostSource", "MatrixCostSource", "OptimizerCostSource"]


class CostSource(abc.ABC):
    """Abstract provider of per-(query, configuration) costs."""

    @property
    @abc.abstractmethod
    def n_queries(self) -> int:
        """Workload size N."""

    @property
    @abc.abstractmethod
    def n_configs(self) -> int:
        """Number of candidate configurations k."""

    @abc.abstractmethod
    def cost(self, query_idx: int, config_idx: int) -> float:
        """Optimizer-estimated cost of query ``query_idx`` in
        configuration ``config_idx``."""

    @property
    @abc.abstractmethod
    def calls(self) -> int:
        """Number of distinct optimizer invocations made so far."""


class MatrixCostSource(CostSource):
    """Costs served from a precomputed matrix (Monte Carlo support).

    Parameters
    ----------
    matrix:
        Array of shape ``(N, k)``: ``matrix[q, c] = Cost(q_q, C_c)``.
    """

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError(
                f"expected an (N, k) matrix, got shape {matrix.shape}"
            )
        self._matrix = matrix
        self._touched: Set[Tuple[int, int]] = set()

    @property
    def n_queries(self) -> int:
        return self._matrix.shape[0]

    @property
    def n_configs(self) -> int:
        return self._matrix.shape[1]

    @property
    def matrix(self) -> np.ndarray:
        """The underlying ground-truth matrix (read-only use expected)."""
        return self._matrix

    def cost(self, query_idx: int, config_idx: int) -> float:
        self._touched.add((query_idx, config_idx))
        return float(self._matrix[query_idx, config_idx])

    @property
    def calls(self) -> int:
        return len(self._touched)

    def reset_calls(self) -> None:
        """Forget which cells were touched (new simulated run)."""
        self._touched.clear()

    def true_totals(self) -> np.ndarray:
        """``Cost(WL, C_c)`` for every configuration (ground truth)."""
        return self._matrix.sum(axis=0)

    def true_best(self) -> int:
        """Index of the configuration with the lowest true total cost."""
        return int(np.argmin(self.true_totals()))


class OptimizerCostSource(CostSource):
    """Costs from live what-if calls over a workload.

    Parameters
    ----------
    workload:
        A :class:`repro.workload.workload.Workload`.
    configurations:
        The candidate configurations, index-aligned with
        ``config_idx``.
    optimizer:
        A :class:`repro.optimizer.whatif.WhatIfOptimizer`.
    """

    def __init__(self, workload, configurations: Sequence,
                 optimizer) -> None:
        self._workload = workload
        self._configs = list(configurations)
        self._optimizer = optimizer
        self._baseline_calls = optimizer.calls

    @property
    def n_queries(self) -> int:
        return self._workload.size

    @property
    def n_configs(self) -> int:
        return len(self._configs)

    @property
    def workload(self):
        """The underlying workload."""
        return self._workload

    @property
    def configurations(self) -> Sequence:
        """The candidate configurations."""
        return list(self._configs)

    def cost(self, query_idx: int, config_idx: int) -> float:
        return self._optimizer.cost(
            self._workload[query_idx], self._configs[config_idx]
        )

    @property
    def calls(self) -> int:
        return self._optimizer.calls - self._baseline_calls

    @property
    def fingerprint_hits(self) -> int:
        """Calls served from the optimizer's fingerprint cache.

        A subset of :attr:`calls` — never subtracted from the paper's
        optimizer-call accounting.
        """
        return self._optimizer.fingerprint_hits

    def materialize(self, progress=None) -> "MatrixCostSource":
        """Exhaustively evaluate into a :class:`MatrixCostSource`.

        Uses the batched column-major builder
        (:func:`repro.optimizer.batch.cost_matrix`) so configurations
        sharing query-relevant structures share plan searches.  The full
        ``N * k`` evaluations are still counted as optimizer calls.
        """
        from ..optimizer.batch import cost_matrix

        return MatrixCostSource(
            cost_matrix(
                self._workload, self._configs, self._optimizer,
                progress=progress,
            )
        )
