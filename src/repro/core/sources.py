"""Cost sources: where the comparison primitive gets ``Cost(q, C)`` from.

The selection procedure is agnostic to whether costs come from live
what-if optimizer calls or from a precomputed matrix:

* :class:`OptimizerCostSource` adapts a workload + configurations +
  :class:`~repro.optimizer.whatif.WhatIfOptimizer`; every evaluation is
  a real (simulated) optimizer call, the expensive unit the paper
  minimizes.
* :class:`MatrixCostSource` serves costs from a precomputed ``N x k``
  matrix.  The Monte Carlo experiments (Section 7) compute the matrix
  once and then replay thousands of selection runs against it cheaply;
  the number of *distinct* (query, configuration) lookups is still
  counted, because that is what would have been optimizer calls.

Both expose the scalar :meth:`CostSource.cost` and the vectorized
:meth:`CostSource.cost_many`, which evaluates a whole batch of
``(query, configuration)`` pairs in one call — the entry point of the
selector's round-level draw-ahead.  Batching never changes the paper's
accounting: ``calls`` counts *distinct* pairs exactly as the scalar
path does, whichever order or grouping the batch is served in.
"""

from __future__ import annotations

import abc
import os
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

__all__ = [
    "CostSource",
    "MatrixCostSource",
    "OptimizerCostSource",
    "resolve_cost_workers",
]


def resolve_cost_workers(workers: Optional[int] = None) -> int:
    """Effective pool size: argument, then ``REPRO_WORKERS``, then 1.

    The same convention as
    :func:`repro.experiments.parallel.resolve_workers` (duplicated here
    because the experiments package imports this module): ``0`` or a
    negative value means "all CPUs"; unset means serial.
    """
    if workers is None:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        workers = int(raw) if raw else 1
    if workers <= 0:
        workers = os.cpu_count() or 1
    return max(1, workers)


class CostSource(abc.ABC):
    """Abstract provider of per-(query, configuration) costs."""

    @property
    @abc.abstractmethod
    def n_queries(self) -> int:
        """Workload size N."""

    @property
    @abc.abstractmethod
    def n_configs(self) -> int:
        """Number of candidate configurations k."""

    @abc.abstractmethod
    def cost(self, query_idx: int, config_idx: int) -> float:
        """Optimizer-estimated cost of query ``query_idx`` in
        configuration ``config_idx``."""

    def cost_many(self, pairs) -> np.ndarray:
        """Costs of a batch of ``(query_idx, config_idx)`` pairs.

        ``pairs`` is a sequence of index pairs (or an ``(m, 2)`` int
        array); the result is aligned with it.  The default falls back
        to the scalar :meth:`cost` pair by pair, so every source
        supports batching; concrete sources override it with a
        genuinely vectorized (or pooled) evaluation.  Distinct-call
        accounting is identical to the scalar loop.
        """
        pairs = _as_pairs(pairs)
        out = np.empty(len(pairs), dtype=np.float64)
        for i, (q, c) in enumerate(pairs):
            out[i] = self.cost(int(q), int(c))
        return out

    @property
    @abc.abstractmethod
    def calls(self) -> int:
        """Number of distinct optimizer invocations made so far."""


def _as_pairs(pairs) -> np.ndarray:
    """Normalize batch input to an ``(m, 2)`` int64 array."""
    arr = np.asarray(pairs, dtype=np.int64)
    if arr.size == 0:
        return arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(
            f"expected (m, 2) index pairs, got shape {arr.shape}"
        )
    return arr


class MatrixCostSource(CostSource):
    """Costs served from a precomputed matrix (Monte Carlo support).

    Parameters
    ----------
    matrix:
        Array of shape ``(N, k)``: ``matrix[q, c] = Cost(q_q, C_c)``.

    Notes
    -----
    Distinct-call accounting stores touched cells as packed
    ``q * k + c`` integers — one machine int per cell instead of a
    ``(q, c)`` tuple object, which kept multi-round selections from
    ballooning the tracking set's memory.  :attr:`calls` semantics are
    unchanged: the number of *distinct* cells ever read.
    """

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError(
                f"expected an (N, k) matrix, got shape {matrix.shape}"
            )
        self._matrix = matrix
        #: Packed ``q * k + c`` keys of distinct cells served.
        self._touched: Set[int] = set()

    @property
    def n_queries(self) -> int:
        return self._matrix.shape[0]

    @property
    def n_configs(self) -> int:
        return self._matrix.shape[1]

    @property
    def matrix(self) -> np.ndarray:
        """The underlying ground-truth matrix (read-only use expected)."""
        return self._matrix

    def cost(self, query_idx: int, config_idx: int) -> float:
        self._touched.add(query_idx * self._matrix.shape[1] + config_idx)
        return float(self._matrix[query_idx, config_idx])

    def cost_many(self, pairs) -> np.ndarray:
        """One fancy-indexing gather for the whole batch."""
        pairs = _as_pairs(pairs)
        if len(pairs) == 0:
            return np.empty(0, dtype=np.float64)
        q = pairs[:, 0]
        c = pairs[:, 1]
        keys = q * self._matrix.shape[1] + c
        self._touched.update(keys.tolist())
        return self._matrix[q, c]

    @property
    def calls(self) -> int:
        return len(self._touched)

    def reset_calls(self) -> None:
        """Forget which cells were touched (new simulated run)."""
        self._touched.clear()

    def true_totals(self) -> np.ndarray:
        """``Cost(WL, C_c)`` for every configuration (ground truth)."""
        return self._matrix.sum(axis=0)

    def true_best(self) -> int:
        """Index of the configuration with the lowest true total cost."""
        return int(np.argmin(self.true_totals()))


# ----------------------------------------------------------------------
# worker-side state of the optional OptimizerCostSource process pool
# (initializer-shipped once per worker, mirroring experiments.parallel)
# ----------------------------------------------------------------------
_POOL_STATE: dict = {}


def _init_cost_worker(queries, configs, optimizer) -> None:
    _POOL_STATE["queries"] = queries
    _POOL_STATE["configs"] = configs
    _POOL_STATE["optimizer"] = optimizer


def _cost_chunk(chunk: List[Tuple[int, int]]) -> List[float]:
    queries = _POOL_STATE["queries"]
    configs = _POOL_STATE["configs"]
    optimizer = _POOL_STATE["optimizer"]
    return [
        optimizer.cost(queries[q], configs[c]) for q, c in chunk
    ]


class OptimizerCostSource(CostSource):
    """Costs from live what-if calls over a workload.

    Parameters
    ----------
    workload:
        A :class:`repro.workload.workload.Workload`.
    configurations:
        The candidate configurations, index-aligned with
        ``config_idx``.
    optimizer:
        A :class:`repro.optimizer.whatif.WhatIfOptimizer`.
    workers:
        Process-pool size for :meth:`cost_many` plan searches; ``None``
        defers to ``REPRO_WORKERS`` (PR 1 convention, default serial),
        ``0``/negative means all CPUs.  Results and every counter are
        identical to the serial path — workers only run the plan
        searches; the parent installs each value with exact
        distinct-call accounting.
    """

    #: Below this many uncached pairs a batch is served serially even
    #: when a pool is configured — IPC would dominate the plan searches.
    POOL_MIN_BATCH = 24

    def __init__(self, workload, configurations: Sequence,
                 optimizer, workers: Optional[int] = None) -> None:
        self._workload = workload
        self._configs = list(configurations)
        self._optimizer = optimizer
        self._baseline_calls = optimizer.calls
        self._workers = workers
        self._pool = None

    @property
    def n_queries(self) -> int:
        return self._workload.size

    @property
    def n_configs(self) -> int:
        return len(self._configs)

    @property
    def workload(self):
        """The underlying workload."""
        return self._workload

    @property
    def configurations(self) -> Sequence:
        """The candidate configurations."""
        return list(self._configs)

    def cost(self, query_idx: int, config_idx: int) -> float:
        return self._optimizer.cost(
            self._workload[query_idx], self._configs[config_idx]
        )

    # ------------------------------------------------------------------
    # batched evaluation
    # ------------------------------------------------------------------
    def _batch_order(self, pairs: np.ndarray) -> np.ndarray:
        """Evaluation order that clusters fingerprint-cache hits.

        Pairs are grouped by the query's *template* first (queries of a
        template share structure, so their refined fingerprints — and
        the per-query table contexts behind them — stay warm), then by
        query so all k lookups of a statement run back to back (the
        query-major order of :mod:`repro.optimizer.batch`), then by
        configuration for deterministic tie order.
        """
        template_ids = getattr(self._workload, "template_ids", None)
        if template_ids is None:
            return np.lexsort((pairs[:, 1], pairs[:, 0]))
        tids = np.asarray(template_ids)[pairs[:, 0]]
        return np.lexsort((pairs[:, 1], pairs[:, 0], tids))

    def cost_many(self, pairs) -> np.ndarray:
        """Batched evaluation with cache-aware ordering.

        The batch is evaluated in template-clustered order (see
        :meth:`_batch_order`) so fingerprint-cache and plan-memo hits
        run consecutively; with a pool, cache-missing plan searches fan
        out over worker processes.  Values, ``calls``, ``cache_hits``
        and ``fingerprint_hits`` all end up exactly as if the scalar
        :meth:`cost` loop had served the batch.
        """
        pairs = _as_pairs(pairs)
        out = np.empty(len(pairs), dtype=np.float64)
        if len(pairs) == 0:
            return out
        order = self._batch_order(pairs)
        workers = resolve_cost_workers(self._workers)
        if workers > 1:
            pooled = self._cost_many_pooled(pairs, order, out, workers)
            if pooled is not None:
                return pooled
        for i in order:
            out[i] = self.cost(int(pairs[i, 0]), int(pairs[i, 1]))
        return out

    def _cost_many_pooled(
        self,
        pairs: np.ndarray,
        order: np.ndarray,
        out: np.ndarray,
        workers: int,
    ) -> Optional[np.ndarray]:
        """Fan uncached plan searches out over a process pool.

        Returns ``None`` to signal "serve serially instead" (batch too
        small once cached pairs are excluded).  Each evaluated value is
        installed into the parent optimizer via
        :meth:`~repro.optimizer.whatif.WhatIfOptimizer.install_cost`
        *in batch order*, so duplicate pairs and fingerprint
        collisions hit the same counters, in the same order, as the
        serial loop.
        """
        opt = self._optimizer
        # Uncached distinct pairs, in cluster order.
        misses: List[Tuple[int, int]] = []
        seen: Set[Tuple[int, int]] = set()
        for i in order:
            q, c = int(pairs[i, 0]), int(pairs[i, 1])
            if (q, c) in seen:
                continue
            seen.add((q, c))
            if not opt.is_cached(self._workload[q], self._configs[c]):
                misses.append((q, c))
        if len(misses) < max(self.POOL_MIN_BATCH, 2 * workers):
            return None
        pool = self._ensure_pool(workers)
        n_chunks = max(1, min(workers * 4, len(misses)))
        size = -(-len(misses) // n_chunks)
        chunks = [
            misses[i:i + size] for i in range(0, len(misses), size)
        ]
        values: dict = {}
        for chunk, result in zip(chunks, pool.map(_cost_chunk, chunks)):
            for (q, c), value in zip(chunk, result):
                values[(q, c)] = value
        # Install in batch order: counters advance exactly as serially.
        for i in order:
            q, c = int(pairs[i, 0]), int(pairs[i, 1])
            key = (q, c)
            if key in values:
                out[i] = opt.install_cost(
                    self._workload[q], self._configs[c], values[key]
                )
            else:
                out[i] = self.cost(q, c)
        return out

    def _ensure_pool(self, workers: int):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_cost_worker,
                initargs=(
                    list(getattr(self._workload, "queries", self._workload)),
                    self._configs,
                    self._optimizer,
                ),
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (no-op when none was started)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __del__(self):  # pragma: no cover - interpreter-exit best effort
        try:
            self.close()
        except Exception:
            pass

    @property
    def calls(self) -> int:
        return self._optimizer.calls - self._baseline_calls

    @property
    def fingerprint_hits(self) -> int:
        """Calls served from the optimizer's fingerprint cache.

        A subset of :attr:`calls` — never subtracted from the paper's
        optimizer-call accounting.
        """
        return self._optimizer.fingerprint_hits

    def materialize(self, progress=None) -> "MatrixCostSource":
        """Exhaustively evaluate into a :class:`MatrixCostSource`.

        Uses the batched column-major builder
        (:func:`repro.optimizer.batch.cost_matrix`) so configurations
        sharing query-relevant structures share plan searches.  The full
        ``N * k`` evaluations are still counted as optimizer calls.
        """
        from ..optimizer.batch import cost_matrix

        return MatrixCostSource(
            cost_matrix(
                self._workload, self._configs, self._optimizer,
                progress=progress,
            )
        )
