"""Selectivity estimation for the simulated optimizer.

Standard System-R style estimation: per-predicate selectivities come
from the histogram layer (:mod:`repro.catalog.stats`), conjunctions
assume independence, and equi-join selectivity is ``1 / max(d_l, d_r)``
over the joined columns' distinct counts.

All estimates are deterministic functions of the schema statistics and
the query constants, which keeps ``Cost(q, C)`` a fixed number — the
quantity the paper's primitive estimates by sampling.
"""

from __future__ import annotations

from typing import Iterable

from ..catalog.stats import StatisticsCatalog
from ..queries.ast import (
    EqPredicate,
    InPredicate,
    JoinPredicate,
    Predicate,
    Query,
    RangePredicate,
)

__all__ = [
    "predicate_selectivity",
    "conjunction_selectivity",
    "table_selectivity",
    "join_selectivity",
    "filtered_cardinality",
]

#: Lower clamp on any selectivity, so cardinalities never collapse to
#: exactly zero (real optimizers behave the same way).
MIN_SELECTIVITY = 1e-9


def predicate_selectivity(
    pred: Predicate, stats: StatisticsCatalog
) -> float:
    """Histogram-estimated selectivity of one filter predicate.

    A pure function of the predicate and the catalog; when the catalog
    has its opt-in selectivity cache enabled, repeat estimates are
    dictionary lookups.
    """
    cache = stats.selectivity_cache
    if cache is not None:
        cached = cache.get(pred)
        if cached is not None:
            return cached
        sel = _predicate_selectivity(pred, stats)
        cache[pred] = sel
        return sel
    return _predicate_selectivity(pred, stats)


def _predicate_selectivity(
    pred: Predicate, stats: StatisticsCatalog
) -> float:
    col_stats = stats.column(pred.column.table, pred.column.column)
    if isinstance(pred, EqPredicate):
        sel = col_stats.estimate_eq(pred.value)
    elif isinstance(pred, RangePredicate):
        sel = col_stats.estimate_range(pred.lo, pred.hi)
    elif isinstance(pred, InPredicate):
        sel = col_stats.estimate_in(pred.values)
    else:
        raise TypeError(f"unknown predicate type {type(pred).__name__}")
    return max(MIN_SELECTIVITY, min(1.0, sel))


def conjunction_selectivity(
    predicates: Iterable[Predicate], stats: StatisticsCatalog
) -> float:
    """Selectivity of a conjunction under the independence assumption."""
    sel = 1.0
    for pred in predicates:
        sel *= predicate_selectivity(pred, stats)
    return max(MIN_SELECTIVITY, sel)


def table_selectivity(
    query: Query, table: str, stats: StatisticsCatalog
) -> float:
    """Combined selectivity of all of ``query``'s filters on ``table``."""
    cache = stats.selectivity_cache
    if cache is None:
        return conjunction_selectivity(query.filters_on(table), stats)
    key = ("tsel", query, table)
    cached = cache.get(key)
    if cached is None:
        cached = conjunction_selectivity(query.filters_on(table), stats)
        cache[key] = cached
    return cached


def filtered_cardinality(
    query: Query, table: str, stats: StatisticsCatalog
) -> float:
    """Estimated number of rows of ``table`` surviving the filters."""
    row_count = stats.table(table).row_count
    return max(1.0, row_count * table_selectivity(query, table, stats))


def join_selectivity(jp: JoinPredicate, stats: StatisticsCatalog) -> float:
    """Equi-join selectivity ``1 / max(d_left, d_right)``."""
    cache = stats.selectivity_cache
    if cache is not None:
        cached = cache.get(jp)
        if cached is not None:
            return cached
    left = stats.column(jp.left.table, jp.left.column)
    right = stats.column(jp.right.table, jp.right.column)
    denom = max(left.distinct_count, right.distinct_count, 1)
    sel = max(MIN_SELECTIVITY, 1.0 / denom)
    if cache is not None:
        cache[jp] = sel
    return sel
