"""Materialized-view matching and costing.

A view matches a SELECT query when its joined tables form a subset of
the query's FROM list and every join edge of the view appears in the
query (compared structurally, ignoring constants).  Aggregated views
additionally require an exact match of the query's table set and
GROUP BY list — the common "answer the query straight from the view"
case.

When a view matches, the optimizer replaces the covered base tables
with a single scan of the view; residual filters on covered tables
still apply (their columns must survive in the view, which join-only
views guarantee and aggregated views restrict to GROUP BY columns).
The plan search in :mod:`repro.optimizer.whatif` considers the no-view
plan and one plan per matching view, keeping the cheapest.
"""

from __future__ import annotations

from typing import List, Optional

from ..catalog.schema import Schema
from ..catalog.stats import StatisticsCatalog
from ..physical.configuration import Configuration
from ..physical.structures import MaterializedView
from ..queries.ast import Query, QueryType
from .joins import Intermediate
from .params import CostParams
from .selectivity import conjunction_selectivity, join_selectivity

__all__ = [
    "view_cardinality",
    "view_scan_cost",
    "matching_views",
    "view_intermediate",
]


def view_cardinality(
    view: MaterializedView, schema: Schema, stats: StatisticsCatalog
) -> float:
    """Estimated number of rows stored in the view.

    Join cardinality under independence, capped for aggregated views by
    the product of the GROUP BY columns' distinct counts.
    """
    rows = 1.0
    for table in view.tables:
        rows *= max(1, schema.table(table).row_count)
    for jp in view.join_predicates:
        rows *= join_selectivity(jp, stats)
    rows = max(1.0, rows)
    if view.group_by:
        groups = 1.0
        for ref in view.group_by:
            groups *= stats.column(ref.table, ref.column).distinct_count
        rows = min(rows, groups)
    return max(1.0, rows)


def _view_row_width(view: MaterializedView, schema: Schema) -> int:
    """Approximate stored row width of the view in bytes."""
    if view.group_by:
        width = sum(
            schema.column(ref.table, ref.column).width
            for ref in view.group_by
        )
        width += 8 * max(1, len(view.aggregates))
        return max(16, width)
    # Join views retain all columns of the joined tables.
    return max(16, sum(schema.table(t).row_width for t in view.tables))


def view_scan_cost(
    view: MaterializedView,
    schema: Schema,
    stats: StatisticsCatalog,
    params: CostParams,
) -> float:
    """Cost of sequentially scanning the materialized view."""
    rows = view_cardinality(view, schema, stats)
    width = _view_row_width(view, schema)
    per_page = max(1, params.page_bytes // width)
    pages = max(1, -(-int(rows) // per_page))
    return pages * params.seq_page_cost + rows * params.cpu_row_cost


def matching_views(
    query: Query, config: Configuration
) -> List[MaterializedView]:
    """All views of ``config`` applicable to ``query``.

    Applicability itself lives on
    :meth:`repro.physical.structures.MaterializedView.matches_select`,
    shared with configuration fingerprinting.
    """
    if query.qtype != QueryType.SELECT:
        return []
    return [view for view in config.views if view.matches_select(query)]


def view_intermediate(
    query: Query,
    view: MaterializedView,
    schema: Schema,
    stats: StatisticsCatalog,
    params: CostParams,
) -> Intermediate:
    """Build the join-search intermediate that scans ``view``.

    The intermediate stands in for all of the view's base tables; its
    cardinality is the view cardinality reduced by the query's residual
    filters on covered tables, and its cost is the view scan.
    """
    residual = [
        pred for pred in query.filters if pred.column.table in view.table_set
    ]
    sel = conjunction_selectivity(residual, stats) if residual else 1.0
    rows = max(1.0, view_cardinality(view, schema, stats) * sel)
    cost = view_scan_cost(view, schema, stats, params)
    return Intermediate(
        tables=view.table_set, rows=rows, cost=cost, is_base=False
    )
