"""Tunable constants of the simulated cost model.

Grouping the magic numbers in one dataclass keeps the operator costing
code readable and lets tests construct models with exaggerated
parameters (e.g. very expensive index maintenance) to probe specific
behaviours.

Units are abstract "optimizer cost units"; one unit is roughly one
sequential page read.  Only *relative* magnitudes matter for the
reproduction: the paper's primitive consumes optimizer-estimated costs
as opaque numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostParams", "COST_MODEL_VERSION"]

#: Bumped whenever the cost model's plan space or operator formulas
#: change; cached ground-truth matrices embed it so stale caches are
#: never reused across model revisions.
COST_MODEL_VERSION = 2


@dataclass(frozen=True)
class CostParams:
    """Cost-model constants.

    Attributes
    ----------
    page_bytes:
        Page size used for page-count estimation.
    seq_page_cost:
        Cost of reading one page sequentially.
    random_page_cost:
        Cost of one random page access (index lookup into the heap).
    cpu_row_cost:
        CPU cost of processing one row through an operator.
    seek_cost:
        Cost of descending a B+-tree (per seek).
    hash_build_row_cost:
        Per-row cost of building a hash table.
    hash_probe_row_cost:
        Per-row cost of probing a hash table.
    sort_row_cost:
        Per-row-per-log2(rows) cost of sorting.
    agg_row_cost:
        Per-row cost of hash aggregation.
    index_maint_cost:
        Cost of maintaining one index entry for one modified row.
    view_maint_cost:
        Cost of maintaining one materialized view for one modified base
        row (views are much more expensive to maintain than indexes).
    insert_base_cost:
        Fixed cost of inserting a row into the heap.
    modify_row_cost:
        Per-row cost of applying an UPDATE/DELETE to the heap.
    """

    page_bytes: int = 8192
    seq_page_cost: float = 1.0
    random_page_cost: float = 4.0
    cpu_row_cost: float = 0.002
    seek_cost: float = 3.0
    hash_build_row_cost: float = 0.004
    hash_probe_row_cost: float = 0.002
    sort_row_cost: float = 0.001
    agg_row_cost: float = 0.003
    index_maint_cost: float = 2.0
    view_maint_cost: float = 12.0
    insert_base_cost: float = 1.0
    modify_row_cost: float = 0.05

    def __post_init__(self) -> None:
        for name in (
            "seq_page_cost",
            "random_page_cost",
            "cpu_row_cost",
            "seek_cost",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


#: The default parameter set used throughout the experiments.
DEFAULT_PARAMS = CostParams()
