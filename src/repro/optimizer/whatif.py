"""The what-if optimizer: ``Cost(q, C)`` with caching and call counting.

This is the simulated counterpart of the "What-if" analysis API [8] the
paper builds on: given a query and a *hypothetical* configuration, it
returns the optimizer-estimated execution cost, without the structures
ever existing.  The paper's comparison primitive treats each invocation
as the expensive unit of work to minimize; :attr:`WhatIfOptimizer.calls`
counts them so experiments can report optimizer-call savings.

Plan search for a SELECT:

1. choose the best access path per base table;
2. greedily order the joins (:mod:`repro.optimizer.joins`);
3. repeat with each matching materialized view replacing its covered
   tables (:mod:`repro.optimizer.views`); keep the cheapest;
4. add aggregation / ordering costs on the final cardinality.

DML statements split into a SELECT part plus maintenance costs
(:mod:`repro.optimizer.update_cost`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..catalog.schema import Schema
from ..catalog.stats import StatisticsCatalog
from ..physical.configuration import Configuration
from ..physical.structures import Index, MaterializedView
from ..queries.ast import Query, QueryType
from .access_paths import AccessPath, best_access_path, suggest_index
from .joins import Intermediate, JoinPlan, plan_joins, plan_joins_over
from .params import DEFAULT_PARAMS, CostParams
from .selectivity import table_selectivity
from .update_cost import select_part, update_statement_cost
from .views import matching_views, view_intermediate

__all__ = ["QueryPlan", "WhatIfOptimizer"]


@dataclass(frozen=True)
class QueryPlan:
    """An explain-style description of the chosen plan."""

    total_cost: float
    output_rows: float
    access_paths: Tuple[AccessPath, ...]
    join_plan: Optional[JoinPlan]
    view: Optional[MaterializedView]
    aggregation_cost: float = 0.0
    sort_cost: float = 0.0


class WhatIfOptimizer:
    """Deterministic cost model with per-(query, configuration) caching.

    Parameters
    ----------
    schema:
        The logical schema queries run against.
    params:
        Cost-model constants (defaults to :data:`DEFAULT_PARAMS`).
    bucket_count:
        Histogram resolution for selectivity estimation.

    Notes
    -----
    :attr:`calls` counts *optimizer invocations*, i.e. cache misses;
    the paper's efficiency metric is the number of such calls.  Cache
    hits are counted separately in :attr:`cache_hits`.
    """

    def __init__(
        self,
        schema: Schema,
        params: CostParams = DEFAULT_PARAMS,
        bucket_count: int = 32,
    ) -> None:
        self.schema = schema
        self.params = params
        self.stats = StatisticsCatalog(schema, bucket_count=bucket_count)
        self.calls = 0
        self.cache_hits = 0
        self._cache: Dict[Tuple[Query, Configuration], float] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def cost(self, query: Query, config: Configuration) -> float:
        """Optimizer-estimated cost of ``query`` under ``config``.

        Cached: repeated calls for the same pair are free and do not
        increment :attr:`calls`.
        """
        key = (query, config)
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.calls += 1
        value = self.plan(query, config).total_cost
        self._cache[key] = value
        return value

    def plan(self, query: Query, config: Configuration) -> QueryPlan:
        """Full plan (not cached; used by tests, explain and bounds)."""
        if query.qtype == QueryType.SELECT:
            return self._plan_select(query, config)
        return self._plan_dml(query, config)

    def reset_counters(self) -> None:
        """Zero the call counters (cache contents are kept)."""
        self.calls = 0
        self.cache_hits = 0

    def clear_cache(self) -> None:
        """Drop all cached costs."""
        self._cache.clear()

    # ------------------------------------------------------------------
    # instrumentation ([2]-style suggestions, used for cost bounds)
    # ------------------------------------------------------------------
    def recommended_indexes(self, query: Query) -> List[Index]:
        """The per-table indexes that would be optimal for this query."""
        target = (
            query.tables
            if query.qtype == QueryType.SELECT
            else (query.target_table,)
        )
        suggestions = []
        for table in target:
            ix = suggest_index(query, table, self.stats)
            if ix is not None:
                suggestions.append(ix)
        return suggestions

    def recommended_views(self, query: Query) -> List[MaterializedView]:
        """View suggestions for multi-join / aggregated SELECT queries."""
        if query.qtype != QueryType.SELECT or query.join_count == 0:
            return []
        suggestions = [
            MaterializedView(
                tables=query.tables,
                join_predicates=query.join_predicates,
            )
        ]
        if query.group_by:
            suggestions.append(
                MaterializedView(
                    tables=query.tables,
                    join_predicates=query.join_predicates,
                    group_by=query.group_by,
                    aggregates=query.aggregates,
                )
            )
        return suggestions

    def ideal_configuration(self, query: Query) -> Configuration:
        """All structures the instrumentation deems useful for ``query``.

        The query's cost in this configuration lower-bounds its cost in
        any configuration a design tool would enumerate (Section 6.1).
        """
        return Configuration(
            indexes=self.recommended_indexes(query),
            views=self.recommended_views(query),
            name="ideal",
        )

    # ------------------------------------------------------------------
    # SELECT planning
    # ------------------------------------------------------------------
    def _plan_select(self, query: Query, config: Configuration) -> QueryPlan:
        paths = {
            table: best_access_path(
                query, table, config, self.schema, self.stats, self.params
            )
            for table in query.tables
        }
        best_join = plan_joins(
            query, paths, config, self.schema, self.stats, self.params
        )
        best_paths = tuple(paths.values())
        best_view: Optional[MaterializedView] = None

        for view in matching_views(query, config):
            seed = [
                view_intermediate(
                    query, view, self.schema, self.stats, self.params
                )
            ]
            uncovered_paths = []
            for table in query.tables:
                if table in view.table_set:
                    continue
                path = paths[table]
                seed.append(
                    Intermediate(
                        tables=frozenset([table]),
                        rows=path.output_rows,
                        cost=path.cost,
                        is_base=True,
                    )
                )
                uncovered_paths.append(path)
            candidate = plan_joins_over(
                seed, query, config, self.schema, self.stats, self.params
            )
            if candidate.total_cost < best_join.total_cost:
                best_join = candidate
                best_view = view
                best_paths = tuple(uncovered_paths)

        agg_cost = self._aggregation_cost(query, best_join.output_rows,
                                          best_view)
        sort_cost = self._sort_cost(query, best_join.output_rows,
                                    best_paths)
        total = best_join.total_cost + agg_cost + sort_cost
        return QueryPlan(
            total_cost=total,
            output_rows=best_join.output_rows,
            access_paths=best_paths,
            join_plan=best_join,
            view=best_view,
            aggregation_cost=agg_cost,
            sort_cost=sort_cost,
        )

    def _aggregation_cost(
        self,
        query: Query,
        rows: float,
        view: Optional[MaterializedView],
    ) -> float:
        if not query.aggregates and not query.group_by:
            return 0.0
        if view is not None and view.group_by:
            # The view already stores aggregated results.
            return 0.0
        return rows * self.params.agg_row_cost

    def _sort_cost(
        self,
        query: Query,
        rows: float,
        paths: Tuple[AccessPath, ...] = (),
    ) -> float:
        if not query.order_by:
            return 0.0
        # Sort elision: a single-table plan whose index delivers rows
        # already ordered on the leading ORDER BY column needs no sort.
        if len(query.tables) == 1 and len(paths) == 1:
            path = paths[0]
            lead = query.order_by[0]
            if (
                path.index is not None
                and lead.table == path.table
                and path.index.leading_column == lead.column
            ):
                return 0.0
        return rows * max(1.0, math.log2(max(2.0, rows))) \
            * self.params.sort_row_cost

    # ------------------------------------------------------------------
    # DML planning
    # ------------------------------------------------------------------
    def _plan_dml(self, query: Query, config: Configuration) -> QueryPlan:
        if query.qtype == QueryType.INSERT:
            total = update_statement_cost(
                query, config, self.schema, self.stats, self.params, 0.0
            )
            return QueryPlan(
                total_cost=total,
                output_rows=1.0,
                access_paths=(),
                join_plan=None,
                view=None,
            )
        locate = select_part(query)
        locate_plan = self._plan_select(locate, config)
        total = update_statement_cost(
            query, config, self.schema, self.stats, self.params,
            locate_plan.total_cost,
        )
        return QueryPlan(
            total_cost=total,
            output_rows=locate_plan.output_rows,
            access_paths=locate_plan.access_paths,
            join_plan=locate_plan.join_plan,
            view=None,
        )
