"""The what-if optimizer: ``Cost(q, C)`` with caching and call counting.

This is the simulated counterpart of the "What-if" analysis API [8] the
paper builds on: given a query and a *hypothetical* configuration, it
returns the optimizer-estimated execution cost, without the structures
ever existing.  The paper's comparison primitive treats each invocation
as the expensive unit of work to minimize; :attr:`WhatIfOptimizer.calls`
counts them so experiments can report optimizer-call savings.

Plan search for a SELECT:

1. choose the best access path per base table;
2. greedily order the joins (:mod:`repro.optimizer.joins`);
3. repeat with each matching materialized view replacing its covered
   tables (:mod:`repro.optimizer.views`); keep the cheapest;
4. add aggregation / ordering costs on the final cardinality.

DML statements split into a SELECT part plus maintenance costs
(:mod:`repro.optimizer.update_cost`).

The simulation always answers; a *real* what-if interface times out,
drops connections, and occasionally refuses a plan.  The selection
machinery therefore never assumes this reliability: callers that need
it wrap their cost source in
:class:`repro.faults.ResilientCostSource` (retry/backoff/timeout
policy, partial-batch salvage) — see ``docs/resilience.md`` for the
fault model and the degradation ladder.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..catalog.schema import Schema
from ..catalog.stats import StatisticsCatalog
from ..physical.configuration import Configuration, Fingerprint
from ..physical.structures import Index, MaterializedView
from ..queries.ast import Predicate, Query, QueryType
from .access_paths import (
    AccessPath,
    best_access_path,
    heap_scan_path,
    index_access_path,
    needed_columns,
    suggest_index,
)
from .joins import (
    Intermediate,
    JoinContext,
    JoinPlan,
    join_context,
    plan_joins,
    plan_joins_over,
)
from .params import DEFAULT_PARAMS, CostParams
from .selectivity import table_selectivity
from .update_cost import select_part, update_statement_cost
from .views import matching_views, view_intermediate

__all__ = ["QueryPlan", "WhatIfOptimizer"]


@dataclass(frozen=True)
class QueryPlan:
    """An explain-style description of the chosen plan."""

    total_cost: float
    output_rows: float
    access_paths: Tuple[AccessPath, ...]
    join_plan: Optional[JoinPlan]
    view: Optional[MaterializedView]
    aggregation_cost: float = 0.0
    sort_cost: float = 0.0


@dataclass
class _TableCtx:
    """Configuration-independent facts about one ``(query, table)`` pair.

    Everything access-path selection needs except the index set itself:
    computed once per pair, reused for every configuration.  The
    ``index_paths`` memo holds the path each individual index offers
    (``None`` when it offers none) — also independent of which other
    structures exist.
    """

    filters: List[Predicate]
    needed: FrozenSet[str]
    row_count: int
    output_rows: float
    heap_path: AccessPath
    index_paths: Dict[Index, Optional[AccessPath]] = field(
        default_factory=dict
    )


class WhatIfOptimizer:
    """Deterministic cost model with layered result caching.

    Parameters
    ----------
    schema:
        The logical schema queries run against.
    params:
        Cost-model constants (defaults to :data:`DEFAULT_PARAMS`).
    bucket_count:
        Histogram resolution for selectivity estimation.
    fingerprinting:
        Share cached costs across configurations whose query-relevant
        projections coincide (see
        :meth:`repro.physical.configuration.Configuration.fingerprint`).
        Disable to reproduce the plain per-pair cache.

    Notes
    -----
    Three cache layers sit under :meth:`cost`:

    1. the exact ``(query, configuration)`` cache — repeat lookups are
       free and counted in :attr:`cache_hits`;
    2. the fingerprint cache — a distinct pair whose query-relevant
       projection was already costed skips plan search.  **It still
       increments** :attr:`calls`: the paper's efficiency metric counts
       distinct what-if invocations, and fingerprint sharing is a
       wall-clock optimization of this reproduction, never a claimed
       optimizer-call saving.  Such calls are additionally counted in
       :attr:`fingerprint_hits`;
    3. plan-search memos that accelerate a fingerprint *miss* by
       reusing configuration-independent work: per-``(query, table)``
       selectivities/heap scans, the path each individual index offers,
       the best path per ``(query, table, relevant-indexes)``, the
       greedy join plan per ``(query, relevant-indexes)``, and each
       view's join candidate per ``(query, view, relevant-indexes)``.

    :attr:`calls` therefore counts exactly what it always did: the
    number of distinct ``(query, configuration)`` evaluations.  With
    ``fingerprinting=False`` every layer except the exact pair cache is
    disabled and plan search runs from scratch, reproducing the
    historical optimizer byte for byte.
    """

    def __init__(
        self,
        schema: Schema,
        params: CostParams = DEFAULT_PARAMS,
        bucket_count: int = 32,
        fingerprinting: bool = True,
    ) -> None:
        self.schema = schema
        self.params = params
        self.stats = StatisticsCatalog(schema, bucket_count=bucket_count)
        self.fingerprinting = fingerprinting
        if fingerprinting:
            self.stats.enable_selectivity_cache()
        self.calls = 0
        self.cache_hits = 0
        self.fingerprint_hits = 0
        self._cache: Dict[Tuple[Query, Configuration], float] = {}
        self._fp_cache: Dict[Tuple[Query, Fingerprint], float] = {}
        # Plan-search memos (fingerprinting only); see class Notes.
        self._plan_memo: Dict[Tuple[Query, Fingerprint], QueryPlan] = {}
        self._pruned: Dict[Fingerprint, Configuration] = {}
        self._tbl_ctx: Dict[Tuple[Query, str], _TableCtx] = {}
        self._path_memo: Dict[
            Tuple[Query, str, Tuple[Index, ...]], AccessPath
        ] = {}
        self._noview_memo: Dict[
            Tuple[Query, FrozenSet[Index]],
            Tuple[Dict[str, AccessPath], JoinPlan],
        ] = {}
        self._view_cand: Dict[
            Tuple[Query, MaterializedView, Tuple[Index, ...]],
            Tuple[JoinPlan, Tuple[AccessPath, ...]],
        ] = {}
        self._view_inter: Dict[
            Tuple[Query, MaterializedView], Intermediate
        ] = {}
        self._join_ctx: Dict[Query, JoinContext] = {}
        self._fp_refined: Dict[Tuple[Query, Fingerprint], Fingerprint] = {}
        self._join_cols: Dict[Query, Dict[str, FrozenSet[str]]] = {}
        self._select_parts: Dict[Query, Query] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def cost(self, query: Query, config: Configuration) -> float:
        """Optimizer-estimated cost of ``query`` under ``config``.

        Cached: repeated calls for the same pair are free and do not
        increment :attr:`calls`.  A distinct pair always increments
        :attr:`calls` (paper accounting), even when the fingerprint
        cache spares the plan search.
        """
        key = (query, config)
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.calls += 1
        if self.fingerprinting:
            if query.qtype == QueryType.SELECT:
                fp = self._select_fp(query, config)
            else:
                fp = config.fingerprint(query)
            fp_key = (query, fp)
            value = self._fp_cache.get(fp_key)
            if value is None:
                value = self.plan(query, config).total_cost
                self._fp_cache[fp_key] = value
            else:
                self.fingerprint_hits += 1
        else:
            value = self.plan(query, config).total_cost
        self._cache[key] = value
        return value

    def is_cached(self, query: Query, config: Configuration) -> bool:
        """Whether the exact pair is already in the result cache.

        Used by batched cost sources to decide which evaluations still
        need a plan search; checking never touches the counters.
        """
        return (query, config) in self._cache

    def install_cost(
        self, query: Query, config: Configuration, value: float
    ) -> float:
        """Adopt an externally computed cost with exact accounting.

        The batched cost source's worker pool runs plan searches in
        separate processes and hands the values back here; this method
        advances :attr:`calls`, :attr:`cache_hits` and
        :attr:`fingerprint_hits` exactly as :meth:`cost` would have for
        the same pair in the same order.  When the pair (or its
        fingerprint) is already cached, the cached value wins — so a
        worker result can never introduce a value the serial path would
        not have produced.  Returns the value now cached for the pair.
        """
        key = (query, config)
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.calls += 1
        if self.fingerprinting:
            if query.qtype == QueryType.SELECT:
                fp = self._select_fp(query, config)
            else:
                fp = config.fingerprint(query)
            fp_key = (query, fp)
            existing = self._fp_cache.get(fp_key)
            if existing is None:
                self._fp_cache[fp_key] = value
            else:
                self.fingerprint_hits += 1
                value = existing
        self._cache[key] = value
        return value

    def plan(self, query: Query, config: Configuration) -> QueryPlan:
        """Full plan (used by tests, explain and bounds).

        Does not count as an optimizer call; with fingerprinting the
        select-plan memo applies, so repeat plans are cheap.
        """
        if query.qtype == QueryType.SELECT:
            return self._plan_select(query, config)
        return self._plan_dml(query, config)

    def reset_counters(self) -> None:
        """Zero the call counters (cache contents are kept)."""
        self.calls = 0
        self.cache_hits = 0
        self.fingerprint_hits = 0

    def clear_cache(self) -> None:
        """Drop all cached costs, fingerprints and plan-search memos."""
        self._cache.clear()
        self._fp_cache.clear()
        self._plan_memo.clear()
        self._pruned.clear()
        self._tbl_ctx.clear()
        self._path_memo.clear()
        self._noview_memo.clear()
        self._view_cand.clear()
        self._view_inter.clear()
        self._join_ctx.clear()
        self._fp_refined.clear()
        self._join_cols.clear()
        self._select_parts.clear()

    @property
    def cache_stats(self) -> Dict[str, int]:
        """Counter snapshot for profiling/benchmark JSON output."""
        return {
            "calls": self.calls,
            "cache_hits": self.cache_hits,
            "fingerprint_hits": self.fingerprint_hits,
            "pair_cache_size": len(self._cache),
            "fingerprint_cache_size": len(self._fp_cache),
            "plan_cache_size": len(self._plan_memo),
            "path_memo_size": len(self._path_memo),
        }

    # ------------------------------------------------------------------
    # instrumentation ([2]-style suggestions, used for cost bounds)
    # ------------------------------------------------------------------
    def recommended_indexes(self, query: Query) -> List[Index]:
        """The per-table indexes that would be optimal for this query."""
        target = (
            query.tables
            if query.qtype == QueryType.SELECT
            else (query.target_table,)
        )
        suggestions = []
        for table in target:
            ix = suggest_index(query, table, self.stats)
            if ix is not None:
                suggestions.append(ix)
        return suggestions

    def recommended_views(self, query: Query) -> List[MaterializedView]:
        """View suggestions for multi-join / aggregated SELECT queries."""
        if query.qtype != QueryType.SELECT or query.join_count == 0:
            return []
        suggestions = [
            MaterializedView(
                tables=query.tables,
                join_predicates=query.join_predicates,
            )
        ]
        if query.group_by:
            suggestions.append(
                MaterializedView(
                    tables=query.tables,
                    join_predicates=query.join_predicates,
                    group_by=query.group_by,
                    aggregates=query.aggregates,
                )
            )
        return suggestions

    def ideal_configuration(self, query: Query) -> Configuration:
        """All structures the instrumentation deems useful for ``query``.

        The query's cost in this configuration lower-bounds its cost in
        any configuration a design tool would enumerate (Section 6.1).
        """
        return Configuration(
            indexes=self.recommended_indexes(query),
            views=self.recommended_views(query),
            name="ideal",
        )

    # ------------------------------------------------------------------
    # SELECT planning
    # ------------------------------------------------------------------
    def _plan_select(self, query: Query, config: Configuration) -> QueryPlan:
        if not self.fingerprinting:
            return self._plan_select_search(query, config)
        fp = self._select_fp(query, config)
        key = (query, fp)
        plan = self._plan_memo.get(key)
        if plan is None:
            plan = self._plan_select_fp(query, fp)
            self._plan_memo[key] = plan
        return plan

    def _select_fp(self, query: Query, config: Configuration) -> Fingerprint:
        """The query's fingerprint, refined with cost-model knowledge.

        The structural fingerprint
        (:meth:`~repro.physical.configuration.Configuration.fingerprint`)
        keeps every index that *could* seek or cover.  Plan search is
        stricter: an index is chosen as an access path only when its
        individual path strictly beats the heap scan, and that per-index
        comparison is independent of which other structures exist.  An
        index whose path does not beat the heap and whose leading key is
        not a join column (so it cannot carry an index-nested-loop join
        or pre-sort a merge join) can therefore never influence the
        plan, and dropping it from the fingerprint collapses many
        structural fingerprints into one shared cache entry.
        """
        fp = config.fingerprint(query)
        key = (query, fp)
        refined = self._fp_refined.get(key)
        if refined is None:
            refined = self._refine_fp(query, fp)
            self._fp_refined[key] = refined
        return refined

    def _refine_fp(self, query: Query, fp: Fingerprint) -> Fingerprint:
        indexes_fp, views_fp = fp
        join_cols = self._query_join_cols(query)
        kept = []
        for ix in indexes_fp:
            if ix.key_columns[0] in join_cols.get(ix.table, ()):
                kept.append(ix)
                continue
            ctx = self._table_ctx(query, ix.table)
            path = self._index_path(ctx, query, ix.table, ix)
            if path is not None and path.cost < ctx.heap_path.cost:
                kept.append(ix)
        if len(kept) == len(indexes_fp):
            return fp
        return (frozenset(kept), views_fp)

    def _query_join_cols(self, query: Query) -> Dict[str, FrozenSet[str]]:
        """Per-table join columns of the query (memoized)."""
        cols = self._join_cols.get(query)
        if cols is None:
            by_table: Dict[str, set] = {}
            for jp in query.join_predicates:
                by_table.setdefault(jp.left.table, set()).add(jp.left.column)
                by_table.setdefault(jp.right.table, set()).add(
                    jp.right.column
                )
            cols = {t: frozenset(cs) for t, cs in by_table.items()}
            self._join_cols[query] = cols
        return cols

    def _pruned_config(self, fp: Fingerprint) -> Configuration:
        """The fingerprint materialized as a (tiny) configuration.

        By construction the query costs identically under the pruned
        configuration and under any configuration projecting to ``fp``:
        a dropped index can neither seek (leading key unfiltered and
        not a join column) nor cover, so it offers no access path and
        cannot carry an index-nested-loop or merge join; a dropped view
        cannot match.
        """
        pruned = self._pruned.get(fp)
        if pruned is None:
            indexes, views = fp
            pruned = Configuration(indexes, views, name="fp")
            self._pruned[fp] = pruned
        return pruned

    def _table_ctx(self, query: Query, table: str) -> _TableCtx:
        key = (query, table)
        ctx = self._tbl_ctx.get(key)
        if ctx is None:
            sel = table_selectivity(query, table, self.stats)
            row_count = self.schema.table(table).row_count
            output_rows = max(1.0, row_count * sel)
            ctx = _TableCtx(
                filters=query.filters_on(table),
                needed=needed_columns(query, table),
                row_count=row_count,
                output_rows=output_rows,
                heap_path=heap_scan_path(
                    query, table, self.schema, self.stats, self.params,
                    output_rows,
                ),
            )
            self._tbl_ctx[key] = ctx
        return ctx

    def _best_path(
        self, query: Query, table: str, pruned: Configuration
    ) -> AccessPath:
        """Best access path from per-table and per-index memos.

        Equivalent to :func:`best_access_path` over any configuration
        whose relevant indexes on ``table`` are the pruned ones: the
        iteration order (sorted indexes) and strict ``<`` tie-breaking
        are the same.
        """
        relevant = tuple(pruned.indexes_on(table))
        key = (query, table, relevant)
        best = self._path_memo.get(key)
        if best is None:
            ctx = self._table_ctx(query, table)
            best = ctx.heap_path
            for ix in relevant:
                path = self._index_path(ctx, query, table, ix)
                if path is not None and path.cost < best.cost:
                    best = path
            self._path_memo[key] = best
        return best

    def _index_path(
        self, ctx: _TableCtx, query: Query, table: str, ix: Index
    ) -> Optional[AccessPath]:
        """The path ``ix`` alone offers (memoized per query/table)."""
        if ix in ctx.index_paths:
            return ctx.index_paths[ix]
        path = index_access_path(
            ix, table, ctx.filters, ctx.needed, ctx.row_count,
            ctx.output_rows, self.schema, self.stats, self.params,
        )
        ctx.index_paths[ix] = path
        return path

    def _plan_select_fp(self, query: Query, fp: Fingerprint) -> QueryPlan:
        """Plan search over the fingerprint's pruned configuration.

        Each sub-result is keyed by the exact slice of the fingerprint
        it depends on, so configurations that differ in one component
        (say, the view set) still share the rest of the search.
        """
        indexes_fp, _views_fp = fp
        pruned = self._pruned_config(fp)

        nv_key = (query, indexes_fp)
        noview = self._noview_memo.get(nv_key)
        if noview is None:
            paths = {
                table: self._best_path(query, table, pruned)
                for table in query.tables
            }
            join = plan_joins(
                query, paths, pruned, self.schema, self.stats, self.params,
                ctx=self._query_join_ctx(query), needed_fn=self._needed,
            )
            noview = (paths, join)
            self._noview_memo[nv_key] = noview
        paths, best_join = noview
        best_paths = tuple(paths.values())
        best_view: Optional[MaterializedView] = None

        for view in matching_views(query, pruned):
            candidate, uncovered_paths = self._view_candidate(
                query, view, paths, pruned
            )
            if candidate.total_cost < best_join.total_cost:
                best_join = candidate
                best_view = view
                best_paths = uncovered_paths

        return self._assemble_select_plan(
            query, best_join, best_paths, best_view
        )

    def _view_candidate(
        self,
        query: Query,
        view: MaterializedView,
        paths: Dict[str, AccessPath],
        pruned: Configuration,
    ) -> Tuple[JoinPlan, Tuple[AccessPath, ...]]:
        # The candidate depends on indexes only through the tables the
        # view does NOT cover (their paths, and join support into
        # them); a view covering the whole query shares one plan across
        # every configuration containing it.
        uncovered_key = tuple(
            ix
            for table in query.tables
            if table not in view.table_set
            for ix in pruned.indexes_on(table)
        )
        key = (query, view, uncovered_key)
        cand = self._view_cand.get(key)
        if cand is None:
            inter_key = (query, view)
            inter = self._view_inter.get(inter_key)
            if inter is None:
                inter = view_intermediate(
                    query, view, self.schema, self.stats, self.params
                )
                self._view_inter[inter_key] = inter
            seed = [inter]
            uncovered_paths = []
            for table in query.tables:
                if table in view.table_set:
                    continue
                path = paths[table]
                seed.append(
                    Intermediate(
                        tables=frozenset([table]),
                        rows=path.output_rows,
                        cost=path.cost,
                        is_base=True,
                    )
                )
                uncovered_paths.append(path)
            plan = plan_joins_over(
                seed, query, pruned, self.schema, self.stats, self.params,
                ctx=self._query_join_ctx(query), needed_fn=self._needed,
            )
            cand = (plan, tuple(uncovered_paths))
            self._view_cand[key] = cand
        return cand

    def _needed(self, query: Query, table: str) -> FrozenSet[str]:
        """Memoized :func:`needed_columns` (via the table-context memo)."""
        return self._table_ctx(query, table).needed

    def _query_join_ctx(self, query: Query) -> JoinContext:
        ctx = self._join_ctx.get(query)
        if ctx is None:
            ctx = join_context(query, self.stats)
            self._join_ctx[query] = ctx
        return ctx

    def _plan_select_search(
        self, query: Query, config: Configuration
    ) -> QueryPlan:
        """Plan search from scratch (the historical, memo-free path)."""
        paths = {
            table: best_access_path(
                query, table, config, self.schema, self.stats, self.params
            )
            for table in query.tables
        }
        best_join = plan_joins(
            query, paths, config, self.schema, self.stats, self.params
        )
        best_paths = tuple(paths.values())
        best_view: Optional[MaterializedView] = None

        for view in matching_views(query, config):
            seed = [
                view_intermediate(
                    query, view, self.schema, self.stats, self.params
                )
            ]
            uncovered_paths = []
            for table in query.tables:
                if table in view.table_set:
                    continue
                path = paths[table]
                seed.append(
                    Intermediate(
                        tables=frozenset([table]),
                        rows=path.output_rows,
                        cost=path.cost,
                        is_base=True,
                    )
                )
                uncovered_paths.append(path)
            candidate = plan_joins_over(
                seed, query, config, self.schema, self.stats, self.params
            )
            if candidate.total_cost < best_join.total_cost:
                best_join = candidate
                best_view = view
                best_paths = tuple(uncovered_paths)

        return self._assemble_select_plan(
            query, best_join, best_paths, best_view
        )

    def _assemble_select_plan(
        self,
        query: Query,
        best_join: JoinPlan,
        best_paths: Tuple[AccessPath, ...],
        best_view: Optional[MaterializedView],
    ) -> QueryPlan:
        agg_cost = self._aggregation_cost(query, best_join.output_rows,
                                          best_view)
        sort_cost = self._sort_cost(query, best_join.output_rows,
                                    best_paths)
        total = best_join.total_cost + agg_cost + sort_cost
        return QueryPlan(
            total_cost=total,
            output_rows=best_join.output_rows,
            access_paths=best_paths,
            join_plan=best_join,
            view=best_view,
            aggregation_cost=agg_cost,
            sort_cost=sort_cost,
        )

    def _aggregation_cost(
        self,
        query: Query,
        rows: float,
        view: Optional[MaterializedView],
    ) -> float:
        if not query.aggregates and not query.group_by:
            return 0.0
        if view is not None and view.group_by:
            # The view already stores aggregated results.
            return 0.0
        return rows * self.params.agg_row_cost

    def _sort_cost(
        self,
        query: Query,
        rows: float,
        paths: Tuple[AccessPath, ...] = (),
    ) -> float:
        if not query.order_by:
            return 0.0
        # Sort elision: a single-table plan whose index delivers rows
        # already ordered on the leading ORDER BY column needs no sort.
        if len(query.tables) == 1 and len(paths) == 1:
            path = paths[0]
            lead = query.order_by[0]
            if (
                path.index is not None
                and lead.table == path.table
                and path.index.leading_column == lead.column
            ):
                return 0.0
        return rows * max(1.0, math.log2(max(2.0, rows))) \
            * self.params.sort_row_cost

    # ------------------------------------------------------------------
    # DML planning
    # ------------------------------------------------------------------
    def _plan_dml(self, query: Query, config: Configuration) -> QueryPlan:
        if query.qtype == QueryType.INSERT:
            total = update_statement_cost(
                query, config, self.schema, self.stats, self.params, 0.0
            )
            return QueryPlan(
                total_cost=total,
                output_rows=1.0,
                access_paths=(),
                join_plan=None,
                view=None,
            )
        locate = self._select_parts.get(query)
        if locate is None:
            locate = select_part(query)
            self._select_parts[query] = locate
        locate_plan = self._plan_select(locate, config)
        total = update_statement_cost(
            query, config, self.schema, self.stats, self.params,
            locate_plan.total_cost,
        )
        return QueryPlan(
            total_cost=total,
            output_rows=locate_plan.output_rows,
            access_paths=locate_plan.access_paths,
            join_plan=locate_plan.join_plan,
            view=None,
        )
