"""Greedy join ordering and join-operator costing.

The simulated optimizer uses the classic greedy heuristic: starting
from one intermediate result per base table (costed by access-path
selection), repeatedly merge the pair of intermediates connected by a
join predicate whose result has the smallest estimated cardinality,
until one intermediate remains.  Disconnected join graphs fall back to
cross products (never produced by our generators, but handled).

Two physical join operators are considered for every merge:

* **hash join** — build on the smaller input, probe with the larger;
* **index nested-loop join** — applicable when the inner side is a
  single base table with an index whose leading key is the inner join
  column; replaces the inner's access path with per-probe seeks.

Cheaper operator wins.  This is deliberately simpler than a real
System-R DP but preserves the property the paper's statistics rely on:
join count and base cardinalities dominate cost, so query cost rankings
are stable across configurations (Section 4.2's covariance argument).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..catalog.schema import Schema
from ..catalog.stats import StatisticsCatalog
from ..physical.configuration import Configuration
from ..physical.structures import Index
from ..queries.ast import JoinPredicate, Query
from .access_paths import AccessPath, needed_columns
from .params import CostParams
from .selectivity import join_selectivity, table_selectivity

__all__ = ["JoinStep", "JoinPlan", "plan_joins", "plan_joins_over",
           "join_context", "Intermediate", "JoinContext"]

#: Precomputed per-query join facts: one ``(left_table, right_table,
#: predicate, selectivity)`` entry per join predicate, in predicate
#: order.  Pure query structure + statistics — independent of the
#: configuration — so a caller planning one query under many
#: configurations can compute it once (see ``join_context``).
JoinContext = Tuple[Tuple[str, str, JoinPredicate, float], ...]

#: ``(query, table) -> needed columns`` used by the covering check of
#: index-nested-loop joins.  Callers planning one query many times can
#: pass a memoized implementation; the default recomputes.
NeededFn = Callable[[Query, str], FrozenSet[str]]


@dataclass(frozen=True)
class JoinStep:
    """One executed join: which sides, which operator, what it cost."""

    left_tables: FrozenSet[str]
    right_tables: FrozenSet[str]
    method: str  # "hash" | "merge" | "index_nested_loop" | "cross"
    operator_cost: float
    output_rows: float
    index: Optional[Index] = None


@dataclass(frozen=True)
class JoinPlan:
    """The result of planning all joins of a query."""

    total_cost: float
    output_rows: float
    steps: Tuple[JoinStep, ...]


@dataclass
class _Intermediate:
    """A partially joined result during greedy enumeration."""

    tables: FrozenSet[str]
    rows: float
    cost: float
    is_base: bool


def join_context(query: Query, stats: StatisticsCatalog) -> JoinContext:
    """Build the :data:`JoinContext` of one query."""
    return tuple(
        (jp.left.table, jp.right.table, jp, join_selectivity(jp, stats))
        for jp in query.join_predicates
    )


def _predicates_between(
    ctx: JoinContext, a: FrozenSet[str], b: FrozenSet[str]
) -> List[Tuple[JoinPredicate, float]]:
    """Join predicates (with selectivity) spanning ``a`` and ``b``."""
    out = []
    for t1, t2, jp, sel in ctx:
        if (t1 in a and t2 in b) or (t1 in b and t2 in a):
            out.append((jp, sel))
    return out


def _hash_cost(
    left_rows: float, right_rows: float, params: CostParams
) -> float:
    build = min(left_rows, right_rows)
    probe = max(left_rows, right_rows)
    return (
        build * params.hash_build_row_cost
        + probe * params.hash_probe_row_cost
    )


def _sorted_by(
    inter: "_Intermediate",
    column: str,
    config: Configuration,
) -> bool:
    """Whether a base-table intermediate is already ordered on ``column``.

    True when some index of the configuration has ``column`` as its
    leading key (a covering ordered scan delivers sorted output).
    Joined intermediates lose ordering in this simplified model.
    """
    if not inter.is_base:
        return False
    (table,) = inter.tables
    return any(
        ix.leading_column == column for ix in config.indexes_on(table)
    )


def _merge_join_cost(
    a: "_Intermediate",
    b: "_Intermediate",
    jp: JoinPredicate,
    config: Configuration,
    params: CostParams,
) -> float:
    """Sort-merge join: sort unsorted inputs, then a linear merge."""
    cost = (a.rows + b.rows) * params.cpu_row_cost
    for inter, column in (
        (a, jp.left.column if jp.left.table in a.tables
         else jp.right.column),
        (b, jp.right.column if jp.right.table in b.tables
         else jp.left.column),
    ):
        if not _sorted_by(inter, column, config):
            cost += inter.rows * max(
                1.0, math.log2(max(2.0, inter.rows))
            ) * params.sort_row_cost
    return cost


def _inl_candidate(
    inner: _Intermediate,
    preds: Sequence[Tuple[JoinPredicate, float]],
    config: Configuration,
    query: Query,
    schema: Schema,
    stats: StatisticsCatalog,
) -> Optional[Tuple[Index, JoinPredicate]]:
    """An index usable for nested-loop into ``inner``, if any.

    The inner side must be an un-joined base table with an index whose
    leading key column is the inner column of some join predicate.
    """
    if not inner.is_base:
        return None
    (table,) = inner.tables
    for jp, _sel in preds:
        inner_col = (
            jp.left.column if jp.left.table == table else jp.right.column
        )
        for index in config.indexes_on(table):
            if index.leading_column == inner_col:
                return index, jp
    return None


def _inl_cost(
    outer_rows: float,
    inner_table: str,
    join_sel: float,
    covering: bool,
    query: Query,
    schema: Schema,
    stats: StatisticsCatalog,
    params: CostParams,
) -> float:
    inner_rows = schema.table(inner_table).row_count
    matches_per_probe = max(1.0, inner_rows * join_sel)
    per_match = params.cpu_row_cost
    if not covering:
        # Each match requires a random heap lookup.
        per_match += params.random_page_cost
    per_probe = params.seek_cost + matches_per_probe * per_match
    return outer_rows * per_probe


def _merge(
    a: _Intermediate,
    b: _Intermediate,
    preds: Sequence[Tuple[JoinPredicate, float]],
    query: Query,
    config: Configuration,
    schema: Schema,
    stats: StatisticsCatalog,
    params: CostParams,
    needed_fn: NeededFn = needed_columns,
) -> Tuple[_Intermediate, JoinStep]:
    """Join two intermediates along ``preds`` with the cheaper operator."""
    combined_sel = 1.0
    for _jp, sel in preds:
        combined_sel *= sel
    output_rows = max(1.0, a.rows * b.rows * combined_sel)

    hash_cost = _hash_cost(a.rows, b.rows, params)
    best_method = "hash"
    best_cost = a.cost + b.cost + hash_cost
    best_operator_cost = hash_cost
    best_index: Optional[Index] = None

    # Sort-merge join (single equi-join predicate): wins when ordered
    # covering indexes make both inputs pre-sorted.
    if len(preds) == 1:
        merge_cost = _merge_join_cost(a, b, preds[0][0], config, params)
        total = a.cost + b.cost + merge_cost
        if total < best_cost:
            best_cost = total
            best_method = "merge"
            best_operator_cost = merge_cost

    # Try index nested-loop with either side as the inner base table.
    for outer, inner in ((a, b), (b, a)):
        candidate = _inl_candidate(inner, preds, config, query, schema, stats)
        if candidate is None:
            continue
        index, _jp = candidate
        (inner_table,) = inner.tables
        covering = index.covers(needed_fn(query, inner_table))
        operator_cost = _inl_cost(
            outer.rows, inner_table, combined_sel, covering, query, schema,
            stats, params,
        )
        # INL replaces the inner access path: its scan cost is not paid.
        total = outer.cost + operator_cost
        # Filters on the inner table still reduce the output.
        inner_filter_sel = table_selectivity(query, inner_table, stats)
        inl_output = max(
            1.0, outer.rows * schema.table(inner_table).row_count
            * combined_sel * inner_filter_sel
        )
        if total < best_cost:
            best_cost = total
            best_method = "index_nested_loop"
            best_operator_cost = operator_cost
            best_index = index
            output_rows = inl_output

    merged = _Intermediate(
        tables=a.tables | b.tables,
        rows=output_rows,
        cost=best_cost,
        is_base=False,
    )
    step = JoinStep(
        left_tables=a.tables,
        right_tables=b.tables,
        method=best_method,
        operator_cost=best_operator_cost,
        output_rows=output_rows,
        index=best_index,
    )
    return merged, step


def plan_joins(
    query: Query,
    paths: Dict[str, AccessPath],
    config: Configuration,
    schema: Schema,
    stats: StatisticsCatalog,
    params: CostParams,
    ctx: Optional[JoinContext] = None,
    needed_fn: NeededFn = needed_columns,
) -> JoinPlan:
    """Greedily order and cost all joins of ``query``.

    ``paths`` maps each table in the FROM list (that is *not* replaced
    by a materialized view) to its chosen access path.  Tables replaced
    by a view are handled by the caller, which passes a synthetic
    intermediate instead; see :mod:`repro.optimizer.whatif`.
    """
    intermediates: List[_Intermediate] = [
        _Intermediate(
            tables=frozenset([t]),
            rows=path.output_rows,
            cost=path.cost,
            is_base=True,
        )
        for t, path in paths.items()
    ]
    return plan_joins_over(
        intermediates, query, config, schema, stats, params, ctx, needed_fn
    )


def plan_joins_over(
    intermediates: List[_Intermediate],
    query: Query,
    config: Configuration,
    schema: Schema,
    stats: StatisticsCatalog,
    params: CostParams,
    ctx: Optional[JoinContext] = None,
    needed_fn: NeededFn = needed_columns,
) -> JoinPlan:
    """Greedy join planning over pre-built intermediates.

    Exposed separately so the view-matching layer can seed the search
    with a view-scan intermediate standing in for several base tables.
    ``ctx`` optionally supplies the query's precomputed
    :data:`JoinContext`; when omitted it is built in place (identical
    values either way).
    """
    work = list(intermediates)
    if ctx is None:
        ctx = join_context(query, stats)
    steps: List[JoinStep] = []

    while len(work) > 1:
        best_pair: Optional[Tuple[int, int]] = None
        best_rows = math.inf
        for i in range(len(work)):
            for j in range(i + 1, len(work)):
                between = _predicates_between(
                    ctx, work[i].tables, work[j].tables
                )
                if not between:
                    continue
                sel = 1.0
                for _jp, s in between:
                    sel *= s
                rows = work[i].rows * work[j].rows * sel
                if rows < best_rows:
                    best_rows = rows
                    best_pair = (i, j)
        if best_pair is None:
            # Disconnected join graph: cross product of the two smallest.
            work.sort(key=lambda im: im.rows)
            a, b = work[0], work[1]
            rows = max(1.0, a.rows * b.rows)
            operator_cost = rows * params.cpu_row_cost
            merged = _Intermediate(
                a.tables | b.tables, rows, a.cost + b.cost + operator_cost,
                is_base=False,
            )
            steps.append(
                JoinStep(a.tables, b.tables, "cross", operator_cost, rows)
            )
            work = [merged] + work[2:]
            continue
        i, j = best_pair
        between = _predicates_between(ctx, work[i].tables, work[j].tables)
        merged, step = _merge(
            work[i], work[j], between, query, config, schema, stats, params,
            needed_fn,
        )
        steps.append(step)
        work = [w for k, w in enumerate(work) if k not in (i, j)]
        work.append(merged)

    final = work[0]
    return JoinPlan(
        total_cost=final.cost,
        output_rows=final.rows,
        steps=tuple(steps),
    )


#: Public alias so the view-matching layer can seed the greedy search
#: with a synthetic intermediate standing in for a view scan.
Intermediate = _Intermediate
