"""Single-table access-path selection.

For each table referenced by a query, the optimizer chooses the
cheapest among:

* **heap scan** — read every page of the table;
* **index seek** — descend an index whose key prefix matches filter
  predicates, read the qualifying fraction of leaf pages and, unless
  the index covers all needed columns, perform one random heap lookup
  per qualifying row;
* **covering index scan** — sequentially read a (narrower) covering
  index instead of the heap, with no seek predicate.

The module also implements the optimizer *instrumentation* of
Bruno/Chaudhuri [2] that the paper's Section 6.1 relies on: for every
table access considered, :func:`suggest_index` emits the index that
would be optimal for that access.  The union of suggestions over a
query defines its "ideal" configuration, whose cost lower-bounds the
query's cost in any enumerated configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from ..catalog.schema import Schema
from ..catalog.stats import StatisticsCatalog
from ..physical.configuration import Configuration
from ..physical.structures import Index
from ..queries.ast import EqPredicate, Predicate, Query
from .params import CostParams
from .selectivity import (
    predicate_selectivity,
    table_selectivity,
)

__all__ = [
    "AccessPath",
    "needed_columns",
    "heap_scan_path",
    "index_access_path",
    "best_access_path",
    "suggest_index",
]


@dataclass(frozen=True)
class AccessPath:
    """The chosen way of reading one table's qualifying rows.

    Attributes
    ----------
    kind:
        ``"heap_scan"``, ``"index_seek"`` or ``"covering_scan"``.
    table:
        The accessed table.
    index:
        The index used, or ``None`` for a heap scan.
    cost:
        Optimizer cost units to produce the qualifying rows.
    output_rows:
        Estimated number of rows surviving *all* filters on the table.
    """

    kind: str
    table: str
    index: Optional[Index]
    cost: float
    output_rows: float


def needed_columns(query: Query, table: str) -> FrozenSet[str]:
    """Columns of ``table`` the query touches (for covering checks)."""
    return frozenset(
        ref.column for ref in query.referenced_columns() if ref.table == table
    )


def _key_prefix_selectivity(
    index: Index, filters: List[Predicate], stats: StatisticsCatalog
) -> Tuple[float, int]:
    """Selectivity of the maximal usable key prefix of ``index``.

    Walks the key columns in order; an equality filter lets the prefix
    continue, a range/IN filter is usable but terminates the prefix
    (classic B+-tree seek semantics).  Returns ``(selectivity,
    used_columns)``; ``used_columns == 0`` means the index cannot seek.
    """
    by_column = {f.column.column: f for f in filters}
    sel = 1.0
    used = 0
    for key in index.key_columns:
        pred = by_column.get(key)
        if pred is None:
            break
        sel *= predicate_selectivity(pred, stats)
        used += 1
        if not isinstance(pred, EqPredicate):
            break
    return sel, used


def heap_scan_path(
    query: Query,
    table: str,
    schema: Schema,
    stats: StatisticsCatalog,
    params: CostParams,
    output_rows: float,
) -> AccessPath:
    tbl = schema.table(table)
    pages = tbl.pages(params.page_bytes)
    cost = pages * params.seq_page_cost + tbl.row_count * params.cpu_row_cost
    return AccessPath("heap_scan", table, None, cost, output_rows)


def index_access_path(
    index: Index,
    table: str,
    filters: List[Predicate],
    needed: FrozenSet[str],
    row_count: int,
    output_rows: float,
    schema: Schema,
    stats: StatisticsCatalog,
    params: CostParams,
) -> Optional[AccessPath]:
    """The path (seek or covering scan) ``index`` offers, if any.

    Depends only on the index and per-``(query, table)`` quantities —
    never on the rest of the configuration — which is what lets the
    what-if optimizer cost each index once and reuse the result across
    every configuration containing it.
    """
    leaf_pages = index.leaf_pages(schema, params.page_bytes)
    covering = index.covers(needed)
    key_sel, used = _key_prefix_selectivity(index, filters, stats)
    if used > 0:
        matching = max(1.0, row_count * key_sel)
        cost = (
            params.seek_cost
            + key_sel * leaf_pages * params.seq_page_cost
            + matching * params.cpu_row_cost
        )
        if not covering:
            cost += matching * params.random_page_cost
        return AccessPath("index_seek", table, index, cost, output_rows)
    if covering:
        cost = (
            leaf_pages * params.seq_page_cost
            + row_count * params.cpu_row_cost
        )
        return AccessPath("covering_scan", table, index, cost, output_rows)
    return None


def _index_paths(
    query: Query,
    table: str,
    schema: Schema,
    stats: StatisticsCatalog,
    params: CostParams,
    config: Configuration,
    needed: FrozenSet[str],
    output_rows: float,
) -> List[AccessPath]:
    filters = query.filters_on(table)
    row_count = schema.table(table).row_count
    paths: List[AccessPath] = []
    for index in config.indexes_on(table):
        path = index_access_path(
            index, table, filters, needed, row_count, output_rows,
            schema, stats, params,
        )
        if path is not None:
            paths.append(path)
    return paths


def best_access_path(
    query: Query,
    table: str,
    config: Configuration,
    schema: Schema,
    stats: StatisticsCatalog,
    params: CostParams,
) -> AccessPath:
    """Choose the cheapest access path for ``table`` under ``config``."""
    sel = table_selectivity(query, table, stats)
    output_rows = max(1.0, schema.table(table).row_count * sel)
    best = heap_scan_path(query, table, schema, stats, params, output_rows)
    for path in _index_paths(
        query, table, schema, stats, params, config, needed_columns(
            query, table
        ), output_rows,
    ):
        if path.cost < best.cost:
            best = path
    return best


def suggest_index(
    query: Query, table: str, stats: StatisticsCatalog
) -> Optional[Index]:
    """The index that would be optimal for this table access ([2]-style).

    Key columns are the filter columns ordered by ascending estimated
    selectivity with equality predicates first (so the most selective
    equality predicates form the seek prefix); all other referenced
    columns of the table become INCLUDE columns, making the suggestion
    covering.  Returns ``None`` when the query touches no columns of
    the table (nothing to index).
    """
    filters = query.filters_on(table)
    needed = needed_columns(query, table)
    if not needed:
        return None

    def sort_key(pred: Predicate) -> Tuple[int, float, str]:
        eq_first = 0 if isinstance(pred, EqPredicate) else 1
        return (
            eq_first,
            predicate_selectivity(pred, stats),
            pred.column.column,
        )

    ordered = sorted(filters, key=sort_key)
    keys: List[str] = []
    for pred in ordered:
        if pred.column.column not in keys:
            keys.append(pred.column.column)
    if not keys:
        # No filters: suggest a covering index over the needed columns
        # (narrow scan beats the heap when the table is wide).
        keys = sorted(needed)[:1]
    includes = tuple(sorted(needed - set(keys)))
    return Index(table, tuple(keys), includes)
