"""Simulated what-if query optimizer.

Provides ``Cost(q, C)`` — the optimizer-estimated cost of executing a
query in a hypothetical physical configuration — via
:class:`~repro.optimizer.whatif.WhatIfOptimizer`, together with the
selectivity, access-path, join, view and DML costing layers beneath it.
"""

from .access_paths import AccessPath, best_access_path, needed_columns, \
    suggest_index
from .batch import MatrixBuildStats, cost_matrix, cost_matrix_with_stats
from .explain import explain_plan
from .joins import JoinPlan, JoinStep, plan_joins
from .params import DEFAULT_PARAMS, CostParams
from .selectivity import (
    conjunction_selectivity,
    filtered_cardinality,
    join_selectivity,
    predicate_selectivity,
    table_selectivity,
)
from .update_cost import affected_rows, select_part
from .views import matching_views, view_cardinality, view_scan_cost
from .whatif import QueryPlan, WhatIfOptimizer

__all__ = [
    "explain_plan",
    "MatrixBuildStats",
    "cost_matrix",
    "cost_matrix_with_stats",
    "AccessPath",
    "best_access_path",
    "needed_columns",
    "suggest_index",
    "JoinPlan",
    "JoinStep",
    "plan_joins",
    "DEFAULT_PARAMS",
    "CostParams",
    "conjunction_selectivity",
    "filtered_cardinality",
    "join_selectivity",
    "predicate_selectivity",
    "table_selectivity",
    "affected_rows",
    "select_part",
    "matching_views",
    "view_cardinality",
    "view_scan_cost",
    "QueryPlan",
    "WhatIfOptimizer",
]
