"""Textual EXPLAIN output for simulated query plans.

Developer-facing: renders a :class:`~repro.optimizer.whatif.QueryPlan`
as an indented operator tree, the way one would inspect a real
optimizer's choices.  Used by the examples and by humans debugging why
a configuration did (not) help a query.
"""

from __future__ import annotations

from typing import List

from .whatif import QueryPlan

__all__ = ["explain_plan"]


def _fmt_cost(value: float) -> str:
    return f"{value:,.1f}"


def explain_plan(plan: QueryPlan) -> str:
    """Render a plan as indented text.

    Example output::

        Plan  cost=1,224.9  rows=14,598
          HashJoin  cost=202.9  rows=14,598
            HeapScan orders  cost=982.0  rows=100,000
            HeapScan customer  cost=40.0  rows=730
    """
    lines: List[str] = [
        f"Plan  cost={_fmt_cost(plan.total_cost)}  "
        f"rows={plan.output_rows:,.0f}"
    ]
    indent = "  "
    if plan.sort_cost > 0:
        lines.append(f"{indent}Sort  cost={_fmt_cost(plan.sort_cost)}")
        indent += "  "
    if plan.aggregation_cost > 0:
        lines.append(
            f"{indent}Aggregate  cost={_fmt_cost(plan.aggregation_cost)}"
        )
        indent += "  "

    if plan.view is not None:
        lines.append(
            f"{indent}ViewScan {plan.view.name}"
        )
    if plan.join_plan is not None and plan.join_plan.steps:
        for step in reversed(plan.join_plan.steps):
            method = {
                "hash": "HashJoin",
                "merge": "MergeJoin",
                "index_nested_loop": "IndexNestedLoop",
                "cross": "CrossProduct",
            }.get(step.method, step.method)
            extra = f" via {step.index.name}" if step.index else ""
            lines.append(
                f"{indent}{method}{extra}  "
                f"cost={_fmt_cost(step.operator_cost)}  "
                f"rows={step.output_rows:,.0f}"
            )
            indent += "  "
    for path in plan.access_paths:
        kind = {
            "heap_scan": "HeapScan",
            "index_seek": "IndexSeek",
            "covering_scan": "CoveringScan",
        }.get(path.kind, path.kind)
        via = f" via {path.index.name}" if path.index else ""
        lines.append(
            f"{indent}{kind} {path.table}{via}  "
            f"cost={_fmt_cost(path.cost)}  rows={path.output_rows:,.0f}"
        )
    return "\n".join(lines)
