"""Batched ground-truth cost-matrix construction.

Monte Carlo experiments (Section 7) replay selection runs against an
``N x k`` matrix of true costs — computing it is exactly the exhaustive
what-if evaluation the paper's primitive avoids, and the slowest step
of every benchmark setup.  :func:`cost_matrix` builds that matrix by
sweeping the configurations for one query at a time (column-major
across the configuration axis): consecutive evaluations share the
query, so the optimizer's fingerprint cache collapses every group of
configurations with the same query-relevant projection into a single
plan search, and the access-path memo shares per-table work between
the remaining groups.

Paper accounting is preserved exactly: every ``(query, configuration)``
cell still counts as one optimizer call (``optimizer.calls`` rises by
``N * k`` for a fresh build); fingerprint sharing only buys wall time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from ..physical.configuration import Configuration
from ..queries.ast import Query
from .whatif import WhatIfOptimizer

__all__ = ["MatrixBuildStats", "cost_matrix", "cost_matrix_with_stats"]

#: Progress callback signature: ``(queries_done, queries_total)``.
ProgressFn = Callable[[int, int], None]


@dataclass(frozen=True)
class MatrixBuildStats:
    """Instrumentation of one matrix build.

    ``optimizer_calls`` is the paper metric (distinct evaluations);
    ``fingerprint_hits`` of them were served from the fingerprint cache
    and cost no plan search.
    """

    n_queries: int
    n_configs: int
    wall_seconds: float
    optimizer_calls: int
    cache_hits: int
    fingerprint_hits: int

    @property
    def cells(self) -> int:
        """Matrix size ``N * k``."""
        return self.n_queries * self.n_configs

    @property
    def cells_per_second(self) -> float:
        """Build throughput."""
        return self.cells / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def fingerprint_hit_rate(self) -> float:
        """Fraction of optimizer calls served by the fingerprint layer."""
        if self.optimizer_calls == 0:
            return 0.0
        return self.fingerprint_hits / self.optimizer_calls

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly summary (used in benchmark output)."""
        return {
            "n_queries": self.n_queries,
            "n_configs": self.n_configs,
            "cells": self.cells,
            "wall_seconds": self.wall_seconds,
            "cells_per_second": self.cells_per_second,
            "optimizer_calls": self.optimizer_calls,
            "cache_hits": self.cache_hits,
            "fingerprint_hits": self.fingerprint_hits,
            "fingerprint_hit_rate": self.fingerprint_hit_rate,
        }


def _queries_of(workload) -> Sequence[Query]:
    """Accept a Workload or any sequence of queries."""
    return getattr(workload, "queries", workload)


def cost_matrix_with_stats(
    workload,
    configurations: Sequence[Configuration],
    optimizer: WhatIfOptimizer,
    progress: Optional[ProgressFn] = None,
    progress_every: int = 100,
    workers: Optional[int] = None,
) -> Tuple[np.ndarray, MatrixBuildStats]:
    """Build the ``N x k`` ground-truth matrix, returning build stats.

    Parameters
    ----------
    workload:
        A :class:`repro.workload.workload.Workload` or a plain sequence
        of queries.
    configurations:
        The candidate configurations (matrix columns, in order).
    optimizer:
        The what-if optimizer; its caches persist across calls, so
        rebuilding an overlapping matrix is cheap.
    progress:
        Optional ``(queries_done, queries_total)`` callback, invoked
        every ``progress_every`` queries and once at the end.
    workers:
        Process-pool size for the plan searches, resolved like
        :func:`repro.core.sources.resolve_cost_workers` (``None``
        defers to ``REPRO_WORKERS``, default serial).  With more than
        one worker the build runs through
        :meth:`~repro.core.sources.OptimizerCostSource.cost_many` in
        query stripes; call counters and cell values are identical to
        the serial sweep.
    """
    queries = _queries_of(workload)
    configs = list(configurations)
    n, k = len(queries), len(configs)
    matrix = np.empty((n, k), dtype=np.float64)
    calls0 = optimizer.calls
    hits0 = optimizer.cache_hits
    fp0 = optimizer.fingerprint_hits
    start = time.perf_counter()

    from ..core.sources import OptimizerCostSource, resolve_cost_workers

    if resolve_cost_workers(workers) > 1 and n * k > 0:
        source = OptimizerCostSource(
            workload, configs, optimizer, workers=workers
        )
        try:
            stripe = max(1, progress_every)
            cols = np.arange(k, dtype=np.int64)
            for lo in range(0, n, stripe):
                hi = min(lo + stripe, n)
                rows = np.arange(lo, hi, dtype=np.int64)
                pairs = np.stack(
                    [np.repeat(rows, k), np.tile(cols, hi - lo)], axis=1
                )
                matrix[lo:hi] = source.cost_many(pairs).reshape(
                    hi - lo, k
                )
                if progress is not None and hi < n:
                    progress(hi, n)
        finally:
            source.close()
    else:
        cost = optimizer.cost
        for qi, query in enumerate(queries):
            row = matrix[qi]
            for ci, config in enumerate(configs):
                row[ci] = cost(query, config)
            if progress is not None and (qi + 1) % progress_every == 0:
                progress(qi + 1, n)
    wall = time.perf_counter() - start
    if progress is not None:
        progress(n, n)
    stats = MatrixBuildStats(
        n_queries=n,
        n_configs=k,
        wall_seconds=wall,
        optimizer_calls=optimizer.calls - calls0,
        cache_hits=optimizer.cache_hits - hits0,
        fingerprint_hits=optimizer.fingerprint_hits - fp0,
    )
    return matrix, stats


def cost_matrix(
    workload,
    configurations: Sequence[Configuration],
    optimizer: WhatIfOptimizer,
    progress: Optional[ProgressFn] = None,
    progress_every: int = 100,
    workers: Optional[int] = None,
) -> np.ndarray:
    """Build the ``N x k`` ground-truth matrix (stats discarded)."""
    matrix, _stats = cost_matrix_with_stats(
        workload, configurations, optimizer,
        progress=progress, progress_every=progress_every,
        workers=workers,
    )
    return matrix
