"""Costing of DML statements (UPDATE / DELETE / INSERT).

Following Section 6.1 of the paper, a complex update statement is split
into a SELECT part (locating the affected rows, costed through normal
access-path selection) and a pure UPDATE part whose cost "grows with
its selectivity" — modelled as per-affected-row heap modification plus
maintenance of every physical structure the modification touches:

* UPDATE maintains the indexes whose key or include columns intersect
  the SET columns, and every view joining the target table;
* DELETE maintains all indexes on the table and all views over it;
* INSERT (one row) pays a fixed base cost plus per-structure entry
  maintenance.

The expensive view maintenance term is what creates the select/update
trade-off footnote 1 of the paper highlights: a configuration full of
views wins on SELECT-heavy workloads and loses on DML-heavy ones.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from ..catalog.schema import Schema
from ..catalog.stats import StatisticsCatalog
from ..physical.configuration import Configuration
from ..physical.structures import Index, MaterializedView
from ..queries.ast import Query, QueryType
from .params import CostParams
from .selectivity import table_selectivity

__all__ = [
    "select_part",
    "affected_rows",
    "touched_indexes",
    "touched_views",
    "maintenance_cost",
    "update_statement_cost",
]


def select_part(query: Query) -> Query:
    """The SELECT locating the rows a DML statement affects.

    Mirrors the paper's example: ``UPDATE R SET A1 = A3 WHERE A2 < 4``
    separates into ``SELECT ... FROM R WHERE A2 < 4`` plus a pure
    update of the qualifying rows.
    """
    if query.qtype not in QueryType.DML:
        raise ValueError(
            f"select_part is only defined for DML, got {query.qtype}"
        )
    if query.qtype == QueryType.INSERT:
        raise ValueError("INSERT statements have no SELECT part")
    return Query(
        qtype=QueryType.SELECT,
        tables=query.tables,
        filters=query.filters,
        select_columns=tuple(
            ref for ref in query.referenced_columns()
        ),
    )


def affected_rows(
    query: Query, schema: Schema, stats: StatisticsCatalog
) -> float:
    """Estimated number of rows the DML statement modifies."""
    if query.qtype == QueryType.INSERT:
        return 1.0
    table = query.target_table
    sel = table_selectivity(query, table, stats)
    return max(1.0, schema.table(table).row_count * sel)


def touched_indexes(query: Query, config: Configuration) -> List[Index]:
    """Indexes whose entries the statement must maintain."""
    table = query.target_table
    indexes = config.indexes_on(table)
    if query.qtype in (QueryType.DELETE, QueryType.INSERT):
        return indexes
    modified = {ref.column for ref in query.set_columns}
    return [
        ix for ix in indexes if modified & set(ix.all_columns)
    ]


def touched_views(
    query: Query, config: Configuration
) -> List[MaterializedView]:
    """Views joining the statement's target table (all must be refreshed)."""
    table = query.target_table
    return [v for v in config.views if table in v.table_set]


def maintenance_cost(
    query: Query,
    config: Configuration,
    schema: Schema,
    stats: StatisticsCatalog,
    params: CostParams,
) -> float:
    """Physical-structure maintenance cost of the DML statement."""
    rows = affected_rows(query, schema, stats)
    index_count = len(touched_indexes(query, config))
    view_count = len(touched_views(query, config))
    return rows * (
        index_count * params.index_maint_cost
        + view_count * params.view_maint_cost
    )


def update_statement_cost(
    query: Query,
    config: Configuration,
    schema: Schema,
    stats: StatisticsCatalog,
    params: CostParams,
    select_part_cost: float,
) -> float:
    """Total cost of a DML statement given its SELECT part's cost."""
    if query.qtype == QueryType.INSERT:
        base = params.insert_base_cost
        return base + maintenance_cost(query, config, schema, stats, params)
    rows = affected_rows(query, schema, stats)
    heap = rows * params.modify_row_cost
    return (
        select_part_cost
        + heap
        + maintenance_cost(query, config, schema, stats, params)
    )
