"""Retrying cost-source wrapper implementing a :class:`FaultPolicy`.

Every scalar call gets up to ``retries`` extra attempts with jittered
exponential backoff; calls exceeding the cooperative timeout are
discarded and retried like transient failures.  Batch calls salvage
partial results: entries a :class:`BatchCostError` marks as successful
are kept, and only the failed pairs re-run through the scalar retry
path — the accumulated sample is never thrown away because one pair
misbehaved.

With no faults firing the wrapper is a pass-through: values,
evaluation order and distinct-call accounting are bit-identical to the
unwrapped source.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

import numpy as np

from ..core.sources import CostSource, _as_pairs
from .policy import (
    BatchCostError,
    CostSourceError,
    CostSourceExhausted,
    CostTimeoutError,
    FaultPolicy,
    PermanentCostError,
)

__all__ = ["ResilientCostSource"]


class ResilientCostSource(CostSource):
    """Apply a :class:`FaultPolicy` around any cost source.

    Parameters
    ----------
    source:
        The wrapped source (possibly an
        :class:`~repro.faults.injection.InjectedFaultCostSource`).
    policy:
        Retry/backoff/timeout/budget policy.
    sleep / clock:
        Injection points for backoff sleeping and elapsed-time
        measurement; tests pass a
        :class:`~repro.faults.injection.FakeClock` for both so no real
        time passes.
    """

    def __init__(
        self,
        source: CostSource,
        policy: FaultPolicy = FaultPolicy(),
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.source = source
        self.policy = policy
        self._sleep = sleep
        self._clock = clock
        self._jitter_rng = np.random.default_rng((policy.seed,))
        self._failed_attempts = 0
        #: Observability counters, exposed via :meth:`fault_stats`.
        self.retries_total = 0
        self.transient_failures = 0
        self.timeouts = 0
        self.permanent_failures = 0
        self.salvaged_batches = 0
        self.salvaged_values = 0
        self.fallback_pairs = 0
        self.slow_batches = 0
        self.backoff_seconds = 0.0

    # -- CostSource surface -------------------------------------------
    @property
    def n_queries(self) -> int:
        return self.source.n_queries

    @property
    def n_configs(self) -> int:
        return self.source.n_configs

    @property
    def calls(self) -> int:
        return self.source.calls

    def __getattr__(self, name: str):
        # Transparent proxy for source-specific extras (true_best,
        # reset_calls, close, install_cost hooks, ...).
        return getattr(self.source, name)

    def fault_stats(self) -> Dict[str, float]:
        """Counters describing what the policy had to absorb."""
        return {
            "retries_total": self.retries_total,
            "transient_failures": self.transient_failures,
            "timeouts": self.timeouts,
            "permanent_failures": self.permanent_failures,
            "salvaged_batches": self.salvaged_batches,
            "salvaged_values": self.salvaged_values,
            "fallback_pairs": self.fallback_pairs,
            "slow_batches": self.slow_batches,
            "backoff_seconds": self.backoff_seconds,
            "failed_attempts": self._failed_attempts,
        }

    # -- retry machinery ----------------------------------------------
    def _spend_failure(self, q: int, c: int, attempts: int,
                       error: BaseException) -> None:
        """Count one failed attempt against the failure budget."""
        self._failed_attempts += 1
        budget = self.policy.failure_budget
        if budget is not None and self._failed_attempts >= budget:
            raise CostSourceExhausted(
                f"failure budget of {budget} attempts spent "
                f"(last failure at pair ({q}, {c}))",
                query_idx=q,
                config_idx=c,
                attempts=attempts,
                last_error=error,
            ) from error

    def _backoff(self, retry_index: int) -> None:
        delay = self.policy.backoff(retry_index, self._jitter_rng)
        if delay > 0:
            self.backoff_seconds += delay
            self._sleep(delay)

    def cost(self, query_idx: int, config_idx: int) -> float:
        q, c = int(query_idx), int(config_idx)
        policy = self.policy
        last_error: Optional[BaseException] = None
        attempts = 0
        while attempts <= policy.retries:
            attempts += 1
            start = self._clock()
            try:
                value = self.source.cost(q, c)
            except PermanentCostError as exc:
                self.permanent_failures += 1
                self._spend_failure(q, c, attempts, exc)
                raise CostSourceExhausted(
                    f"permanent failure at pair ({q}, {c}) "
                    f"after {attempts} attempt(s): {exc}",
                    query_idx=q,
                    config_idx=c,
                    attempts=attempts,
                    last_error=exc,
                ) from exc
            except CostSourceError as exc:
                self.transient_failures += 1
                last_error = exc
                self._spend_failure(q, c, attempts, exc)
            else:
                elapsed = self._clock() - start
                if (
                    policy.timeout is not None
                    and elapsed > policy.timeout
                ):
                    self.timeouts += 1
                    last_error = CostTimeoutError(
                        f"pair ({q}, {c}) took {elapsed:.3f}s "
                        f"(timeout {policy.timeout:.3f}s)"
                    )
                    self._spend_failure(q, c, attempts, last_error)
                else:
                    return value
            if attempts <= policy.retries:
                self.retries_total += 1
                self._backoff(attempts - 1)
        raise CostSourceExhausted(
            f"pair ({q}, {c}) failed after {attempts} attempt(s): "
            f"{last_error}",
            query_idx=q,
            config_idx=c,
            attempts=attempts,
            last_error=last_error,
        ) from last_error

    def cost_many(self, pairs) -> np.ndarray:
        pairs = _as_pairs(pairs)
        if len(pairs) == 0:
            return np.zeros(0, dtype=np.float64)
        start = self._clock()
        try:
            values = self.source.cost_many(pairs)
        except BatchCostError as exc:
            # Partial-batch salvage: keep everything that succeeded,
            # push only the failed pairs through the scalar retry path.
            self.salvaged_batches += 1
            self.salvaged_values += int(exc.ok.sum())
            values = np.array(exc.values, dtype=np.float64, copy=True)
            for i in sorted(exc.failures):
                q, c = int(pairs[i, 0]), int(pairs[i, 1])
                failure = exc.failures[i]
                if isinstance(failure, PermanentCostError):
                    self.permanent_failures += 1
                else:
                    self.transient_failures += 1
                self._spend_failure(q, c, 1, failure)
                # The scalar re-run below is this pair's first retry.
                self.retries_total += 1
                self._backoff(0)
                values[i] = self.cost(q, c)
            return values
        except CostSourceExhausted:
            raise
        except CostSourceError:
            # The batch died without partial results; fall back to the
            # scalar path pair by pair so each gets its own retries.
            self.fallback_pairs += len(pairs)
            out = np.empty(len(pairs), dtype=np.float64)
            for i, (q, c) in enumerate(pairs):
                out[i] = self.cost(int(q), int(c))
            return out
        elapsed = self._clock() - start
        if (
            self.policy.timeout is not None
            and elapsed > self.policy.timeout * len(pairs)
        ):
            # Batches do not fail on the cooperative timeout — the
            # values are already in hand and discarding them buys
            # nothing — but the degradation is recorded.
            self.slow_batches += 1
        return values
