"""Fault policy and the cost-source exception hierarchy.

The policy is declarative: how many retries a failing call gets, how
backoff between attempts grows, when a call counts as timed out, and
how many failed attempts the source tolerates in total before the
circuit opens.  :class:`~repro.faults.resilient.ResilientCostSource`
interprets it; cost sources (and the fault injector) raise the
exceptions defined here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

__all__ = [
    "FaultPolicy",
    "CostSourceError",
    "TransientCostError",
    "PermanentCostError",
    "CostTimeoutError",
    "BatchCostError",
    "CostSourceExhausted",
]


class CostSourceError(RuntimeError):
    """Base class of all cost-source failures."""


class TransientCostError(CostSourceError):
    """A failure that may succeed on retry (network blip, lock
    timeout, optimizer restart)."""


class PermanentCostError(CostSourceError):
    """A failure retrying cannot fix (malformed query, dropped
    object); the wrapper fails fast instead of burning retries."""


class CostTimeoutError(TransientCostError):
    """A call exceeded the policy's per-call timeout.

    Timeouts are cooperative: the wrapper measures elapsed time around
    the call and discards over-budget results, it does not interrupt
    the callee.  Timed-out calls are retried like any transient
    failure.
    """


class BatchCostError(CostSourceError):
    """A ``cost_many`` batch failed partially.

    Carries everything the wrapper needs for partial-batch salvage:
    the values of the entries that *did* succeed, a boolean mask over
    the batch, and the per-index failures.  Successful entries are
    kept; only failed pairs are retried.
    """

    def __init__(
        self,
        message: str,
        values: np.ndarray,
        ok: np.ndarray,
        failures: Dict[int, CostSourceError],
    ) -> None:
        super().__init__(message)
        #: Batch-aligned values; entries where ``ok`` is False are
        #: undefined.
        self.values = values
        #: Boolean mask over the batch: True = value is valid.
        self.ok = ok
        #: ``batch index -> exception`` for every failed entry.
        self.failures = failures


class CostSourceExhausted(CostSourceError):
    """A call failed permanently: retries exhausted, a permanent
    fault, or the source's failure budget spent.

    Carries the pair and attempt count so operators can see *which*
    evaluation died, not just that one did.
    """

    def __init__(
        self,
        message: str,
        query_idx: Optional[int] = None,
        config_idx: Optional[int] = None,
        attempts: int = 0,
        last_error: Optional[BaseException] = None,
    ) -> None:
        super().__init__(message)
        self.query_idx = query_idx
        self.config_idx = config_idx
        self.attempts = attempts
        self.last_error = last_error


@dataclass(frozen=True)
class FaultPolicy:
    """Retry/backoff/timeout policy for cost-source calls.

    Attributes
    ----------
    retries:
        Extra attempts after the first failure (``3`` means up to 4
        calls total).
    backoff_base:
        Sleep before the first retry, in seconds.
    backoff_factor:
        Multiplier applied per subsequent retry (exponential backoff).
    backoff_max:
        Upper clamp on any single sleep.
    jitter:
        Fraction of each sleep randomized (``0.1`` = +-10%).  The
        jitter stream is seeded by ``seed``, so two runs of the same
        policy sleep identically — backoff is part of the reproducible
        record, not noise.
    timeout:
        Cooperative per-call wall-clock budget in seconds; ``None``
        disables timeout detection.  Batches get ``timeout * len``.
    failure_budget:
        Total failed attempts the source tolerates over its lifetime
        before every call raises :class:`CostSourceExhausted`
        (a circuit breaker against a fully degraded backend);
        ``None`` = unbounded.
    seed:
        Seed of the deterministic jitter stream.
    """

    retries: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.1
    timeout: Optional[float] = None
    failure_budget: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_base < 0:
            raise ValueError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_max < 0:
            raise ValueError(
                f"backoff_max must be >= 0, got {self.backoff_max}"
            )
        if not (0.0 <= self.jitter < 1.0):
            raise ValueError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(
                f"timeout must be positive, got {self.timeout}"
            )
        if self.failure_budget is not None and self.failure_budget < 1:
            raise ValueError(
                f"failure_budget must be >= 1, got {self.failure_budget}"
            )

    def backoff(self, retry_index: int, rng: np.random.Generator) -> float:
        """Sleep before retry ``retry_index`` (0-based), jittered.

        Deterministic given the policy seed and the retry sequence:
        the caller owns one jitter generator per wrapped source and
        feeds every backoff through it in order.
        """
        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** retry_index,
        )
        if self.jitter <= 0 or base <= 0:
            return base
        spread = 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return base * spread
