"""Deterministic, seed-driven fault injection for cost sources.

:class:`InjectedFaultCostSource` wraps any
:class:`~repro.core.sources.CostSource` and makes a deterministic
subset of (query, configuration) pairs misbehave.  Whether a pair is
faulty is decided by ``default_rng((seed, q, c))`` — a pure function
of the pair, independent of evaluation order — so the same seed
injects the same faults no matter how the selector batches its draws.

Three modes:

``"transient"``
    The first ``fail_attempts`` attempts on a faulty pair raise
    :class:`~repro.faults.policy.TransientCostError` *before* reaching
    the inner source; later attempts succeed.  Because failed attempts
    never touch the inner source, call counts stay at parity with a
    no-fault run whenever retries eventually succeed.
``"permanent"``
    Faulty pairs always raise
    :class:`~repro.faults.policy.PermanentCostError`.
``"slow"``
    Faulty pairs succeed but advance the injected clock by
    ``slow_seconds`` for their first ``fail_attempts`` attempts — the
    wrapper's cooperative timeout then discards and retries them.

The :class:`FakeClock` stands in for ``time.monotonic``/``time.sleep``
so timeout and backoff behavior is testable without real waiting.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..core.sources import CostSource, _as_pairs
from .policy import (
    BatchCostError,
    CostSourceError,
    PermanentCostError,
    TransientCostError,
)

__all__ = ["FakeClock", "InjectedFaultCostSource"]

_MODES = ("transient", "permanent", "slow")


class FakeClock:
    """A manually advanced monotonic clock.

    Callable (returns the current time) so it drops in for
    ``time.monotonic``; :meth:`sleep` drops in for ``time.sleep`` and
    advances the clock instead of waiting.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds}")
        self.now += float(seconds)

    def sleep(self, seconds: float) -> None:
        self.advance(max(0.0, seconds))


class InjectedFaultCostSource(CostSource):
    """Wrap a cost source with deterministic injected faults.

    Parameters
    ----------
    inner:
        The real source; only non-faulty attempts reach it.
    rate:
        Probability that a pair is faulty (per pair, not per call).
    mode:
        ``"transient"``, ``"permanent"`` or ``"slow"``.
    seed:
        Drives the per-pair fault decision.
    fail_attempts:
        How many attempts on a faulty pair misbehave before it starts
        succeeding (ignored in ``"permanent"`` mode).
    slow_seconds:
        Clock advance per slow attempt (``"slow"`` mode).
    clock:
        The :class:`FakeClock` slow calls advance; required in
        ``"slow"`` mode.
    """

    def __init__(
        self,
        inner: CostSource,
        rate: float,
        mode: str = "transient",
        seed: int = 0,
        fail_attempts: int = 1,
        slow_seconds: float = 0.0,
        clock: Optional[FakeClock] = None,
    ) -> None:
        if not (0.0 <= rate <= 1.0):
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if mode not in _MODES:
            raise ValueError(
                f"unknown fault mode {mode!r}; expected one of {_MODES}"
            )
        if fail_attempts < 1:
            raise ValueError(
                f"fail_attempts must be >= 1, got {fail_attempts}"
            )
        if mode == "slow" and clock is None:
            raise ValueError("slow mode needs a clock to advance")
        self.inner = inner
        self.rate = rate
        self.mode = mode
        self.seed = seed
        self.fail_attempts = fail_attempts
        self.slow_seconds = float(slow_seconds)
        self.clock = clock
        self._faulty: Dict[Tuple[int, int], bool] = {}
        self._attempts: Dict[Tuple[int, int], int] = {}
        #: Faults actually raised (or slow calls served), by pair.
        self.injected = 0

    # -- CostSource surface -------------------------------------------
    @property
    def n_queries(self) -> int:
        return self.inner.n_queries

    @property
    def n_configs(self) -> int:
        return self.inner.n_configs

    @property
    def calls(self) -> int:
        return self.inner.calls

    def __getattr__(self, name: str):
        # Proxy everything else (true_best, reset_calls, close, ...)
        # so the injector is drop-in for the raw source.
        return getattr(self.inner, name)

    # -- fault machinery ----------------------------------------------
    def is_faulty(self, query_idx: int, config_idx: int) -> bool:
        """Whether a pair is in the injected fault set.

        Memoized pure function of ``(seed, query, config)``; the
        evaluation order can never change which pairs fail.
        """
        key = (int(query_idx), int(config_idx))
        hit = self._faulty.get(key)
        if hit is None:
            hit = bool(
                np.random.default_rng((self.seed,) + key).random()
                < self.rate
            )
            self._faulty[key] = hit
        return hit

    def _attempt(self, key: Tuple[int, int]) -> Optional[CostSourceError]:
        """Register one attempt on a faulty pair; return its failure
        (``None`` when the attempt should succeed)."""
        attempt = self._attempts.get(key, 0) + 1
        self._attempts[key] = attempt
        if self.mode == "permanent":
            self.injected += 1
            return PermanentCostError(
                f"injected permanent fault at pair {key}"
            )
        if attempt > self.fail_attempts:
            return None
        self.injected += 1
        if self.mode == "transient":
            return TransientCostError(
                f"injected transient fault at pair {key} "
                f"(attempt {attempt}/{self.fail_attempts})"
            )
        # slow: succeed, but burn wall-clock.
        self.clock.advance(self.slow_seconds)
        return None

    # -- evaluation ----------------------------------------------------
    def cost(self, query_idx: int, config_idx: int) -> float:
        if self.is_faulty(query_idx, config_idx):
            failure = self._attempt((int(query_idx), int(config_idx)))
            if failure is not None:
                raise failure
        return self.inner.cost(query_idx, config_idx)

    def cost_many(self, pairs) -> np.ndarray:
        pairs = _as_pairs(pairs)
        failures: Dict[int, CostSourceError] = {}
        for i, (q, c) in enumerate(pairs):
            if not self.is_faulty(int(q), int(c)):
                continue
            failure = self._attempt((int(q), int(c)))
            if failure is not None:
                failures[i] = failure
        ok = np.ones(len(pairs), dtype=bool)
        values = np.zeros(len(pairs), dtype=np.float64)
        if failures:
            for i in failures:
                ok[i] = False
            if ok.any():
                values[ok] = self.inner.cost_many(pairs[ok])
            raise BatchCostError(
                f"{len(failures)} of {len(pairs)} batch entries failed",
                values=values,
                ok=ok,
                failures=failures,
            )
        return self.inner.cost_many(pairs)
