"""Fault tolerance for the cost path.

The paper's comparison primitive spends almost all of its time inside
what-if optimizer calls; real optimizer backends time out and fail
routinely.  This package keeps those failures from discarding the
accumulated sample — the costliest asset the selection procedure has:

* :class:`FaultPolicy` — declarative retry/backoff/timeout/budget
  policy for cost-source calls.
* :class:`ResilientCostSource` — a :class:`~repro.core.sources.CostSource`
  wrapper implementing the policy for both :meth:`cost` and
  :meth:`cost_many` (partial-batch salvage: successful entries are
  kept, only failed pairs are retried).
* :class:`InjectedFaultCostSource` — deterministic, seed-driven fault
  injection (transient / permanent / slow-call modes) for tests and
  the resilience experiment (:mod:`repro.experiments.faults`).

With no faults firing, the wrapper is fully transparent: values,
evaluation order and distinct-call accounting are bit-identical to the
unwrapped source, so every selection decision is unchanged.
"""

from .injection import FakeClock, InjectedFaultCostSource
from .policy import (
    BatchCostError,
    CostSourceError,
    CostSourceExhausted,
    CostTimeoutError,
    FaultPolicy,
    PermanentCostError,
    TransientCostError,
)
from .resilient import ResilientCostSource

__all__ = [
    "FaultPolicy",
    "CostSourceError",
    "TransientCostError",
    "PermanentCostError",
    "CostTimeoutError",
    "BatchCostError",
    "CostSourceExhausted",
    "ResilientCostSource",
    "InjectedFaultCostSource",
    "FakeClock",
]
