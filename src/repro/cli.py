"""Command-line interface.

A thin operational layer over the library so the common workflows run
without writing Python::

    repro generate --db tpcd --size 2000 --out workload.db
    repro compare  --db tpcd --size 2000 --k 8 --alpha 0.9
    repro compare  --db crm  --size 1500 --k 12 --tournament
    repro tune     --db tpcd --size 800 --compress by_cost --param 0.2
    repro explain  --db tpcd --query 17

Every subcommand prints a short, paper-aligned report; seeds make all
outputs reproducible.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["build_parser", "main"]


def _load_setup(args):
    """Build (schema, workload, optimizer) per the --db/--size/--seed."""
    from .optimizer import WhatIfOptimizer
    from .workload import (
        crm_schema,
        generate_crm_workload,
        generate_tpcd_workload,
        tpcd_schema,
    )

    if args.db == "tpcd":
        schema = tpcd_schema(scale_factor=args.scale)
        workload = generate_tpcd_workload(
            args.size, seed=args.seed, schema=schema
        )
    else:
        schema = crm_schema()
        workload = generate_crm_workload(
            args.size, seed=args.seed, schema=schema
        )
    return schema, workload, WhatIfOptimizer(schema)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--db", choices=("tpcd", "crm"), default="tpcd",
                        help="which synthetic database to use")
    parser.add_argument("--size", type=int, default=1000,
                        help="workload size (statements)")
    parser.add_argument("--seed", type=int, default=0,
                        help="random seed (reproducible outputs)")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="TPC-D scale factor")


def _cmd_generate(args) -> int:
    from .workload import WorkloadStore

    _schema, workload, _optimizer = _load_setup(args)
    with WorkloadStore(args.out) as store:
        store.load(workload)
        count = store.count()
        templates = len(store.template_counts())
    print(f"wrote {count} statements ({templates} templates, "
          f"{workload.dml_fraction():.0%} DML) to {args.out}")
    return 0


def _cmd_compare(args) -> int:
    from .core import (
        ConfigurationSelector,
        OptimizerCostSource,
        SelectorOptions,
        knockout_tournament,
    )
    from .physical import build_pool, enumerate_configurations

    _schema, workload, optimizer = _load_setup(args)
    pool = build_pool(
        workload.queries[: min(300, workload.size)], optimizer
    )
    configs = enumerate_configurations(
        pool, args.k, np.random.default_rng(args.seed)
    )
    source = OptimizerCostSource(workload, configs, optimizer)
    exhaustive = workload.size * args.k

    if args.tournament:
        result = knockout_tournament(
            source, workload.template_ids, alpha=args.alpha,
            delta=args.delta, rng=np.random.default_rng(args.seed + 1),
        )
        print(f"tournament winner : {configs[result.best_index].name}")
        print(f"end-to-end guarantee >= {result.guarantee:.3f}")
        print(f"rounds            : {result.round_count}")
        calls = result.optimizer_calls
    else:
        options = SelectorOptions(
            alpha=args.alpha, delta=args.delta, scheme=args.scheme,
            stratify=args.stratify, batch_rounds=args.batch_rounds,
        )
        result = ConfigurationSelector(
            source, workload.template_ids, options,
            rng=np.random.default_rng(args.seed + 1),
        ).run()
        print(f"selected          : {configs[result.best_index].name}")
        print(f"Pr(CS)            : {result.prcs:.3f} "
              f"(target {args.alpha})")
        print(f"eliminated        : {len(result.eliminated)}")
        calls = result.optimizer_calls
    print(f"optimizer calls   : {calls} "
          f"({calls / exhaustive:.1%} of exhaustive {exhaustive})")
    if args.verify:
        totals = [workload.total_cost(optimizer, c) for c in configs]
        best = int(np.argmin(totals))
        ok = best == result.best_index
        print(f"ground truth      : {configs[best].name} -> "
              f"{'correct' if ok else 'WRONG'}")
        return 0 if ok else 1
    return 0


def _cmd_tune(args) -> int:
    from .compression import (
        compress_by_clustering,
        compress_by_cost,
        compress_random,
    )
    from .physical import Configuration
    from .tuner import GreedyTuner, evaluate_configuration

    _schema, workload, optimizer = _load_setup(args)
    costs = workload.cost_vector(optimizer, Configuration(name="current"))

    if args.compress == "none":
        indices = np.arange(workload.size)
        weights = np.ones(workload.size)
        label = "full workload"
    elif args.compress == "by_cost":
        cw = compress_by_cost(costs, args.param)
        indices, weights, label = cw.indices, cw.weights, cw.method
    elif args.compress == "clustering":
        cw = compress_by_clustering(
            costs, workload.template_ids, int(args.param)
        )
        indices, weights, label = cw.indices, cw.weights, cw.method
    else:
        cw = compress_random(
            workload.size, int(args.param),
            np.random.default_rng(args.seed),
        )
        indices, weights, label = cw.indices, cw.weights, cw.method

    tuner = GreedyTuner(optimizer, max_structures=args.max_structures)
    result = tuner.tune(
        [workload.queries[i] for i in indices], weights=weights
    )
    quality = evaluate_configuration(
        workload, optimizer, result.configuration
    )
    print(f"training workload : {label} ({len(indices)} statements)")
    print(f"chosen structures : {len(result.chosen)}")
    for structure in result.chosen:
        print(f"  + {getattr(structure, 'name', structure)}")
    print(f"full-workload improvement: {quality.improvement:.1%}")
    return 0


def _cmd_profile(args) -> int:
    from .experiments.report import format_kv, format_table
    from .physical import Configuration
    from .workload import profile_workload

    _schema, workload, optimizer = _load_setup(args)
    costs = workload.cost_vector(optimizer, Configuration(name="current"))
    profile = profile_workload(workload, costs)
    print(format_kv({
        "statements": profile.size,
        "templates": profile.template_count,
        "DML fraction": f"{profile.dml_fraction:.1%}",
        "total cost": f"{profile.total_cost:,.0f}",
        "cost skewness (G1)": f"{profile.cost_skewness:.2f}",
        "p99 / median cost": f"{profile.cost_p99_over_median:.1f}",
        "templates for 50% of cost": profile.templates_for_half_cost,
        "heavy-tailed (S6 warning)": profile.heavy_tailed(),
    }, title="workload profile"))
    print()
    rows = [
        [t.name, t.count, f"{t.share:.1%}", f"{t.cost_share:.1%}",
         f"{t.mean_cost:,.1f}", f"{t.cv:.2f}"]
        for t in profile.top_templates
    ]
    print(format_table(
        ["template", "count", "share", "cost share", "mean cost", "cv"],
        rows, title="top templates by cost share",
    ))
    return 0


def _cmd_mc(args) -> int:
    from .experiments.monte_carlo import SchemeSpec
    from .experiments.parallel import prcs_curve, resolve_workers
    from .experiments.profiling import PhaseTimer, cache_hit_report
    from .optimizer.batch import cost_matrix_with_stats
    from .physical import build_pool, enumerate_configurations

    timer = PhaseTimer()
    with timer.phase("setup"):
        _schema, workload, optimizer = _load_setup(args)
        pool = build_pool(
            workload.queries[: min(300, workload.size)], optimizer
        )
        configs = enumerate_configurations(
            pool, args.k, np.random.default_rng(args.seed)
        )
    with timer.phase("ground_truth_matrix"):
        matrix, build_stats = cost_matrix_with_stats(
            workload, configs, optimizer,
            progress=None if args.json else lambda done, total: print(
                f"  matrix: {done}/{total} queries", file=sys.stderr
            ),
            workers=args.workers,
        )
    budgets = [int(b) for b in args.budgets.split(",")]
    workers = resolve_workers(args.workers)
    spec = SchemeSpec(scheme=args.scheme, stratify=args.stratify)
    with timer.phase("monte_carlo"):
        curve = prcs_curve(
            matrix, workload.template_ids, spec, budgets,
            trials=args.trials, seed=args.seed, workers=workers,
            batch_rounds=args.batch_rounds,
        )

    if args.json:
        import json

        print(json.dumps({
            "db": args.db,
            "n_queries": workload.size,
            "k": len(configs),
            "scheme": spec.label,
            "workers": workers,
            "trials": args.trials,
            "budgets": budgets,
            "prcs": [float(p) for p in curve],
            "build_stats": build_stats.as_dict(),
            "cache_report": cache_hit_report(optimizer),
            "phases": timer.as_dict(),
        }, indent=2, default=float))
        return 0
    print(f"scheme            : {spec.label}")
    print(f"workers           : {workers}")
    print(f"matrix build      : {build_stats.wall_seconds:.2f}s "
          f"({build_stats.cells_per_second:,.0f} cells/s, "
          f"fingerprint hit rate "
          f"{build_stats.fingerprint_hit_rate:.0%})")
    for budget, prob in zip(budgets, curve):
        print(f"budget {budget:>6}     : Pr(CS) = {prob:.3f} "
              f"({args.trials} trials)")
    print(f"total wall time   : {timer.total:.2f}s")
    return 0


def _load_trace(args):
    """Build (schema, trace workload, optimizer) for ``repro serve``.

    ``--trace`` replays a recorded SQLite workload table; otherwise a
    drifting trace with a planted change point is generated: mix A
    concentrates on the first half of the database's templates, mix B
    on the second half, switching at ``--change-point`` of the trace.
    """
    from .optimizer import WhatIfOptimizer
    from .workload import (
        WorkloadStore,
        change_point_workload,
        crm_generator,
        crm_schema,
        tpcd_generator,
        tpcd_schema,
    )
    from .workload.workload import Workload

    if args.db == "tpcd":
        schema = tpcd_schema(scale_factor=args.scale)
        generator = tpcd_generator(schema=schema)
    else:
        schema = crm_schema()
        generator = crm_generator(schema=schema)
    optimizer = WhatIfOptimizer(schema)

    if args.trace:
        with WorkloadStore(args.trace) as store:
            rows = store.read_all()
        trace = Workload([q for _i, _t, q in rows])
        return schema, trace, optimizer

    n_templates = len(generator.templates)
    half = max(1, n_templates // 2)
    mix_a = [1.0] * half + [0.05] * (n_templates - half)
    mix_b = [0.05] * half + [1.0] * (n_templates - half)
    change_at = max(1, min(args.size - 1,
                           int(args.size * args.change_point)))
    trace = change_point_workload(
        generator, args.size, mix_a, mix_b, change_at,
        np.random.default_rng(args.seed),
    )
    return schema, trace, optimizer


def _cmd_serve(args) -> int:
    from .core import SelectorOptions
    from .physical import build_pool, enumerate_configurations
    from .service import EventLog, ServiceConfig, run_service

    _schema, trace, optimizer = _load_trace(args)
    pool = build_pool(trace.queries[: min(300, trace.size)], optimizer)
    configs = enumerate_configurations(
        pool, args.k, np.random.default_rng(args.seed)
    )
    config = ServiceConfig(
        window_size=args.window,
        batch_size=args.batch,
        reservoir_size=args.reservoir,
        drift_threshold=args.threshold,
        cooldown=args.cooldown,
        retune_budget=args.budget,
        warm=not args.cold,
        replay_speed=args.replay_speed,
        checkpoint_path=args.checkpoint,
    )
    options = SelectorOptions(
        alpha=args.alpha, delta=args.delta, scheme=args.scheme,
        n_min=args.n_min, batch_rounds=args.batch_rounds,
    )
    with EventLog(args.events) as events:
        report = run_service(
            trace, configs, optimizer, config=config, options=options,
            events=events, rng=np.random.default_rng(args.seed + 1),
        )

    if args.json:
        import json

        payload = report.as_dict()
        payload["final_config"] = (
            configs[report.final_index].name
            if report.final_index is not None else None
        )
        payload["events"] = len(events)
        payload["events_path"] = args.events
        print(json.dumps(payload, indent=2, default=float))
        return 0
    print(f"trace             : {trace.size} statements "
          f"({trace.template_count} templates)")
    print(f"mode              : "
          f"{'warm' if config.warm else 'cold'} retunes, "
          f"window {config.window_size}, batch {config.batch_size}")
    if report.prior_retunes:
        print(f"resumed           : {len(report.prior_retunes)} "
              f"retune(s) recovered from {args.checkpoint}")
    for i, outcome in enumerate(report.retunes):
        label = (
            "initial " if i == 0 and not report.prior_retunes
            else "retune  "
        )
        if outcome.failed:
            kept = (
                configs[outcome.chosen_index].name
                if outcome.chosen_index is not None else "(none)"
            )
            print(f"{label}          : FAILED, kept {kept} "
                  f"(calls {outcome.optimizer_calls}; "
                  f"{outcome.error})")
            continue
        extra = "" if outcome.accepted else "  [kept: low confidence]"
        print(f"{label}          : -> "
              f"{configs[outcome.chosen_index].name} "
              f"(calls {outcome.optimizer_calls}, "
              f"carried {outcome.carried_samples}, "
              f"Pr {outcome.selection.prcs:.3f}){extra}")
    print(f"drift checks      : {report.drift_checks} "
          f"(max JSD {report.max_drift_score:.3f})")
    if report.final_index is not None:
        print(f"final configuration: "
              f"{configs[report.final_index].name}")
    print(f"optimizer calls   : {report.total_optimizer_calls}")
    if args.events:
        print(f"event log         : {args.events} "
              f"({len(events)} events)")
    return 0


def _cmd_faults(args) -> int:
    from .experiments.faults import (
        format_resilience_report,
        resilience_experiment,
    )

    rates = [float(r) for r in args.rates.split(",")]
    report = resilience_experiment(
        n_queries=args.size,
        n_templates=args.templates,
        k=args.k,
        seed=args.seed,
        rates=rates,
        modes=tuple(args.modes.split(",")),
        retries=args.retries,
        failure_budget=args.failure_budget,
    )
    if args.json:
        import json
        from dataclasses import asdict

        print(json.dumps({
            "n_queries": report.n_queries,
            "n_configs": report.n_configs,
            "baseline_best": report.baseline_best,
            "baseline_calls": report.baseline_calls,
            "baseline_prcs": report.baseline_prcs,
            "cases": [asdict(c) for c in report.cases],
        }, indent=2, default=float))
        return 0
    print(format_resilience_report(report))
    # Transient/slow cells must reproduce the baseline exactly; a
    # non-zero exit makes the experiment usable as a CI check.
    ok = all(
        c.identical for c in report.cases
        if c.completed and c.mode != "permanent"
    )
    return 0 if ok else 1


def _cmd_explain(args) -> int:
    from .optimizer import explain_plan
    from .physical import Configuration
    from .queries import render_query

    _schema, workload, optimizer = _load_setup(args)
    if not (0 <= args.query < workload.size):
        print(f"error: --query must be in [0, {workload.size})",
              file=sys.stderr)
        return 2
    query = workload[args.query]
    print(render_query(query))
    print()
    print("-- current (no structures):")
    print(explain_plan(optimizer.plan(query, Configuration(name="none"))))
    print()
    print("-- ideal configuration:")
    ideal = optimizer.ideal_configuration(query)
    print(explain_plan(optimizer.plan(query, ideal)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scalable exploration of physical database design "
                    "(ICDE 2006 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser(
        "generate", help="trace a workload into a SQLite workload table"
    )
    _add_common(p_gen)
    p_gen.add_argument("--out", default="workload.db",
                       help="output SQLite path")
    p_gen.set_defaults(func=_cmd_generate)

    p_cmp = sub.add_parser(
        "compare", help="select the best of k enumerated configurations"
    )
    _add_common(p_cmp)
    p_cmp.add_argument("--k", type=int, default=6,
                       help="number of candidate configurations")
    p_cmp.add_argument("--alpha", type=float, default=0.9,
                       help="target probability of correct selection")
    p_cmp.add_argument("--delta", type=float, default=0.0,
                       help="sensitivity (cost units)")
    p_cmp.add_argument("--scheme", choices=("delta", "independent"),
                       default="delta")
    p_cmp.add_argument("--stratify",
                       choices=("progressive", "none", "fine"),
                       default="progressive")
    p_cmp.add_argument("--batch-rounds", type=int, default=1,
                       help="selector draw-ahead depth (1 = serial "
                            "schedule, bit-identical to the historical "
                            "loop; >= 2 batches allocation rounds)")
    p_cmp.add_argument("--tournament", action="store_true",
                       help="use the knockout-tournament strategy")
    p_cmp.add_argument("--verify", action="store_true",
                       help="exhaustively verify the selection")
    p_cmp.set_defaults(func=_cmd_compare)

    p_tune = sub.add_parser(
        "tune", help="greedy physical design tuning"
    )
    _add_common(p_tune)
    p_tune.add_argument("--compress",
                        choices=("none", "by_cost", "clustering",
                                 "random"),
                        default="none")
    p_tune.add_argument("--param", type=float, default=0.2,
                        help="X for by_cost; target size for "
                             "clustering/random")
    p_tune.add_argument("--max-structures", type=int, default=6)
    p_tune.set_defaults(func=_cmd_tune)

    p_prof = sub.add_parser(
        "profile", help="summarize a workload (templates, cost skew)"
    )
    _add_common(p_prof)
    p_prof.set_defaults(func=_cmd_profile)

    p_mc = sub.add_parser(
        "mc", help="Monte Carlo Pr(CS)-vs-budget curve (parallelizable)"
    )
    _add_common(p_mc)
    p_mc.add_argument("--k", type=int, default=6,
                      help="number of candidate configurations")
    p_mc.add_argument("--budgets", default="60,120,240",
                      help="comma-separated optimizer-call budgets")
    p_mc.add_argument("--trials", type=int, default=100,
                      help="Monte Carlo trials per budget")
    p_mc.add_argument("--workers", type=int, default=None,
                      help="worker processes (default: REPRO_WORKERS "
                           "or 1; 0 = all CPUs); results are "
                           "bit-identical for any value")
    p_mc.add_argument("--scheme", choices=("delta", "independent"),
                      default="delta")
    p_mc.add_argument("--stratify",
                      choices=("progressive", "none", "fine"),
                      default="progressive")
    p_mc.add_argument("--batch-rounds", type=int, default=1,
                      help="selector draw-ahead depth on the "
                           "progressive path (1 = serial schedule)")
    p_mc.add_argument("--json", action="store_true",
                      help="emit a JSON report (timings, cache stats)")
    p_mc.set_defaults(func=_cmd_mc)

    p_srv = sub.add_parser(
        "serve",
        help="online tuning loop: stream a trace, retune on drift",
    )
    _add_common(p_srv)
    p_srv.add_argument("--trace", default=None,
                       help="SQLite workload table to replay (from "
                            "'repro generate'); omitted = generate a "
                            "drifting trace with a planted change point")
    p_srv.add_argument("--change-point", type=float, default=0.5,
                       help="planted mix-change position as a fraction "
                            "of the generated trace")
    p_srv.add_argument("--k", type=int, default=4,
                       help="number of candidate configurations")
    p_srv.add_argument("--alpha", type=float, default=0.9,
                       help="target probability of correct selection")
    p_srv.add_argument("--delta", type=float, default=0.0,
                       help="sensitivity (cost units)")
    p_srv.add_argument("--scheme", choices=("delta", "independent"),
                       default="delta")
    p_srv.add_argument("--n-min", type=int, default=20,
                       help="pilot/minimum stratum sample size")
    p_srv.add_argument("--window", type=int, default=300,
                       help="sliding-window size (statements)")
    p_srv.add_argument("--batch", type=int, default=50,
                       help="ingest batch size (statements)")
    p_srv.add_argument("--reservoir", type=int, default=64,
                       help="per-template reservoir capacity")
    p_srv.add_argument("--threshold", type=float, default=0.05,
                       help="Jensen-Shannon drift trigger threshold")
    p_srv.add_argument("--cooldown", type=int, default=150,
                       help="minimum statements between retunes")
    p_srv.add_argument("--budget", type=int, default=None,
                       help="optimizer-call budget per retune "
                            "(default: unbudgeted)")
    p_srv.add_argument("--batch-rounds", type=int, default=1,
                       help="selector draw-ahead depth per retune "
                            "(1 = serial schedule)")
    p_srv.add_argument("--cold", action="store_true",
                       help="disable warm starts (cold-retune baseline)")
    p_srv.add_argument("--events", default=None,
                       help="write the JSONL event log to this path")
    p_srv.add_argument("--checkpoint", default=None,
                       help="service checkpoint path: state is saved "
                            "here after every retune, and an existing "
                            "checkpoint resumes the run mid-trace")
    p_srv.add_argument("--replay-speed", type=float, default=0.0,
                       help="replay rate in statements/second "
                            "(0 = as fast as possible)")
    p_srv.add_argument("--json", action="store_true",
                       help="emit a JSON report")
    p_srv.set_defaults(func=_cmd_serve)

    p_flt = sub.add_parser(
        "faults",
        help="resilience experiment: selection under injected "
             "optimizer faults",
    )
    p_flt.add_argument("--size", type=int, default=400,
                       help="synthetic workload size (statements)")
    p_flt.add_argument("--templates", type=int, default=16,
                       help="number of synthetic templates")
    p_flt.add_argument("--k", type=int, default=5,
                       help="number of candidate configurations")
    p_flt.add_argument("--seed", type=int, default=123,
                       help="random seed (workload + fault set)")
    p_flt.add_argument("--rates", default="0.01,0.1",
                       help="comma-separated per-pair fault rates")
    p_flt.add_argument("--modes", default="transient,slow,permanent",
                       help="comma-separated fault modes to run")
    p_flt.add_argument("--retries", type=int, default=3,
                       help="retry budget per cost call")
    p_flt.add_argument("--failure-budget", type=int, default=32,
                       help="failed attempts before the source is "
                            "declared exhausted (permanent mode)")
    p_flt.add_argument("--json", action="store_true",
                       help="emit a JSON report")
    p_flt.set_defaults(func=_cmd_faults)

    p_exp = sub.add_parser(
        "explain", help="show a statement's plan (current vs ideal)"
    )
    _add_common(p_exp)
    p_exp.add_argument("--query", type=int, default=0,
                       help="workload position of the statement")
    p_exp.set_defaults(func=_cmd_explain)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
