"""Monte Carlo evaluation of the selection procedures (Section 7).

The paper measures the *true* probability of correct selection by
repeating each sampling procedure thousands of times against known
ground truth.  This module provides:

* :func:`select_fixed_budget` — run one scheme to a fixed budget of
  optimizer calls and return its selection (Figures 1-4);
* :func:`prcs_curve` — the Monte Carlo "true Pr(CS) vs budget" curve;
* :func:`multi_config_table` — the Table 2/3 protocol: run the
  adaptive primitive to its own termination, then give the same number
  of sampled queries to the two alternative allocation baselines
  ("No Strat." and "Equal Alloc.") and compare true Pr(CS) and the
  worst-case cost regret ("Max Delta").

Unstratified schemes are vectorized; progressive stratification runs
through the full :class:`~repro.core.selector.ConfigurationSelector`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.selector import ConfigurationSelector, SelectionResult, \
    SelectorOptions
from ..core.sources import MatrixCostSource

__all__ = [
    "SchemeSpec",
    "select_fixed_budget",
    "prcs_curve",
    "MultiConfigRow",
    "multi_config_table",
]


@dataclass(frozen=True)
class SchemeSpec:
    """A (sampling scheme, stratification mode) combination."""

    scheme: str  # "delta" | "independent"
    stratify: str  # "none" | "progressive" | "fine"

    @property
    def label(self) -> str:
        """Display label used in reports."""
        names = {
            ("delta", "none"): "Delta Sampling",
            ("delta", "progressive"): "Delta + Progressive Strat.",
            ("delta", "fine"): "Delta + Fine Strat.",
            ("independent", "none"): "Independent Sampling",
            ("independent", "progressive"): "Independent + Progressive "
                                            "Strat.",
            ("independent", "fine"): "Independent + Fine Strat.",
        }
        return names.get((self.scheme, self.stratify),
                         f"{self.scheme}/{self.stratify}")


def _template_groups(template_ids: np.ndarray) -> Dict[int, np.ndarray]:
    order = np.argsort(template_ids, kind="stable")
    sorted_ids = template_ids[order]
    boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
    groups = np.split(order, boundaries)
    return {int(template_ids[g[0]]): g for g in groups}


def _fine_allocation(
    sizes: np.ndarray, m: int, rng: np.random.Generator
) -> np.ndarray:
    """Allocate ``m`` draws across strata proportionally to size.

    When ``m`` is smaller than the stratum count, a size-weighted
    subset of strata receives one draw each — the small-sample regime
    in which up-front fine stratification breaks down (Figure 2).
    """
    L = len(sizes)
    if m >= L:
        alloc = np.maximum(
            1, np.floor(m * sizes / sizes.sum()).astype(int)
        )
        alloc = np.minimum(alloc, sizes)
        # Largest-remainder style fixup toward exactly m draws.
        while alloc.sum() > m:
            h = int(np.argmax(alloc))
            alloc[h] -= 1
        while alloc.sum() < m:
            room = np.flatnonzero(alloc < sizes)
            if len(room) == 0:
                break
            h = room[int(np.argmax(sizes[room] / (alloc[room] + 1)))]
            alloc[h] += 1
        return alloc
    alloc = np.zeros(L, dtype=int)
    chosen = rng.choice(
        L, size=m, replace=False, p=sizes / sizes.sum()
    )
    alloc[chosen] = 1
    return alloc


def _stratified_estimate_fixed(
    matrix: np.ndarray,
    groups: Sequence[np.ndarray],
    alloc: np.ndarray,
    rng: np.random.Generator,
    shared: bool,
) -> np.ndarray:
    """Stratified total estimates for all configurations.

    ``shared=True`` evaluates one shared sample per stratum in every
    configuration (Delta-style draw); ``shared=False`` draws
    independently per configuration.
    """
    k = matrix.shape[1]
    sizes = np.array([len(g) for g in groups], dtype=np.float64)
    est = np.zeros(k)
    observed_mass = 0.0
    fallback_num = np.zeros(k)
    for g, n_h, size in zip(groups, alloc, sizes):
        if n_h <= 0:
            continue
        if shared:
            rows = rng.choice(g, size=int(n_h), replace=False)
            means = matrix[rows].mean(axis=0)
        else:
            means = np.empty(k)
            for c in range(k):
                rows = rng.choice(g, size=int(n_h), replace=False)
                means[c] = matrix[rows, c].mean()
        est += size * means
        observed_mass += size
        fallback_num += size * means
    unobserved = sizes.sum() - observed_mass
    if unobserved > 0 and observed_mass > 0:
        est += unobserved * fallback_num / observed_mass
    return est


def select_fixed_budget(
    matrix: np.ndarray,
    template_ids: np.ndarray,
    spec: SchemeSpec,
    budget: int,
    rng: np.random.Generator,
    n_min: int = 30,
    reeval_every: int = 4,
    batch_rounds: int = 1,
) -> int:
    """Run one scheme for ``budget`` optimizer calls; return its choice.

    Budgets count optimizer calls: a Delta draw costs ``k`` calls (one
    per configuration), an Independent draw costs one.
    ``reeval_every`` batches draws between evaluations on the
    progressive path (pure Monte Carlo speed knob); ``batch_rounds``
    additionally enables the selector's round-level draw-ahead
    (``>= 2``), trading per-draw adaptivity for vectorized
    ``cost_many`` gathers — at ``1`` (the default) the schedule is
    bit-identical to the historical serial loop.
    """
    N, k = matrix.shape
    if spec.stratify == "progressive":
        source = MatrixCostSource(matrix)
        options = SelectorOptions(
            alpha=0.99,
            scheme=spec.scheme,
            stratify="progressive",
            n_min=n_min,
            consecutive=10**9,
            eliminate=False,
            max_calls=budget,
            reeval_every=reeval_every,
            batch_rounds=batch_rounds,
        )
        result = ConfigurationSelector(
            source, template_ids, options, rng=rng
        ).run()
        return result.best_index

    groups_map = _template_groups(np.asarray(template_ids, dtype=np.int64))
    groups = [groups_map[t] for t in sorted(groups_map)]
    sizes = np.array([len(g) for g in groups])

    if spec.scheme == "delta":
        m = max(2, budget // k)
        m = min(m, N)
        if spec.stratify == "none":
            rows = rng.choice(N, size=m, replace=False)
            return int(np.argmin(matrix[rows].sum(axis=0)))
        alloc = _fine_allocation(sizes, m, rng)
        est = _stratified_estimate_fixed(matrix, groups, alloc, rng,
                                         shared=True)
        return int(np.argmin(est))

    # Independent Sampling: budget split evenly across configurations.
    n_per = max(2, budget // k)
    n_per = min(n_per, N)
    if spec.stratify == "none":
        est = np.empty(k)
        for c in range(k):
            rows = rng.choice(N, size=n_per, replace=False)
            est[c] = matrix[rows, c].mean() * N
        return int(np.argmin(est))
    alloc = _fine_allocation(sizes, n_per, rng)
    est = _stratified_estimate_fixed(matrix, groups, alloc, rng,
                                     shared=False)
    return int(np.argmin(est))


def _is_correct(totals: np.ndarray, chosen: int, delta: float) -> bool:
    """Whether the selection is correct in the paper's sense.

    A selection is correct when no alternative is more than ``delta``
    cheaper; floating-point equality at the minimum counts as correct.
    """
    regret = float(totals[chosen] - totals.min())
    return regret <= delta + 1e-9 * max(1.0, float(abs(totals.min())))


def _curve_trial_seed(seed: int, b_idx: int, trial: int) -> int:
    """Deterministic per-(budget, trial) seed for :func:`prcs_curve`.

    Shared with :mod:`repro.experiments.parallel` so parallel replay of
    the same trials is bit-identical to the serial loop.
    """
    return (seed * 1_000_003 + b_idx * 7_919 + trial) & 0x7FFFFFFF


def _table_trial_seed(seed: int, trial: int) -> int:
    """Deterministic per-trial seed for :func:`multi_config_table`."""
    return (seed * 99_991 + trial) & 0x7FFFFFFF


def prcs_curve(
    matrix: np.ndarray,
    template_ids: np.ndarray,
    spec: SchemeSpec,
    budgets: Sequence[int],
    trials: int,
    seed: int = 0,
    delta: float = 0.0,
    n_min: int = 30,
    reeval_every: int = 4,
    batch_rounds: int = 1,
) -> np.ndarray:
    """Monte Carlo "true Pr(CS)" for each budget (Figures 1-4).

    Returns the fraction of ``trials`` in which the scheme selected a
    configuration within ``delta`` of the true optimum.
    """
    totals = matrix.sum(axis=0)
    fractions = np.zeros(len(budgets))
    for b_idx, budget in enumerate(budgets):
        correct = 0
        for trial in range(trials):
            trial_seed = _curve_trial_seed(seed, b_idx, trial)
            rng = np.random.default_rng(trial_seed)
            try:
                chosen = select_fixed_budget(
                    matrix, template_ids, spec, budget, rng,
                    n_min=n_min, reeval_every=reeval_every,
                    batch_rounds=batch_rounds,
                )
            except Exception as exc:
                raise RuntimeError(
                    f"prcs_curve trial failed (budget={budget}, "
                    f"b_idx={b_idx}, trial={trial}, "
                    f"trial_seed={trial_seed})"
                ) from exc
            if _is_correct(totals, chosen, delta):
                correct += 1
        fractions[b_idx] = correct / trials
    return fractions


@dataclass
class MultiConfigRow:
    """One method's row of Table 2/3."""

    method: str
    true_prcs: float
    max_delta_pct: float
    mean_calls: float
    mean_queries: float


def _table_trial(
    matrix: np.ndarray,
    template_ids: np.ndarray,
    groups_map: Dict[int, np.ndarray],
    trial: int,
    seed: int,
    alpha: float,
    delta: float,
    n_min: int,
    consecutive: int,
    reeval_every: int,
    batch_rounds: int = 1,
) -> Dict[str, Tuple[int, float, float]]:
    """One Monte Carlo trial of the Table 2/3 protocol.

    Returns ``method -> (chosen, optimizer_calls, queries_sampled)``.
    The trial's RNG stream is fully determined by ``(seed, trial)``,
    which is what makes parallel replay bit-identical to the serial
    loop (see :mod:`repro.experiments.parallel`).
    """
    N, k = matrix.shape
    rng = np.random.default_rng(_table_trial_seed(seed, trial))
    source = MatrixCostSource(matrix)
    options = SelectorOptions(
        alpha=alpha,
        delta=delta,
        scheme="delta",
        stratify="progressive",
        n_min=n_min,
        consecutive=consecutive,
        eliminate=True,
        reeval_every=reeval_every,
        batch_rounds=batch_rounds,
    )
    result = ConfigurationSelector(
        source, template_ids, options, rng=rng
    ).run()
    m = max(2, result.queries_sampled)

    # (a) no stratification: plain uniform shared sample of size m.
    rows = rng.choice(N, size=min(m, N), replace=False)
    nostrat_choice = int(np.argmin(matrix[rows].sum(axis=0)))

    # (b) equal allocation across the primitive's final strata.
    strata_groups = [
        np.concatenate([groups_map[t] for t in stratum])
        for stratum in result.final_strata
    ]
    L = len(strata_groups)
    per = max(1, m // max(1, L))
    alloc = np.array(
        [min(per, len(g)) for g in strata_groups], dtype=int
    )
    est = _stratified_estimate_fixed(
        matrix, strata_groups, alloc, rng, shared=True
    )
    return {
        "delta": (
            result.best_index, float(result.optimizer_calls), float(m)
        ),
        "nostrat": (nostrat_choice, float(m * k), float(m)),
        "equal": (
            int(np.argmin(est)), float(int(alloc.sum()) * k),
            float(alloc.sum()),
        ),
    }


def _reduce_table_records(
    totals: np.ndarray,
    records: Sequence[Dict[str, Tuple[int, float, float]]],
    trials: int,
    delta: float,
) -> List[MultiConfigRow]:
    """Fold per-trial records into Table rows, in trial order.

    The reduction order matches the historical serial accumulation
    exactly, so serial and parallel runs produce bit-identical floats.
    """
    stats = {
        name: {"correct": 0, "worst": 0.0, "calls": 0.0, "queries": 0.0}
        for name in ("delta", "nostrat", "equal")
    }
    for rec in records:
        for name in ("delta", "nostrat", "equal"):
            chosen, calls, queries = rec[name]
            entry = stats[name]
            if _is_correct(totals, chosen, delta):
                entry["correct"] += 1
            regret = (totals[chosen] - totals.min()) / totals.min() * 100.0
            entry["worst"] = max(entry["worst"], float(regret))
            entry["calls"] += calls
            entry["queries"] += queries
    rows_out = []
    for name, label in (
        ("delta", "Delta-Sampling"),
        ("nostrat", "No Strat."),
        ("equal", "Equal Alloc."),
    ):
        entry = stats[name]
        rows_out.append(
            MultiConfigRow(
                method=label,
                true_prcs=entry["correct"] / trials,
                max_delta_pct=entry["worst"],
                mean_calls=entry["calls"] / trials,
                mean_queries=entry["queries"] / trials,
            )
        )
    return rows_out


def multi_config_table(
    matrix: np.ndarray,
    template_ids: np.ndarray,
    alpha: float = 0.9,
    delta: float = 0.0,
    trials: int = 100,
    seed: int = 0,
    n_min: int = 30,
    consecutive: int = 10,
    reeval_every: int = 4,
    batch_rounds: int = 1,
) -> List[MultiConfigRow]:
    """The Table 2/3 protocol for one configuration set.

    Runs the adaptive primitive (Delta Sampling + progressive
    stratification, elimination on) to termination; then replays the
    two alternative allocation baselines with the *same number of
    sampled queries*:

    * "No Strat." — a plain uniform shared sample;
    * "Equal Alloc." — the same total split equally across the final
      strata the primitive built.
    """
    totals = matrix.sum(axis=0)
    template_ids = np.asarray(template_ids, dtype=np.int64)
    groups_map = _template_groups(template_ids)
    records = []
    for trial in range(trials):
        try:
            records.append(
                _table_trial(
                    matrix, template_ids, groups_map, trial, seed,
                    alpha, delta, n_min, consecutive, reeval_every,
                    batch_rounds=batch_rounds,
                )
            )
        except Exception as exc:
            raise RuntimeError(
                f"multi_config_table trial failed (trial={trial}, "
                f"trial_seed={_table_trial_seed(seed, trial)})"
            ) from exc
    return _reduce_table_records(totals, records, trials, delta)
