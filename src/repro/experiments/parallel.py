"""Process-parallel Monte Carlo replay (bit-identical to serial).

The Monte Carlo protocol replays thousands of independent selection
runs against one in-memory ground-truth matrix — embarrassingly
parallel work that the serial loops in
:mod:`repro.experiments.monte_carlo` leave on the table.  This module
fans the trials out over a :class:`~concurrent.futures.ProcessPoolExecutor`
while guaranteeing **bit-identical results** to the serial loop for the
same seed:

* every trial's generator is derived from ``(seed, budget, trial)``
  alone (the exact formulas the serial loops use), so a trial computes
  the same selection no matter which worker runs it;
* workers return per-trial records, and the parent folds them in trial
  order with the same reduction the serial path uses — float
  accumulation order is preserved, so even non-associative sums match
  to the last bit.

Worker count resolution: an explicit ``workers`` argument wins, then
the ``REPRO_WORKERS`` environment variable; ``0`` or negative means
"all CPUs".  The default (unset) is 1, i.e. the serial path.

**Fault containment**: chunks are submitted as individual futures, so
one worker dying (OOM kill, segfault — surfacing as
``BrokenProcessPool``) or raising no longer discards every completed
chunk.  Completed results are kept; each failed chunk is retried once
*serially in the parent* (trials are deterministic in ``(seed, trial)``,
so the retry computes the identical record); a chunk that fails twice
raises :class:`ChunkFailure` naming the exact trials and seed, instead
of a bare pool traceback.

For *new* experiments that need independent streams without a legacy
stream to replay, :func:`spawn_trial_rngs` derives per-trial generators
via ``np.random.SeedSequence.spawn`` — statistically independent by
construction and just as deterministic.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .monte_carlo import (
    MultiConfigRow,
    SchemeSpec,
    _curve_trial_seed,
    _is_correct,
    _reduce_table_records,
    _table_trial,
    _template_groups,
    multi_config_table as _serial_multi_config_table,
    prcs_curve as _serial_prcs_curve,
    select_fixed_budget,
)

__all__ = [
    "ChunkFailure",
    "resolve_workers",
    "spawn_trial_rngs",
    "prcs_curve",
    "multi_config_table",
]


class ChunkFailure(RuntimeError):
    """A pool chunk failed in the worker *and* in the serial retry.

    Carries enough context to reproduce the failing trials directly:
    ``description`` names the chunk (trial indices and seed) and
    ``pool_error`` preserves what the worker reported before the
    serial retry also failed (the retry's error is the ``__cause__``).
    """

    def __init__(self, description: str, pool_error: BaseException) -> None:
        super().__init__(
            f"{description}: failed in worker "
            f"({type(pool_error).__name__}: {pool_error}) and in the "
            f"serial retry"
        )
        self.description = description
        self.pool_error = pool_error


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count: argument, then ``REPRO_WORKERS``, then 1.

    ``0`` or a negative value (from either source) means "use all
    CPUs".
    """
    if workers is None:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        workers = int(raw) if raw else 1
    if workers <= 0:
        workers = os.cpu_count() or 1
    return max(1, workers)


def spawn_trial_rngs(seed: int, count: int) -> List[np.random.Generator]:
    """``count`` independent generators via ``SeedSequence.spawn``.

    Deterministic in ``seed`` and safe to hand one-per-trial to
    concurrent workers; used by experiments that do not need to replay
    a historical serial stream.
    """
    return [
        np.random.default_rng(child)
        for child in np.random.SeedSequence(seed).spawn(count)
    ]


def _chunked(items: Sequence, n_chunks: int) -> List[List]:
    """Split ``items`` into at most ``n_chunks`` contiguous chunks."""
    n = len(items)
    n_chunks = max(1, min(n_chunks, n))
    size = -(-n // n_chunks)
    return [list(items[i:i + size]) for i in range(0, n, size)]


# ----------------------------------------------------------------------
# worker-side state (populated once per worker by the pool initializer,
# so the matrix is pickled once per worker instead of once per chunk)
# ----------------------------------------------------------------------
_STATE: Dict[str, np.ndarray] = {}


def _init_worker(matrix: np.ndarray, template_ids: np.ndarray) -> None:
    _STATE["matrix"] = matrix
    _STATE["template_ids"] = template_ids
    _STATE["groups_map"] = _template_groups(template_ids)


def _curve_chunk(args: Tuple) -> List[Tuple[int, int, int]]:
    """Run a chunk of (budget-index, trial) tasks; return selections."""
    spec, budgets, seed, n_min, reeval_every, batch_rounds, tasks = args
    matrix = _STATE["matrix"]
    template_ids = _STATE["template_ids"]
    out = []
    for b_idx, trial in tasks:
        rng = np.random.default_rng(_curve_trial_seed(seed, b_idx, trial))
        chosen = select_fixed_budget(
            matrix, template_ids, spec, budgets[b_idx], rng,
            n_min=n_min, reeval_every=reeval_every,
            batch_rounds=batch_rounds,
        )
        out.append((b_idx, trial, chosen))
    return out


def _table_chunk(args: Tuple) -> List[Tuple[int, Dict]]:
    """Run a chunk of Table 2/3 trials; return per-trial records."""
    (seed, alpha, delta, n_min, consecutive, reeval_every,
     batch_rounds, trials) = args
    matrix = _STATE["matrix"]
    template_ids = _STATE["template_ids"]
    groups_map = _STATE["groups_map"]
    return [
        (
            trial,
            _table_trial(
                matrix, template_ids, groups_map, trial, seed,
                alpha, delta, n_min, consecutive, reeval_every,
                batch_rounds=batch_rounds,
            ),
        )
        for trial in trials
    ]


def _run_chunks(
    fn: Callable,
    payloads: Sequence,
    describe: Callable[[int], str],
    workers: int,
    init_args: Tuple,
) -> List:
    """Run chunk payloads over a process pool; salvage failures.

    Every payload is submitted as its own future, so a worker raising
    (or the pool breaking under a killed worker) costs only the chunks
    that actually failed — completed results are kept.  Failed chunks
    are retried once serially in the parent, which first runs the
    worker initializer locally so chunk functions find their
    ``_STATE``; trials are seed-deterministic, so a successful retry
    is bit-identical to what the worker would have returned.  A chunk
    failing twice raises :class:`ChunkFailure` with ``describe(i)``
    naming its trials.

    Returns results in payload order.
    """
    results: List = [None] * len(payloads)
    failed: List[Tuple[int, BaseException]] = []
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=init_args,
    ) as pool:
        futures = [
            (i, pool.submit(fn, payload))
            for i, payload in enumerate(payloads)
        ]
        for i, future in futures:
            try:
                results[i] = future.result()
            except Exception as exc:
                failed.append((i, exc))
    if failed:
        _init_worker(*init_args)
        for i, pool_error in failed:
            try:
                results[i] = fn(payloads[i])
            except Exception as exc:
                raise ChunkFailure(describe(i), pool_error) from exc
    return results


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------
def prcs_curve(
    matrix: np.ndarray,
    template_ids: np.ndarray,
    spec: SchemeSpec,
    budgets: Sequence[int],
    trials: int,
    seed: int = 0,
    delta: float = 0.0,
    n_min: int = 30,
    reeval_every: int = 4,
    batch_rounds: int = 1,
    workers: Optional[int] = None,
    chunks_per_worker: int = 4,
) -> np.ndarray:
    """Parallel :func:`repro.experiments.monte_carlo.prcs_curve`.

    Bit-identical to the serial function for any worker count; with
    ``workers <= 1`` it simply delegates to it.
    """
    workers = resolve_workers(workers)
    budgets = list(budgets)
    if workers <= 1:
        return _serial_prcs_curve(
            matrix, template_ids, spec, budgets, trials, seed=seed,
            delta=delta, n_min=n_min, reeval_every=reeval_every,
            batch_rounds=batch_rounds,
        )
    matrix = np.asarray(matrix, dtype=np.float64)
    template_ids = np.asarray(template_ids, dtype=np.int64)
    tasks = [
        (b_idx, trial)
        for b_idx in range(len(budgets))
        for trial in range(trials)
    ]
    payloads = [
        (spec, budgets, seed, n_min, reeval_every, batch_rounds, chunk)
        for chunk in _chunked(tasks, workers * chunks_per_worker)
    ]
    totals = matrix.sum(axis=0)
    correct = np.zeros(len(budgets), dtype=np.int64)

    def _describe(i: int) -> str:
        chunk = payloads[i][-1]
        return (
            f"prcs_curve chunk {i} (seed={seed}, "
            f"budget/trial pairs {chunk[0]}..{chunk[-1]})"
        )

    for chunk_result in _run_chunks(
        _curve_chunk, payloads, _describe, workers,
        (matrix, template_ids),
    ):
        for b_idx, _trial, chosen in chunk_result:
            if _is_correct(totals, chosen, delta):
                correct[b_idx] += 1
    return correct / trials


def multi_config_table(
    matrix: np.ndarray,
    template_ids: np.ndarray,
    alpha: float = 0.9,
    delta: float = 0.0,
    trials: int = 100,
    seed: int = 0,
    n_min: int = 30,
    consecutive: int = 10,
    reeval_every: int = 4,
    batch_rounds: int = 1,
    workers: Optional[int] = None,
    chunks_per_worker: int = 4,
) -> List[MultiConfigRow]:
    """Parallel :func:`repro.experiments.monte_carlo.multi_config_table`.

    Bit-identical to the serial function for any worker count: workers
    compute per-trial records, the parent reduces them in trial order
    with the shared serial reduction.
    """
    workers = resolve_workers(workers)
    if workers <= 1:
        return _serial_multi_config_table(
            matrix, template_ids, alpha=alpha, delta=delta, trials=trials,
            seed=seed, n_min=n_min, consecutive=consecutive,
            reeval_every=reeval_every, batch_rounds=batch_rounds,
        )
    matrix = np.asarray(matrix, dtype=np.float64)
    template_ids = np.asarray(template_ids, dtype=np.int64)
    payloads = [
        (seed, alpha, delta, n_min, consecutive, reeval_every,
         batch_rounds, chunk)
        for chunk in _chunked(
            list(range(trials)), workers * chunks_per_worker
        )
    ]
    records: List[Optional[Dict]] = [None] * trials

    def _describe(i: int) -> str:
        chunk = payloads[i][-1]
        return (
            f"multi_config_table chunk {i} (seed={seed}, "
            f"trials {chunk[0]}..{chunk[-1]})"
        )

    for chunk_result in _run_chunks(
        _table_chunk, payloads, _describe, workers,
        (matrix, template_ids),
    ):
        for trial, record in chunk_result:
            records[trial] = record
    totals = matrix.sum(axis=0)
    return _reduce_table_records(totals, records, trials, delta)
