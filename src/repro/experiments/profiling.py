"""Lightweight wall-time and cache-hit profiling for benchmarks.

The performance work in this repository is judged on two axes: the
paper's metric (optimizer calls, which the caching layers must never
change) and wall-clock time (which they must improve).  This module
provides the small instrumentation surface the benchmarks and the CLI
use to report both in JSON:

* :class:`PhaseTimer` — accumulate named per-phase wall times;
* :func:`cache_hit_report` — layered hit rates of a
  :class:`~repro.optimizer.whatif.WhatIfOptimizer`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator

__all__ = ["PhaseTimer", "cache_hit_report"]


class PhaseTimer:
    """Accumulates wall time per named phase.

    Usage::

        timer = PhaseTimer()
        with timer.phase("build_matrix"):
            ...
        timer.as_dict()  # {"build_matrix": 1.23}

    Re-entering a phase name accumulates; phases keep first-use order.

    Attribution is *exclusive*: entering a nested phase pauses the
    enclosing one, so each second of wall time lands in exactly one
    phase and the phase sum never exceeds the elapsed wall time.  (A
    split that pilots its refreshed strata books the pilot's sampling
    under ``draw``/``cost``/``ingest``, not double-counted under
    ``split``.)
    """

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}
        self._stack: list = []

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a block of work under ``name``."""
        start = time.perf_counter()
        if self._stack:
            outer = self._stack[-1]
            self._seconds[outer[0]] = (
                self._seconds.get(outer[0], 0.0) + start - outer[1]
            )
        frame = [name, start]
        self._stack.append(frame)
        try:
            yield
        finally:
            end = time.perf_counter()
            self._seconds[name] = (
                self._seconds.get(name, 0.0) + end - frame[1]
            )
            self._stack.pop()
            if self._stack:
                self._stack[-1][1] = end

    def seconds(self, name: str) -> float:
        """Accumulated wall time of one phase (0.0 if never entered)."""
        return self._seconds.get(name, 0.0)

    def merge(self, other: "PhaseTimer") -> None:
        """Fold another timer's phases into this one.

        Used to aggregate per-run timers (e.g. one selector run per
        retune) into a session-level profile; phases new to ``self``
        keep ``other``'s relative order.
        """
        for name, elapsed in other.as_dict().items():
            self._seconds[name] = self._seconds.get(name, 0.0) + elapsed

    @property
    def total(self) -> float:
        """Sum of all phase times."""
        return sum(self._seconds.values())

    def as_dict(self) -> Dict[str, float]:
        """Phase -> seconds, in first-use order (JSON-friendly)."""
        return dict(self._seconds)


def cache_hit_report(optimizer) -> Dict[str, float]:
    """Layered cache statistics of a what-if optimizer, with rates.

    ``calls`` is the paper's efficiency metric and is unaffected by the
    fingerprint layer; ``fingerprint_hit_rate`` is the fraction of
    those calls that skipped plan search (wall-clock savings only).
    """
    stats = dict(optimizer.cache_stats)
    lookups = stats["calls"] + stats["cache_hits"]
    stats["pair_hit_rate"] = (
        stats["cache_hits"] / lookups if lookups else 0.0
    )
    stats["fingerprint_hit_rate"] = (
        stats["fingerprint_hits"] / stats["calls"] if stats["calls"]
        else 0.0
    )
    return stats
