"""Standard experiment setups mirroring Section 7.

Builders that assemble (workload, configurations, optimizer,
ground-truth cost matrix) tuples for the paper's experiments:

* :func:`tpcd_setup` / :func:`crm_setup` — database + workload +
  ``k`` tool-enumerated candidate configurations + cached cost matrix;
* :func:`find_pair` — locate a configuration pair with a target
  relative cost difference and structural-overlap regime, used to
  reproduce the "easy pair" (Figure 1: ~7% apart, low overlap), the
  "hard pair" (Figure 3: <=2% apart, both index-only, high overlap)
  and the CRM pair (Figure 4: <1% apart, little overlap).

Default sizes are scaled below the paper's (13K/6K workloads) so that
benches run in minutes; all sizes are parameters, and the cache makes
repeated use cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..optimizer.whatif import WhatIfOptimizer
from ..physical.candidates import build_pool, enumerate_configurations
from ..physical.configuration import Configuration
from ..workload.crm import crm_generator, crm_schema
from ..workload.tpcd import tpcd_generator, tpcd_schema
from ..workload.workload import Workload
from .cache import cached_matrix

__all__ = ["ExperimentSetup", "tpcd_setup", "crm_setup", "find_pair"]


@dataclass
class ExperimentSetup:
    """Everything an experiment needs.

    Attributes
    ----------
    workload:
        The traced workload.
    configurations:
        The ``k`` candidate configurations.
    optimizer:
        The what-if optimizer over the setup's schema.
    matrix:
        Ground-truth ``N x k`` cost matrix (exhaustive evaluation).
    """

    workload: Workload
    configurations: List[Configuration]
    optimizer: WhatIfOptimizer
    matrix: np.ndarray

    @property
    def true_totals(self) -> np.ndarray:
        """``Cost(WL, C)`` per configuration."""
        return self.matrix.sum(axis=0)

    @property
    def true_best(self) -> int:
        """Index of the truly cheapest configuration."""
        return int(np.argmin(self.true_totals))


def _build_setup(
    name: str,
    workload: Workload,
    optimizer: WhatIfOptimizer,
    configurations: List[Configuration],
) -> ExperimentSetup:
    from ..optimizer.params import COST_MODEL_VERSION

    key = (
        f"v{COST_MODEL_VERSION}|{name}|N={workload.size}|"
        f"k={len(configurations)}|"
        f"cfgs={sorted(c.name for c in configurations)}"
    )

    def builder() -> np.ndarray:
        # Batched column-major build: fingerprint sharing makes this
        # several times faster than the per-configuration loop while
        # producing the identical matrix and call count.
        from ..optimizer.batch import cost_matrix

        return cost_matrix(workload, configurations, optimizer)

    matrix = cached_matrix(key, builder)
    return ExperimentSetup(
        workload=workload,
        configurations=configurations,
        optimizer=optimizer,
        matrix=matrix,
    )


def _keep_cheapest(setup: ExperimentSetup, k: int) -> ExperimentSetup:
    """Restrict a setup to its ``k`` lowest-total-cost candidates."""
    totals = setup.true_totals
    keep = np.argsort(totals)[:k]
    keep = np.sort(keep)
    return ExperimentSetup(
        workload=setup.workload,
        configurations=[setup.configurations[i] for i in keep],
        optimizer=setup.optimizer,
        matrix=setup.matrix[:, keep],
    )


def _shared_core_base(pool, shared_core: int) -> Configuration:
    """The ``shared_core`` most broadly useful indexes as a base.

    A design tool's top candidates all contain the obviously good
    structures and differ only peripherally; sharing a strong core
    compresses the candidates' total costs toward the optimum — the
    "hard" regime of the paper's multi-configuration experiments.
    """
    common = sorted(
        pool.index_weights, key=pool.index_weights.get, reverse=True
    )[:shared_core]
    # The big cost swings come from materialized views for the heavy
    # join templates; a tool's serious candidates all include the
    # clearly beneficial ones.
    core_views = sorted(
        pool.view_weights, key=pool.view_weights.get, reverse=True
    )[: max(1, shared_core // 3)]
    return Configuration(common, core_views, name="core")


def tpcd_setup(
    n_queries: int = 2_000,
    k: int = 2,
    seed: int = 0,
    index_only: bool = False,
    include_dml: bool = True,
    candidate_queries: int = 300,
    scale_factor: float = 0.1,
    shared_core: int = 0,
    top_k_of: Optional[int] = None,
) -> ExperimentSetup:
    """TPC-D workload + ``k`` enumerated configurations + cost matrix.

    ``index_only=True`` restricts candidates to indexes (the regime of
    Figure 3's hard pair).  The candidate pool is built from the first
    ``candidate_queries`` statements, as a design tool would use a
    training prefix.  ``shared_core > 0`` puts that many top-weighted
    indexes in every candidate, clustering candidates near the optimum
    (the Table 2/3 regime of tool-enumerated near-ties).
    """
    schema = tpcd_schema(scale_factor=scale_factor)
    generator = tpcd_generator(schema=schema, include_dml=include_dml)
    rng = np.random.default_rng(seed)
    workload = generator.generate(n_queries, rng)
    optimizer = WhatIfOptimizer(schema)
    pool = build_pool(
        workload.queries[:candidate_queries], optimizer,
        include_views=not index_only,
    )
    base = _shared_core_base(pool, shared_core) if shared_core else None
    configurations = enumerate_configurations(
        pool, top_k_of if top_k_of else k, rng, index_only=index_only,
        base=base,
        min_indexes=1 if shared_core else 3,
        max_indexes=5 if shared_core else 12,
    )
    name = (
        f"tpcd|sf={scale_factor}|seed={seed}|dml={include_dml}|"
        f"index_only={index_only}|cand={candidate_queries}|"
        f"core={shared_core}|top={top_k_of}"
    )
    setup = _build_setup(name, workload, optimizer, configurations)
    if top_k_of:
        setup = _keep_cheapest(setup, k)
    return setup


def crm_setup(
    n_queries: int = 2_000,
    k: int = 2,
    seed: int = 0,
    candidate_queries: int = 300,
    schema_seed: int = 7,
    shared_core: int = 0,
    top_k_of: Optional[int] = None,
) -> ExperimentSetup:
    """CRM trace + ``k`` enumerated configurations + cost matrix.

    ``shared_core`` as in :func:`tpcd_setup`.
    """
    schema = crm_schema(seed=schema_seed)
    generator = crm_generator(schema=schema)
    rng = np.random.default_rng(seed)
    workload = generator.generate(n_queries, rng)
    optimizer = WhatIfOptimizer(schema)
    pool = build_pool(
        workload.queries[:candidate_queries], optimizer, include_views=True
    )
    base = _shared_core_base(pool, shared_core) if shared_core else None
    configurations = enumerate_configurations(
        pool, top_k_of if top_k_of else k, rng, base=base,
        min_indexes=1 if shared_core else 3,
        max_indexes=5 if shared_core else 12,
    )
    name = (
        f"crm|schema={schema_seed}|seed={seed}|cand={candidate_queries}|"
        f"core={shared_core}|top={top_k_of}"
    )
    setup = _build_setup(name, workload, optimizer, configurations)
    if top_k_of:
        setup = _keep_cheapest(setup, k)
    return setup


def find_pair(
    setup: ExperimentSetup,
    target_rel_diff: float,
    tolerance: float = 0.5,
    overlap_below: Optional[float] = None,
    overlap_above: Optional[float] = None,
) -> Tuple[int, int]:
    """Find a configuration pair with a target relative cost difference.

    Parameters
    ----------
    setup:
        An :class:`ExperimentSetup` with ``k >= 2`` configurations.
    target_rel_diff:
        Desired ``|cost_i - cost_j| / max(cost)`` (e.g. 0.07 for the
        Figure 1 pair).
    tolerance:
        Accept pairs within ``target * (1 +- tolerance)``.
    overlap_below / overlap_above:
        Optional structural-overlap (Jaccard) constraints: require
        overlap strictly below / at-or-above the given fraction.

    Returns
    -------
    (worse_idx, better_idx)
        Ordered so the second configuration is the cheaper one.

    Raises
    ------
    LookupError
        When no pair satisfies the constraints (enumerate more
        configurations or relax the constraints).
    """
    totals = setup.true_totals
    k = len(totals)
    best_pair: Optional[Tuple[int, int]] = None
    best_err = float("inf")
    for i in range(k):
        for j in range(i + 1, k):
            hi, lo = max(totals[i], totals[j]), min(totals[i], totals[j])
            rel = (hi - lo) / hi
            err = abs(rel - target_rel_diff)
            if err > target_rel_diff * tolerance:
                continue
            overlap = setup.configurations[i].overlap_fraction(
                setup.configurations[j]
            )
            if overlap_below is not None and overlap >= overlap_below:
                continue
            if overlap_above is not None and overlap < overlap_above:
                continue
            if err < best_err:
                best_err = err
                worse, better = (
                    (i, j) if totals[i] > totals[j] else (j, i)
                )
                best_pair = (worse, better)
    if best_pair is None:
        raise LookupError(
            f"no configuration pair with relative difference ~"
            f"{target_rel_diff:g} under the given overlap constraints; "
            f"try a larger k or looser tolerance"
        )
    return best_pair
