"""Plain-text tables and series, in the paper's reporting style.

The benchmarks print, for every reproduced table and figure, the same
rows/series the paper reports; this module holds the formatting so the
outputs look uniform across benches and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["format_table", "format_series", "format_kv"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [
        max(len(row[i]) for row in cells) for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(
            " | ".join(c.ljust(w) for c, w in zip(row, widths))
        )
    return "\n".join(lines)


def format_series(
    x_label: str,
    xs: Sequence[object],
    series: Dict[str, Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render "figure" data as one aligned series-per-column table."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        row = [x]
        for name in series:
            value = series[name][i]
            row.append(
                f"{value:.3f}" if isinstance(value, float) else value
            )
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_kv(pairs: Dict[str, object], title: Optional[str] = None) -> str:
    """Render key/value pairs one per line."""
    lines: List[str] = []
    if title:
        lines.append(title)
    width = max(len(k) for k in pairs) if pairs else 0
    for key, value in pairs.items():
        lines.append(f"  {key.ljust(width)} : {value}")
    return "\n".join(lines)
