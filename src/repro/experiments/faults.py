"""Resilience experiment: selection under an unreliable optimizer.

The paper's cost model assumes every ``Cost(q, C)`` call returns; a
real what-if interface times out, drops connections, and occasionally
refuses a plan outright.  This experiment measures what the
fault-tolerance layer (:mod:`repro.faults`) costs and guarantees:

* a **baseline** selection against a clean synthetic matrix;
* one run per ``mode x rate`` cell with deterministic injected faults
  (:class:`~repro.faults.InjectedFaultCostSource`) behind the retry
  wrapper (:class:`~repro.faults.ResilientCostSource`).

Because retries that eventually succeed return the exact same values
and never touch the selector's RNG, every completed faulty run must
reproduce the baseline *bit-identically* — same final configuration,
same estimates, and (distinct-pair accounting) the same optimizer-call
count.  The experiment reports that invariant plus the overhead paid
for it: retry counts and simulated backoff seconds.  ``permanent``
mode demonstrates the other side of the contract — the failure budget
exhausts and the run dies with a precise
:class:`~repro.faults.CostSourceExhausted` instead of hanging.

All timing is simulated through a :class:`~repro.faults.FakeClock`;
the experiment never sleeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.selector import (
    ConfigurationSelector,
    SelectionResult,
    SelectorOptions,
)
from ..core.sources import MatrixCostSource
from ..faults import (
    CostSourceExhausted,
    FakeClock,
    FaultPolicy,
    InjectedFaultCostSource,
    ResilientCostSource,
)
from .report import format_kv, format_table

__all__ = [
    "ResilienceCase",
    "ResilienceReport",
    "resilience_experiment",
    "format_resilience_report",
]


@dataclass(frozen=True)
class ResilienceCase:
    """One ``mode x rate`` cell of the resilience experiment."""

    mode: str
    rate: float
    completed: bool
    exhausted: bool
    #: Completed runs only: did every result field match the baseline
    #: bit for bit (best index, estimates, call count)?
    identical: bool
    best_index: Optional[int]
    distinct_calls: int
    faults_injected: int
    retries: int
    transient_failures: int
    timeouts: int
    permanent_failures: int
    salvaged_batches: int
    salvaged_values: int
    backoff_seconds: float
    error: Optional[str] = None


@dataclass
class ResilienceReport:
    """Baseline facts plus every injected-fault cell."""

    n_queries: int
    n_configs: int
    baseline_best: int
    baseline_calls: int
    baseline_prcs: float
    cases: List[ResilienceCase]


def _synthetic_workload(
    n_queries: int, n_templates: int, k: int, seed: int
) -> Tuple[np.ndarray, np.ndarray]:
    """A template-structured cost matrix (same family as the tests)."""
    rng = np.random.default_rng(seed)
    template_ids = np.sort(rng.integers(0, n_templates, size=n_queries))
    base = rng.lognormal(mean=2.0, sigma=0.6, size=n_queries)
    effect = rng.uniform(0.7, 1.3, size=(n_templates, k))
    noise = rng.lognormal(mean=0.0, sigma=0.05, size=(n_queries, k))
    matrix = base[:, None] * effect[template_ids] * noise
    return matrix, template_ids


def _result_matches(a: SelectionResult, b: SelectionResult) -> bool:
    return (
        a.best_index == b.best_index
        and a.terminated_by == b.terminated_by
        and a.optimizer_calls == b.optimizer_calls
        and np.array_equal(
            np.asarray(a.estimates), np.asarray(b.estimates)
        )
    )


def resilience_experiment(
    n_queries: int = 400,
    n_templates: int = 16,
    k: int = 5,
    seed: int = 123,
    rates: Sequence[float] = (0.01, 0.1),
    modes: Sequence[str] = ("transient", "slow", "permanent"),
    retries: int = 3,
    failure_budget: int = 32,
    options: Optional[SelectorOptions] = None,
) -> ResilienceReport:
    """Run the baseline and the full ``mode x rate`` injection grid.

    ``failure_budget`` only binds in ``permanent`` mode (transient and
    slow faults recover within ``retries``); it is what turns an
    unrecoverable optimizer into a prompt, attributable failure.
    """
    if options is None:
        options = SelectorOptions(
            alpha=0.9,
            scheme="delta",
            stratify="progressive",
            n_min=8,
            consecutive=3,
            eliminate=True,
            reeval_every=2,
        )
    matrix, template_ids = _synthetic_workload(
        n_queries, n_templates, k, seed
    )

    def _select(source) -> SelectionResult:
        selector = ConfigurationSelector(
            source,
            template_ids,
            options,
            rng=np.random.default_rng(seed),
        )
        return selector.run()

    baseline_source = MatrixCostSource(matrix)
    baseline = _select(baseline_source)

    cases: List[ResilienceCase] = []
    for mode in modes:
        for rate in rates:
            clock = FakeClock()
            inner = MatrixCostSource(matrix)
            injected = InjectedFaultCostSource(
                inner,
                rate=rate,
                mode=mode,
                seed=seed + 1,
                fail_attempts=1,
                slow_seconds=5.0 if mode == "slow" else 0.0,
                clock=clock,
            )
            policy = FaultPolicy(
                retries=retries,
                backoff_base=0.05,
                timeout=1.0 if mode == "slow" else None,
                failure_budget=(
                    failure_budget if mode == "permanent" else None
                ),
                seed=seed,
            )
            resilient = ResilientCostSource(
                injected, policy, sleep=clock.sleep, clock=clock
            )
            completed = True
            error = None
            result: Optional[SelectionResult] = None
            try:
                result = _select(resilient)
            except CostSourceExhausted as exc:
                completed = False
                error = str(exc)
            stats = resilient.fault_stats()
            cases.append(
                ResilienceCase(
                    mode=mode,
                    rate=float(rate),
                    completed=completed,
                    exhausted=not completed,
                    identical=(
                        completed and _result_matches(result, baseline)
                    ),
                    best_index=(
                        None if result is None else result.best_index
                    ),
                    distinct_calls=inner.calls,
                    faults_injected=injected.injected,
                    retries=stats["retries_total"],
                    transient_failures=stats["transient_failures"],
                    timeouts=stats["timeouts"],
                    permanent_failures=stats["permanent_failures"],
                    salvaged_batches=stats["salvaged_batches"],
                    salvaged_values=stats["salvaged_values"],
                    backoff_seconds=stats["backoff_seconds"],
                    error=error,
                )
            )
    return ResilienceReport(
        n_queries=n_queries,
        n_configs=k,
        baseline_best=baseline.best_index,
        baseline_calls=baseline.optimizer_calls,
        baseline_prcs=baseline.prcs,
        cases=cases,
    )


def format_resilience_report(report: ResilienceReport) -> str:
    """Plain-text rendering of a :class:`ResilienceReport`."""
    header = format_kv(
        {
            "workload": f"{report.n_queries} queries, "
                        f"{report.n_configs} configurations",
            "baseline best": report.baseline_best,
            "baseline optimizer calls": report.baseline_calls,
            "baseline Pr(CS)": f"{report.baseline_prcs:.3f}",
        },
        title="Resilience experiment (injected optimizer faults)",
    )
    rows = []
    for c in report.cases:
        rows.append(
            [
                c.mode,
                f"{c.rate:.2f}",
                "yes" if c.completed else "EXHAUSTED",
                ("yes" if c.identical else "-") if c.completed else "-",
                c.distinct_calls,
                f"{c.distinct_calls / report.baseline_calls:.3f}",
                c.faults_injected,
                c.retries,
                c.timeouts,
                c.salvaged_batches,
                f"{c.backoff_seconds:.2f}",
            ]
        )
    table = format_table(
        [
            "mode", "rate", "completed", "bit-identical", "calls",
            "calls/base", "faults", "retries", "timeouts",
            "salvaged", "backoff s",
        ],
        rows,
    )
    return header + "\n\n" + table
