"""Calibration measurement: is the claimed Pr(CS) honest?

The paper's guarantees are only as good as the Pr(CS) estimate: with
sample variances standing in for true variances, "Pr(CS) may be either
over- or under-estimated" (§4.1), and §6 exists precisely to police
the over-estimation risk on skewed populations.

This module measures calibration empirically: run the fixed-sample
comparison many times, bucket the trials by *claimed* probability, and
compare each bucket's claim with its empirical frequency of correct
selection — a reliability diagram in table form.  A method is
conservative when every bucket's empirical frequency is at or above
its claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.estimators import DeltaState
from ..core.prcs import pairwise_prcs
from ..core.sources import MatrixCostSource
from ..core.stratification import Stratification

__all__ = ["CalibrationBucket", "CalibrationReport", "measure_calibration"]


@dataclass(frozen=True)
class CalibrationBucket:
    """One claimed-probability bucket of a reliability diagram."""

    claim_low: float
    claim_high: float
    trials: int
    mean_claim: float
    empirical: float

    @property
    def gap(self) -> float:
        """``empirical - mean_claim``; negative = over-confident."""
        return self.empirical - self.mean_claim


@dataclass
class CalibrationReport:
    """Reliability summary over many fixed-sample comparisons."""

    buckets: List[CalibrationBucket]
    overall_claim: float
    overall_empirical: float

    @property
    def overconfident(self) -> bool:
        """Whether any populated bucket is materially over-confident."""
        return any(
            b.gap < -0.1 for b in self.buckets if b.trials >= 20
        )


def measure_calibration(
    matrix: np.ndarray,
    template_ids: np.ndarray,
    sample_size: int,
    trials: int = 400,
    seed: int = 0,
    delta: float = 0.0,
    variance_override: Optional[float] = None,
    bucket_edges: Sequence[float] = (0.5, 0.7, 0.8, 0.9, 0.95, 1.0001),
) -> CalibrationReport:
    """Measure Pr(CS) calibration for a two-configuration problem.

    Each trial draws ``sample_size`` shared queries (Delta Sampling),
    selects the configuration with the lower estimate and records the
    claimed ``Pr(CS)``; ground truth decides whether the selection was
    correct.

    Parameters
    ----------
    matrix:
        ``(N, 2)`` ground-truth cost matrix.
    variance_override:
        When given, used in place of the sample variance of the
        difference estimator — pass a certified ``sigma^2_max``-derived
        estimator variance to measure the *conservative* variant
        (Section 6.2).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[1] != 2:
        raise ValueError("calibration needs an (N, 2) cost matrix")
    n = matrix.shape[0]
    if not (2 <= sample_size <= n):
        raise ValueError(f"sample_size must be in [2, {n}]")
    template_ids = np.asarray(template_ids, dtype=np.int64)
    groups: Dict[int, list] = {}
    for i, t in enumerate(template_ids):
        groups.setdefault(int(t), []).append(i)
    groups_arr = {t: np.asarray(v) for t, v in groups.items()}
    sizes = {t: len(v) for t, v in groups_arr.items()}
    strat = Stratification.single(sizes)
    n_templates = int(template_ids.max()) + 1

    totals = matrix.sum(axis=0)
    truth_best = int(np.argmin(totals))

    claims = np.empty(trials)
    corrects = np.empty(trials, dtype=bool)
    for trial in range(trials):
        rng = np.random.default_rng((seed * 7_919 + trial) & 0x7FFFFFFF)
        state = DeltaState(2, n_templates, groups_arr, rng)
        source = MatrixCostSource(matrix)
        all_templates = tuple(sorted(sizes))
        for _ in range(sample_size):
            state.sample_one(all_templates, source, rng, [0, 1])
        mean_diff, var_diff = state.pair_estimate(0, 1, strat)
        chosen = 0 if mean_diff < 0 else 1
        variance = (
            variance_override if variance_override is not None
            else var_diff
        )
        claims[trial] = pairwise_prcs(abs(mean_diff), variance, delta)
        regret = totals[chosen] - totals[truth_best]
        corrects[trial] = regret <= delta + 1e-9 * abs(totals[truth_best])

    buckets: List[CalibrationBucket] = []
    lo = 0.0
    for hi in bucket_edges:
        mask = (claims >= lo) & (claims < hi)
        count = int(mask.sum())
        buckets.append(CalibrationBucket(
            claim_low=lo,
            claim_high=min(1.0, hi),
            trials=count,
            mean_claim=float(claims[mask].mean()) if count else 0.0,
            empirical=float(corrects[mask].mean()) if count else 0.0,
        ))
        lo = hi
    return CalibrationReport(
        buckets=buckets,
        overall_claim=float(claims.mean()),
        overall_empirical=float(corrects.mean()),
    )
