"""Replay experiment: cold vs. warm retunes in optimizer calls.

The online tuning service's claim is operational, not statistical: a
warm-started retune should land on the *same* configuration as a cold
run over the same window while spending *fewer* optimizer calls,
because still-valid per-stratum cost samples are carried forward and
only templates whose mix changed are resampled.

:func:`cold_vs_warm_replay` measures exactly that.  One drifting trace
with a planted change point is generated once, then the service loop
replays it twice with identical seeds and knobs — warm starts enabled
vs. disabled — and the per-retune optimizer-call counts are compared.
A fresh optimizer per run keeps the call accounting independent.

Run it from the command line::

    python -m repro.experiments.replay           # text report
    python -m repro.experiments.replay --json    # machine-readable
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from ..core.selector import SelectorOptions
from ..optimizer import WhatIfOptimizer
from ..physical import build_pool, enumerate_configurations
from ..service.events import EventLog
from ..service.runner import ServiceConfig, ServiceReport, run_service
from ..workload import (
    change_point_workload,
    crm_generator,
    crm_schema,
    tpcd_generator,
    tpcd_schema,
)

__all__ = ["cold_vs_warm_replay", "format_replay_report"]


def _one_run(
    trace,
    schema,
    configs,
    config: ServiceConfig,
    options: SelectorOptions,
    seed: int,
    events: Optional[EventLog] = None,
) -> ServiceReport:
    """Replay the trace through a fresh optimizer/service stack."""
    return run_service(
        trace,
        configs,
        WhatIfOptimizer(schema),
        config=config,
        options=options,
        events=events if events is not None else EventLog(),
        rng=np.random.default_rng(seed),
    )


def cold_vs_warm_replay(
    db: str = "tpcd",
    size: int = 800,
    k: int = 4,
    seed: int = 0,
    window: int = 250,
    batch: int = 50,
    threshold: float = 0.04,
    cooldown: int = 100,
    n_min: int = 15,
    alpha: float = 0.9,
    change_point: float = 0.35,
    rel_delta: float = 0.02,
    invalidate_rel_tol: float = 0.5,
) -> Dict[str, Any]:
    """Compare warm vs. cold retunes over one drifting trace.

    ``rel_delta`` sets the selection sensitivity ``delta`` to that
    fraction of the expected window cost (estimated from a head-of-
    trace pilot under the empty configuration): configurations within
    ``rel_delta`` of each other count as ties, which keeps both modes
    from chasing immaterial differences and makes the call counts
    reflect the warm/cold difference rather than near-tie noise.

    Returns a dict with per-retune call counts for both modes, the
    drift-retune call totals, the per-mode final configurations, and
    the from-scratch choice on the post-drift window tail (the
    correctness yardstick: both modes should end there).
    """
    if db == "tpcd":
        schema = tpcd_schema()
        generator = tpcd_generator(schema=schema)
    elif db == "crm":
        schema = crm_schema()
        generator = crm_generator(schema=schema)
    else:
        raise ValueError(f"unknown db {db!r}")
    n_templates = len(generator.templates)
    # Partial rotation: a stable hot core keeps its share across the
    # change point (its samples stay valid and are carried forward)
    # while ``movers`` templates swap hot<->cold (their share change
    # exceeds the invalidation tolerance, so they are resampled).
    # Both invalidation and carry-forward are exercised; a total mix
    # swap would invalidate everything and warm starts could only
    # match cold, never beat it.
    core = max(2, n_templates // 3)
    movers = max(1, n_templates // 6)
    rest = n_templates - core - 2 * movers
    if rest < 0:
        raise ValueError(f"need at least 4 templates, got {n_templates}")
    mix_a = (
        [1.0] * core + [1.0] * movers + [0.05] * movers + [0.05] * rest
    )
    mix_b = (
        [1.0] * core + [0.05] * movers + [1.0] * movers + [0.05] * rest
    )
    change_at = max(1, min(size - 1, int(size * change_point)))
    trace = change_point_workload(
        generator, size, mix_a, mix_b, change_at,
        np.random.default_rng(seed),
    )
    pool_optimizer = WhatIfOptimizer(schema)
    pool = build_pool(
        trace.queries[: min(300, trace.size)], pool_optimizer
    )
    configs = enumerate_configurations(
        pool, k, np.random.default_rng(seed)
    )
    from ..physical import Configuration

    pilot = trace.subset(range(min(200, trace.size)))
    mean_cost = pilot.total_cost(
        pool_optimizer, Configuration(name="pilot-base")
    ) / pilot.size
    delta = rel_delta * mean_cost * window
    options = SelectorOptions(alpha=alpha, delta=delta, n_min=n_min)
    # At window sizes of a few hundred statements, share estimates of
    # mid-weight templates wobble by ~15% relative between windows;
    # the default 0.25 relative tolerance invalidates stable templates
    # on chance alone (~1.5 sigma).  0.5 puts invalidation at ~3 sigma
    # while the movers (share 0.12 -> 0.007) still trip it easily.
    base = dict(
        window_size=window, batch_size=batch, drift_threshold=threshold,
        cooldown=cooldown, invalidate_rel_tol=invalidate_rel_tol,
    )
    warm_report = _one_run(
        trace, schema, configs, ServiceConfig(warm=True, **base),
        options, seed + 1,
    )
    cold_report = _one_run(
        trace, schema, configs, ServiceConfig(warm=False, **base),
        options, seed + 1,
    )

    # The yardstick: a from-scratch selection over the post-drift tail.
    from ..core.selector import ConfigurationSelector
    from ..core.sources import OptimizerCostSource

    tail = trace.subset(range(change_at, trace.size))
    tail_source = OptimizerCostSource(
        tail, configs, WhatIfOptimizer(schema)
    )
    tail_result = ConfigurationSelector(
        tail_source, tail.template_ids, options,
        rng=np.random.default_rng(seed + 2),
    ).run()

    def _drift_calls(report: ServiceReport) -> list:
        return [r.optimizer_calls for r in report.drift_retunes]

    warm_drift = _drift_calls(warm_report)
    cold_drift = _drift_calls(cold_report)
    return {
        "db": db,
        "size": size,
        "k": k,
        "change_at": change_at,
        "templates": n_templates,
        "warm": warm_report.as_dict(),
        "cold": cold_report.as_dict(),
        "warm_drift_retune_calls": warm_drift,
        "cold_drift_retune_calls": cold_drift,
        "warm_total_calls": warm_report.total_optimizer_calls,
        "cold_total_calls": cold_report.total_optimizer_calls,
        "savings_fraction": (
            1.0 - sum(warm_drift) / sum(cold_drift)
            if sum(cold_drift) > 0 else 0.0
        ),
        "warm_final_index": warm_report.final_index,
        "cold_final_index": cold_report.final_index,
        "scratch_tail_index": tail_result.best_index,
        "carried_samples": [
            r.carried_samples for r in warm_report.drift_retunes
        ],
    }


def format_replay_report(result: Dict[str, Any]) -> str:
    """Human-readable summary of :func:`cold_vs_warm_replay`."""
    lines = [
        f"trace               : {result['db']}, {result['size']} "
        f"statements, change at {result['change_at']}",
        f"candidates          : k={result['k']}",
        f"drift-retune calls  : warm {result['warm_drift_retune_calls']}"
        f" vs cold {result['cold_drift_retune_calls']}",
        f"carried samples     : {result['carried_samples']}",
        f"call savings        : {result['savings_fraction']:.1%} "
        f"(drift retunes only)",
        f"total calls         : warm {result['warm_total_calls']} "
        f"vs cold {result['cold_total_calls']}",
        f"final configuration : warm C{result['warm_final_index']}, "
        f"cold C{result['cold_final_index']}, from-scratch tail "
        f"C{result['scratch_tail_index']}",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI entry point (``python -m repro.experiments.replay``)."""
    import argparse
    import json

    parser = argparse.ArgumentParser(
        description="cold vs warm retune replay experiment"
    )
    parser.add_argument("--db", choices=("tpcd", "crm"), default="tpcd")
    parser.add_argument("--size", type=int, default=600)
    parser.add_argument("--k", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)
    result = cold_vs_warm_replay(
        db=args.db, size=args.size, k=args.k, seed=args.seed
    )
    if args.json:
        print(json.dumps(result, indent=2, default=float))
    else:
        print(format_replay_report(result))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    raise SystemExit(main())
