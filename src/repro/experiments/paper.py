"""The paper's published numbers, as structured data.

Benchmarks and documentation compare measured results against the
values the paper reports; keeping them here (instead of scattering
literals through benches) makes the comparison auditable and gives
downstream users a machine-readable record of the reproduction target.

All values transcribed from König & Nabar, ICDE 2006, Section 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "TABLE1_SECONDS",
    "TABLE2_TPCD",
    "TABLE3_CRM",
    "SECTION6_FRACTIONS",
    "MultiConfigPaperRow",
]

#: Table 1 — seconds to approximate sigma^2_max at N = 100K
#: (Pentium 4, 2.8 GHz).
TABLE1_SECONDS: Dict[float, float] = {10.0: 0.4, 1.0: 5.2, 0.1: 53.0}


@dataclass(frozen=True)
class MultiConfigPaperRow:
    """One method's published Table 2/3 row."""

    method: str
    true_prcs: Dict[int, float]      # k -> probability
    max_delta_pct: Dict[int, float]  # k -> worst-case regret, percent


#: Table 2 — TPC-D workload, alpha = 90%, delta = 0.
TABLE2_TPCD: Tuple[MultiConfigPaperRow, ...] = (
    MultiConfigPaperRow(
        "Delta-Sampling",
        true_prcs={50: 0.917, 100: 0.882, 500: 0.883},
        max_delta_pct={50: 0.5, 100: 1.5, 500: 1.6},
    ),
    MultiConfigPaperRow(
        "No Strat.",
        true_prcs={50: 0.391, 100: 0.282, 500: 0.120},
        max_delta_pct={50: 8.8, 100: 9.9, 500: 9.8},
    ),
    MultiConfigPaperRow(
        "Equal Alloc.",
        true_prcs={50: 0.425, 100: 0.286, 500: 0.128},
        max_delta_pct={50: 7.7, 100: 9.0, 500: 8.6},
    ),
)

#: Table 3 — CRM workload, same protocol.
TABLE3_CRM: Tuple[MultiConfigPaperRow, ...] = (
    MultiConfigPaperRow(
        "Delta-Sampling",
        true_prcs={50: 0.975, 100: 0.944, 500: 0.897},
        max_delta_pct={50: 1.7, 100: 1.4, 500: 0.8},
    ),
    MultiConfigPaperRow(
        "No Strat.",
        true_prcs={50: 0.560, 100: 0.375, 500: 0.110},
        max_delta_pct={50: 10.53, 100: 12.69, 500: 6.5},
    ),
    MultiConfigPaperRow(
        "Equal Alloc.",
        true_prcs={50: 0.711, 100: 0.528, 500: 0.170},
        max_delta_pct={50: 7.2, 100: 5.8, 500: 3.26},
    ),
)

#: Section 6 — workload fraction satisfying the modified Cochran rule.
SECTION6_FRACTIONS: Dict[int, float] = {13_000: 0.04, 131_000: 0.006}
