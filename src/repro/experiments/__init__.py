"""Experiment harness: setups, Monte Carlo evaluation, reporting."""

from .cache import cached_matrix, matrix_cache_dir
from .configs import ExperimentSetup, crm_setup, find_pair, tpcd_setup
from .paper import (
    SECTION6_FRACTIONS,
    TABLE1_SECONDS,
    TABLE2_TPCD,
    TABLE3_CRM,
    MultiConfigPaperRow,
)
from .monte_carlo import (
    MultiConfigRow,
    SchemeSpec,
    multi_config_table,
    prcs_curve,
    select_fixed_budget,
)
from .calibration import (
    CalibrationBucket,
    CalibrationReport,
    measure_calibration,
)
from .faults import (
    ResilienceCase,
    ResilienceReport,
    format_resilience_report,
    resilience_experiment,
)
from .parallel import (
    ChunkFailure,
    multi_config_table as parallel_multi_config_table,
    prcs_curve as parallel_prcs_curve,
    resolve_workers,
    spawn_trial_rngs,
)
from .profiling import PhaseTimer, cache_hit_report
from .figures import ascii_chart, write_series_csv
from .report import format_kv, format_series, format_table


def __getattr__(name):
    # Lazy so `python -m repro.experiments.replay` doesn't find the
    # module pre-imported (runpy's double-import warning).
    if name in ("cold_vs_warm_replay", "format_replay_report"):
        from . import replay

        return getattr(replay, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )

__all__ = [
    "SECTION6_FRACTIONS",
    "TABLE1_SECONDS",
    "TABLE2_TPCD",
    "TABLE3_CRM",
    "MultiConfigPaperRow",
    "cached_matrix",
    "matrix_cache_dir",
    "ExperimentSetup",
    "crm_setup",
    "find_pair",
    "tpcd_setup",
    "MultiConfigRow",
    "SchemeSpec",
    "multi_config_table",
    "prcs_curve",
    "select_fixed_budget",
    "CalibrationBucket",
    "CalibrationReport",
    "measure_calibration",
    "ChunkFailure",
    "ResilienceCase",
    "ResilienceReport",
    "format_resilience_report",
    "resilience_experiment",
    "parallel_multi_config_table",
    "parallel_prcs_curve",
    "resolve_workers",
    "spawn_trial_rngs",
    "PhaseTimer",
    "cache_hit_report",
    "cold_vs_warm_replay",
    "format_replay_report",
    "ascii_chart",
    "write_series_csv",
    "format_kv",
    "format_series",
    "format_table",
]
