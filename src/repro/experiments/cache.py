"""Disk cache for ground-truth cost matrices.

Monte Carlo experiments replay thousands of selection runs against one
ground-truth ``N x k`` cost matrix.  Computing the matrix is the
expensive exhaustive evaluation the paper's primitive avoids; caching
it under ``.cache/`` makes repeated bench/test runs cheap while keeping
every number reproducible (cache keys encode all generation
parameters).
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path
from typing import Callable, Optional

import numpy as np

__all__ = ["matrix_cache_dir", "cached_matrix"]


def matrix_cache_dir() -> Path:
    """The cache directory (created on demand).

    Override with the ``REPRO_CACHE_DIR`` environment variable; set
    ``REPRO_NO_CACHE=1`` to disable caching entirely.
    """
    root = os.environ.get("REPRO_CACHE_DIR")
    if root is None:
        root = Path(__file__).resolve().parents[3] / ".cache"
    path = Path(root)
    path.mkdir(parents=True, exist_ok=True)
    return path


def cached_matrix(
    key: str, builder: Callable[[], np.ndarray]
) -> np.ndarray:
    """Fetch a matrix by cache key, building and storing it on miss."""
    if os.environ.get("REPRO_NO_CACHE"):
        return builder()
    digest = hashlib.sha1(key.encode("utf-8")).hexdigest()[:16]
    path = matrix_cache_dir() / f"matrix_{digest}.npz"
    if path.exists():
        try:
            with np.load(path) as data:
                return data["matrix"]
        except Exception:
            path.unlink(missing_ok=True)
    matrix = builder()
    # Atomic publish: write to a temp file in the same directory, then
    # os.replace — concurrent benchmark workers either see the complete
    # file or none at all, never a truncated .npz.
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.stem + "_", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, matrix=matrix, key=np.array(key))
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return matrix
