"""Figure-data export and terminal rendering.

The benchmarks print the paper's figures as aligned data tables
(:mod:`repro.experiments.report`).  This module adds two consumers:

* :func:`write_series_csv` — persist a figure's series as CSV so the
  curves can be plotted with any external tool;
* :func:`ascii_chart` — render the curves directly in the terminal, so
  a reproduction run shows recognisable Figure 1-4 shapes without any
  plotting dependency.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Sequence, Union

__all__ = ["write_series_csv", "ascii_chart"]


def write_series_csv(
    path: Union[str, Path],
    x_label: str,
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
) -> Path:
    """Write figure series to a CSV file (one row per x value).

    Returns the written path.  Columns: ``x_label`` then one column per
    series, in insertion order.
    """
    path = Path(path)
    for name, values in series.items():
        if len(values) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(values)} points for "
                f"{len(xs)} x values"
            )
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([x_label] + list(series))
        for i, x in enumerate(xs):
            writer.writerow([x] + [series[name][i] for name in series])
    return path


#: Plot glyphs assigned to series in order.
_MARKERS = "ox+*#@%&"


def ascii_chart(
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    y_min: float = 0.0,
    y_max: float = 1.0,
    title: str = "",
) -> str:
    """Render line series as a monospace chart.

    The x axis spans ``xs`` (linearly); the y axis spans
    ``[y_min, y_max]`` — the natural range for probability curves.
    Overlapping points show the marker of the later series.
    """
    if not xs:
        raise ValueError("need at least one x value")
    if y_max <= y_min:
        raise ValueError(f"empty y range [{y_min}, {y_max}]")
    for name, values in series.items():
        if len(values) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(values)} points for "
                f"{len(xs)} x values"
            )

    grid: List[List[str]] = [
        [" "] * width for _ in range(height)
    ]
    x_lo, x_hi = float(min(xs)), float(max(xs))
    x_span = (x_hi - x_lo) or 1.0

    def col(x: float) -> int:
        return min(width - 1, int((x - x_lo) / x_span * (width - 1)))

    def row(y: float) -> int:
        clamped = min(y_max, max(y_min, y))
        frac = (clamped - y_min) / (y_max - y_min)
        return min(height - 1, int(round((1.0 - frac) * (height - 1))))

    legend: List[str] = []
    for s_idx, (name, values) in enumerate(series.items()):
        marker = _MARKERS[s_idx % len(_MARKERS)]
        legend.append(f"{marker} = {name}")
        for x, y in zip(xs, values):
            grid[row(float(y))][col(float(x))] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    for r, chars in enumerate(grid):
        if r == 0:
            label = f"{y_max:>5.2f} |"
        elif r == height - 1:
            label = f"{y_min:>5.2f} |"
        else:
            label = "      |"
        lines.append(label + "".join(chars))
    lines.append("      +" + "-" * width)
    lines.append(f"       {x_lo:<12g}{'':^{max(0, width - 24)}}{x_hi:>12g}")
    lines.extend("  " + entry for entry in legend)
    return "\n".join(lines)
