"""repro — Scalable Exploration of Physical Database Design (ICDE 2006).

A full reproduction of König & Nabar's probabilistic comparison
primitive for physical database design, together with every substrate
it needs: a simulated what-if optimizer over synthetic TPC-D and CRM
databases, workload generation and storage, configuration enumeration,
workload-compression baselines and a greedy design tuner.

Quickstart::

    from repro import (
        tpcd_setup, ConfigurationSelector, SelectorOptions,
        MatrixCostSource,
    )

    setup = tpcd_setup(n_queries=2000, k=5, seed=0)
    source = MatrixCostSource(setup.matrix)
    selector = ConfigurationSelector(
        source, setup.workload.template_ids,
        SelectorOptions(alpha=0.9, delta=0.0),
    )
    result = selector.run()
    print(result.best_index, result.prcs, result.optimizer_calls)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from .bounds import (
    CLTValidation,
    CostBounder,
    CostIntervals,
    cochran_holds,
    cochran_min_sample,
    max_skew_bound,
    max_variance_bound,
    validate_sample_size,
)
from .catalog import Column, ColumnType, ForeignKey, Schema, Table
from .compression import (
    CompressedWorkload,
    compress_by_clustering,
    compress_by_cost,
    compress_random,
)
from .core import (
    ConfigurationSelector,
    CostSource,
    MatrixCostSource,
    OptimizerCostSource,
    SelectionResult,
    SelectorOptions,
    SelectorState,
    Stratification,
)
from .experiments import (
    ExperimentSetup,
    SchemeSpec,
    crm_setup,
    find_pair,
    multi_config_table,
    prcs_curve,
    select_fixed_budget,
    tpcd_setup,
)
from .optimizer import CostParams, WhatIfOptimizer
from .physical import (
    Configuration,
    Index,
    MaterializedView,
    base_configuration,
    build_pool,
    enumerate_configurations,
)
from .queries import Query, QueryType, parse_query, render_query
from .tuner import GreedyTuner, evaluate_configuration
from .workload import (
    Workload,
    WorkloadStore,
    generate_crm_workload,
    generate_tpcd_workload,
)

__version__ = "1.0.0"

__all__ = [
    "CLTValidation",
    "CostBounder",
    "CostIntervals",
    "cochran_holds",
    "cochran_min_sample",
    "max_skew_bound",
    "max_variance_bound",
    "validate_sample_size",
    "Column",
    "ColumnType",
    "ForeignKey",
    "Schema",
    "Table",
    "CompressedWorkload",
    "compress_by_clustering",
    "compress_by_cost",
    "compress_random",
    "ConfigurationSelector",
    "CostSource",
    "MatrixCostSource",
    "OptimizerCostSource",
    "SelectionResult",
    "SelectorOptions",
    "SelectorState",
    "Stratification",
    "ExperimentSetup",
    "SchemeSpec",
    "crm_setup",
    "find_pair",
    "multi_config_table",
    "prcs_curve",
    "select_fixed_budget",
    "tpcd_setup",
    "CostParams",
    "WhatIfOptimizer",
    "Configuration",
    "Index",
    "MaterializedView",
    "base_configuration",
    "build_pool",
    "enumerate_configurations",
    "Query",
    "QueryType",
    "parse_query",
    "render_query",
    "GreedyTuner",
    "evaluate_configuration",
    "Workload",
    "WorkloadStore",
    "generate_crm_workload",
    "generate_tpcd_workload",
]
