"""Synthetic CRM database and trace-like workload generator.

Models the paper's real-life evaluation database (Section 7): "a
database running a CRM application with over 500 tables", whose traced
workload "contains about 6K queries, inserts, updates and deletes" over
"a relatively large number of distinct templates (> 120)".

The schema has a core of CRM entities (accounts, contacts, orders, ...)
connected by foreign keys, padded with several hundred auxiliary lookup
and detail tables, as enterprise CRM schemas are.  The template set is
generated programmatically from a seed: point selects, range scans,
parent-child joins, three-way joins and reports over core entities,
plus UPDATE/INSERT/DELETE templates — comfortably more than 120
distinct templates.  Template frequencies follow a Zipf distribution so
a few templates dominate the trace while many appear only rarely, which
is the property that limits progressive stratification on this workload
(Section 7.1: "we rarely have estimates of the avg. cost of *all*
templates").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..catalog.schema import Column, ColumnType, ForeignKey, Schema, Table
from ..catalog.zipf import zipf_pmf
from ..queries.ast import Aggregate, ColumnRef, JoinPredicate, QueryType
from .generator import FilterSlot, QueryTemplate, WorkloadGenerator
from .workload import Workload

__all__ = [
    "crm_schema",
    "crm_templates",
    "crm_generator",
    "generate_crm_workload",
]

#: (name, row_count) of the core CRM entities.
_CORE_TABLES: Tuple[Tuple[str, int], ...] = (
    ("account", 40_000),
    ("contact", 120_000),
    ("activity", 400_000),
    ("opportunity", 60_000),
    ("case_record", 90_000),
    ("lead", 70_000),
    ("campaign", 2_000),
    ("sales_order", 150_000),
    ("order_line", 450_000),
    ("product", 8_000),
    ("invoice", 140_000),
    ("payment", 130_000),
    ("ticket", 80_000),
    ("note", 300_000),
    ("app_user", 3_000),
)

#: (child, child_fk_column, parent) edges among core tables.
_CORE_FKS: Tuple[Tuple[str, str, str], ...] = (
    ("contact", "account_id", "account"),
    ("activity", "contact_id", "contact"),
    ("activity", "owner_id", "app_user"),
    ("opportunity", "account_id", "account"),
    ("case_record", "contact_id", "contact"),
    ("lead", "campaign_id", "campaign"),
    ("sales_order", "account_id", "account"),
    ("order_line", "order_id", "sales_order"),
    ("order_line", "product_id", "product"),
    ("invoice", "order_id", "sales_order"),
    ("payment", "invoice_id", "invoice"),
    ("ticket", "case_id", "case_record"),
    ("note", "contact_id", "contact"),
)


def _id_column_of(table: str) -> str:
    return f"{table}_id"


def _add_core_table(
    schema: Schema, name: str, rows: int, rng: np.random.Generator
) -> None:
    table = schema.add_table(Table(name, rows))
    table.add_column(Column(_id_column_of(name), distinct_count=rows))
    # status / category style columns: small domains, heavy skew.
    table.add_column(
        Column("status", ColumnType.STRING,
               distinct_count=int(rng.integers(3, 9)), zipf_theta=1.0)
    )
    table.add_column(
        Column("category", ColumnType.STRING,
               distinct_count=int(rng.integers(5, 30)), zipf_theta=1.0)
    )
    # timestamps and measures.
    table.add_column(
        Column("created_on", ColumnType.DATE,
               distinct_count=int(rng.integers(700, 2000)))
    )
    table.add_column(
        Column("amount", ColumnType.FLOAT,
               distinct_count=int(rng.integers(2_000, 20_000)),
               zipf_theta=0.5)
    )
    table.add_column(
        Column("region", ColumnType.STRING,
               distinct_count=int(rng.integers(4, 12)), zipf_theta=1.0)
    )


def crm_schema(
    seed: int = 7, aux_tables: int = 490, scale: float = 1.0
) -> Schema:
    """Build the CRM schema: core entities plus auxiliary tables.

    ``aux_tables`` pads the schema beyond 500 tables; ``scale``
    multiplies all row counts (1.0 corresponds to the paper's ~0.7 GB
    database).
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    rng = np.random.default_rng(seed)
    schema = Schema(f"crm_seed{seed}")

    for name, rows in _CORE_TABLES:
        _add_core_table(schema, name, max(1, int(rows * scale)), rng)

    # FK columns: distinct counts match the parent's key domain, with
    # skew so popular parents own most child rows.
    for child, fk_col, parent in _CORE_FKS:
        parent_rows = schema.table(parent).row_count
        schema.table(child).add_column(
            Column(fk_col, distinct_count=parent_rows, zipf_theta=1.0)
        )
        schema.add_foreign_key(
            ForeignKey(child, fk_col, parent, _id_column_of(parent))
        )

    core_names = [name for name, _ in _CORE_TABLES]
    for i in range(aux_tables):
        name = f"aux_{i:03d}"
        rows = max(10, int(rng.integers(50, 5_000) * scale))
        table = schema.add_table(Table(name, rows))
        table.add_column(Column(f"{name}_id", distinct_count=rows))
        table.add_column(
            Column("code", ColumnType.STRING,
                   distinct_count=max(2, rows // 10), zipf_theta=1.0)
        )
        table.add_column(
            Column("label", ColumnType.STRING,
                   distinct_count=max(2, rows // 2))
        )
        # Roughly a third of auxiliary tables reference a core entity.
        if i % 3 == 0:
            parent = core_names[int(rng.integers(0, len(core_names)))]
            parent_rows = schema.table(parent).row_count
            table.add_column(
                Column("ref_id", distinct_count=parent_rows, zipf_theta=1.0)
            )
            schema.add_foreign_key(
                ForeignKey(name, "ref_id", parent, _id_column_of(parent))
            )
    return schema


def _point_select(schema: Schema, table: str, idx: int) -> QueryTemplate:
    id_col = ColumnRef(table, _id_column_of(table))
    return QueryTemplate(
        name=f"crm_point_{table}_{idx}",
        qtype=QueryType.SELECT,
        tables=(table,),
        slots=(FilterSlot(id_col, "eq"),),
        select_columns=(id_col, ColumnRef(table, "status"),
                        ColumnRef(table, "amount")),
    )


def _range_report(schema: Schema, table: str, idx: int) -> QueryTemplate:
    return QueryTemplate(
        name=f"crm_report_{table}_{idx}",
        qtype=QueryType.SELECT,
        tables=(table,),
        slots=(FilterSlot(ColumnRef(table, "created_on"), "range",
                          min_frac=0.01, max_frac=0.3),
               FilterSlot(ColumnRef(table, "status"), "eq")),
        group_by=(ColumnRef(table, "category"),),
        aggregates=(Aggregate("SUM", ColumnRef(table, "amount")),
                    Aggregate("COUNT", None)),
    )


def _join_template(
    schema: Schema, child: str, fk_col: str, parent: str, idx: int
) -> QueryTemplate:
    jp = JoinPredicate(
        ColumnRef(child, fk_col), ColumnRef(parent, _id_column_of(parent))
    )
    return QueryTemplate(
        name=f"crm_join_{child}_{parent}_{idx}",
        qtype=QueryType.SELECT,
        tables=(child, parent),
        join_predicates=(jp,),
        slots=(FilterSlot(ColumnRef(parent, "status"), "eq"),
               FilterSlot(ColumnRef(child, "created_on"), "range",
                          min_frac=0.02, max_frac=0.25)),
        select_columns=(ColumnRef(child, "amount"),
                        ColumnRef(parent, "category")),
    )


def _three_way(
    schema: Schema,
    a: str, a_fk: str, b: str, b_fk: str, c: str, idx: int,
) -> QueryTemplate:
    """a joins b via a_fk, b joins c via b_fk."""
    jp1 = JoinPredicate(ColumnRef(a, a_fk), ColumnRef(b, _id_column_of(b)))
    jp2 = JoinPredicate(ColumnRef(b, b_fk), ColumnRef(c, _id_column_of(c)))
    return QueryTemplate(
        name=f"crm_3way_{a}_{b}_{c}_{idx}",
        qtype=QueryType.SELECT,
        tables=(a, b, c),
        join_predicates=(jp1, jp2),
        slots=(FilterSlot(ColumnRef(c, "region"), "eq"),
               FilterSlot(ColumnRef(a, "created_on"), "range",
                          min_frac=0.05, max_frac=0.3)),
        group_by=(ColumnRef(c, "region"),),
        aggregates=(Aggregate("SUM", ColumnRef(a, "amount")),),
    )


def _update_template(schema: Schema, table: str, idx: int,
                     by_id: bool) -> QueryTemplate:
    if by_id:
        slots = (FilterSlot(ColumnRef(table, _id_column_of(table)), "eq"),)
    else:
        slots = (FilterSlot(ColumnRef(table, "created_on"), "range",
                            min_frac=0.001, max_frac=0.01),)
    return QueryTemplate(
        name=f"crm_update_{table}_{idx}",
        qtype=QueryType.UPDATE,
        tables=(table,),
        slots=slots,
        set_columns=(ColumnRef(table, "status"),
                     ColumnRef(table, "amount")),
    )


def _insert_template(schema: Schema, table: str, idx: int) -> QueryTemplate:
    return QueryTemplate(
        name=f"crm_insert_{table}_{idx}",
        qtype=QueryType.INSERT,
        tables=(table,),
    )


def _delete_template(schema: Schema, table: str, idx: int) -> QueryTemplate:
    return QueryTemplate(
        name=f"crm_delete_{table}_{idx}",
        qtype=QueryType.DELETE,
        tables=(table,),
        slots=(FilterSlot(ColumnRef(table, _id_column_of(table)), "eq"),),
    )


def crm_templates(schema: Schema, seed: int = 11) -> List[QueryTemplate]:
    """Generate the CRM template set (> 120 distinct templates)."""
    rng = np.random.default_rng(seed)
    templates: List[QueryTemplate] = []
    core = [name for name, _ in _CORE_TABLES]

    # Per-core-table basics: point select, report, update, insert, delete.
    for i, table in enumerate(core):
        templates.append(_point_select(schema, table, i))
        templates.append(_range_report(schema, table, i))
        templates.append(_update_template(schema, table, i, by_id=True))
        templates.append(_insert_template(schema, table, i))
        if i % 2 == 0:
            templates.append(_delete_template(schema, table, i))
        if i % 3 == 0:
            templates.append(
                _update_template(schema, table, 100 + i, by_id=False)
            )

    # Parent-child joins along every core FK (two variants each).
    for i, (child, fk_col, parent) in enumerate(_CORE_FKS):
        templates.append(_join_template(schema, child, fk_col, parent, i))
        jp = JoinPredicate(
            ColumnRef(child, fk_col),
            ColumnRef(parent, _id_column_of(parent)),
        )
        templates.append(QueryTemplate(
            name=f"crm_lookup_{child}_{parent}_{i}",
            qtype=QueryType.SELECT,
            tables=(child, parent),
            join_predicates=(jp,),
            slots=(FilterSlot(
                ColumnRef(parent, _id_column_of(parent)), "eq"),),
            select_columns=(ColumnRef(child, "amount"),
                            ColumnRef(child, "status")),
        ))

    # Three-way chains through the FK graph.
    chains = (
        ("activity", "contact_id", "contact", "account_id", "account"),
        ("order_line", "order_id", "sales_order", "account_id", "account"),
        ("payment", "invoice_id", "invoice", "order_id", "sales_order"),
        ("ticket", "case_id", "case_record", "contact_id", "contact"),
        ("note", "contact_id", "contact", "account_id", "account"),
    )
    for i, (a, a_fk, b, b_fk, c) in enumerate(chains):
        templates.append(_three_way(schema, a, a_fk, b, b_fk, c, i))

    # Auxiliary-table lookups: enough variety to exceed 120 templates.
    aux_with_ref = [
        fk.child_table
        for fk in schema.foreign_keys
        if fk.child_table.startswith("aux_")
    ]
    for i, aux in enumerate(aux_with_ref[:40]):
        templates.append(QueryTemplate(
            name=f"crm_aux_scan_{aux}",
            qtype=QueryType.SELECT,
            tables=(aux,),
            slots=(FilterSlot(ColumnRef(aux, "code"), "eq"),),
            select_columns=(ColumnRef(aux, "label"),),
        ))
    return templates


def crm_generator(
    schema: Optional[Schema] = None,
    template_seed: int = 11,
    frequency_theta: float = 1.0,
) -> WorkloadGenerator:
    """A trace-like generator over the CRM schema.

    Template frequencies follow ``Zipf(frequency_theta)`` over a
    shuffled template order, so the dominant templates are a stable but
    arbitrary mix of statement kinds.
    """
    schema = schema if schema is not None else crm_schema()
    templates = crm_templates(schema, seed=template_seed)
    rng = np.random.default_rng(template_seed)
    order = rng.permutation(len(templates))
    weights = np.empty(len(templates))
    weights[order] = zipf_pmf(len(templates), frequency_theta)
    return WorkloadGenerator(schema, templates, weights=weights)


def generate_crm_workload(
    n: int,
    seed: int = 0,
    schema: Optional[Schema] = None,
) -> Workload:
    """Generate an ``n``-statement CRM trace with a fixed seed."""
    generator = crm_generator(schema=schema)
    rng = np.random.default_rng(seed)
    return generator.generate(n, rng)
