"""Template-driven workload generation.

Both synthetic databases of the paper's evaluation (the TPC-D database
with QGEN workloads and the CRM database with traced workloads) produce
queries the same way: a fixed set of query *templates*, instantiated
with random constant bindings.  This module provides the shared
machinery: a declarative :class:`QueryTemplate` (structure plus
:class:`FilterSlot` placeholders) and a :class:`WorkloadGenerator` that
draws templates according to a frequency distribution and binds their
constants from the column value distributions.

Constants are drawn from each column's *actual* value distribution
(frequent values are queried more often), which — combined with Zipf
skew — yields per-template cost distributions spanning orders of
magnitude, the regime Section 6 of the paper worries about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..catalog.schema import Column, Schema
from ..catalog.zipf import zipf_pmf
from ..queries.ast import (
    Aggregate,
    ColumnRef,
    EqPredicate,
    InPredicate,
    JoinPredicate,
    Predicate,
    Query,
    QueryType,
    RangePredicate,
)
from .workload import Workload

__all__ = ["FilterSlot", "QueryTemplate", "WorkloadGenerator"]


@dataclass(frozen=True)
class FilterSlot:
    """A parameterized filter position within a template.

    Parameters
    ----------
    column:
        The filtered column.
    kind:
        ``"eq"``, ``"range"`` or ``"in"``.
    min_frac / max_frac:
        For range slots: the window width as a fraction of the value
        domain is drawn log-uniformly from ``[min_frac, max_frac]``.
    in_min / in_max:
        For IN slots: bounds on the list length.
    """

    column: ColumnRef
    kind: str = "eq"
    min_frac: float = 0.001
    max_frac: float = 0.3
    in_min: int = 2
    in_max: int = 6

    def __post_init__(self) -> None:
        if self.kind not in ("eq", "range", "in"):
            raise ValueError(f"unknown filter slot kind {self.kind!r}")
        if not (0 < self.min_frac <= self.max_frac <= 1):
            raise ValueError(
                f"invalid range fractions [{self.min_frac}, {self.max_frac}]"
            )
        if not (1 <= self.in_min <= self.in_max):
            raise ValueError(
                f"invalid IN-list bounds [{self.in_min}, {self.in_max}]"
            )


@dataclass(frozen=True)
class QueryTemplate:
    """A query shape with unbound constants.

    All structural fields mirror :class:`~repro.queries.ast.Query`;
    ``slots`` are the parameter positions.  ``name`` labels the
    template in reports (``"Q6"``, ``"crm_point_select_17"``, ...).
    """

    name: str
    qtype: str
    tables: Tuple[str, ...]
    join_predicates: Tuple[JoinPredicate, ...] = ()
    slots: Tuple[FilterSlot, ...] = ()
    select_columns: Tuple[ColumnRef, ...] = ()
    aggregates: Tuple[Aggregate, ...] = ()
    group_by: Tuple[ColumnRef, ...] = ()
    order_by: Tuple[ColumnRef, ...] = ()
    set_columns: Tuple[ColumnRef, ...] = ()


class WorkloadGenerator:
    """Draws queries from templates with random constant bindings.

    Parameters
    ----------
    schema:
        The schema the templates reference (validated on first use of
        each column).
    templates:
        The template set.
    weights:
        Relative template frequencies; uniform when omitted.  The CRM
        generator passes Zipf-distributed weights so that a few
        templates dominate the trace, as in production systems.
    """

    def __init__(
        self,
        schema: Schema,
        templates: Sequence[QueryTemplate],
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        if not templates:
            raise ValueError("need at least one template")
        self.schema = schema
        self.templates = list(templates)
        if weights is None:
            weights = [1.0] * len(self.templates)
        if len(weights) != len(self.templates):
            raise ValueError(
                f"{len(weights)} weights for {len(self.templates)} templates"
            )
        w = np.asarray(weights, dtype=np.float64)
        if (w < 0).any() or w.sum() <= 0:
            raise ValueError("weights must be non-negative and sum > 0")
        self._probs = w / w.sum()
        self._pmf_cache: Dict[Tuple[str, str], np.ndarray] = {}

    # ------------------------------------------------------------------
    # constant binding
    # ------------------------------------------------------------------
    def _column(self, ref: ColumnRef) -> Column:
        return self.schema.column(ref.table, ref.column)

    def _sample_value(self, ref: ColumnRef, rng: np.random.Generator) -> int:
        """Sample a value according to the column's value distribution."""
        col = self._column(ref)
        if col.zipf_theta == 0.0:
            return int(rng.integers(0, col.distinct_count))
        key = (ref.table, ref.column)
        pmf = self._pmf_cache.get(key)
        if pmf is None:
            pmf = zipf_pmf(col.distinct_count, col.zipf_theta)
            self._pmf_cache[key] = pmf
        return int(rng.choice(col.distinct_count, p=pmf))

    def _bind_slot(
        self, slot: FilterSlot, rng: np.random.Generator
    ) -> Predicate:
        col = self._column(slot.column)
        domain = col.distinct_count
        if slot.kind == "eq":
            return EqPredicate(slot.column, self._sample_value(
                slot.column, rng
            ))
        if slot.kind == "range":
            log_lo = np.log(slot.min_frac)
            log_hi = np.log(slot.max_frac)
            frac = float(np.exp(rng.uniform(log_lo, log_hi)))
            width = max(1, int(round(frac * domain)))
            start = int(rng.integers(0, max(1, domain - width + 1)))
            return RangePredicate(
                slot.column, start, min(domain - 1, start + width - 1)
            )
        # IN list
        size = int(rng.integers(slot.in_min, slot.in_max + 1))
        size = min(size, domain)
        values = set()
        while len(values) < size:
            values.add(self._sample_value(slot.column, rng))
        return InPredicate(slot.column, tuple(sorted(values)))

    def instantiate(
        self, template: QueryTemplate, rng: np.random.Generator
    ) -> Query:
        """Bind all slots of ``template`` into a concrete query."""
        filters = tuple(self._bind_slot(s, rng) for s in template.slots)
        return Query(
            qtype=template.qtype,
            tables=template.tables,
            join_predicates=template.join_predicates,
            filters=filters,
            select_columns=template.select_columns,
            aggregates=template.aggregates,
            group_by=template.group_by,
            order_by=template.order_by,
            set_columns=template.set_columns,
        )

    # ------------------------------------------------------------------
    # workload generation
    # ------------------------------------------------------------------
    def generate(self, n: int, rng: np.random.Generator) -> Workload:
        """Generate a workload of ``n`` statements.

        Template choice follows the configured frequency distribution;
        every template's human-readable name is registered with the
        workload's template registry.
        """
        if n < 1:
            raise ValueError(f"workload size must be >= 1, got {n}")
        picks = rng.choice(len(self.templates), size=n, p=self._probs)
        queries: List[Query] = []
        names: List[str] = []
        for t_idx in picks:
            template = self.templates[int(t_idx)]
            queries.append(self.instantiate(template, rng))
            names.append(template.name)
        return Workload(queries, template_names=names)
