"""Workload profiling: the summary a DBA inspects before tuning.

The paper's techniques hinge on a few workload properties — template
concentration, DML share, cost skew — that practitioners routinely
check before committing to a tuning run.  :func:`profile_workload`
computes them in one pass and renders them through
:mod:`repro.experiments.report`-style tables.

The profile also answers the operational questions the paper raises:
does the cost distribution look heavy-tailed enough that naive uniform
sampling is risky (§6), and how much of the workload do the top
templates carry (§5's stratification leverage)?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..queries.ast import QueryType
from .workload import Workload

__all__ = ["TemplateProfile", "WorkloadProfile", "profile_workload"]


@dataclass(frozen=True)
class TemplateProfile:
    """Per-template summary statistics."""

    template_id: int
    name: str
    count: int
    share: float            #: fraction of statements
    cost_share: float       #: fraction of total cost (when costed)
    mean_cost: float
    cv: float               #: coefficient of variation of costs

    def is_heavy(self, threshold: float = 0.1) -> bool:
        """Whether the template carries a large share of total cost."""
        return self.cost_share >= threshold


@dataclass(frozen=True)
class WorkloadProfile:
    """Whole-workload summary."""

    size: int
    template_count: int
    dml_fraction: float
    total_cost: float
    cost_skewness: float            #: Fisher G1 of per-query costs
    cost_p99_over_median: float     #: tail heaviness indicator
    top_templates: Tuple[TemplateProfile, ...]
    templates_for_half_cost: int    #: templates covering 50% of cost

    def heavy_tailed(self) -> bool:
        """Heuristic: is uniform sampling risky here (§6 concern)?"""
        return self.cost_skewness > 2.0 or self.cost_p99_over_median > 50


def _fisher_skew(values: np.ndarray) -> float:
    std = values.std()
    if std <= 0:
        return 0.0
    return float((((values - values.mean()) / std) ** 3).mean())


def profile_workload(
    workload: Workload,
    costs: Optional[np.ndarray] = None,
    top: int = 10,
) -> WorkloadProfile:
    """Profile a workload, optionally with per-query costs.

    Parameters
    ----------
    workload:
        The workload to profile.
    costs:
        Per-query costs in some reference configuration (e.g. the
        current one).  Without costs, cost-derived fields are zero.
    top:
        How many templates to detail (ordered by cost share when costs
        are given, else by statement count).
    """
    n = workload.size
    if n == 0:
        raise ValueError("cannot profile an empty workload")
    if costs is None:
        costs = np.zeros(n)
    costs = np.asarray(costs, dtype=np.float64)
    if len(costs) != n:
        raise ValueError(f"{len(costs)} costs for {n} statements")

    total = float(costs.sum())
    groups = workload.indices_by_template()
    profiles: List[TemplateProfile] = []
    for tid, idx in groups.items():
        t_costs = costs[idx]
        mean = float(t_costs.mean()) if len(t_costs) else 0.0
        std = float(t_costs.std()) if len(t_costs) else 0.0
        profiles.append(TemplateProfile(
            template_id=int(tid),
            name=workload.registry.name_of(int(tid)),
            count=len(idx),
            share=len(idx) / n,
            cost_share=(float(t_costs.sum()) / total) if total > 0
            else 0.0,
            mean_cost=mean,
            cv=(std / mean) if mean > 0 else 0.0,
        ))

    if total > 0:
        profiles.sort(key=lambda p: -p.cost_share)
    else:
        profiles.sort(key=lambda p: -p.count)

    cum = 0.0
    needed = len(profiles)
    if total > 0:
        for i, p in enumerate(profiles):
            cum += p.cost_share
            if cum >= 0.5:
                needed = i + 1
                break

    positive = costs[costs > 0]
    if len(positive) and total > 0:
        p99 = float(np.percentile(positive, 99))
        median = float(np.median(positive))
        tail = p99 / median if median > 0 else 0.0
    else:
        tail = 0.0

    return WorkloadProfile(
        size=n,
        template_count=workload.template_count,
        dml_fraction=workload.dml_fraction(),
        total_cost=total,
        cost_skewness=_fisher_skew(costs) if total > 0 else 0.0,
        cost_p99_over_median=tail,
        top_templates=tuple(profiles[:top]),
        templates_for_half_cost=needed,
    )
