"""Synthetic TPC-D database and QGEN-like workload generator.

Models the paper's synthetic evaluation database (Section 7): the TPC-D
schema, generated "so that the frequency of attribute values follows a
Zipf-like distribution, using the skew-parameter theta = 1", with
workloads produced by a QGEN-style template generator.

The scale factor defaults to 0.1 to keep simulated page counts moderate
(only relative costs matter); the paper's ~1 GB database corresponds to
``scale_factor=1.0``.

Seventeen SELECT templates (Q1 .. Q17, loosely following the TPC-D
query set, simplified to the repro SQL dialect) plus five DML templates
(U1 .. U5) are defined; DML templates model the index/view maintenance
trade-off of footnote 1 of the paper.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..catalog.schema import Column, ColumnType, ForeignKey, Schema, Table
from ..queries.ast import (
    Aggregate,
    ColumnRef,
    JoinPredicate,
    QueryType,
)
from .generator import FilterSlot, QueryTemplate, WorkloadGenerator
from .workload import Workload

__all__ = [
    "tpcd_schema",
    "tpcd_templates",
    "tpcd_generator",
    "generate_tpcd_workload",
]

#: Zipf skew used for non-key attributes (the paper's theta).
THETA = 1.0


def _col(ref: str) -> ColumnRef:
    table, column = ref.split(".", 1)
    return ColumnRef(table, column)


def _join(left: str, right: str) -> JoinPredicate:
    return JoinPredicate(_col(left), _col(right))


def tpcd_schema(scale_factor: float = 0.1) -> Schema:
    """Build the TPC-D schema at the given scale factor.

    Key columns are uniform; descriptive attributes carry Zipf(theta=1)
    value distributions, as in the paper's data generator.
    """
    if scale_factor <= 0:
        raise ValueError(f"scale_factor must be positive, got {scale_factor}")
    sf = scale_factor
    schema = Schema(f"tpcd_sf{scale_factor:g}")

    def table(name: str, rows: float) -> Table:
        return schema.add_table(Table(name, max(1, int(rows))))

    region = table("region", 5)
    region.add_column(Column("r_regionkey", distinct_count=5))
    region.add_column(Column("r_name", ColumnType.STRING, distinct_count=5))

    nation = table("nation", 25)
    nation.add_column(Column("n_nationkey", distinct_count=25))
    nation.add_column(Column("n_regionkey", distinct_count=5))
    nation.add_column(Column("n_name", ColumnType.STRING, distinct_count=25))

    supplier = table("supplier", 10_000 * sf)
    n_supp = supplier.row_count
    supplier.add_column(Column("s_suppkey", distinct_count=n_supp))
    supplier.add_column(
        Column("s_nationkey", distinct_count=25, zipf_theta=THETA)
    )
    supplier.add_column(
        Column("s_acctbal", ColumnType.FLOAT, distinct_count=9_999,
               zipf_theta=THETA)
    )

    part = table("part", 200_000 * sf)
    n_part = part.row_count
    part.add_column(Column("p_partkey", distinct_count=n_part))
    part.add_column(
        Column("p_brand", ColumnType.STRING, distinct_count=25,
               zipf_theta=THETA)
    )
    part.add_column(
        Column("p_type", ColumnType.STRING, distinct_count=150,
               zipf_theta=THETA)
    )
    part.add_column(Column("p_size", distinct_count=50, zipf_theta=THETA))
    part.add_column(
        Column("p_container", ColumnType.STRING, distinct_count=40,
               zipf_theta=THETA)
    )
    part.add_column(
        Column("p_retailprice", ColumnType.FLOAT, distinct_count=20_000)
    )

    partsupp = table("partsupp", 800_000 * sf)
    partsupp.add_column(Column("ps_partkey", distinct_count=n_part))
    partsupp.add_column(Column("ps_suppkey", distinct_count=n_supp))
    partsupp.add_column(
        Column("ps_availqty", distinct_count=9_999, zipf_theta=THETA)
    )
    partsupp.add_column(
        Column("ps_supplycost", ColumnType.FLOAT, distinct_count=15_000)
    )

    customer = table("customer", 150_000 * sf)
    n_cust = customer.row_count
    customer.add_column(Column("c_custkey", distinct_count=n_cust))
    customer.add_column(
        Column("c_nationkey", distinct_count=25, zipf_theta=THETA)
    )
    customer.add_column(
        Column("c_mktsegment", ColumnType.STRING, distinct_count=5,
               zipf_theta=THETA)
    )
    customer.add_column(
        Column("c_acctbal", ColumnType.FLOAT, distinct_count=9_999,
               zipf_theta=THETA)
    )

    orders = table("orders", 1_500_000 * sf)
    n_ord = orders.row_count
    orders.add_column(Column("o_orderkey", distinct_count=n_ord))
    orders.add_column(
        Column("o_custkey", distinct_count=n_cust, zipf_theta=THETA)
    )
    orders.add_column(Column("o_orderdate", ColumnType.DATE,
                             distinct_count=2_406))
    orders.add_column(
        Column("o_orderpriority", ColumnType.STRING, distinct_count=5,
               zipf_theta=THETA)
    )
    orders.add_column(
        Column("o_orderstatus", ColumnType.STRING, distinct_count=3,
               zipf_theta=THETA)
    )
    orders.add_column(
        Column("o_totalprice", ColumnType.FLOAT, distinct_count=100_000)
    )

    lineitem = table("lineitem", 6_000_000 * sf)
    lineitem.add_column(
        Column("l_orderkey", distinct_count=n_ord, zipf_theta=0.0)
    )
    lineitem.add_column(
        Column("l_partkey", distinct_count=n_part, zipf_theta=THETA)
    )
    lineitem.add_column(
        Column("l_suppkey", distinct_count=n_supp, zipf_theta=THETA)
    )
    lineitem.add_column(Column("l_quantity", distinct_count=50,
                               zipf_theta=THETA))
    lineitem.add_column(
        Column("l_extendedprice", ColumnType.FLOAT, distinct_count=100_000)
    )
    lineitem.add_column(Column("l_discount", distinct_count=11,
                               zipf_theta=THETA))
    lineitem.add_column(Column("l_tax", distinct_count=9, zipf_theta=THETA))
    lineitem.add_column(
        Column("l_returnflag", ColumnType.STRING, distinct_count=3,
               zipf_theta=THETA)
    )
    lineitem.add_column(
        Column("l_linestatus", ColumnType.STRING, distinct_count=2,
               zipf_theta=THETA)
    )
    lineitem.add_column(Column("l_shipdate", ColumnType.DATE,
                               distinct_count=2_526))
    lineitem.add_column(
        Column("l_shipmode", ColumnType.STRING, distinct_count=7,
               zipf_theta=THETA)
    )

    for child, ccol, parent, pcol in (
        ("nation", "n_regionkey", "region", "r_regionkey"),
        ("supplier", "s_nationkey", "nation", "n_nationkey"),
        ("customer", "c_nationkey", "nation", "n_nationkey"),
        ("partsupp", "ps_partkey", "part", "p_partkey"),
        ("partsupp", "ps_suppkey", "supplier", "s_suppkey"),
        ("orders", "o_custkey", "customer", "c_custkey"),
        ("lineitem", "l_orderkey", "orders", "o_orderkey"),
        ("lineitem", "l_partkey", "part", "p_partkey"),
        ("lineitem", "l_suppkey", "supplier", "s_suppkey"),
    ):
        schema.add_foreign_key(ForeignKey(child, ccol, parent, pcol))
    return schema


def tpcd_templates(include_dml: bool = True) -> List[QueryTemplate]:
    """The QGEN-like template set (Q1..Q17 plus U1..U5 when requested)."""
    templates: List[QueryTemplate] = []

    # Q1: pricing summary report — big scan with aggregation.
    templates.append(QueryTemplate(
        name="Q1", qtype=QueryType.SELECT, tables=("lineitem",),
        slots=(FilterSlot(_col("lineitem.l_shipdate"), "range",
                          min_frac=0.6, max_frac=0.98),),
        group_by=(_col("lineitem.l_returnflag"),
                  _col("lineitem.l_linestatus")),
        aggregates=(Aggregate("SUM", _col("lineitem.l_quantity")),
                    Aggregate("SUM", _col("lineitem.l_extendedprice")),
                    Aggregate("COUNT", None)),
    ))

    # Q2: minimum-cost supplier — part/partsupp/supplier/nation join.
    templates.append(QueryTemplate(
        name="Q2", qtype=QueryType.SELECT,
        tables=("part", "partsupp", "supplier", "nation"),
        join_predicates=(
            _join("partsupp.ps_partkey", "part.p_partkey"),
            _join("partsupp.ps_suppkey", "supplier.s_suppkey"),
            _join("supplier.s_nationkey", "nation.n_nationkey"),
        ),
        slots=(FilterSlot(_col("part.p_size"), "eq"),
               FilterSlot(_col("part.p_type"), "eq")),
        select_columns=(_col("supplier.s_acctbal"), _col("nation.n_name"),
                        _col("part.p_partkey")),
        order_by=(_col("supplier.s_acctbal"),),
    ))

    # Q3: shipping priority — customer/orders/lineitem join.
    templates.append(QueryTemplate(
        name="Q3", qtype=QueryType.SELECT,
        tables=("customer", "orders", "lineitem"),
        join_predicates=(
            _join("orders.o_custkey", "customer.c_custkey"),
            _join("lineitem.l_orderkey", "orders.o_orderkey"),
        ),
        slots=(FilterSlot(_col("customer.c_mktsegment"), "eq"),
               FilterSlot(_col("orders.o_orderdate"), "range",
                          min_frac=0.2, max_frac=0.6)),
        select_columns=(_col("lineitem.l_orderkey"),),
        aggregates=(Aggregate("SUM", _col("lineitem.l_extendedprice")),),
        group_by=(_col("lineitem.l_orderkey"),
                  _col("orders.o_orderdate")),
    ))

    # Q4: order priority checking.
    templates.append(QueryTemplate(
        name="Q4", qtype=QueryType.SELECT, tables=("orders", "lineitem"),
        join_predicates=(_join("lineitem.l_orderkey", "orders.o_orderkey"),),
        slots=(FilterSlot(_col("orders.o_orderdate"), "range",
                          min_frac=0.02, max_frac=0.1),),
        group_by=(_col("orders.o_orderpriority"),),
        aggregates=(Aggregate("COUNT", None),),
    ))

    # Q5: local supplier volume — 5-way join.
    templates.append(QueryTemplate(
        name="Q5", qtype=QueryType.SELECT,
        tables=("customer", "orders", "lineitem", "supplier", "nation"),
        join_predicates=(
            _join("orders.o_custkey", "customer.c_custkey"),
            _join("lineitem.l_orderkey", "orders.o_orderkey"),
            _join("lineitem.l_suppkey", "supplier.s_suppkey"),
            _join("supplier.s_nationkey", "nation.n_nationkey"),
        ),
        slots=(FilterSlot(_col("nation.n_regionkey"), "eq"),
               FilterSlot(_col("orders.o_orderdate"), "range",
                          min_frac=0.1, max_frac=0.25)),
        group_by=(_col("nation.n_name"),),
        aggregates=(Aggregate("SUM", _col("lineitem.l_extendedprice")),),
    ))

    # Q6: forecasting revenue change — selective single-table aggregate.
    templates.append(QueryTemplate(
        name="Q6", qtype=QueryType.SELECT, tables=("lineitem",),
        slots=(FilterSlot(_col("lineitem.l_shipdate"), "range",
                          min_frac=0.1, max_frac=0.2),
               FilterSlot(_col("lineitem.l_discount"), "eq"),
               FilterSlot(_col("lineitem.l_quantity"), "range",
                          min_frac=0.2, max_frac=0.5)),
        aggregates=(Aggregate("SUM", _col("lineitem.l_extendedprice")),),
    ))

    # Q7: volume shipping (simplified to one nation pair side).
    templates.append(QueryTemplate(
        name="Q7", qtype=QueryType.SELECT,
        tables=("supplier", "lineitem", "orders", "customer", "nation"),
        join_predicates=(
            _join("lineitem.l_suppkey", "supplier.s_suppkey"),
            _join("lineitem.l_orderkey", "orders.o_orderkey"),
            _join("orders.o_custkey", "customer.c_custkey"),
            _join("supplier.s_nationkey", "nation.n_nationkey"),
        ),
        slots=(FilterSlot(_col("nation.n_nationkey"), "eq"),
               FilterSlot(_col("lineitem.l_shipdate"), "range",
                          min_frac=0.25, max_frac=0.45)),
        group_by=(_col("nation.n_name"),),
        aggregates=(Aggregate("SUM", _col("lineitem.l_extendedprice")),),
    ))

    # Q8: market share (simplified).
    templates.append(QueryTemplate(
        name="Q8", qtype=QueryType.SELECT,
        tables=("part", "lineitem", "orders", "customer", "nation",
                "region"),
        join_predicates=(
            _join("lineitem.l_partkey", "part.p_partkey"),
            _join("lineitem.l_orderkey", "orders.o_orderkey"),
            _join("orders.o_custkey", "customer.c_custkey"),
            _join("customer.c_nationkey", "nation.n_nationkey"),
            _join("nation.n_regionkey", "region.r_regionkey"),
        ),
        slots=(FilterSlot(_col("region.r_regionkey"), "eq"),
               FilterSlot(_col("part.p_type"), "eq"),
               FilterSlot(_col("orders.o_orderdate"), "range",
                          min_frac=0.2, max_frac=0.35)),
        group_by=(_col("orders.o_orderdate"),),
        aggregates=(Aggregate("SUM", _col("lineitem.l_extendedprice")),),
    ))

    # Q9: product type profit (simplified).
    templates.append(QueryTemplate(
        name="Q9", qtype=QueryType.SELECT,
        tables=("part", "lineitem", "partsupp", "supplier", "nation"),
        join_predicates=(
            _join("lineitem.l_partkey", "part.p_partkey"),
            _join("partsupp.ps_partkey", "part.p_partkey"),
            _join("lineitem.l_suppkey", "supplier.s_suppkey"),
            _join("partsupp.ps_suppkey", "supplier.s_suppkey"),
            _join("supplier.s_nationkey", "nation.n_nationkey"),
        ),
        slots=(FilterSlot(_col("part.p_type"), "eq"),),
        group_by=(_col("nation.n_name"),),
        aggregates=(Aggregate("SUM", _col("lineitem.l_extendedprice")),),
    ))

    # Q10: returned item reporting.
    templates.append(QueryTemplate(
        name="Q10", qtype=QueryType.SELECT,
        tables=("customer", "orders", "lineitem", "nation"),
        join_predicates=(
            _join("orders.o_custkey", "customer.c_custkey"),
            _join("lineitem.l_orderkey", "orders.o_orderkey"),
            _join("customer.c_nationkey", "nation.n_nationkey"),
        ),
        slots=(FilterSlot(_col("orders.o_orderdate"), "range",
                          min_frac=0.05, max_frac=0.12),
               FilterSlot(_col("lineitem.l_returnflag"), "eq")),
        group_by=(_col("customer.c_custkey"), _col("nation.n_name")),
        aggregates=(Aggregate("SUM", _col("lineitem.l_extendedprice")),),
    ))

    # Q11: important stock identification.
    templates.append(QueryTemplate(
        name="Q11", qtype=QueryType.SELECT,
        tables=("partsupp", "supplier", "nation"),
        join_predicates=(
            _join("partsupp.ps_suppkey", "supplier.s_suppkey"),
            _join("supplier.s_nationkey", "nation.n_nationkey"),
        ),
        slots=(FilterSlot(_col("nation.n_nationkey"), "eq"),),
        group_by=(_col("partsupp.ps_partkey"),),
        aggregates=(Aggregate("SUM", _col("partsupp.ps_supplycost")),),
    ))

    # Q12: shipping modes and order priority.
    templates.append(QueryTemplate(
        name="Q12", qtype=QueryType.SELECT, tables=("orders", "lineitem"),
        join_predicates=(_join("lineitem.l_orderkey", "orders.o_orderkey"),),
        slots=(FilterSlot(_col("lineitem.l_shipmode"), "in",
                          in_min=2, in_max=3),
               FilterSlot(_col("lineitem.l_shipdate"), "range",
                          min_frac=0.3, max_frac=0.5)),
        group_by=(_col("lineitem.l_shipmode"),),
        aggregates=(Aggregate("COUNT", None),),
    ))

    # Q13: customer distribution.
    templates.append(QueryTemplate(
        name="Q13", qtype=QueryType.SELECT, tables=("customer", "orders"),
        join_predicates=(_join("orders.o_custkey", "customer.c_custkey"),),
        slots=(FilterSlot(_col("orders.o_orderpriority"), "eq"),),
        group_by=(_col("customer.c_custkey"),),
        aggregates=(Aggregate("COUNT", None),),
    ))

    # Q14: promotion effect.
    templates.append(QueryTemplate(
        name="Q14", qtype=QueryType.SELECT, tables=("lineitem", "part"),
        join_predicates=(_join("lineitem.l_partkey", "part.p_partkey"),),
        slots=(FilterSlot(_col("lineitem.l_shipdate"), "range",
                          min_frac=0.025, max_frac=0.05),),
        aggregates=(Aggregate("SUM", _col("lineitem.l_extendedprice")),),
    ))

    # Q15: top supplier (simplified).
    templates.append(QueryTemplate(
        name="Q15", qtype=QueryType.SELECT,
        tables=("lineitem", "supplier"),
        join_predicates=(_join("lineitem.l_suppkey", "supplier.s_suppkey"),),
        slots=(FilterSlot(_col("lineitem.l_shipdate"), "range",
                          min_frac=0.06, max_frac=0.12),),
        group_by=(_col("supplier.s_suppkey"),),
        aggregates=(Aggregate("SUM", _col("lineitem.l_extendedprice")),),
    ))

    # Q16: parts/supplier relationship.
    templates.append(QueryTemplate(
        name="Q16", qtype=QueryType.SELECT, tables=("partsupp", "part"),
        join_predicates=(_join("partsupp.ps_partkey", "part.p_partkey"),),
        slots=(FilterSlot(_col("part.p_brand"), "eq"),
               FilterSlot(_col("part.p_size"), "in", in_min=3, in_max=8)),
        group_by=(_col("part.p_brand"), _col("part.p_type"),
                  _col("part.p_size")),
        aggregates=(Aggregate("COUNT", None),),
    ))

    # Q17: small-quantity-order revenue — very selective point-ish query.
    templates.append(QueryTemplate(
        name="Q17", qtype=QueryType.SELECT, tables=("lineitem", "part"),
        join_predicates=(_join("lineitem.l_partkey", "part.p_partkey"),),
        slots=(FilterSlot(_col("part.p_brand"), "eq"),
               FilterSlot(_col("part.p_container"), "eq"),
               FilterSlot(_col("lineitem.l_quantity"), "range",
                          min_frac=0.02, max_frac=0.1)),
        aggregates=(Aggregate("AVG", _col("lineitem.l_extendedprice")),),
    ))

    if not include_dml:
        return templates

    # U1: adjust a single order's line items.
    templates.append(QueryTemplate(
        name="U1", qtype=QueryType.UPDATE, tables=("lineitem",),
        slots=(FilterSlot(_col("lineitem.l_orderkey"), "eq"),),
        set_columns=(_col("lineitem.l_quantity"),),
    ))
    # U2: reprice recent orders (range update).
    templates.append(QueryTemplate(
        name="U2", qtype=QueryType.UPDATE, tables=("orders",),
        slots=(FilterSlot(_col("orders.o_orderdate"), "range",
                          min_frac=0.002, max_frac=0.01),),
        set_columns=(_col("orders.o_totalprice"),),
    ))
    # U3: new order arrival.
    templates.append(QueryTemplate(
        name="U3", qtype=QueryType.INSERT, tables=("orders",),
    ))
    # U4: purge a single order.
    templates.append(QueryTemplate(
        name="U4", qtype=QueryType.DELETE, tables=("orders",),
        slots=(FilterSlot(_col("orders.o_orderkey"), "eq"),),
    ))
    # U5: customer balance maintenance.
    templates.append(QueryTemplate(
        name="U5", qtype=QueryType.UPDATE, tables=("customer",),
        slots=(FilterSlot(_col("customer.c_custkey"), "eq"),),
        set_columns=(_col("customer.c_acctbal"),),
    ))
    return templates


def tpcd_generator(
    schema: Optional[Schema] = None,
    include_dml: bool = True,
    weights: Optional[Sequence[float]] = None,
) -> WorkloadGenerator:
    """A ready-to-use QGEN-like generator over the TPC-D schema.

    With default weights, SELECT templates are drawn uniformly and each
    DML template at a fifth of a SELECT template's frequency, giving a
    mostly-read workload with a realistic maintenance component.
    """
    schema = schema if schema is not None else tpcd_schema()
    templates = tpcd_templates(include_dml=include_dml)
    if weights is None:
        weights = [
            1.0 if t.qtype == QueryType.SELECT else 0.2 for t in templates
        ]
    return WorkloadGenerator(schema, templates, weights=weights)


def generate_tpcd_workload(
    n: int,
    seed: int = 0,
    schema: Optional[Schema] = None,
    include_dml: bool = True,
) -> Workload:
    """Generate an ``n``-statement TPC-D workload with a fixed seed."""
    generator = tpcd_generator(schema=schema, include_dml=include_dml)
    rng = np.random.default_rng(seed)
    return generator.generate(n, rng)
