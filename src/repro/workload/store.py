"""SQLite-backed workload table.

Section 5 ("Preprocessing") of the paper: for workloads too large for
memory, "we write all query strings to a database table, which also
contains the query's ID and template", and obtain a random sample "by
computing a random permutation of the query IDs and then (using a
single scan) reading the queries corresponding to the first n IDs into
memory".

This module implements exactly that contract on SQLite: statements are
stored as dialect SQL text plus template id, sampling computes a
permutation of the ids client-side and reads the selected rows back in
id order (one index-ordered pass), re-parsing the text into ASTs.
"""

from __future__ import annotations

import sqlite3
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..queries.ast import Query
from ..queries.parser import parse_query
from ..queries.sqlgen import render_query
from .workload import Workload

__all__ = ["WorkloadStore"]

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS workload_queries (
    id INTEGER PRIMARY KEY,
    template_id INTEGER NOT NULL,
    query_text TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS ix_workload_template
    ON workload_queries (template_id);
"""


class WorkloadStore:
    """A persistent workload table with permutation-based sampling.

    Parameters
    ----------
    path:
        SQLite database path, or ``":memory:"`` (the default) for an
        ephemeral store.
    """

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self._conn = sqlite3.connect(path)
        self._conn.executescript(_SCHEMA_SQL)
        self._conn.commit()

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load(self, workload: Workload) -> None:
        """Write every statement of ``workload`` into the table.

        Ids are assigned sequentially continuing from the current
        maximum, so multiple loads append.
        """
        start = self.count()
        rows = [
            (
                start + i,
                int(workload.template_ids[i]),
                render_query(q),
            )
            for i, q in enumerate(workload.queries)
        ]
        with self._conn:
            self._conn.executemany(
                "INSERT INTO workload_queries (id, template_id, query_text) "
                "VALUES (?, ?, ?)",
                rows,
            )

    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()

    def __enter__(self) -> "WorkloadStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    def count(self) -> int:
        """Number of stored statements."""
        row = self._conn.execute(
            "SELECT COUNT(*) FROM workload_queries"
        ).fetchone()
        return int(row[0])

    def template_counts(self) -> Dict[int, int]:
        """Mapping ``template_id -> number of statements``."""
        rows = self._conn.execute(
            "SELECT template_id, COUNT(*) FROM workload_queries "
            "GROUP BY template_id"
        ).fetchall()
        return {int(t): int(c) for t, c in rows}

    def ids_by_template(self, template_id: int) -> List[int]:
        """All statement ids belonging to one template."""
        rows = self._conn.execute(
            "SELECT id FROM workload_queries WHERE template_id = ? "
            "ORDER BY id",
            (template_id,),
        ).fetchall()
        return [int(r[0]) for r in rows]

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def read(self, ids: Sequence[int]) -> List[Tuple[int, Query]]:
        """Read and parse the statements with the given ids.

        Rows are fetched in id order (a single index-ordered scan) and
        returned in the *requested* order.
        """
        if not len(ids):
            return []
        id_list = [int(i) for i in ids]
        placeholders = ",".join("?" for _ in id_list)
        rows = self._conn.execute(
            f"SELECT id, query_text FROM workload_queries "
            f"WHERE id IN ({placeholders}) ORDER BY id",
            id_list,
        ).fetchall()
        found = {int(rid): parse_query(text) for rid, text in rows}
        missing = [i for i in id_list if i not in found]
        if missing:
            raise KeyError(f"workload store has no statements {missing[:5]}")
        return [(i, found[i]) for i in id_list]

    def read_all(self) -> List[Tuple[int, int, Query]]:
        """Read every statement as ``(id, template_id, query)``."""
        rows = self._conn.execute(
            "SELECT id, template_id, query_text FROM workload_queries "
            "ORDER BY id"
        ).fetchall()
        return [(int(i), int(t), parse_query(text)) for i, t, text in rows]

    # ------------------------------------------------------------------
    # sampling (the paper's permutation scheme)
    # ------------------------------------------------------------------
    def sample(
        self, n: int, rng: np.random.Generator
    ) -> List[Tuple[int, Query]]:
        """Uniform sample without replacement of ``n`` statements."""
        total = self.count()
        if n > total:
            raise ValueError(
                f"cannot sample {n} statements from a store of {total}"
            )
        all_ids = [
            int(r[0])
            for r in self._conn.execute(
                "SELECT id FROM workload_queries ORDER BY id"
            )
        ]
        permuted = rng.permutation(all_ids)[:n]
        return self.read(sorted(int(i) for i in permuted))

    def sample_stratified(
        self,
        counts: Dict[int, int],
        rng: np.random.Generator,
    ) -> Dict[int, List[Tuple[int, Query]]]:
        """Sample ``counts[template_id]`` statements from each template.

        Trivially extends the permutation scheme to stratified sampling,
        as the paper notes.
        """
        out: Dict[int, List[Tuple[int, Query]]] = {}
        for template_id, n in counts.items():
            ids = self.ids_by_template(template_id)
            if n > len(ids):
                raise ValueError(
                    f"template {template_id} has {len(ids)} statements, "
                    f"cannot sample {n}"
                )
            permuted = rng.permutation(ids)[:n]
            out[template_id] = self.read(sorted(int(i) for i in permuted))
        return out
