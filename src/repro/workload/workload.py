"""The in-memory workload container.

A workload is the ordered list of queries traced from a production
system (Section 1 of the paper).  Besides the queries themselves it
holds the template registry and per-query template ids — the metadata
the stratification layer (Section 5) keys on — and convenience methods
to extract cost vectors/matrices from a what-if optimizer for the
ground-truth computations the experiments need.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..queries.ast import Query, QueryType
from ..queries.templates import TemplateRegistry

__all__ = ["Workload"]


class Workload:
    """An ordered collection of queries with template metadata.

    Parameters
    ----------
    queries:
        The traced statements, in trace order.
    registry:
        Template registry to use; a fresh one is created if omitted.
        Passing a shared registry lets several workloads (or a workload
        and its compressed version) agree on template ids.
    template_names:
        Optional parallel sequence of human-readable template names
        (e.g. ``"Q6"``), applied on first registration.
    """

    def __init__(
        self,
        queries: Sequence[Query],
        registry: Optional[TemplateRegistry] = None,
        template_names: Optional[Sequence[Optional[str]]] = None,
    ) -> None:
        self.queries: List[Query] = list(queries)
        self.registry = registry if registry is not None else \
            TemplateRegistry()
        if template_names is not None and len(template_names) != len(
            self.queries
        ):
            raise ValueError(
                "template_names must parallel queries "
                f"({len(template_names)} names, {len(self.queries)} queries)"
            )
        ids = []
        for i, q in enumerate(self.queries):
            name = template_names[i] if template_names is not None else None
            ids.append(self.registry.template_id(q, name=name))
        self.template_ids = np.asarray(ids, dtype=np.int64)

    # ------------------------------------------------------------------
    # basic shape
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of statements (the paper's N)."""
        return len(self.queries)

    @property
    def template_count(self) -> int:
        """Number of distinct templates appearing in the workload."""
        return len(np.unique(self.template_ids))

    def __len__(self) -> int:
        return len(self.queries)

    def __getitem__(self, idx: int) -> Query:
        return self.queries[idx]

    def __iter__(self):
        return iter(self.queries)

    # ------------------------------------------------------------------
    # template structure
    # ------------------------------------------------------------------
    def indices_by_template(self) -> Dict[int, np.ndarray]:
        """Mapping ``template_id -> array of query positions``."""
        order = np.argsort(self.template_ids, kind="stable")
        sorted_ids = self.template_ids[order]
        boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
        groups = np.split(order, boundaries)
        return {int(self.template_ids[g[0]]): g for g in groups}

    def template_sizes(self) -> Dict[int, int]:
        """Mapping ``template_id -> number of queries``."""
        ids, counts = np.unique(self.template_ids, return_counts=True)
        return {int(t): int(c) for t, c in zip(ids, counts)}

    def dml_fraction(self) -> float:
        """Fraction of statements that modify data."""
        if not self.queries:
            return 0.0
        dml = sum(1 for q in self.queries if q.qtype in QueryType.DML)
        return dml / len(self.queries)

    # ------------------------------------------------------------------
    # ground-truth costing (experiment support)
    # ------------------------------------------------------------------
    def cost_vector(self, optimizer, config) -> np.ndarray:
        """``Cost(q_i, config)`` for every query, as a float array.

        ``optimizer`` is a
        :class:`repro.optimizer.whatif.WhatIfOptimizer`; typed loosely
        to avoid import cycles.
        """
        return np.asarray(
            [optimizer.cost(q, config) for q in self.queries],
            dtype=np.float64,
        )

    def cost_matrix(self, optimizer, configs) -> np.ndarray:
        """The full N x k matrix of costs across ``configs``.

        This is the ground truth the experiments' Monte Carlo layer
        samples from; computing it performs the exhaustive N*k
        optimizer calls the paper's primitive avoids.
        """
        columns = [self.cost_vector(optimizer, cfg) for cfg in configs]
        return np.column_stack(columns)

    def total_cost(self, optimizer, config) -> float:
        """``Cost(WL, config)`` — the configuration's total cost."""
        return float(self.cost_vector(optimizer, config).sum())

    def template_overheads(self) -> np.ndarray:
        """Relative per-template optimization overhead estimates.

        Section 5.2 of the paper models non-uniform optimization times
        "by computing the average overhead for each
        configuration/stratum pair".  Optimization time grows with plan
        search-space size, dominated by the number of joined tables; we
        use ``(1 + join_count)^2`` as the per-template relative
        overhead.  Returns a dense array indexed by template id,
        suitable for
        :class:`repro.core.selector.ConfigurationSelector`'s
        ``template_overheads`` argument.
        """
        n_templates = int(self.template_ids.max()) + 1 if len(
            self.queries
        ) else 0
        overheads = np.ones(n_templates)
        for q, tid in zip(self.queries, self.template_ids):
            overheads[int(tid)] = float((1 + q.join_count) ** 2)
        return overheads

    # ------------------------------------------------------------------
    # slicing
    # ------------------------------------------------------------------
    def subset(self, indices: Iterable[int]) -> "Workload":
        """A new workload containing the selected queries (shared registry)."""
        idx = list(indices)
        return Workload(
            [self.queries[i] for i in idx], registry=self.registry
        )
