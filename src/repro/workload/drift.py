"""Workload drift: traces whose template mix changes over time.

The paper's problem statement assumes a *representative* workload —
"typically obtained by tracing the queries that execute against a
production system over a representative period of time" (§1).  In
production, the template mix drifts (end-of-month reporting, new
application releases), and a configuration chosen on a stale trace can
be wrong for tomorrow's mix.

This module makes that concern testable:

* :func:`drifting_workload` generates a trace whose template
  frequencies interpolate between two mixes across the trace;
* :func:`window_totals` evaluates configuration costs per window so
  the drift's effect on the *ranking* of configurations is observable;
* :func:`ranking_stability` quantifies how far into the trace the
  head-of-trace choice stays optimal.

Together they support the operational question behind §1: how long is
a trace "representative", and when must the comparison re-run?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .generator import WorkloadGenerator
from .workload import Workload

__all__ = [
    "drifting_workload",
    "change_point_workload",
    "window_totals",
    "ranking_stability",
    "DriftReport",
]


def _validated_mixes(
    templates, start_weights, end_weights
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate and normalize a pair of template weight vectors."""
    k = len(templates)
    start = np.asarray(start_weights, dtype=np.float64)
    end = np.asarray(end_weights, dtype=np.float64)
    if start.shape != (k,) or end.shape != (k,):
        raise ValueError(
            f"weight vectors must have length {k} "
            f"(got {start.shape} and {end.shape})"
        )
    if (start < 0).any() or (end < 0).any():
        raise ValueError("weights must be non-negative")
    if start.sum() <= 0 or end.sum() <= 0:
        raise ValueError("weight vectors must have positive mass")
    return start / start.sum(), end / end.sum()


def drifting_workload(
    generator: WorkloadGenerator,
    n: int,
    start_weights: Sequence[float],
    end_weights: Sequence[float],
    rng: np.random.Generator,
) -> Workload:
    """Generate a trace whose template mix drifts linearly.

    Statement ``i`` draws its template from the convex combination
    ``(1 - i/n) * start + (i/n) * end`` of the two weight vectors.

    Parameters
    ----------
    generator:
        A :class:`~repro.workload.generator.WorkloadGenerator`; its own
        configured weights are ignored in favour of the drift pair.
    start_weights / end_weights:
        Relative template frequencies at the head and tail of the
        trace; lengths must match the generator's template count.
    """
    templates = generator.templates
    k = len(templates)
    start, end = _validated_mixes(templates, start_weights, end_weights)
    if n < 1:
        raise ValueError(f"trace length must be >= 1, got {n}")

    queries = []
    names = []
    for i in range(n):
        frac = i / max(1, n - 1)
        probs = (1.0 - frac) * start + frac * end
        probs = probs / probs.sum()
        t_idx = int(rng.choice(k, p=probs))
        template = templates[t_idx]
        queries.append(generator.instantiate(template, rng))
        names.append(template.name)
    return Workload(queries, template_names=names)


def change_point_workload(
    generator: WorkloadGenerator,
    n: int,
    start_weights: Sequence[float],
    end_weights: Sequence[float],
    change_at: int,
    rng: np.random.Generator,
) -> Workload:
    """Generate a trace with an abrupt, planted template-mix change.

    Statements ``[0, change_at)`` draw their templates from
    ``start_weights``; statements ``[change_at, n)`` from
    ``end_weights``.  Unlike :func:`drifting_workload`'s linear
    interpolation, the mix switches at a single known position, which
    makes the trace the canonical fixture for change-detection tests:
    a drift monitor should fire shortly after ``change_at`` and not
    before.

    Parameters
    ----------
    change_at:
        The planted change point, in statements; must satisfy
        ``1 <= change_at <= n - 1`` so both regimes are non-empty.
    """
    templates = generator.templates
    k = len(templates)
    start, end = _validated_mixes(templates, start_weights, end_weights)
    if n < 2:
        raise ValueError(f"trace length must be >= 2, got {n}")
    if not (1 <= change_at <= n - 1):
        raise ValueError(
            f"change_at must be in [1, {n - 1}], got {change_at}"
        )

    queries = []
    names = []
    for i in range(n):
        probs = start if i < change_at else end
        t_idx = int(rng.choice(k, p=probs))
        template = templates[t_idx]
        queries.append(generator.instantiate(template, rng))
        names.append(template.name)
    return Workload(queries, template_names=names)


def window_totals(
    workload: Workload,
    optimizer,
    configurations: Sequence,
    windows: int = 5,
) -> np.ndarray:
    """Per-window configuration costs over the trace.

    Splits the trace into ``windows`` contiguous slices (trace order =
    time order) and returns an array of shape ``(windows, k)`` with
    ``Cost(window_w, C_c)``.
    """
    if windows < 1:
        raise ValueError(f"windows must be >= 1, got {windows}")
    n = workload.size
    bounds = np.linspace(0, n, windows + 1).astype(int)
    out = np.zeros((windows, len(configurations)))
    for w in range(windows):
        lo, hi = bounds[w], bounds[w + 1]
        for c, config in enumerate(configurations):
            out[w, c] = sum(
                optimizer.cost(workload[i], config)
                for i in range(lo, hi)
            )
    return out


@dataclass(frozen=True)
class DriftReport:
    """How long the head-of-trace winner stays the right choice."""

    head_choice: int
    per_window_best: Tuple[int, ...]
    stable_windows: int
    final_regret: float

    @property
    def drifted(self) -> bool:
        """Whether the head-of-trace choice stops being optimal."""
        return self.stable_windows < len(self.per_window_best)


def ranking_stability(window_costs: np.ndarray) -> DriftReport:
    """Analyze per-window costs for choice stability.

    ``window_costs`` is the ``(windows, k)`` array from
    :func:`window_totals`; a 1-D array of length ``k`` is accepted as
    a single window.  The head choice is the winner of the first
    window; ``stable_windows`` counts the prefix of windows where it
    stays the winner (it equals the window count — and ``drifted`` is
    ``False`` — when the head choice never loses, including the
    single-window case, where it is always ``1``); ``final_regret`` is
    the head choice's relative excess cost in the last window.

    Edge cases are well-defined rather than errors:

    * *Empty windows* — all-zero rows, as :func:`window_totals`
      produces when ``windows`` exceeds the number of statements (the
      "empty tail") — carry the previous window's winner forward: a
      window with no statements is no evidence that the choice
      changed.  A trace whose *first* windows are empty defaults the
      head choice to configuration ``0``.
    * ``final_regret`` is computed on the last *non-empty* window and
      is ``0.0`` when every window is empty or the reference minimum
      is non-positive.

    Raises ``ValueError`` for zero windows or zero configurations.
    """
    window_costs = np.asarray(window_costs, dtype=np.float64)
    if window_costs.ndim == 1:
        window_costs = window_costs[np.newaxis, :]
    if window_costs.ndim != 2:
        raise ValueError("window_costs must be a (windows, k) array")
    if window_costs.shape[0] < 1:
        raise ValueError("need at least one window")
    if window_costs.shape[1] < 1:
        raise ValueError("need at least one configuration")
    nonempty = window_costs.any(axis=1)
    per_window_best: List[int] = []
    previous = 0
    for w in range(window_costs.shape[0]):
        if nonempty[w]:
            previous = int(np.argmin(window_costs[w]))
        per_window_best.append(previous)
    head = per_window_best[0]
    stable = 0
    for best in per_window_best:
        if best != head:
            break
        stable += 1
    final_regret = 0.0
    if nonempty.any():
        last = window_costs[np.flatnonzero(nonempty)[-1]]
        if last.min() > 0:
            final_regret = float((last[head] - last.min()) / last.min())
    return DriftReport(
        head_choice=head,
        per_window_best=tuple(per_window_best),
        stable_windows=stable,
        final_regret=final_regret,
    )
