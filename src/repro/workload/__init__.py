"""Workload substrate: containers, storage, and the two evaluation workloads."""

from .drift import DriftReport, change_point_workload, \
    drifting_workload, ranking_stability, window_totals
from .crm import crm_generator, crm_schema, crm_templates, \
    generate_crm_workload
from .generator import FilterSlot, QueryTemplate, WorkloadGenerator
from .profile import TemplateProfile, WorkloadProfile, profile_workload
from .store import WorkloadStore
from .tpcd import (
    generate_tpcd_workload,
    tpcd_generator,
    tpcd_schema,
    tpcd_templates,
)
from .workload import Workload

__all__ = [
    "DriftReport",
    "change_point_workload",
    "drifting_workload",
    "ranking_stability",
    "window_totals",
    "crm_generator",
    "crm_schema",
    "crm_templates",
    "generate_crm_workload",
    "FilterSlot",
    "QueryTemplate",
    "WorkloadGenerator",
    "TemplateProfile",
    "WorkloadProfile",
    "profile_workload",
    "WorkloadStore",
    "generate_tpcd_workload",
    "tpcd_generator",
    "tpcd_schema",
    "tpcd_templates",
    "Workload",
]
