"""Logical schema objects: columns, tables, foreign keys, schemas.

This is the substrate beneath everything else: the what-if optimizer
(:mod:`repro.optimizer`), the physical design structures
(:mod:`repro.physical`) and the workload generators
(:mod:`repro.workload`) all operate against a :class:`Schema`.

The schema layer is purely *logical*: it records table shapes and
cardinalities but says nothing about physical design.  Indexes and
materialized views live in :mod:`repro.physical.structures` and are
combined into configurations evaluated by the optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["ColumnType", "Column", "Table", "ForeignKey", "Schema"]


class ColumnType:
    """Enumeration of supported column types.

    Plain string constants rather than :class:`enum.Enum` so that column
    definitions stay terse in the large generated schemas (the CRM
    schema defines several thousand columns).
    """

    INT = "int"
    FLOAT = "float"
    STRING = "str"
    DATE = "date"

    ALL = (INT, FLOAT, STRING, DATE)

    #: Default storage width in bytes per type, used for row-width and
    #: page-count estimation by the cost model.
    WIDTH_BYTES = {INT: 8, FLOAT: 8, STRING: 32, DATE: 8}


@dataclass(frozen=True)
class Column:
    """A single table column.

    Parameters
    ----------
    name:
        Column name, unique within its table.
    ctype:
        One of :attr:`ColumnType.ALL`.
    distinct_count:
        Number of distinct values the column takes.  Drives equality
        selectivity and index usefulness.
    zipf_theta:
        Skew of the value-frequency distribution (0 = uniform).
    width_bytes:
        Storage width; defaults to the per-type width.
    """

    name: str
    ctype: str = ColumnType.INT
    distinct_count: int = 1000
    zipf_theta: float = 0.0
    width_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.ctype not in ColumnType.ALL:
            raise ValueError(f"unknown column type {self.ctype!r}")
        if self.distinct_count < 1:
            raise ValueError(
                f"column {self.name!r}: distinct_count must be >= 1, "
                f"got {self.distinct_count}"
            )
        if self.width_bytes is None:
            object.__setattr__(
                self, "width_bytes", ColumnType.WIDTH_BYTES[self.ctype]
            )

    @property
    def width(self) -> int:
        """Storage width in bytes (never ``None`` after construction)."""
        assert self.width_bytes is not None
        return self.width_bytes


@dataclass
class Table:
    """A logical table: a name, a row count and an ordered set of columns."""

    name: str
    row_count: int
    columns: Dict[str, Column] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.row_count < 0:
            raise ValueError(
                f"table {self.name!r}: row_count must be >= 0, "
                f"got {self.row_count}"
            )

    def add_column(self, column: Column) -> "Table":
        """Add a column; returns ``self`` to allow chained construction."""
        if column.name in self.columns:
            raise ValueError(
                f"table {self.name!r} already has a column {column.name!r}"
            )
        self.columns[column.name] = column
        return self

    def column(self, name: str) -> Column:
        """Look up a column by name; raises ``KeyError`` with context."""
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(
                f"table {self.name!r} has no column {name!r}; "
                f"known columns: {sorted(self.columns)}"
            ) from None

    @property
    def row_width(self) -> int:
        """Total row width in bytes (sum of column widths)."""
        return sum(c.width for c in self.columns.values())

    def pages(self, page_bytes: int = 8192) -> int:
        """Number of pages the heap occupies, at ``page_bytes`` per page."""
        if self.row_count == 0:
            return 1
        rows_per_page = max(1, page_bytes // max(1, self.row_width))
        return max(1, -(-self.row_count // rows_per_page))

    def __contains__(self, column_name: str) -> bool:
        return column_name in self.columns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Table({self.name!r}, rows={self.row_count}, "
            f"columns={len(self.columns)})"
        )


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key relationship ``child.child_column -> parent.parent_column``.

    Foreign keys drive both the workload generators (joins follow FK
    edges) and join-selectivity estimation in the optimizer.
    """

    child_table: str
    child_column: str
    parent_table: str
    parent_column: str

    def as_edge(self) -> Tuple[str, str]:
        """Return the (child_table, parent_table) join-graph edge."""
        return (self.child_table, self.parent_table)


class Schema:
    """A collection of tables plus foreign-key relationships.

    Provides the lookups the rest of the system needs: tables by name,
    columns by qualified name and FK edges for join-graph construction.
    """

    def __init__(self, name: str = "schema") -> None:
        self.name = name
        self._tables: Dict[str, Table] = {}
        self._foreign_keys: List[ForeignKey] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_table(self, table: Table) -> Table:
        """Register a table; returns it for chained construction."""
        if table.name in self._tables:
            raise ValueError(f"schema already contains table {table.name!r}")
        self._tables[table.name] = table
        return table

    def add_foreign_key(self, fk: ForeignKey) -> ForeignKey:
        """Register a foreign key after validating both endpoints exist."""
        child = self.table(fk.child_table)
        parent = self.table(fk.parent_table)
        child.column(fk.child_column)
        parent.column(fk.parent_column)
        self._foreign_keys.append(fk)
        return fk

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def table(self, name: str) -> Table:
        """Look up a table by name; raises ``KeyError`` with context."""
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(
                f"schema {self.name!r} has no table {name!r}"
            ) from None

    def column(self, table_name: str, column_name: str) -> Column:
        """Look up a column by qualified name."""
        return self.table(table_name).column(column_name)

    @property
    def tables(self) -> Dict[str, Table]:
        """Mapping of table name to :class:`Table` (read-only by convention)."""
        return self._tables

    @property
    def foreign_keys(self) -> List[ForeignKey]:
        """All registered foreign keys."""
        return list(self._foreign_keys)

    def foreign_keys_of(self, table_name: str) -> List[ForeignKey]:
        """Foreign keys whose child side is ``table_name``."""
        return [fk for fk in self._foreign_keys if fk.child_table == table_name]

    def join_edges(self) -> List[Tuple[str, str]]:
        """All (child, parent) FK edges, for join-graph construction."""
        return [fk.as_edge() for fk in self._foreign_keys]

    def fk_between(self, table_a: str, table_b: str) -> Optional[ForeignKey]:
        """Return the FK linking two tables in either direction, if any."""
        for fk in self._foreign_keys:
            if {fk.child_table, fk.parent_table} == {table_a, table_b}:
                return fk
        return None

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, table_name: str) -> bool:
        return table_name in self._tables

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Schema({self.name!r}, tables={len(self._tables)}, "
            f"fks={len(self._foreign_keys)})"
        )
