"""Zipfian frequency distributions for synthetic column values.

The paper's synthetic TPC-D database is generated "so that the frequency
of attribute values follows a Zipf-like distribution, using the
skew-parameter theta = 1" (Section 7).  This module provides the small
amount of machinery needed to model such a distribution analytically:
given a number of distinct values ``n`` and a skew parameter ``theta``,
the *i*-th most frequent value (1-indexed rank ``i``) has relative
frequency proportional to ``1 / i**theta``.

We never materialize actual rows; the statistics layer
(:mod:`repro.catalog.stats`) consumes the probability vector directly to
compute selectivities, which is exactly the information a query
optimizer's cost model extracts from its histograms.
"""

from __future__ import annotations

import numpy as np

__all__ = ["zipf_weights", "zipf_pmf", "zipf_cdf", "top_k_mass"]


def zipf_weights(n: int, theta: float) -> np.ndarray:
    """Return the unnormalized Zipf weights ``1 / rank**theta``.

    Parameters
    ----------
    n:
        Number of distinct values (must be >= 1).
    theta:
        Skew parameter; ``theta = 0`` yields a uniform distribution and
        larger values concentrate mass on the most frequent ranks.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(n,)`` with ``weights[i] = 1 / (i + 1)**theta``.
    """
    if n < 1:
        raise ValueError(f"need at least one distinct value, got n={n}")
    if theta < 0:
        raise ValueError(f"theta must be non-negative, got {theta}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return ranks**-theta


def zipf_pmf(n: int, theta: float) -> np.ndarray:
    """Return the normalized Zipf probability mass function over ranks.

    ``zipf_pmf(n, theta)[i]`` is the probability that a uniformly drawn
    row carries the value of rank ``i + 1``.
    """
    weights = zipf_weights(n, theta)
    return weights / weights.sum()


def zipf_cdf(n: int, theta: float) -> np.ndarray:
    """Return the cumulative distribution over ranks (ascending rank)."""
    return np.cumsum(zipf_pmf(n, theta))


def top_k_mass(n: int, theta: float, k: int) -> float:
    """Return the probability mass carried by the ``k`` most frequent values.

    Useful for reasoning about how skewed a column is: for
    ``theta = 1`` and large ``n`` the head of the distribution carries a
    disproportionate share of the rows, which is what produces query
    costs spanning multiple orders of magnitude within one template.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if k == 0:
        return 0.0
    k = min(k, n)
    return float(zipf_pmf(n, theta)[:k].sum())
