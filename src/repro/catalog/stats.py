"""Column statistics and histogram-based selectivity estimation.

Real optimizers estimate predicate selectivities from histograms built
over sampled data.  We model synthetic columns analytically: a column
with ``d`` distinct values and Zipf skew ``theta`` takes the values
``0 .. d-1``, where value ``v`` is the ``(v+1)``-th most frequent (so
value 0 is the head of the distribution).  The exact probability mass
function is therefore known, and we derive from it both

* *exact* selectivities (used to generate "true" cardinalities), and
* *histogram* selectivities through an equi-depth :class:`Histogram`,
  which is what the cost model consumes — mirroring the small
  estimation error a production optimizer incurs.

Because both are deterministic functions of the column definition, the
overall cost model ``Cost(q, C)`` is deterministic, which the paper's
problem statement requires (optimizer-estimated cost is a fixed number
per query/configuration pair).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .schema import Column, Schema, Table
from .zipf import zipf_pmf

__all__ = [
    "Histogram",
    "ColumnStatistics",
    "TableStatistics",
    "StatisticsCatalog",
]


@dataclass(frozen=True)
class _Bucket:
    """One equi-depth histogram bucket over the value domain ``[lo, hi]``."""

    lo: int
    hi: int
    mass: float
    distinct: int

    def eq_estimate(self) -> float:
        """Estimated mass of a single value in this bucket (uniform within)."""
        return self.mass / max(1, self.distinct)


class Histogram:
    """Equi-depth histogram over a column's integer value domain.

    Built from the exact pmf; each bucket holds (approximately) equal
    probability mass.  Selectivity estimates assume uniformity *within*
    a bucket, which is the classical source of optimizer estimation
    error on skewed data.
    """

    def __init__(self, pmf: np.ndarray, bucket_count: int = 32) -> None:
        if len(pmf) == 0:
            raise ValueError("cannot build a histogram over an empty domain")
        if bucket_count < 1:
            raise ValueError(f"bucket_count must be >= 1, got {bucket_count}")
        self._buckets: List[_Bucket] = []
        self._build(np.asarray(pmf, dtype=np.float64), bucket_count)
        # Bucket upper bounds, for bisection during estimation.
        self._highs = [b.hi for b in self._buckets]

    def _build(self, pmf: np.ndarray, bucket_count: int) -> None:
        n = len(pmf)
        buckets = min(bucket_count, n)
        cdf = np.cumsum(pmf)
        total = float(cdf[-1]) if cdf[-1] > 0 else 1.0
        # Equi-depth boundaries: the last value index of bucket b is the
        # first position where the cdf reaches (b+1)/buckets of the mass.
        targets = total * (np.arange(1, buckets + 1) / buckets)
        highs = np.searchsorted(cdf, targets - 1e-12 * total, side="left")
        highs = np.minimum(highs, n - 1)
        highs[-1] = n - 1
        lo = 0
        prev_mass = 0.0
        for hi in np.unique(highs):
            hi = int(hi)
            mass = float(cdf[hi]) - prev_mass
            self._buckets.append(
                _Bucket(lo=lo, hi=hi, mass=mass / total,
                        distinct=hi - lo + 1)
            )
            prev_mass = float(cdf[hi])
            lo = hi + 1
        self._highs = [b.hi for b in self._buckets]

    @property
    def buckets(self) -> Sequence[_Bucket]:
        """The bucket list, ascending by value range."""
        return tuple(self._buckets)

    def _bucket_of(self, value: int) -> _Bucket:
        idx = bisect.bisect_left(self._highs, value)
        idx = min(idx, len(self._buckets) - 1)
        return self._buckets[idx]

    def eq_selectivity(self, value: int) -> float:
        """Estimated fraction of rows equal to ``value``."""
        domain_hi = self._buckets[-1].hi
        if value < 0 or value > domain_hi:
            return 0.0
        return self._bucket_of(value).eq_estimate()

    def range_selectivity(self, lo: float, hi: float) -> float:
        """Estimated fraction of rows with value in the closed range [lo, hi]."""
        if hi < lo:
            return 0.0
        mass = 0.0
        for b in self._buckets:
            if b.hi < lo or b.lo > hi:
                continue
            overlap_lo = max(float(b.lo), lo)
            overlap_hi = min(float(b.hi), hi)
            width = b.hi - b.lo + 1
            covered = max(0.0, overlap_hi - overlap_lo + 1)
            mass += b.mass * min(1.0, covered / width)
        return min(1.0, mass)


class ColumnStatistics:
    """Exact + histogram statistics for a single column."""

    def __init__(self, column: Column, bucket_count: int = 32) -> None:
        self.column = column
        self.pmf = zipf_pmf(column.distinct_count, column.zipf_theta)
        self.cdf = np.cumsum(self.pmf)
        self.histogram = Histogram(self.pmf, bucket_count=bucket_count)

    @property
    def distinct_count(self) -> int:
        """Number of distinct values in the column."""
        return self.column.distinct_count

    # -- exact selectivities (generator-side "truth") -------------------
    def exact_eq(self, value: int) -> float:
        """Exact fraction of rows carrying ``value``."""
        if value < 0 or value >= self.distinct_count:
            return 0.0
        return float(self.pmf[value])

    def exact_range(self, lo: int, hi: int) -> float:
        """Exact fraction of rows with value in the closed range [lo, hi]."""
        if hi < lo:
            return 0.0
        lo = max(0, lo)
        hi = min(self.distinct_count - 1, hi)
        if hi < lo:
            return 0.0
        upper = float(self.cdf[hi])
        lower = float(self.cdf[lo - 1]) if lo > 0 else 0.0
        return upper - lower

    # -- estimated selectivities (optimizer-side) ------------------------
    def estimate_eq(self, value: int) -> float:
        """Histogram estimate of equality selectivity."""
        return self.histogram.eq_selectivity(value)

    def estimate_range(self, lo: float, hi: float) -> float:
        """Histogram estimate of range selectivity."""
        return self.histogram.range_selectivity(lo, hi)

    def estimate_in(self, values: Sequence[int]) -> float:
        """Histogram estimate of an IN-list selectivity."""
        return min(1.0, sum(self.estimate_eq(v) for v in set(values)))


class TableStatistics:
    """Statistics for all columns of one table."""

    def __init__(self, table: Table, bucket_count: int = 32) -> None:
        self.table = table
        self.columns: Dict[str, ColumnStatistics] = {
            name: ColumnStatistics(col, bucket_count=bucket_count)
            for name, col in table.columns.items()
        }

    @property
    def row_count(self) -> int:
        """The table's row count."""
        return self.table.row_count

    def column(self, name: str) -> ColumnStatistics:
        """Statistics for one column; raises ``KeyError`` with context."""
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(
                f"no statistics for column {name!r} of table "
                f"{self.table.name!r}"
            ) from None


class StatisticsCatalog:
    """Lazily built statistics for every table in a schema.

    Building a :class:`ColumnStatistics` materializes a pmf of length
    ``distinct_count``; for the CRM schema with hundreds of tables we
    only pay for the tables a workload actually touches.
    """

    def __init__(self, schema: Schema, bucket_count: int = 32) -> None:
        self.schema = schema
        self.bucket_count = bucket_count
        self._tables: Dict[str, TableStatistics] = {}
        #: Opt-in memo for per-predicate selectivity estimates, filled
        #: by :mod:`repro.optimizer.selectivity` when enabled.  Kept off
        #: by default so the plain optimizer path stays byte-for-byte
        #: the historical one; estimates are pure functions of the
        #: predicate and these statistics, so caching cannot change any
        #: value.
        self.selectivity_cache: Optional[Dict[object, float]] = None

    def enable_selectivity_cache(self) -> None:
        """Memoize selectivity estimates computed against this catalog."""
        if self.selectivity_cache is None:
            self.selectivity_cache = {}

    def table(self, name: str) -> TableStatistics:
        """Statistics for one table, building them on first access."""
        stats = self._tables.get(name)
        if stats is None:
            stats = TableStatistics(
                self.schema.table(name), bucket_count=self.bucket_count
            )
            self._tables[name] = stats
        return stats

    def column(self, table_name: str, column_name: str) -> ColumnStatistics:
        """Statistics for one qualified column."""
        return self.table(table_name).column(column_name)
