"""Schema and statistics substrate.

Logical schemas (:class:`~repro.catalog.schema.Schema`), column value
distributions (:mod:`repro.catalog.zipf`) and histogram statistics
(:mod:`repro.catalog.stats`) that the simulated what-if optimizer and
the workload generators build on.
"""

from .schema import Column, ColumnType, ForeignKey, Schema, Table
from .stats import (
    ColumnStatistics,
    Histogram,
    StatisticsCatalog,
    TableStatistics,
)
from .zipf import top_k_mass, zipf_cdf, zipf_pmf, zipf_weights

__all__ = [
    "Column",
    "ColumnType",
    "ForeignKey",
    "Schema",
    "Table",
    "ColumnStatistics",
    "Histogram",
    "StatisticsCatalog",
    "TableStatistics",
    "top_k_mass",
    "zipf_cdf",
    "zipf_pmf",
    "zipf_weights",
]
