"""Common types for workload compression baselines.

Workload compression (Section 2 / 7.3 of the paper) replaces a large
workload with a small weighted subset *before* tuning.  Every
compressor returns a :class:`CompressedWorkload`: the selected query
positions, per-query weights (so total-cost estimates stay unbiased
where the method defines weights) and bookkeeping about the
preprocessing effort, which the scalability comparison of §7.3 reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

__all__ = ["CompressedWorkload"]


@dataclass(frozen=True)
class CompressedWorkload:
    """A compressed (sub-)workload.

    Attributes
    ----------
    indices:
        Positions of the retained queries in the original workload.
    weights:
        Per-retained-query weights (1.0 for unweighted methods).
    method:
        Human-readable name of the compressor.
    preprocessing_operations:
        Number of elementary preprocessing operations performed
        (distance computations for clustering, comparisons for
        sorting); the unit of the §7.3 scalability comparison.
    """

    indices: np.ndarray
    weights: np.ndarray
    method: str
    preprocessing_operations: int = 0

    def __post_init__(self) -> None:
        if len(self.indices) != len(self.weights):
            raise ValueError(
                f"{len(self.indices)} indices vs {len(self.weights)} weights"
            )

    @property
    def size(self) -> int:
        """Number of retained queries."""
        return len(self.indices)

    def weighted_total(self, costs: np.ndarray) -> float:
        """Weighted total cost of the compressed workload.

        ``costs`` is the per-query cost vector of the *original*
        workload; only retained positions are read.
        """
        costs = np.asarray(costs, dtype=np.float64)
        return float((costs[self.indices] * self.weights).sum())
