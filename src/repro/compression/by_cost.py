"""Workload compression by current cost (Zilio et al. [20]).

"Queries are selected in order of their costs for the current
configuration until a prespecified percentage X of the total workload
cost is selected."  Computationally simple — one costing pass plus a
sort — but quality-fragile: when a few templates contain the most
expensive queries, the compressed workload covers only those templates
and tuning misses design structures beneficial for everyone else
(the failure mode demonstrated in §7.3).
"""

from __future__ import annotations

import numpy as np

from .base import CompressedWorkload

__all__ = ["compress_by_cost"]


def compress_by_cost(
    current_costs: np.ndarray,
    fraction: float,
) -> CompressedWorkload:
    """Retain the most expensive queries covering ``fraction`` of cost.

    Parameters
    ----------
    current_costs:
        Per-query optimizer cost in the *current* configuration.
    fraction:
        The X parameter in (0, 1]: the share of total workload cost the
        retained queries must cover.

    Returns
    -------
    CompressedWorkload
        Retained positions in descending cost order, unweighted
        (weights of 1.0), as in [20].
    """
    costs = np.asarray(current_costs, dtype=np.float64)
    if costs.ndim != 1 or len(costs) == 0:
        raise ValueError("current_costs must be a non-empty 1-D array")
    if not (0.0 < fraction <= 1.0):
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    order = np.argsort(-costs, kind="stable")
    total = costs.sum()
    if total <= 0:
        indices = order[:1]
    else:
        cum = np.cumsum(costs[order])
        cutoff = int(np.searchsorted(cum, fraction * total, side="left"))
        indices = order[: cutoff + 1]
    ops = int(len(costs) * max(1, np.log2(max(2, len(costs)))))  # sort
    return CompressedWorkload(
        indices=np.asarray(indices),
        weights=np.ones(len(indices)),
        method=f"by_cost(X={fraction:g})",
        preprocessing_operations=ops,
    )
