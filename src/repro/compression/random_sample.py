"""Uniform random-sample compression baseline.

The §7.3 comparison tunes "5 different random samples of the same size
as the compressed workload"; this module provides that baseline (and
the Delta-sample stand-in, which for tuning purposes is also a uniform
sample — the primitive's machinery matters for *comparison*, not for
the sample itself).
"""

from __future__ import annotations

import numpy as np

from .base import CompressedWorkload

__all__ = ["compress_random"]


def compress_random(
    n_queries: int,
    target_size: int,
    rng: np.random.Generator,
) -> CompressedWorkload:
    """A uniform without-replacement sample with unbiased weights.

    Each retained query carries weight ``N / m`` so that weighted
    totals estimate the full workload's total cost.
    """
    if target_size < 1 or target_size > n_queries:
        raise ValueError(
            f"target_size must be in [1, {n_queries}], got {target_size}"
        )
    indices = np.sort(
        rng.choice(n_queries, size=target_size, replace=False)
    )
    weight = n_queries / target_size
    return CompressedWorkload(
        indices=indices.astype(np.int64),
        weights=np.full(target_size, weight),
        method=f"random(m={target_size})",
        preprocessing_operations=0,
    )
