"""Workload compression by clustering (Chaudhuri et al. [5]).

[5] poses compression as a clustering problem under a distance function
that models the maximum possible difference in cost between two queries
over *arbitrary* configurations, then keeps one weighted representative
per cluster.  As in the paper's §7.3 comparison, the method produces
competitive tuning quality but its preprocessing performs up to
``O(|WL|^2)`` "complex distance computations".

Our distance function mirrors the published intent on our substrate:

* queries of *different templates* are infinitely far apart (their
  plans may diverge arbitrarily across configurations), so clusters
  never span templates;
* within a template, the cost difference across configurations is
  driven by the statements' selectivities, so the distance is the
  absolute difference of their current costs.

Two cluster-search strategies are provided: the faithful quadratic
greedy k-center (``exhaustive=True``, for the scalability measurement)
and a sort-based 1-D segmentation exploiting the within-template
structure (the default).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .base import CompressedWorkload

__all__ = ["compress_by_clustering", "pairwise_distance_count"]


def pairwise_distance_count(n: int) -> int:
    """Distance computations a quadratic clustering pass performs."""
    return n * (n - 1) // 2


def _kcenter_within_template(
    costs: np.ndarray, budget: int
) -> Tuple[List[int], int]:
    """Greedy k-center over one template's queries (quadratic path).

    Returns local representative positions plus distance-op count.
    """
    n = len(costs)
    if budget >= n:
        return list(range(n)), 0
    reps = [int(np.argmax(costs))]
    ops = 0
    dist_to_rep = np.abs(costs - costs[reps[0]])
    ops += n
    while len(reps) < budget:
        far = int(np.argmax(dist_to_rep))
        reps.append(far)
        new_d = np.abs(costs - costs[far])
        ops += n
        dist_to_rep = np.minimum(dist_to_rep, new_d)
    return reps, ops


def _segment_within_template(
    costs: np.ndarray, budget: int
) -> Tuple[List[int], int]:
    """Sort-based 1-D segmentation into ``budget`` equal-count clusters."""
    n = len(costs)
    if budget >= n:
        return list(range(n)), 0
    order = np.argsort(costs, kind="stable")
    reps: List[int] = []
    bounds = np.linspace(0, n, budget + 1).astype(int)
    for b in range(budget):
        seg = order[bounds[b]: bounds[b + 1]]
        if len(seg) == 0:
            continue
        reps.append(int(seg[len(seg) // 2]))  # median representative
    ops = int(n * max(1, np.log2(max(2, n))))
    return reps, ops


def compress_by_clustering(
    current_costs: np.ndarray,
    template_ids: np.ndarray,
    target_size: int,
    exhaustive: bool = False,
) -> CompressedWorkload:
    """Compress to ~``target_size`` weighted representatives.

    The cluster budget is distributed across templates proportionally
    to each template's share of total cost (minimum one cluster per
    template, as [5]'s distance makes cross-template clusters
    impossible).  Each representative carries its cluster's size as
    weight.

    Parameters
    ----------
    current_costs:
        Per-query cost in the current configuration.
    template_ids:
        Per-query template id.
    target_size:
        Desired number of retained queries (>= number of templates).
    exhaustive:
        Use the faithful quadratic greedy k-center within templates
        (slow; counts the [5]-style distance computations).
    """
    costs = np.asarray(current_costs, dtype=np.float64)
    tids = np.asarray(template_ids, dtype=np.int64)
    if len(costs) != len(tids) or len(costs) == 0:
        raise ValueError("costs and template_ids must align and be nonempty")
    if target_size < 1:
        raise ValueError(f"target_size must be >= 1, got {target_size}")

    templates = np.unique(tids)
    shares = np.array(
        [costs[tids == t].sum() for t in templates], dtype=np.float64
    )
    if shares.sum() <= 0:
        shares = np.ones(len(templates))
    budgets = np.maximum(
        1, np.round(target_size * shares / shares.sum()).astype(int)
    )

    indices: List[int] = []
    weights: List[float] = []
    ops = 0
    for t, budget in zip(templates, budgets):
        positions = np.flatnonzero(tids == t)
        t_costs = costs[positions]
        if exhaustive:
            reps, t_ops = _kcenter_within_template(t_costs, int(budget))
        else:
            reps, t_ops = _segment_within_template(t_costs, int(budget))
        ops += t_ops
        # Assign every query of the template to its nearest rep to get
        # cluster weights.
        rep_costs = t_costs[reps]
        nearest = np.argmin(
            np.abs(t_costs[:, None] - rep_costs[None, :]), axis=1
        )
        ops += len(t_costs) * len(reps)
        for r, rep_local in enumerate(reps):
            cluster_size = int((nearest == r).sum())
            if cluster_size == 0:
                continue
            indices.append(int(positions[rep_local]))
            weights.append(float(cluster_size))
    mode = "exhaustive" if exhaustive else "segmented"
    return CompressedWorkload(
        indices=np.asarray(indices, dtype=np.int64),
        weights=np.asarray(weights, dtype=np.float64),
        method=f"clustering({mode}, m={target_size})",
        preprocessing_operations=ops,
    )
