"""Workload-compression baselines from related work (§2, §7.3)."""

from .base import CompressedWorkload
from .by_cost import compress_by_cost
from .clustering import compress_by_clustering, pairwise_distance_count
from .random_sample import compress_random

__all__ = [
    "CompressedWorkload",
    "compress_by_cost",
    "compress_by_clustering",
    "pairwise_distance_count",
    "compress_random",
]
